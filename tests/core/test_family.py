"""Property tests for hole families (:mod:`repro.core.family`).

The guarantees the family scheduler leans on:

* splitting partitions the parent *exactly* — children are pairwise
  disjoint, their union is the parent, and the split position becomes
  concrete in every child;
* digests are byte-stable across process boundaries (the distributed
  shard journals and corpus files name families by digest);
* an all-fail verdict is sound — every member of a family the scheduler
  pruned as FAILURE fails when checked 1-by-1 (exercised on the real
  mutex and MSI-tiny skeletons);
* pattern narrowing never removes a member the pattern does not match.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.core.candidate import WILDCARD, CandidateVector
from repro.core.family import (
    HoleFamily,
    apply_pattern,
    narrow_family,
    plan_family_shards,
)
from repro.errors import CandidateError


@st.composite
def families(draw):
    """Small random families: 1-4 positions, option subsets of 0..4."""
    width = draw(st.integers(min_value=1, max_value=4))
    options = []
    for _ in range(width):
        subset = draw(
            st.sets(st.integers(min_value=0, max_value=4), min_size=1)
        )
        options.append(tuple(sorted(subset)))
    return HoleFamily(options)


# -- membership and ordering ------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(family=families())
def test_members_are_unique_ordered_and_counted(family):
    members = list(family.members())
    assert len(members) == family.size
    assert len(set(members)) == family.size
    # Last position varies fastest over sorted subsets == lexicographic.
    assert members == sorted(members)
    assert all(family.contains(member) for member in members)


@settings(max_examples=80, deadline=None)
@given(family=families())
def test_check_vector_fixes_exactly_the_singleton_positions(family):
    entries = family.check_vector().entries
    for position, subset in enumerate(family.options):
        if len(subset) == 1:
            assert entries[position] == subset[0]
        else:
            assert entries[position] is WILDCARD


# -- splitting --------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(family=families(), data=st.data())
def test_split_partitions_parent_exactly(family, data):
    multi = family.multi_positions()
    if not multi:
        return
    position = data.draw(st.sampled_from(multi))
    children = family.split(position)
    assert len(children) == len(family.options[position])
    # Each child fixes the split position, in ascending option order.
    assert [
        child.options[position] for child in children
    ] == [(option,) for option in family.options[position]]
    # Pairwise disjoint, union exactly the parent.
    member_sets = [set(child.members()) for child in children]
    for i, left in enumerate(member_sets):
        for right in member_sets[i + 1:]:
            assert not (left & right)
    union = set().union(*member_sets)
    assert union == set(family.members())
    assert sum(child.size for child in children) == family.size


@settings(max_examples=50, deadline=None)
@given(family=families())
def test_split_refuses_fixed_positions(family):
    for position, subset in enumerate(family.options):
        if len(subset) == 1:
            with pytest.raises(CandidateError):
                family.split(position)


@settings(max_examples=60, deadline=None)
@given(family=families(), target=st.integers(min_value=1, max_value=30))
def test_plan_family_shards_partitions_the_full_space(family, target):
    radices = [max(subset) + 1 for subset in family.options]
    shards = plan_family_shards(radices, target)
    full = HoleFamily.full(radices)
    assert len(shards) >= min(target, full.size)
    member_sets = [set(shard.members()) for shard in shards]
    assert sum(len(s) for s in member_sets) == full.size
    assert set().union(*member_sets) == set(full.members())


# -- digests ----------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(family=families())
def test_digest_survives_the_wire_round_trip(family):
    rebuilt = HoleFamily.from_wire(family.to_wire())
    assert rebuilt == family
    assert rebuilt.digest() == family.digest()
    assert len(family.digest()) == 16


def test_digest_byte_stable_across_process_boundary():
    """Digests must not depend on hash randomisation or process state:
    a fresh interpreter (its own PYTHONHASHSEED) computes identical
    digests for the same wire forms."""
    samples = [
        HoleFamily.full([3, 4, 2]),
        HoleFamily.singleton([1, 0, 2]),
        HoleFamily([(0, 2), (1,), (0, 1, 3)]),
        HoleFamily([(5,), (0, 7)]),
    ]
    wires = [[list(subset) for subset in f.to_wire()] for f in samples]
    code = (
        "import json, sys\n"
        "from repro.core.family import HoleFamily\n"
        "wires = json.load(sys.stdin)\n"
        "digests = [\n"
        "    HoleFamily.from_wire(tuple(tuple(s) for s in wire)).digest()\n"
        "    for wire in wires\n"
        "]\n"
        "print(json.dumps(digests))\n"
    )
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONHASHSEED"] = "random"
    proc = subprocess.run(
        [sys.executable, "-c", code],
        input=json.dumps(wires),
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    assert json.loads(proc.stdout) == [f.digest() for f in samples]


# -- pattern narrowing ------------------------------------------------------


@st.composite
def family_and_patterns(draw):
    family = draw(families())
    patterns = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        length = draw(st.integers(min_value=1, max_value=family.width))
        positions = draw(
            st.lists(
                st.integers(min_value=0, max_value=family.width - 1),
                min_size=length, max_size=length, unique=True,
            )
        )
        patterns.append(tuple(
            (position, draw(st.integers(min_value=0, max_value=4)))
            for position in positions
        ))
    return family, patterns


def _matches(member, constraints):
    return all(member[position] == action for position, action in constraints)


@settings(max_examples=100, deadline=None)
@given(pair=family_and_patterns())
def test_apply_pattern_removes_exactly_a_matched_subproduct(pair):
    family, patterns = pair
    constraints = patterns[0]
    narrowed, removed = apply_pattern(family, constraints)
    members = set(family.members())
    matched = {m for m in members if _matches(m, constraints)}
    remaining = set(narrowed.members()) if narrowed is not None else set()
    if removed:
        # Exact narrowing: what was removed is precisely the matched set.
        assert removed == len(matched)
        assert remaining == members - matched
    else:
        # Deferred (or no-match): the family must be untouched.
        assert narrowed is family
        assert remaining == members


@settings(max_examples=100, deadline=None)
@given(pair=family_and_patterns())
def test_narrow_family_never_drops_an_unmatched_member(pair):
    family, patterns = pair
    fail = patterns[: len(patterns) // 2 + 1]
    success = patterns[len(patterns) // 2 + 1:]
    remaining, pruned, skipped = narrow_family(family, fail, success)
    members = set(family.members())
    left = set(remaining.members()) if remaining is not None else set()
    assert len(left) + pruned + skipped == family.size
    clean = {
        m for m in members
        if not any(_matches(m, c) for c in fail + success)
    }
    # Members matching no pattern always survive; only matched members
    # may have been pruned or skipped.
    assert clean <= left
    for member in members - left:
        assert any(_matches(member, c) for c in fail + success)


# -- all-fail soundness on real skeletons -----------------------------------


@pytest.mark.parametrize("name", ["mutex", "msi-tiny"])
def test_all_fail_families_contain_only_failing_members(name, monkeypatch):
    """Every member of a family the scheduler classified all-fail must
    itself fail when model checked 1-by-1 — the soundness half of the
    family verdict (the completeness half is the solution-set parity the
    fuzz lattice pins)."""
    from repro.core.engine import (
        SynthesisConfig,
        SynthesisCore,
        SynthesisEngine,
    )
    from repro.protocols.catalog import build_skeleton_with_holes

    system, _holes = build_skeleton_with_holes(name, 2)
    recorded = []
    original = SynthesisCore._handle_family_result

    def spy(self, family, result, explorer, depth, counters, run_index):
        if result.is_failure:
            recorded.append(family)
        return original(
            self, family, result, explorer, depth, counters,
            run_index=run_index,
        )

    monkeypatch.setattr(SynthesisCore, "_handle_family_result", spy)
    engine = SynthesisEngine(system, SynthesisConfig(family=True))
    report = engine.run()
    assert report.family
    assert recorded, "run produced no all-fail family to check"

    # Largest families first: multi-member ones are the interesting case.
    recorded.sort(key=lambda family: family.size, reverse=True)
    checked = 0
    for family in recorded:
        for member in family.members():
            result, _ = engine.core.evaluate(
                CandidateVector.from_digits(member)
            )
            assert result.is_failure, (
                f"{name}: member {member} of all-fail family {family} "
                f"got verdict {result.verdict.value}"
            )
            checked += 1
            if checked >= 60:
                return
