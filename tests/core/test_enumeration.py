"""Tests for candidate enumerators (completeness, ranges, skipping)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.enumeration import NaiveEnumerator, SubtreeEnumerator
from repro.core.pruning import DfsMatcher, PruningPattern, PruningTable
from repro.util.itertools2 import mixed_radix_decode, product_size, split_ranges

radices_strategy = st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=4)


class TestSubtreeEnumerator:
    def test_full_walk_without_patterns(self):
        enumerator = SubtreeEnumerator([2, 2], [])
        assert list(enumerator) == [(0, 0), (0, 1), (1, 0), (1, 1)]
        assert enumerator.counters.covered == 4
        assert enumerator.counters.yielded == 4

    def test_empty_radices_yield_empty_candidate(self):
        enumerator = SubtreeEnumerator([], [])
        assert list(enumerator) == [()]

    def test_range_restriction(self):
        enumerator = SubtreeEnumerator([3, 2], [], start=2, end=5)
        assert list(enumerator) == [(1, 0), (1, 1), (2, 0)]
        assert enumerator.counters.covered == 3

    def test_empty_range(self):
        enumerator = SubtreeEnumerator([3, 2], [], start=4, end=4)
        assert list(enumerator) == []
        assert enumerator.counters.covered == 0

    def test_subtree_skip_counts_whole_subtree(self):
        matcher = DfsMatcher([PruningPattern([(0, 0)])])
        enumerator = SubtreeEnumerator([2, 3], [("fail", matcher)])
        walked = list(enumerator)
        assert walked == [(1, 0), (1, 1), (1, 2)]
        assert enumerator.counters.skipped["fail"] == 3

    def test_skip_clipped_to_range(self):
        # Pattern kills the first digit's subtree (indices 0..2); the range
        # only covers index 1..5, so only 2 of the 3 skipped are counted.
        matcher = DfsMatcher([PruningPattern([(0, 0)])])
        enumerator = SubtreeEnumerator([2, 3], [("fail", matcher)], start=1, end=6)
        walked = list(enumerator)
        assert walked == [(1, 0), (1, 1), (1, 2)]
        assert enumerator.counters.skipped["fail"] == 2
        assert enumerator.counters.covered == 5

    def test_multiple_matchers_priority(self):
        fail = DfsMatcher([PruningPattern([(0, 0)])])
        success = DfsMatcher([PruningPattern([(0, 0)])])  # overlapping
        enumerator = SubtreeEnumerator(
            [2, 2], [("fail", fail), ("success", success)]
        )
        list(enumerator)
        assert enumerator.counters.skipped["fail"] == 2
        assert enumerator.counters.skipped["success"] == 0

    def test_current_path_available_at_yield(self):
        enumerator = SubtreeEnumerator([2, 2], [])
        iterator = iter(enumerator)
        first = next(iterator)
        assert enumerator.current_path == first

    @given(radices_strategy, st.data())
    @settings(max_examples=100, deadline=None)
    def test_range_partition_covers_everything(self, radices, data):
        total = product_size(radices)
        parts = data.draw(st.integers(min_value=1, max_value=4))
        collected = []
        for start, end in split_ranges(total, parts):
            collected.extend(SubtreeEnumerator(radices, [], start, end))
        assert collected == [
            mixed_radix_decode(i, radices) for i in range(total)
        ]


class TestNaiveEnumerator:
    def test_full_walk(self):
        enumerator = NaiveEnumerator([2, 2], [])
        assert list(enumerator) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_table_matching(self):
        table = PruningTable()
        table.add(PruningPattern([(1, 1)]))
        enumerator = NaiveEnumerator([2, 2], [("fail", table)])
        assert list(enumerator) == [(0, 0), (1, 0)]
        assert enumerator.counters.skipped["fail"] == 2

    def test_live_table_updates_take_effect(self):
        # A pattern added mid-iteration prunes later candidates.
        table = PruningTable()
        enumerator = NaiveEnumerator([2, 2], [("fail", table)])
        iterator = iter(enumerator)
        assert next(iterator) == (0, 0)
        table.add(PruningPattern([(0, 1)]))
        remaining = list(iterator)
        assert remaining == [(0, 1)]
        assert enumerator.counters.skipped["fail"] == 2

    def test_range(self):
        enumerator = NaiveEnumerator([3, 2], [], start=2, end=4)
        assert list(enumerator) == [(1, 0), (1, 1)]

    @given(radices_strategy)
    @settings(max_examples=50, deadline=None)
    def test_matches_subtree_enumerator_without_patterns(self, radices):
        naive = list(NaiveEnumerator(radices, []))
        subtree = list(SubtreeEnumerator(radices, []))
        assert naive == subtree
