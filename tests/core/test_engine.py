"""End-to-end tests of the synthesis engines on the Figure 2 toy system."""

import pytest

from repro.core.action import Action
from repro.core.engine import SynthesisConfig, SynthesisEngine, SynthesisObserver
from repro.core.hole import Hole
from repro.core.parallel import ParallelSynthesisEngine
from repro.mc.properties import Invariant
from repro.mc.rule import Rule
from repro.mc.system import TransitionSystem
from repro.protocols.toy import build_figure2_skeleton, build_figure2_solution


class RecordingObserver(SynthesisObserver):
    def __init__(self):
        self.runs = []
        self.patterns = []
        self.solutions = []
        self.passes = []

    def on_pass_started(self, pass_index, holes):
        self.passes.append((pass_index, len(holes)))

    def on_run(self, run_index, vector, result, holes):
        self.runs.append((run_index, vector.entries, result.verdict.value))

    def on_pattern(self, pattern, holes):
        self.patterns.append(pattern.constraints)

    def on_solution(self, solution, holes):
        self.solutions.append(solution.digits)


class TestFigure2Pruned:
    """The engine must reproduce Figure 2's run table exactly."""

    @pytest.fixture
    def report_and_observer(self):
        observer = RecordingObserver()
        report = SynthesisEngine(
            build_figure2_skeleton(), SynthesisConfig(), observer
        ).run()
        return report, observer

    def test_ten_runs_total(self, report_and_observer):
        report, _observer = report_and_observer
        assert report.evaluated == 10

    def test_naive_space_is_24(self, report_and_observer):
        report, _observer = report_and_observer
        assert report.naive_candidate_space == 24
        assert report.wildcard_candidate_space == 108

    def test_exact_run_sequence(self, report_and_observer):
        _report, observer = report_and_observer
        # Runs of Figure 2, as (digits, verdict). A=0, B=1, C=2.
        expected = [
            ((), "unknown"),               # run 1: <> discovers hole 1
            ((0,), "failure"),             # run 2: <1@A>
            ((1,), "unknown"),             # run 3: <1@B> discovers hole 2
            ((2,), "failure"),             # run 4: <1@C, 2@?>
            ((1, 0), "unknown"),           # run 5: <1@B, 2@A> discovers hole 3
            ((1, 1), "failure"),           # run 6: <1@B, 2@B, 3@?>
            ((1, 0, 0), "failure"),        # run 7: <1@B, 2@A, 3@A>
            ((1, 0, 1), "unknown"),        # run 8: <1@B, 2@A, 3@B> discovers hole 4
            ((1, 0, 1, 0), "failure"),     # run 9: <1@B, 2@A, 3@B, 4@A>
            ((1, 0, 1, 1), "success"),     # run 10
        ]
        assert [(digits, verdict) for _i, digits, verdict in observer.runs] == expected

    def test_five_pruning_patterns(self, report_and_observer):
        report, observer = report_and_observer
        assert report.failure_patterns == 5
        assert observer.patterns == [
            ((0, 0),),
            ((0, 2),),
            ((0, 1), (1, 1)),
            ((0, 1), (1, 0), (2, 0)),
            ((0, 1), (1, 0), (2, 1), (3, 0)),
        ]

    def test_unique_solution(self, report_and_observer):
        report, _observer = report_and_observer
        assert len(report.solutions) == 1
        solution = report.solutions[0]
        assert solution.assignment_dict() == build_figure2_solution()
        assert report.format_solution(solution) == "<1@B, 2@A, 3@B, 4@B>"

    def test_holes_discovered_in_order(self, report_and_observer):
        report, _observer = report_and_observer
        assert [h.name for h in report.holes] == ["hole1", "hole2", "hole3", "hole4"]

    def test_accounting_adds_up(self, report_and_observer):
        # Every covered candidate is evaluated, pruned, or skipped.
        report, _observer = report_and_observer
        assert report.covered == (
            (report.evaluated - 1)  # initial run not part of a pass
            + report.pruned_failure
            + report.skipped_success
        )


class TestFigure2Naive:
    def test_naive_evaluates_full_product(self):
        report = SynthesisEngine(
            build_figure2_skeleton(), SynthesisConfig(pruning=False)
        ).run()
        assert report.evaluated == 24
        assert report.failure_patterns == 0
        assert len(report.solutions) == 1
        assert report.solutions[0].assignment_dict() == build_figure2_solution()

    def test_reduction_metric(self):
        pruned = SynthesisEngine(build_figure2_skeleton()).run()
        assert pruned.reduction_vs_naive == pytest.approx(1 - 10 / 24)


class TestNaiveMatchMode:
    def test_flat_matching_gives_identical_counts(self):
        subtree = SynthesisEngine(build_figure2_skeleton()).run()
        flat = SynthesisEngine(
            build_figure2_skeleton(), SynthesisConfig(naive_match=True)
        ).run()
        assert flat.evaluated == subtree.evaluated
        assert flat.failure_patterns == subtree.failure_patterns
        assert flat.pruned_failure == subtree.pruned_failure
        assert [s.digits for s in flat.solutions] == [
            s.digits for s in subtree.solutions
        ]


class TestRefinedPatterns:
    def test_refined_patterns_constrain_fewer_positions(self):
        report = SynthesisEngine(
            build_figure2_skeleton(), SynthesisConfig(refined_patterns=True)
        ).run()
        assert len(report.solutions) == 1
        # Run 6 (<1@B, 2@B>) fails at s2 without the hole-1 choice being part
        # of the error *trace*... it is on the path (s0 -> s2), so refined
        # patterns still include it; but run 9's failure path executes all
        # assigned holes. Refined must never evaluate MORE than full-vector.
        full = SynthesisEngine(build_figure2_skeleton()).run()
        assert report.evaluated <= full.evaluated


class TestParallelEngine:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_same_solutions_any_thread_count(self, threads):
        report = ParallelSynthesisEngine(
            build_figure2_skeleton(), threads=threads
        ).run()
        assert len(report.solutions) == 1
        assert report.solutions[0].assignment_dict() == build_figure2_solution()
        assert report.threads == threads

    def test_parallel_naive_mode(self):
        report = ParallelSynthesisEngine(
            build_figure2_skeleton(),
            SynthesisConfig(pruning=False),
            threads=2,
        ).run()
        assert report.evaluated == 24
        assert len(report.solutions) == 1

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            ParallelSynthesisEngine(build_figure2_skeleton(), threads=0)


class TestStopConditions:
    def test_solution_limit(self):
        report = SynthesisEngine(
            build_figure2_skeleton(), SynthesisConfig(solution_limit=1)
        ).run()
        assert len(report.solutions) == 1
        assert report.stopped_early

    def test_max_evaluations(self):
        report = SynthesisEngine(
            build_figure2_skeleton(), SynthesisConfig(max_evaluations=3)
        ).run()
        assert report.evaluated <= 4
        assert report.stopped_early

    def test_max_passes(self):
        report = SynthesisEngine(
            build_figure2_skeleton(), SynthesisConfig(max_passes=1)
        ).run()
        assert report.passes == 1
        assert report.stopped_early


class TestInherentFailure:
    def test_unsatisfiable_skeleton_detected(self):
        # The invariant fails before any hole is reachable.
        hole = Hole("h", [Action("a")])

        def apply(s, ctx):
            ctx.resolve(hole)
            return [s]

        system = TransitionSystem(
            name="doomed",
            initial_states=[0],
            rules=[
                Rule("bad", guard=lambda s: s == 0, apply=lambda s, ctx: [99]),
                Rule("hole", guard=lambda s: s == 99, apply=apply),
            ],
            invariants=[Invariant("never-99", lambda s: s != 99)],
        )
        report = SynthesisEngine(system).run()
        assert report.inherent_failure
        assert report.solutions == []
        assert report.evaluated == 1


class TestHoleFreeSystem:
    def test_complete_system_is_its_own_solution(self):
        system = TransitionSystem(
            name="complete",
            initial_states=[0],
            rules=[Rule("loop", guard=lambda s: True, apply=lambda s, ctx: [s])],
        )
        report = SynthesisEngine(system).run()
        assert len(report.solutions) == 1
        assert report.solutions[0].digits == ()
        assert report.holes == []


class TestFingerprints:
    def test_solution_fingerprints_enabled(self):
        report = SynthesisEngine(
            build_figure2_skeleton(), SynthesisConfig(compute_fingerprints=True)
        ).run()
        assert report.solutions[0].fingerprint is not None

    def test_solution_fingerprints_disabled_by_default(self):
        report = SynthesisEngine(build_figure2_skeleton()).run()
        assert report.solutions[0].fingerprint is None
        assert report.solutions[0].states_visited > 0
