"""Unit tests for the prefix-exploration cache and its config gating."""

import pytest

from repro.core.engine import PrefixCache, SynthesisConfig, SynthesisCore
from repro.errors import SynthesisError
from repro.mc.kernel import ExplorationLimits
from repro.protocols.toy import build_figure2_skeleton


class TestPrefixCache:
    def test_lookup_miss_vs_negative_entry(self):
        cache = PrefixCache()
        assert cache.lookup((1,)) == (False, None)
        cache.store((1,), None)  # negative entry: prefix known to fail
        assert cache.lookup((1,)) == (True, None)

    def test_lru_eviction_order(self):
        cache = PrefixCache(capacity=2)
        cache.store((1,), None)
        cache.store((2,), None)
        cache.lookup((1,))  # refresh (1,)
        cache.store((3,), None)  # evicts (2,)
        assert cache.lookup((2,)) == (False, None)
        assert cache.lookup((1,))[0] and cache.lookup((3,))[0]
        assert len(cache) == 2

    def test_counters(self):
        cache = PrefixCache()
        cache.note_hit(10)
        cache.note_hit(5)
        cache.note_build()
        assert cache.counters() == (2, 1, 15)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            PrefixCache(capacity=0)


class TestConfigGating:
    def test_capacity_validated_in_config(self):
        with pytest.raises(SynthesisError):
            SynthesisConfig(prefix_cache_capacity=0)

    def test_active_by_default(self):
        assert SynthesisConfig().prefix_reuse_active

    def test_inactive_without_pruning(self):
        assert not SynthesisConfig(pruning=False).prefix_reuse_active

    def test_inactive_when_disabled(self):
        assert not SynthesisConfig(prefix_reuse=False).prefix_reuse_active

    def test_inactive_under_exploration_limits(self):
        # A truncated exploration's verdict depends on visit order, which
        # resumption changes — the cache must stand down.
        config = SynthesisConfig(limits=ExplorationLimits(max_states=100))
        assert not config.prefix_reuse_active
        config = SynthesisConfig(limits=ExplorationLimits(max_depth=3))
        assert not config.prefix_reuse_active

    def test_empty_limits_keep_cache_active(self):
        assert SynthesisConfig(limits=ExplorationLimits()).prefix_reuse_active

    def test_generalisation_gated_like_the_cache(self):
        # A generalised pattern promises the sibling *contains* the
        # counterexample, not that a truncated run reaches it in budget —
        # so exploration limits stand generalisation down too.
        assert SynthesisConfig().generalise_active
        assert not SynthesisConfig(generalise_conflicts=False).generalise_active
        assert not SynthesisConfig(
            limits=ExplorationLimits(max_states=10)
        ).generalise_active
        assert SynthesisConfig(limits=ExplorationLimits()).generalise_active

    def test_core_builds_cache_only_when_active(self):
        system = build_figure2_skeleton()
        assert SynthesisCore(system, SynthesisConfig()).prefix_cache is not None
        assert (
            SynthesisCore(system, SynthesisConfig(prefix_reuse=False)).prefix_cache
            is None
        )

    def test_core_adopts_caller_cache(self):
        system = build_figure2_skeleton()
        shared = PrefixCache()
        core = SynthesisCore(system, SynthesisConfig(), prefix_cache=shared)
        assert core.prefix_cache is shared
        # ... but never against the config's wishes.
        core = SynthesisCore(
            system, SynthesisConfig(prefix_reuse=False), prefix_cache=shared
        )
        assert core.prefix_cache is None
