"""Tests for pruning patterns, the table, and the incremental DFS matcher."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidate import WILDCARD, CandidateVector
from repro.core.enumeration import SubtreeEnumerator
from repro.core.pruning import DfsMatcher, PruningPattern, PruningTable
from repro.util.itertools2 import mixed_radix_decode, product_size


class TestPruningPattern:
    def test_from_candidate_drops_wildcards(self):
        vector = CandidateVector([1, WILDCARD, 0])
        pattern = PruningPattern.from_candidate(vector)
        assert pattern.constraints == ((0, 1), (2, 0))
        assert pattern.max_position == 2

    def test_empty_pattern(self):
        pattern = PruningPattern(())
        assert pattern.is_empty
        assert pattern.matches(CandidateVector([0, 0]))

    def test_matching_superset_semantics(self):
        # The paper's core insight: <1@A> prunes any <1@A, 2@*, ...>.
        pattern = PruningPattern([(0, 0)])
        assert pattern.matches(CandidateVector([0, 1]))
        assert pattern.matches(CandidateVector([0]))
        assert not pattern.matches(CandidateVector([1, 0]))

    def test_candidate_wildcard_does_not_satisfy_constraint(self):
        pattern = PruningPattern([(1, 0)])
        assert not pattern.matches(CandidateVector([0, WILDCARD]))
        assert not pattern.matches(CandidateVector([0]))

    def test_duplicate_position_rejected(self):
        with pytest.raises(ValueError):
            PruningPattern([(0, 1), (0, 2)])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PruningPattern([(-1, 0)])

    def test_subsumes(self):
        general = PruningPattern([(0, 1)])
        specific = PruningPattern([(0, 1), (1, 0)])
        assert general.subsumes(specific)
        assert not specific.subsumes(general)

    def test_equality_hash(self):
        assert PruningPattern([(1, 2), (0, 1)]) == PruningPattern([(0, 1), (1, 2)])
        assert hash(PruningPattern([(0, 1)])) == hash(PruningPattern([(0, 1)]))


class TestPruningTable:
    def test_add_and_match(self):
        table = PruningTable()
        assert table.add(PruningPattern([(0, 1)]))
        assert table.matches(CandidateVector([1, 0])) is not None
        assert table.matches(CandidateVector([0, 0])) is None

    def test_exact_duplicates_rejected(self):
        table = PruningTable()
        table.add(PruningPattern([(0, 1)]))
        assert not table.add(PruningPattern([(0, 1)]))
        assert len(table) == 1

    def test_subsumption_rejects_implied(self):
        table = PruningTable(subsumption=True)
        table.add(PruningPattern([(0, 1)]))
        assert not table.add(PruningPattern([(0, 1), (1, 0)]))
        assert len(table) == 1

    def test_subsumption_disabled_keeps_implied(self):
        table = PruningTable(subsumption=False)
        table.add(PruningPattern([(0, 1)]))
        assert table.add(PruningPattern([(0, 1), (1, 0)]))
        assert len(table) == 2

    def test_versioning_and_delta(self):
        table = PruningTable()
        version = table.version
        table.add(PruningPattern([(0, 0)]))
        table.add(PruningPattern([(1, 1)]))
        delta = table.patterns_since(version)
        assert len(delta) == 2
        assert table.patterns_since(table.version) == []


class TestDfsMatcher:
    def test_push_fires_on_complete_pattern(self):
        matcher = DfsMatcher([PruningPattern([(0, 1), (1, 0)])])
        assert not matcher.push(0, 1)
        assert matcher.push(1, 0)
        matcher.pop(1, 0)
        assert not matcher.any_matched
        assert not matcher.push(1, 1)

    def test_pop_restores(self):
        matcher = DfsMatcher([PruningPattern([(0, 1)])])
        assert matcher.push(0, 1)
        matcher.pop(0, 1)
        assert not matcher.any_matched
        assert not matcher.push(0, 0)

    def test_integrate_with_satisfied_prefix(self):
        matcher = DfsMatcher()
        matcher.push(0, 1)
        matcher.push(1, 0)
        matcher.integrate([PruningPattern([(0, 1)])], current_path=(1, 0))
        assert matcher.any_matched
        # Backtrack above the constraint: no longer matched.
        matcher.pop(1, 0)
        matcher.pop(0, 1)
        assert not matcher.any_matched
        # Re-push a matching digit: matched again.
        assert matcher.push(0, 1)

    def test_fully_matched_helper(self):
        matcher = DfsMatcher([PruningPattern([(0, 1), (2, 0)])])
        assert matcher.fully_matched((1, 9, 0))
        assert not matcher.fully_matched((1, 9, 1))
        assert not matcher.fully_matched((1,))


# -- differential property test: subtree skipping == flat matching ----------

pattern_strategy = st.lists(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 2)),
        min_size=1,
        max_size=3,
        unique_by=lambda c: c[0],
    ),
    max_size=6,
)

radices_strategy = st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=4)


@settings(max_examples=200, deadline=None)
@given(radices_strategy, pattern_strategy)
def test_subtree_walker_equals_flat_matching(radices, raw_patterns):
    """The DFS subtree skipper must yield exactly the flat-match survivors."""
    patterns = []
    for raw in raw_patterns:
        constraints = [
            (position, action % radix)
            for position, action in raw
            if position < len(radices)
            for radix in [radices[position]]
        ]
        if constraints:
            patterns.append(PruningPattern(constraints))

    matcher = DfsMatcher(patterns)
    enumerator = SubtreeEnumerator(radices, [("fail", matcher)])
    walked = list(enumerator)

    expected = []
    for index in range(product_size(radices)):
        digits = mixed_radix_decode(index, radices)
        vector = CandidateVector.from_digits(digits)
        if not any(p.matches(vector) for p in patterns):
            expected.append(digits)

    assert walked == expected
    assert enumerator.counters.yielded == len(expected)
    assert enumerator.counters.skipped["fail"] == product_size(radices) - len(expected)
