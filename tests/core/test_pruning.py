"""Tests for pruning patterns, the table, and the incremental DFS matcher."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidate import WILDCARD, CandidateVector
from repro.core.enumeration import SubtreeEnumerator
from repro.core.pruning import DfsMatcher, PruningPattern, PruningTable
from repro.util.itertools2 import mixed_radix_decode, product_size


class TestPruningPattern:
    def test_from_candidate_drops_wildcards(self):
        vector = CandidateVector([1, WILDCARD, 0])
        pattern = PruningPattern.from_candidate(vector)
        assert pattern.constraints == ((0, 1), (2, 0))
        assert pattern.max_position == 2

    def test_empty_pattern(self):
        pattern = PruningPattern(())
        assert pattern.is_empty
        assert pattern.matches(CandidateVector([0, 0]))

    def test_matching_superset_semantics(self):
        # The paper's core insight: <1@A> prunes any <1@A, 2@*, ...>.
        pattern = PruningPattern([(0, 0)])
        assert pattern.matches(CandidateVector([0, 1]))
        assert pattern.matches(CandidateVector([0]))
        assert not pattern.matches(CandidateVector([1, 0]))

    def test_candidate_wildcard_does_not_satisfy_constraint(self):
        pattern = PruningPattern([(1, 0)])
        assert not pattern.matches(CandidateVector([0, WILDCARD]))
        assert not pattern.matches(CandidateVector([0]))

    def test_duplicate_position_rejected(self):
        with pytest.raises(ValueError):
            PruningPattern([(0, 1), (0, 2)])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PruningPattern([(-1, 0)])

    def test_subsumes(self):
        general = PruningPattern([(0, 1)])
        specific = PruningPattern([(0, 1), (1, 0)])
        assert general.subsumes(specific)
        assert not specific.subsumes(general)

    def test_equality_hash(self):
        assert PruningPattern([(1, 2), (0, 1)]) == PruningPattern([(0, 1), (1, 2)])
        assert hash(PruningPattern([(0, 1)])) == hash(PruningPattern([(0, 1)]))


class TestPruningTable:
    def test_add_and_match(self):
        table = PruningTable()
        assert table.add(PruningPattern([(0, 1)]))
        assert table.matches(CandidateVector([1, 0])) is not None
        assert table.matches(CandidateVector([0, 0])) is None

    def test_exact_duplicates_rejected(self):
        table = PruningTable()
        table.add(PruningPattern([(0, 1)]))
        assert not table.add(PruningPattern([(0, 1)]))
        assert len(table) == 1

    def test_subsumption_rejects_implied(self):
        table = PruningTable(subsumption=True)
        table.add(PruningPattern([(0, 1)]))
        assert not table.add(PruningPattern([(0, 1), (1, 0)]))
        assert len(table) == 1

    def test_subsumption_disabled_keeps_implied(self):
        table = PruningTable(subsumption=False)
        table.add(PruningPattern([(0, 1)]))
        assert table.add(PruningPattern([(0, 1), (1, 0)]))
        assert len(table) == 2

    def test_versioning_and_delta(self):
        table = PruningTable()
        version = table.version
        table.add(PruningPattern([(0, 0)]))
        table.add(PruningPattern([(1, 1)]))
        delta = table.patterns_since(version)
        assert len(delta) == 2
        assert table.patterns_since(table.version) == []


class TestDfsMatcher:
    def test_push_fires_on_complete_pattern(self):
        matcher = DfsMatcher([PruningPattern([(0, 1), (1, 0)])])
        assert not matcher.push(0, 1)
        assert matcher.push(1, 0)
        matcher.pop(1, 0)
        assert not matcher.any_matched
        assert not matcher.push(1, 1)

    def test_pop_restores(self):
        matcher = DfsMatcher([PruningPattern([(0, 1)])])
        assert matcher.push(0, 1)
        matcher.pop(0, 1)
        assert not matcher.any_matched
        assert not matcher.push(0, 0)

    def test_integrate_with_satisfied_prefix(self):
        matcher = DfsMatcher()
        matcher.push(0, 1)
        matcher.push(1, 0)
        matcher.integrate([PruningPattern([(0, 1)])], current_path=(1, 0))
        assert matcher.any_matched
        # Backtrack above the constraint: no longer matched.
        matcher.pop(1, 0)
        matcher.pop(0, 1)
        assert not matcher.any_matched
        # Re-push a matching digit: matched again.
        assert matcher.push(0, 1)

    def test_fully_matched_helper(self):
        matcher = DfsMatcher([PruningPattern([(0, 1), (2, 0)])])
        assert matcher.fully_matched((1, 9, 0))
        assert not matcher.fully_matched((1, 9, 1))
        assert not matcher.fully_matched((1,))


class TestGeneraliseFailure:
    """Conflict generalisation: replay the counterexample, constrain only
    the holes it executes."""

    @staticmethod
    def _fork_setup():
        """s0 --H0--> {left: 10, right: 20}; 10 --HA--> {err, ok};
        20 --HB--> {ok, err}.  Three holes, but any one failure trace
        executes exactly two of them."""
        from repro.core.action import Action
        from repro.core.discovery import CandidateResolver, HoleRegistry
        from repro.core.hole import Hole
        from repro.mc.properties import DeadlockPolicy, Invariant
        from repro.mc.rule import Rule
        from repro.mc.system import TransitionSystem

        h0 = Hole("h0", [Action("L", payload=10), Action("R", payload=20)])
        ha = Hole("ha", [Action("x", payload=-1), Action("y", payload=99)])
        hb = Hole("hb", [Action("x", payload=98), Action("y", payload=-1)])

        def chooser(hole):
            def apply(state, ctx, _hole=hole):
                return [ctx.resolve(_hole).payload]

            return apply

        system = TransitionSystem(
            name="fork",
            initial_states=[0],
            rules=[
                Rule("r0", guard=lambda s: s == 0, apply=chooser(h0)),
                Rule("ra", guard=lambda s: s == 10, apply=chooser(ha)),
                Rule("rb", guard=lambda s: s == 20, apply=chooser(hb)),
            ],
            invariants=[Invariant("no-err", lambda s: s != -1)],
            deadlock=DeadlockPolicy.fail(quiescent=lambda s: s in (98, 99)),
        )
        registry = HoleRegistry()
        for hole in (h0, ha, hb):
            registry.position_of(hole, register=True)
        return system, registry, CandidateResolver

    def _check(self, digits):
        from repro.core.candidate import CandidateVector
        from repro.core.pruning import generalise_failure
        from repro.mc.kernel import ExplorationKernel

        system, registry, CandidateResolver = self._fork_setup()
        resolver = CandidateResolver(registry, CandidateVector.from_digits(digits))
        result = ExplorationKernel(system, resolver=resolver).run()
        assert result.is_failure
        return generalise_failure(system, registry, digits, result)

    def test_untouched_hole_dropped_from_pattern(self):
        # <L, x, ?> fails through h0 and ha only; hb's assignment (either
        # value) never executes, so the pattern must not constrain it.
        assert self._check((0, 0, 0)).constraints == ((0, 0), (1, 0))
        assert self._check((0, 0, 1)).constraints == ((0, 0), (1, 0))

    def test_other_branch_symmetry(self):
        # <R, ?, y> fails through h0 and hb only.
        assert self._check((1, 0, 1)).constraints == ((0, 1), (2, 1))
        assert self._check((1, 1, 1)).constraints == ((0, 1), (2, 1))

    def test_max_position_bounds_forcing_prefix(self):
        # The generalised pattern's last constrained position marks the end
        # of the shortest failure-forcing assignment prefix — the subtree
        # enumerator cuts everything below it.  <L, x, *> forces the
        # counterexample, so the pattern fires at position 1, not 2.
        pattern = self._check((0, 0, 1))
        assert pattern.max_position == 1

    def test_coverage_failure_is_not_generalised(self):
        from repro.mc.result import FailureKind, Verdict, VerificationResult
        from repro.core.pruning import generalise_failure

        system, registry, _ = self._fork_setup()
        result = VerificationResult(
            verdict=Verdict.FAILURE,
            failure_kind=FailureKind.COVERAGE,
            message="coverage not met: x",
        )
        assert generalise_failure(system, registry, (0, 0, 0), result) is None

    def test_deadlock_includes_final_state_holes(self):
        from repro.core.action import Action
        from repro.core.candidate import CandidateVector
        from repro.core.discovery import CandidateResolver, HoleRegistry
        from repro.core.hole import Hole
        from repro.core.pruning import generalise_failure
        from repro.mc.kernel import ExplorationKernel
        from repro.mc.properties import DeadlockPolicy
        from repro.mc.rule import Rule
        from repro.mc.system import TransitionSystem

        h0 = Hole("h0", [Action("go", payload=30)])
        hd = Hole("hd", [Action("stall", payload=None), Action("run", payload=77)])

        def apply0(state, ctx):
            return [ctx.resolve(h0).payload]

        def applyd(state, ctx):
            target = ctx.resolve(hd).payload
            return [] if target is None else [target]

        system = TransitionSystem(
            name="stall",
            initial_states=[0],
            rules=[
                Rule("r0", guard=lambda s: s == 0, apply=apply0),
                Rule("rd", guard=lambda s: s == 30, apply=applyd),
            ],
            deadlock=DeadlockPolicy.fail(quiescent=lambda s: s == 77),
        )
        registry = HoleRegistry()
        registry.position_of(h0, register=True)
        registry.position_of(hd, register=True)
        digits = (0, 0)  # go, then stall: deadlock at 30
        resolver = CandidateResolver(registry, CandidateVector.from_digits(digits))
        result = ExplorationKernel(system, resolver=resolver).run()
        assert result.is_failure
        # hd never fires a transition, but its choice is what blocks the
        # escape from state 30 — the conflict must constrain it.
        pattern = generalise_failure(system, registry, digits, result)
        assert pattern.constraints == ((0, 0), (1, 0))

    def test_hole_free_trace_yields_empty_pattern(self):
        # Defensive path: a trace executing no holes means the skeleton
        # fails under every assignment (in practice the initial run
        # catches this first and reports an inherent failure).
        from repro.core.discovery import HoleRegistry
        from repro.core.pruning import generalise_failure
        from repro.mc.kernel import ExplorationKernel
        from repro.mc.properties import Invariant
        from repro.mc.rule import Rule
        from repro.mc.system import TransitionSystem

        system = TransitionSystem(
            name="doomed",
            initial_states=[0],
            rules=[Rule("bad", guard=lambda s: s == 0, apply=lambda s, ctx: [-1])],
            invariants=[Invariant("no-err", lambda s: s != -1)],
        )
        result = ExplorationKernel(system).run()
        assert result.is_failure
        pattern = generalise_failure(system, HoleRegistry(), (), result)
        assert pattern is not None and pattern.is_empty

    def test_missing_trace_falls_back(self):
        from repro.core.candidate import CandidateVector
        from repro.core.discovery import CandidateResolver
        from repro.core.pruning import generalise_failure
        from repro.mc.kernel import ExplorationKernel

        system, registry, _ = self._fork_setup()
        resolver = CandidateResolver(registry, CandidateVector.from_digits((0, 0, 0)))
        result = ExplorationKernel(
            system, resolver=resolver, record_traces=False
        ).run()
        assert result.is_failure and result.trace is None
        assert generalise_failure(system, registry, (0, 0, 0), result) is None


# -- differential property test: subtree skipping == flat matching ----------

pattern_strategy = st.lists(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 2)),
        min_size=1,
        max_size=3,
        unique_by=lambda c: c[0],
    ),
    max_size=6,
)

radices_strategy = st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=4)


@settings(max_examples=200, deadline=None)
@given(radices_strategy, pattern_strategy)
def test_subtree_walker_equals_flat_matching(radices, raw_patterns):
    """The DFS subtree skipper must yield exactly the flat-match survivors."""
    patterns = []
    for raw in raw_patterns:
        constraints = [
            (position, action % radix)
            for position, action in raw
            if position < len(radices)
            for radix in [radices[position]]
        ]
        if constraints:
            patterns.append(PruningPattern(constraints))

    matcher = DfsMatcher(patterns)
    enumerator = SubtreeEnumerator(radices, [("fail", matcher)])
    walked = list(enumerator)

    expected = []
    for index in range(product_size(radices)):
        digits = mixed_radix_decode(index, radices)
        vector = CandidateVector.from_digits(digits)
        if not any(p.matches(vector) for p in patterns):
            expected.append(digits)

    assert walked == expected
    assert enumerator.counters.yielded == len(expected)
    assert enumerator.counters.skipped["fail"] == product_size(radices) - len(expected)
