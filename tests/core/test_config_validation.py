"""SynthesisConfig rejects nonsense knobs instead of silently misbehaving."""

import pytest

from repro.core import SynthesisConfig
from repro.core.parallel import ParallelSynthesisEngine
from repro.dist import DistributedSynthesisEngine, SystemSpec
from repro.errors import SynthesisError
from repro.protocols.catalog import build_skeleton


class TestConfigValidation:
    @pytest.mark.parametrize(
        "knob", ["solution_limit", "max_evaluations", "max_passes"]
    )
    def test_negative_limits_rejected(self, knob):
        with pytest.raises(SynthesisError, match=knob):
            SynthesisConfig(**{knob: -1})

    def test_negative_default_action_index_rejected(self):
        with pytest.raises(SynthesisError, match="default_action_index"):
            SynthesisConfig(default_action_index=-1)

    @pytest.mark.parametrize(
        "knob", ["solution_limit", "max_evaluations", "max_passes"]
    )
    def test_zero_and_none_limits_accepted(self, knob):
        SynthesisConfig(**{knob: 0})
        SynthesisConfig(**{knob: None})

    def test_defaults_are_valid(self):
        SynthesisConfig()

    def test_explorer_strategies_accepted(self):
        assert SynthesisConfig(explorer="bfs").explorer == "bfs"
        assert SynthesisConfig(explorer="dfs").explorer == "dfs"

    def test_unknown_explorer_rejected(self):
        with pytest.raises(SynthesisError, match="explorer"):
            SynthesisConfig(explorer="best-first")


class TestTelemetryConfigValidation:
    @pytest.mark.parametrize("knob", ["telemetry", "progress"])
    def test_non_bool_flags_rejected(self, knob):
        with pytest.raises(SynthesisError, match=knob):
            SynthesisConfig(**{knob: 1})
        with pytest.raises(SynthesisError, match=knob):
            SynthesisConfig(**{knob: "yes"})

    def test_non_string_trace_path_rejected(self):
        with pytest.raises(SynthesisError, match="trace_path"):
            SynthesisConfig(trace_path=7)

    @pytest.mark.parametrize("bad", [0, -1.0, True, "fast", None])
    def test_bad_progress_interval_rejected(self, bad):
        with pytest.raises(SynthesisError, match="progress_interval"):
            SynthesisConfig(progress_interval=bad)

    def test_trace_path_or_progress_implies_telemetry_active(self):
        assert not SynthesisConfig().telemetry_active
        assert SynthesisConfig(telemetry=True).telemetry_active
        assert SynthesisConfig(trace_path="t.jsonl").telemetry_active
        assert SynthesisConfig(progress=True).telemetry_active


class TestEngineWorkerValidation:
    def test_threads_engine_rejects_nonpositive_threads(self):
        system = build_skeleton("mutex")
        with pytest.raises(ValueError, match="threads"):
            ParallelSynthesisEngine(system, threads=0)
        with pytest.raises(ValueError, match="threads"):
            ParallelSynthesisEngine(system, threads=-2)

    def test_processes_engine_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="workers"):
            DistributedSynthesisEngine(SystemSpec("mutex"), workers=-1)
