"""Tests for Action and Hole."""

import pytest

from repro.core.action import Action, action
from repro.core.hole import Hole
from repro.errors import HoleDomainError


class TestAction:
    def test_callable_action(self):
        act = Action("double", fn=lambda x: 2 * x)
        assert act(3) == 6

    def test_marker_action_rejects_call(self):
        act = Action("marker", payload="S")
        with pytest.raises(TypeError):
            act()

    def test_payload(self):
        assert Action("next", payload="M").payload == "M"

    def test_decorator(self):
        @action("inc")
        def inc(x):
            return x + 1

        assert isinstance(inc, Action)
        assert inc.name == "inc"
        assert inc(1) == 2

    def test_requires_name(self):
        with pytest.raises(ValueError):
            Action("")


class TestHole:
    def test_arity(self):
        hole = Hole("h", [Action("a"), Action("b")])
        assert hole.arity == 2

    def test_action_lookup(self):
        hole = Hole("h", [Action("a"), Action("b")])
        assert hole.action_named("b") is hole.domain[1]
        assert hole.index_of("a") == 0

    def test_missing_action(self):
        hole = Hole("h", [Action("a")])
        with pytest.raises(KeyError):
            hole.action_named("z")
        with pytest.raises(KeyError):
            hole.index_of("z")

    def test_rejects_empty_domain(self):
        with pytest.raises(HoleDomainError):
            Hole("h", [])

    def test_rejects_duplicate_action_names(self):
        with pytest.raises(HoleDomainError):
            Hole("h", [Action("a"), Action("a")])

    def test_rejects_empty_name(self):
        with pytest.raises(HoleDomainError):
            Hole("", [Action("a")])

    def test_identity_semantics(self):
        # Two holes with identical definitions are distinct holes.
        first = Hole("h", [Action("a")])
        second = Hole("h", [Action("a")])
        assert first != second
        assert len({first, second}) == 2
