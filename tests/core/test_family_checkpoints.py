"""Family-mode checkpoint interaction (satellite of the family scheduler).

Family quotient runs chain their checkpoints along splits (parent
quotient -> child quotient) rather than along the 1-by-1 walker's prefix
order, so the two kinds must never cross: checkpoints carry a ``family``
tag and the kernel refuses a cross-mode ``resume_from`` in either
direction.  Family runs still feed the prefix-reuse counters — a child
resuming its parent's checkpoint is exactly a prefix hit.
"""

import pytest

from repro.core.candidate import CandidateVector
from repro.core.discovery import CandidateResolver, HoleRegistry
from repro.core.engine import SynthesisConfig, SynthesisEngine
from repro.errors import ModelError
from repro.mc.kernel import ExplorationKernel
from repro.protocols.catalog import build_skeleton_with_holes
from repro.protocols.toy import build_figure2_skeleton


def _checkpoint(family):
    """A figure2 prefix checkpoint collected in the requested mode."""
    system = build_figure2_skeleton()
    registry = HoleRegistry()
    explorer = ExplorationKernel(
        system,
        resolver=CandidateResolver(registry, CandidateVector.from_digits((1,))),
        collect_checkpoint=True,
        family=family,
    )
    explorer.run()
    checkpoint = explorer.checkpoint
    assert checkpoint is not None
    return system, registry, checkpoint


def _resume(system, registry, checkpoint, family):
    return ExplorationKernel(
        system,
        resolver=CandidateResolver(
            registry, CandidateVector.from_digits((1, 0))
        ),
        resume_from=checkpoint,
        family=family,
    ).run()


class TestCheckpointModeTag:
    def test_checkpoints_carry_their_mode(self):
        _, _, candidate = _checkpoint(family=False)
        assert candidate.family is False
        _, _, quotient = _checkpoint(family=True)
        assert quotient.family is True

    def test_same_mode_resume_works_in_both_modes(self):
        for family in (False, True):
            system, registry, checkpoint = _checkpoint(family)
            result = _resume(system, registry, checkpoint, family)
            assert result.stats.prefix_states_reused == (
                checkpoint.states_visited
            )

    def test_candidate_run_refuses_family_checkpoint(self):
        system, registry, checkpoint = _checkpoint(family=True)
        with pytest.raises(ModelError, match="family"):
            _resume(system, registry, checkpoint, family=False)

    def test_family_run_refuses_candidate_checkpoint(self):
        system, registry, checkpoint = _checkpoint(family=False)
        with pytest.raises(ModelError, match="family"):
            _resume(system, registry, checkpoint, family=True)


class TestFamilyPrefixReuse:
    def test_family_run_reports_states_reused(self):
        """Splitting produces children that resume the parent quotient's
        checkpoint; the report must surface that reuse the same way the
        1-by-1 prefix cache does."""
        system, _holes = build_skeleton_with_holes("msi-tiny", 2)
        report = SynthesisEngine(
            system, SynthesisConfig(family=True)
        ).run()
        assert report.family
        assert report.family_splits > 0
        assert report.prefix_cache_hits > 0
        assert report.prefix_states_reused > 0

    def test_family_reuse_matches_reference_solutions(self):
        """Reuse must not change the outcome: the family run's solution
        set equals the enumerated reference's."""
        def solutions(config):
            system, _holes = build_skeleton_with_holes("msi-tiny", 2)
            report = SynthesisEngine(system, config).run()
            return sorted(
                tuple(sorted(s.assignment)) for s in report.solutions
            )

        assert solutions(SynthesisConfig(family=True)) == solutions(
            SynthesisConfig()
        )

    def test_no_reuse_when_prefix_reuse_disabled(self):
        """--no-prefix-reuse also turns off family checkpoint chaining
        (children re-explore from scratch) without changing solutions."""
        system, _holes = build_skeleton_with_holes("msi-tiny", 2)
        report = SynthesisEngine(
            system, SynthesisConfig(family=True, prefix_reuse=False)
        ).run()
        assert report.family
        assert report.prefix_states_reused == 0
