"""Tests for SynthesisReport metrics and formatting."""

import pytest

from repro.core.action import Action
from repro.core.hole import Hole
from repro.core.report import Solution, SynthesisReport


def make_holes():
    return [
        Hole("h0", [Action("a"), Action("b"), Action("c")]),
        Hole("h1", [Action("x"), Action("y")]),
    ]


def make_report(pruning=True):
    report = SynthesisReport(system_name="sys", pruning=pruning, threads=1)
    report.holes = make_holes()
    return report


class TestSpaces:
    def test_naive_space(self):
        assert make_report().naive_candidate_space == 6

    def test_wildcard_space(self):
        assert make_report().wildcard_candidate_space == 12  # 4 * 3

    def test_candidate_space_depends_on_mode(self):
        assert make_report(pruning=True).candidate_space == 12
        assert make_report(pruning=False).candidate_space == 6

    def test_empty_holes(self):
        report = SynthesisReport(system_name="s", pruning=True, threads=1)
        assert report.naive_candidate_space == 1


class TestReduction:
    def test_reduction_vs_naive(self):
        report = make_report()
        report.evaluated = 3
        assert report.reduction_vs_naive == pytest.approx(0.5)

    def test_paper_msi_small_reduction(self):
        report = SynthesisReport(system_name="s", pruning=True, threads=1)
        report.holes = [
            Hole(f"h{i}", [Action(f"a{j}") for j in range(arity)])
            for i, arity in enumerate([5, 7, 3, 5, 7, 3, 3, 7])
        ]
        report.evaluated = 855
        assert report.naive_candidate_space == 231_525
        assert report.reduction_vs_naive == pytest.approx(0.9963, abs=1e-4)


class TestSolutions:
    def test_format_solution(self):
        report = make_report()
        solution = Solution(
            digits=(1, 0),
            assignment=(("h0", "b"), ("h1", "x")),
            states_visited=10,
            fingerprint=None,
            run_index=5,
        )
        assert report.format_solution(solution) == "<1@b, 2@x>"

    def test_assignment_dict(self):
        solution = Solution(
            digits=(0,), assignment=(("h0", "a"),), states_visited=1,
            fingerprint=None, run_index=1,
        )
        assert solution.assignment_dict() == {"h0": "a"}
        assert "h0=a" in str(solution)


class TestSummary:
    def test_summary_contains_key_numbers(self):
        report = make_report()
        report.evaluated = 42
        report.failure_patterns = 7
        report.verdict_counts = {"success": 1, "failure": 41, "unknown": 0}
        text = report.summary()
        assert "42" in text
        assert "sys" in text
        assert "pruning" in text

    def test_summary_flags_inherent_failure(self):
        report = make_report()
        report.inherent_failure = True
        report.inherent_failure_message = "invariant 'x' violated"
        assert "INHERENT FAILURE" in report.summary()

    def test_table_row_naive_has_no_patterns(self):
        row = make_report(pruning=False).table_row("cfg")
        assert row["Pruning Patterns"] is None

    def test_hole_count(self):
        assert make_report().hole_count == 2
