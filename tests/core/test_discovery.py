"""Tests for the hole registry and resolvers (lazy discovery)."""

import threading

import pytest

from repro.core.action import Action
from repro.core.candidate import CandidateVector
from repro.core.discovery import CandidateResolver, DefaultingResolver, HoleRegistry
from repro.core.hole import Hole
from repro.errors import SynthesisError, WildcardEncountered


def make_hole(name, arity=2):
    return Hole(name, [Action(f"a{i}") for i in range(arity)])


class TestHoleRegistry:
    def test_registers_in_discovery_order(self):
        registry = HoleRegistry()
        first, second = make_hole("h1"), make_hole("h2")
        assert registry.position_of(first) == 0
        assert registry.position_of(second) == 1
        assert registry.holes == (first, second)

    def test_lookup_without_register(self):
        registry = HoleRegistry()
        assert registry.position_of(make_hole("h"), register=False) is None

    def test_repeat_registration_is_stable(self):
        registry = HoleRegistry()
        hole = make_hole("h")
        assert registry.position_of(hole) == 0
        assert registry.position_of(hole) == 0
        assert len(registry) == 1

    def test_duplicate_names_rejected(self):
        registry = HoleRegistry()
        registry.position_of(make_hole("h"))
        with pytest.raises(SynthesisError):
            registry.position_of(make_hole("h"))

    def test_hole_named(self):
        registry = HoleRegistry()
        hole = make_hole("h")
        registry.position_of(hole)
        assert registry.hole_named("h") is hole
        with pytest.raises(KeyError):
            registry.hole_named("missing")

    def test_radices(self):
        registry = HoleRegistry()
        registry.position_of(make_hole("h1", arity=3))
        registry.position_of(make_hole("h2", arity=5))
        assert registry.radices() == (3, 5)

    def test_concurrent_registration_is_consistent(self):
        registry = HoleRegistry()
        holes = [make_hole(f"h{i}") for i in range(50)]
        positions = {}
        lock = threading.Lock()

        def work(chunk):
            for hole in chunk:
                pos = registry.position_of(hole)
                with lock:
                    positions[hole.name] = pos

        threads = [
            threading.Thread(target=work, args=(holes,)) for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(registry) == 50
        # Every thread saw the same position per hole.
        assert sorted(positions.values()) == list(range(50))


class TestCandidateResolver:
    def test_resolves_assigned_action(self):
        registry = HoleRegistry()
        hole = make_hole("h")
        resolver = CandidateResolver(registry, CandidateVector.from_digits([1]))
        assert resolver.resolve(hole).name == "a1"

    def test_wildcard_beyond_vector(self):
        registry = HoleRegistry()
        resolver = CandidateResolver(registry, CandidateVector.empty())
        hole = make_hole("h")
        with pytest.raises(WildcardEncountered):
            resolver.resolve(hole)
        # Discovery happened despite the wildcard cut.
        assert registry.holes == (hole,)

    def test_out_of_range_action_rejected(self):
        registry = HoleRegistry()
        hole = make_hole("h", arity=2)
        resolver = CandidateResolver(registry, CandidateVector.from_digits([7]))
        with pytest.raises(SynthesisError):
            resolver.resolve(hole)


class TestDefaultingResolver:
    def test_substitutes_default(self):
        registry = HoleRegistry()
        hole = make_hole("h")
        resolver = DefaultingResolver(registry, CandidateVector.empty())
        assert resolver.resolve(hole).name == "a0"

    def test_respects_assignment(self):
        registry = HoleRegistry()
        hole = make_hole("h")
        resolver = DefaultingResolver(registry, CandidateVector.from_digits([1]))
        assert resolver.resolve(hole).name == "a1"

    def test_default_index_clamped_to_domain(self):
        registry = HoleRegistry()
        hole = make_hole("h", arity=1)
        resolver = DefaultingResolver(
            registry, CandidateVector.empty(), default_index=5
        )
        assert resolver.resolve(hole).name == "a0"
