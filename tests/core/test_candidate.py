"""Tests for candidate vectors and the paper's display notation."""

import pytest

from repro.core.action import Action
from repro.core.candidate import WILDCARD, CandidateVector, format_candidate
from repro.core.hole import Hole
from repro.errors import CandidateError


@pytest.fixture
def holes():
    a, b, c = Action("A"), Action("B"), Action("C")
    return [Hole("hole1", [a, b, c]), Hole("hole2", [a, b])]


def test_wildcard_is_singleton():
    from repro.core.candidate import _Wildcard

    assert _Wildcard() is WILDCARD
    assert repr(WILDCARD) == "?"


def test_empty_candidate():
    vector = CandidateVector.empty()
    assert len(vector) == 0
    assert vector.action_index(0) is WILDCARD


def test_positions_beyond_vector_are_wildcards():
    vector = CandidateVector.from_digits([1])
    assert vector.action_index(0) == 1
    assert vector.action_index(5) is WILDCARD


def test_constraints_skip_wildcards():
    vector = CandidateVector([0, WILDCARD, 2])
    assert vector.constraints() == ((0, 0), (2, 2))
    assert vector.assigned_positions() == (0, 2)


def test_invalid_entry_rejected():
    with pytest.raises(CandidateError):
        CandidateVector([-1])
    with pytest.raises(CandidateError):
        CandidateVector(["x"])


def test_equality_and_hash():
    assert CandidateVector([1, 2]) == CandidateVector((1, 2))
    assert hash(CandidateVector([1])) == hash(CandidateVector([1]))
    assert CandidateVector([1]) != CandidateVector([2])


def test_format_matches_paper_notation(holes):
    text = format_candidate(CandidateVector([1, WILDCARD]), holes)
    assert text == "<1@B, 2@?>"


def test_format_rejects_out_of_range(holes):
    with pytest.raises(CandidateError):
        format_candidate(CandidateVector([9]), holes)


def test_repr_shows_wildcards():
    assert "?" in repr(CandidateVector([0, WILDCARD]))
