"""The differential harness itself: clean sweeps, determinism, and the
deliberate-breakage acceptance path.

The breakage test is the ISSUE's acceptance criterion in miniature:
sabotage one acceleration (the packed codec's canonicalisation remap —
returning codes unchanged makes the packed kernel treat symmetric states
as distinct), and the harness must notice, shrink the offending spec to a
minimal reproducer, write it as a corpus file, and replay the divergence
from that file.
"""

from unittest import mock

import pytest

from repro.fuzz import (
    DifferentialRunner,
    generate_spec,
    load_entry,
    replay_entry,
    run_campaign,
    shrink_spec,
)
from repro.mc.packed import StateCodec

SEEDS = range(3)


def _identity_canonical(self, codes):
    """The sabotage: skip the symmetry remap scan entirely."""
    return tuple(codes)


@pytest.fixture(scope="module")
def runner():
    return DifferentialRunner("tier1")


def test_healthy_seeds_sweep_clean(runner):
    for seed in SEEDS:
        check = runner.check_spec(generate_spec(seed))
        assert check.ok, (seed, [d.to_dict() for d in check.divergences])


def test_same_seed_campaigns_produce_identical_journals(tmp_path):
    """The ISSUE's flakiness guard: journals are a pure function of the
    seeds and lattice — two runs at the same seeds match byte for byte."""
    paths = []
    for run in ("a", "b"):
        result = run_campaign(
            SEEDS,
            lattice="tier1",
            shrink=False,
            journal_path=tmp_path / f"journal-{run}.jsonl",
        )
        assert result.ok
        paths.append(result.journal_path)
    assert paths[0].read_bytes() == paths[1].read_bytes()
    assert paths[0].read_bytes()  # non-empty: rows were actually written


def test_broken_canonicalisation_is_detected_shrunk_and_replayable(
    tmp_path, runner
):
    with mock.patch.object(StateCodec, "canonical_codes", _identity_canonical):
        result = run_campaign(
            [0],
            runner=runner,
            shrink=True,
            corpus_dir=tmp_path / "reproducers",
        )
        assert not result.ok
        assert len(result.reproducers) == 1
        original, shrunk, path = result.reproducers[0]
        # The shrinker must have made real progress on seed 0's spec (it
        # carries a step-edge graph, a counter, and random names).
        assert shrunk != original
        assert shrunk.n_procs == 2
        assert not shrunk.step_edges
        assert not shrunk.counters
        # ... and the reproducer file must replay the divergence.
        assert path is not None and path.is_file()
        entry = load_entry(path)
        assert entry.kind == "divergence"
        assert replay_entry(entry, runner) == []
    # With the sabotage lifted, the same file reports the divergence gone
    # (the maintainer's signal that a reproducer can be retired).
    problems = replay_entry(load_entry(path), runner)
    assert problems and "no longer reproduces" in problems[0]


def test_divergence_names_the_packed_toggle(runner):
    """The divergence report must point at the packed/object pair — that
    is what makes a reproducer triagable."""
    with mock.patch.object(StateCodec, "canonical_codes", _identity_canonical):
        check = runner.check_spec(generate_spec(0))
    assert not check.ok
    witness = check.divergences[0]
    assert {witness.config, witness.baseline} == {"ref", "nopacked"}
