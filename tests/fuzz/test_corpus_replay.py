"""Tier-1 replay of the curated regression corpus.

Every checked-in corpus file re-runs through the differential lattice it
was pinned under and must sweep cleanly *and* reproduce its pinned
solution set and reference exploration counts.  One small entry
additionally runs through the processes backend, so the corpus also
guards the fuzz-payload path across the process boundary.
"""

from pathlib import Path

import pytest

from repro.fuzz import (
    DifferentialRunner,
    Lattice,
    SynthLatticeConfig,
    load_corpus,
    replay_entry,
)

CORPUS_DIR = Path(__file__).parent / "corpus"
CORPUS = load_corpus(CORPUS_DIR)

assert CORPUS, f"empty corpus directory {CORPUS_DIR}"


@pytest.fixture(scope="module")
def runner():
    """One shared runner: every entry pins the same 'tier1' lattice."""
    return DifferentialRunner("tier1")


@pytest.mark.parametrize(
    "path, entry", CORPUS, ids=[path.stem for path, _ in CORPUS]
)
def test_corpus_entry_replays_clean(path, entry, runner):
    assert entry.kind == "regression", f"{path} is not a regression entry"
    assert entry.lattice == runner.lattice.name, (
        f"{path} pins lattice {entry.lattice!r}; regenerate it or give the "
        f"test its own runner"
    )
    problems = replay_entry(entry, runner)
    assert not problems, f"{path}: " + "; ".join(problems)


def test_corpus_covers_required_shapes():
    """The ISSUE's curation floor: the packed-codec fallback path and a
    German-style single-slot-channel protocol must stay represented."""
    specs = [entry.spec for _, entry in CORPUS]
    assert any(spec.codec == "none" for spec in specs)
    assert any(spec.single_slot for spec in specs)


def test_corpus_forces_family_splitting():
    """The ISSUE's family curation floor: at least two entries must carry
    a server-side hole plus an ack round, and the family scheduler must
    genuinely split (not settle the root quotient in one check) on each."""
    from repro.core.engine import SynthesisConfig, SynthesisEngine
    from repro.fuzz.spec import build_skeleton_from_spec

    family_specs = [
        entry.spec for _, entry in CORPUS
        if entry.spec.hole_server and entry.spec.ack_round
    ]
    assert len(family_specs) >= 2, (
        "corpus lost its family-splitting entries (hole_server + ack_round)"
    )
    for spec in family_specs:
        system, _holes = build_skeleton_from_spec(spec)
        report = SynthesisEngine(system, SynthesisConfig(family=True)).run()
        assert report.family, f"{spec.name}: family mode fell back"
        assert report.family_splits > 0, f"{spec.name}: no family splits"


def test_smallest_entry_through_processes_backend():
    """One corpus spec across the process boundary: the distributed
    backend rebuilds it from its fuzz payload and must agree with the
    sequential reference on the solution set."""
    entry = min(
        (entry for _, entry in CORPUS),
        key=lambda e: e.expect.get("ref_states", 1 << 30),
    )
    lattice = Lattice(
        "tier1",  # reuse the pinned name: expectations stay comparable
        verify=(),
        synth=(
            SynthLatticeConfig("ref"),
            SynthLatticeConfig("processes", backend="processes"),
        ),
    )
    check = DifferentialRunner(lattice).check_spec(entry.spec)
    assert check.ok, check.divergences
    pinned = entry.expect.get("solutions")
    if pinned is not None:
        assert check.solutions == pinned
