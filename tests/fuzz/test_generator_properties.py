"""Hypothesis property tests for the generator and the spec form.

The properties the rest of the harness leans on:

* every emitted spec *builds* through the ordinary builder path without
  error (well-formedness by construction);
* a seed fully determines its spec (no hidden global randomness);
* the serialised intermediate form round-trips byte-identically;
* generated rule names are deterministic, so journals and traces are
  stable across runs and machines.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.fuzz import (
    GeneratorConfig,
    ProtocolSpec,
    build_reference_system,
    build_skeleton_from_spec,
    generate_spec,
)
from repro.fuzz.shrink import _candidates

SEEDS = st.integers(min_value=0, max_value=10_000)


@settings(max_examples=40, deadline=None)
@given(seed=SEEDS)
def test_emitted_spec_builds_without_error(seed):
    spec = generate_spec(seed)
    system, holes = build_skeleton_from_spec(spec)
    assert system.rules, spec
    assert len(holes) == len(spec.hole_names())
    reference = build_reference_system(spec)
    assert len(reference.invariants) == len(spec.invariants)


@settings(max_examples=60, deadline=None)
@given(seed=SEEDS)
def test_spec_is_deterministic_under_its_seed(seed):
    first = generate_spec(seed)
    # Disturb the module-level PRNG between calls: the generator must not
    # consult it (the ISSUE's no-global-random guarantee).
    random.seed(seed + 1)
    random.random()
    second = generate_spec(seed)
    assert first == second
    assert first.to_json() == second.to_json()


@settings(max_examples=60, deadline=None)
@given(seed=SEEDS)
def test_spec_round_trips_byte_identically(seed):
    spec = generate_spec(seed)
    text = spec.to_json()
    parsed = ProtocolSpec.from_json(text)
    assert parsed == spec
    assert parsed.to_json() == text


@settings(max_examples=25, deadline=None)
@given(seed=SEEDS)
def test_rule_names_are_deterministic(seed):
    spec = generate_spec(seed)
    names_a = [rule.name for rule in build_skeleton_from_spec(spec)[0].rules]
    names_b = [rule.name for rule in build_skeleton_from_spec(spec)[0].rules]
    assert names_a == names_b
    assert len(set(names_a)) == len(names_a), "rule names must be unique"


@settings(max_examples=25, deadline=None)
@given(seed=SEEDS)
def test_shrink_candidates_stay_in_family(seed):
    """Every single-step reduction is itself a valid, buildable spec."""
    spec = generate_spec(seed)
    for candidate in _candidates(spec):
        assert isinstance(candidate, ProtocolSpec)
        candidate.to_json()  # revalidated + serialisable


@settings(max_examples=20, deadline=None)
@given(
    seed=SEEDS,
    procs=st.integers(min_value=2, max_value=4),
    actives=st.integers(min_value=1, max_value=4),
)
def test_generator_honours_config_bounds(seed, procs, actives):
    config = GeneratorConfig(
        min_procs=2, max_procs=procs, max_active_states=actives
    )
    spec = generate_spec(seed, config)
    assert 2 <= spec.n_procs <= procs
    assert 1 <= len(spec.active_states) <= actives
