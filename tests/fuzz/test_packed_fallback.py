"""The silent packed-codec fallback, exercised through the engine path.

``SynthesisConfig(packed=True)`` is the default, but a system without a
``packed_spec`` cannot run on the packed kernel — the kernel quietly
falls back to the object path.  These tests pin the contract of that
fallback: it *engages* (the run completes, with behaviour identical to
an explicit ``packed=False`` run) and it is *honest* (no ``pack_*``
metrics appear when it does, while a codec-carrying control run of the
same shape reports them).
"""

from repro.core.engine import SynthesisConfig, SynthesisEngine
from repro.fuzz import build_skeleton_from_spec, generate_spec
from repro.mc.kernel import make_explorer

#: seed 3 generates a codec="none" spec (see its corpus note); seed 0 is
#: the schema-codec control
CODECLESS_SEED = 3
SCHEMA_SEED = 0


def _solution_view(report):
    return sorted(tuple(sorted(s.assignment)) for s in report.solutions)


def _pack_series_total(snapshot):
    return sum(
        sum(entry["series"].values())
        for name, entry in snapshot.items()
        if name.startswith("pack_")
    )


def test_codecless_spec_has_no_packed_spec():
    spec = generate_spec(CODECLESS_SEED)
    assert spec.codec == "none"
    system, _holes = build_skeleton_from_spec(spec)
    assert getattr(system, "packed_spec", None) is None


def test_fallback_engages_and_matches_object_path():
    """packed=True on a codec-less system must behave exactly like
    packed=False: same solutions, same evaluation count, same verdicts."""
    spec = generate_spec(CODECLESS_SEED)
    reports = {}
    for packed in (True, False):
        system, _holes = build_skeleton_from_spec(spec)
        reports[packed] = SynthesisEngine(
            system, SynthesisConfig(packed=packed)
        ).run()
    assert reports[True].solutions, "expected at least one solution"
    assert _solution_view(reports[True]) == _solution_view(reports[False])
    assert reports[True].evaluated == reports[False].evaluated
    assert reports[True].verdict_counts == reports[False].verdict_counts


def test_fallback_keeps_pack_metrics_zero():
    spec = generate_spec(CODECLESS_SEED)
    system, _holes = build_skeleton_from_spec(spec)
    engine = SynthesisEngine(system, SynthesisConfig(telemetry=True))
    report = engine.run()
    assert report.solutions
    snapshot = engine.core.telemetry.metrics.snapshot()
    assert _pack_series_total(snapshot) == 0, sorted(
        name for name in snapshot if name.startswith("pack_")
    )


def test_codec_control_reports_pack_metrics():
    """The same assertion inverted on a schema-codec spec, so a regression
    that silently stops *ever* packing cannot hide behind the fallback
    test."""
    spec = generate_spec(SCHEMA_SEED)
    assert spec.codec == "schema"
    system, _holes = build_skeleton_from_spec(spec)
    engine = SynthesisEngine(system, SynthesisConfig(telemetry=True))
    report = engine.run()
    assert report.solutions
    snapshot = engine.core.telemetry.metrics.snapshot()
    interned = snapshot.get("pack_states_interned")
    assert interned is not None and sum(interned["series"].values()) > 0


def test_kernel_level_fallback_counts_match():
    """The same contract one layer down, via make_explorer directly."""
    spec = generate_spec(CODECLESS_SEED)
    from repro.fuzz import build_reference_system

    results = {}
    for packed in (True, False):
        system = build_reference_system(spec)
        assert system.packed_spec is None
        results[packed] = make_explorer("bfs", system, packed=packed).run()
    assert results[True].is_success
    assert (
        results[True].stats.states_visited
        == results[False].stats.states_visited
    )
    assert (
        results[True].stats.transitions_fired
        == results[False].stats.transitions_fired
    )
