"""Durability mechanics of the verdict store: journal, projection, keys.

The journal is the source of truth (append-only JSONL, flock'd appends,
torn-tail repair); the SQLite projection is a disposable read-optimised
index rebuilt from the journal whenever it is missing, stale, or corrupt.
These tests drive each failure mode directly.
"""

import json
import multiprocessing
import os
import sqlite3

from repro.store import (
    StoredRun,
    VerdictJournal,
    VerdictStore,
    candidate_key,
    flags_signature,
    open_store,
    system_signature,
)
from repro.store.store import JOURNAL_NAME, PROJECTION_NAME
from repro.core import SynthesisConfig
from repro.protocols.catalog import build_skeleton

SYS = "a" * 64
FLAGS = "b" * 64


def stored(verdict="success", **kwargs):
    return StoredRun(verdict=verdict, stats={"states_visited": 7}, **kwargs)


class TestJournal:
    def test_append_replay_roundtrip(self, tmp_path):
        journal = VerdictJournal(str(tmp_path / "j.jsonl"))
        offset = journal.append({"key": "k1", "verdict": "success"})
        journal.append({"key": "k2", "verdict": "failure"})
        records = list(journal.replay())
        assert [r["key"] for _, r in records] == ["k1", "k2"]
        # Offsets are resumable: replaying from the first record's end
        # yields only the second.
        assert [r["key"] for _, r in journal.replay(offset)] == ["k2"]
        journal.close()

    def test_torn_tail_is_recovered(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = VerdictJournal(str(path))
        journal.append({"key": "k1"})
        journal.close()
        # A writer killed mid-append leaves a partial line with no newline.
        with open(path, "ab") as handle:
            handle.write(b'{"key": "k2", "verd')
        # Replay does not consume the torn tail (it may still be completed).
        journal = VerdictJournal(str(path))
        assert [r["key"] for _, r in journal.replay()] == ["k1"]
        # The next locked append terminates the torn line, confining the
        # garbage to one skippable line; the new record is intact.
        journal.append({"key": "k3"})
        assert [r["key"] for _, r in journal.replay()] == ["k1", "k3"]
        journal.close()

    def test_unparseable_complete_lines_are_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"key": "k1"}\nnot json at all\n{"key": "k2"}\n')
        journal = VerdictJournal(str(path))
        assert [r["key"] for _, r in journal.replay()] == ["k1", "k2"]
        journal.close()


class TestProjectionRecovery:
    def test_projection_rebuilds_from_journal_when_deleted(self, tmp_path):
        store = VerdictStore(str(tmp_path))
        store.record(SYS, FLAGS, (("h", 1),), stored())
        store.close()
        os.unlink(tmp_path / PROJECTION_NAME)
        reopened = VerdictStore(str(tmp_path))
        hit = reopened.lookup(SYS, FLAGS, (("h", 1),))
        assert hit is not None and hit.verdict == "success"
        assert len(reopened) == 1
        reopened.close()

    def test_corrupt_projection_is_discarded_and_rebuilt(self, tmp_path):
        store = VerdictStore(str(tmp_path))
        store.record(SYS, FLAGS, (("h", 0),), stored("failure"))
        store.close()
        (tmp_path / PROJECTION_NAME).write_bytes(b"this is not sqlite")
        reopened = VerdictStore(str(tmp_path))
        hit = reopened.lookup(SYS, FLAGS, (("h", 0),))
        assert hit is not None and hit.verdict == "failure"
        reopened.close()

    def test_journal_is_the_source_of_truth(self, tmp_path):
        """Records appended behind the projection's back (another process)
        are visible after the size check triggers a catch-up."""
        store = VerdictStore(str(tmp_path))
        store.record(SYS, FLAGS, (("h", 0),), stored())
        # Simulate a second writer: raw append to the same journal file.
        key = candidate_key(SYS, FLAGS, (("h", 1),))
        line = json.dumps({"key": key, **stored("failure").to_record()})
        with open(tmp_path / JOURNAL_NAME, "ab") as handle:
            handle.write(line.encode() + b"\n")
        hit = store.lookup(SYS, FLAGS, (("h", 1),))
        assert hit is not None and hit.verdict == "failure"
        store.close()


class TestKeys:
    def test_assignment_order_does_not_matter(self):
        forward = candidate_key(SYS, FLAGS, (("a", 0), ("b", 1)))
        backward = candidate_key(SYS, FLAGS, (("b", 1), ("a", 0)))
        assert forward == backward

    def test_flags_signature_separates_verdict_affecting_knobs(self):
        base = flags_signature(SynthesisConfig())
        assert flags_signature(SynthesisConfig(packed=False)) != base
        assert flags_signature(SynthesisConfig(explorer="dfs")) != base
        assert flags_signature(SynthesisConfig(pruning=False)) != base
        # Performance-only knobs share verdicts.
        assert flags_signature(SynthesisConfig(prefix_reuse=False)) == base
        assert flags_signature(SynthesisConfig(compute_fingerprints=True)) == base

    def test_mismatched_flags_are_never_consulted(self, tmp_path):
        store = VerdictStore(str(tmp_path))
        packed_flags = flags_signature(SynthesisConfig())
        object_flags = flags_signature(SynthesisConfig(packed=False))
        store.record(SYS, packed_flags, (("h", 0),), stored())
        assert store.lookup(SYS, object_flags, (("h", 0),)) is None
        store.close()

    def test_system_signature_separates_shapes(self):
        figure2 = system_signature(build_skeleton("figure2"))
        mutex = system_signature(build_skeleton("mutex"))
        assert figure2 != mutex
        # Deterministic across rebuilds of the same skeleton.
        assert figure2 == system_signature(build_skeleton("figure2"))


def _writer(path, worker, count, done):
    store = open_store(path)
    flags = f"w{worker}" * 8
    for index in range(count):
        store.record(SYS, flags, (("h", index),), StoredRun(verdict="success"))
    store.close()
    done.put(worker)


class TestConcurrentWriters:
    def test_two_processes_do_not_corrupt_the_projection(self, tmp_path):
        """Two writer processes interleave flock'd journal appends; a
        fresh reader must see every record and a clean SQLite file."""
        ctx = multiprocessing.get_context()
        done = ctx.Queue()
        count = 50
        procs = [
            ctx.Process(target=_writer, args=(str(tmp_path), w, count, done))
            for w in range(2)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        reader = open_store(str(tmp_path))
        assert len(reader) == 2 * count
        for worker in range(2):
            flags = f"w{worker}" * 8
            for index in range(count):
                assert reader.lookup(SYS, flags, (("h", index),)) is not None
        reader.close()
        conn = sqlite3.connect(tmp_path / PROJECTION_NAME)
        assert conn.execute("PRAGMA integrity_check").fetchone()[0] == "ok"
        conn.close()
