"""Engine integration: warm runs replay verdicts without changing results.

The store is a *memo*, not a mode: a warm run must report the same
solutions, fingerprints, and pruning tables as a cold run — only
``report.model_checks`` (evaluated minus store hits) shrinks.  These
tests pin that equivalence across backends and the stand-down rules.
"""

import pytest

from repro import api
from repro.core import SynthesisConfig, SynthesisEngine
from repro.core.parallel import ParallelSynthesisEngine
from repro.dist import DistributedSynthesisEngine, SystemSpec
from repro.mc.kernel import ExplorationLimits
from repro.protocols.catalog import build_skeleton


def solution_view(report):
    return [
        (s.digits, s.assignment, s.states_visited, s.fingerprint)
        for s in report.solutions
    ]


def run_sequential(store_path=None, **knobs):
    config = SynthesisConfig(store_path=store_path, **knobs)
    return SynthesisEngine(build_skeleton("figure2"), config).run()


class TestWarmEqualsCold:
    def test_warm_run_replays_everything(self, tmp_path):
        baseline = run_sequential()
        cold = run_sequential(str(tmp_path))
        warm = run_sequential(str(tmp_path))
        assert cold.store_writes == cold.evaluated
        assert cold.store_hits == 0
        assert warm.store_hits == warm.evaluated
        assert warm.store_writes == 0
        assert warm.model_checks == 0
        for report in (cold, warm):
            assert solution_view(report) == solution_view(baseline)
            assert report.evaluated == baseline.evaluated
            assert report.failure_patterns == baseline.failure_patterns
            assert [h.name for h in report.holes] == [
                h.name for h in baseline.holes
            ]

    def test_fingerprints_replay_from_the_store(self, tmp_path):
        cold = run_sequential(str(tmp_path), compute_fingerprints=True)
        warm = run_sequential(str(tmp_path), compute_fingerprints=True)
        assert warm.model_checks == 0
        assert solution_view(warm) == solution_view(cold)
        assert all(s.fingerprint is not None for s in warm.solutions)

    def test_fingerprintless_success_is_a_miss_when_fingerprints_wanted(
        self, tmp_path
    ):
        run_sequential(str(tmp_path))  # cold, no fingerprints stored
        warm = run_sequential(str(tmp_path), compute_fingerprints=True)
        baseline = run_sequential(compute_fingerprints=True)
        # Successes must be re-checked (their fingerprints were never
        # stored); failures replay fine.
        assert 0 < warm.store_hits < warm.evaluated
        assert solution_view(warm) == solution_view(baseline)


class TestStandDown:
    def test_exploration_limits_stand_the_store_down(self, tmp_path):
        config = SynthesisConfig(
            store_path=str(tmp_path),
            limits=ExplorationLimits(max_states=100_000),
        )
        assert not config.store_active
        report = SynthesisEngine(build_skeleton("figure2"), config).run()
        assert not report.store_enabled
        assert report.store_hits == 0 and report.store_writes == 0
        status = {s.name: s for s in config.resolved_accelerations()}
        assert status["store"].requested and not status["store"].active
        assert "limits" in status["store"].reason

    def test_different_flags_never_share_verdicts(self, tmp_path):
        run_sequential(str(tmp_path))  # packed-kernel verdicts
        other = run_sequential(str(tmp_path), packed=False)
        assert other.store_hits == 0
        assert other.store_writes == other.evaluated


class TestCrossBackend:
    def test_processes_record_and_sequential_replays(self, tmp_path):
        cold = DistributedSynthesisEngine(
            SystemSpec("figure2"),
            SynthesisConfig(store_path=str(tmp_path)),
            workers=2,
        ).run()
        assert cold.store_writes == cold.evaluated
        warm = run_sequential(str(tmp_path))
        assert warm.model_checks == 0
        assert solution_view(warm) == solution_view(
            DistributedSynthesisEngine(SystemSpec("figure2"), workers=2).run()
        )

    def test_threads_backend_is_read_only(self, tmp_path):
        run_sequential(str(tmp_path))
        warm = ParallelSynthesisEngine(
            build_skeleton("figure2"),
            SynthesisConfig(store_path=str(tmp_path)),
            threads=2,
        ).run()
        assert warm.store_enabled
        assert warm.store_writes == 0  # never records
        assert warm.store_hits > 0  # but replays
        cold_threads = ParallelSynthesisEngine(
            build_skeleton("figure2"),
            SynthesisConfig(store_path=str(tmp_path / "fresh")),
            threads=2,
        ).run()
        assert cold_threads.store_writes == 0
        assert cold_threads.store_hits == 0

    def test_processes_warm_run_checks_nothing(self, tmp_path):
        config = SynthesisConfig(store_path=str(tmp_path))
        cold = DistributedSynthesisEngine(
            SystemSpec("figure2"), config, workers=2
        ).run()
        warm = DistributedSynthesisEngine(
            SystemSpec("figure2"), config, workers=2
        ).run()
        assert warm.model_checks == 0
        assert solution_view(warm) == solution_view(cold)


class TestApiFacade:
    def test_facade_round_trip(self, tmp_path):
        path = str(tmp_path)
        cold = api.synthesize("figure2", store=path)
        warm = api.synthesize("figure2", store=path)
        assert warm.model_checks == 0
        assert solution_view(warm) == solution_view(cold)
        with api.open_store(path) as store:
            assert len(store) == cold.store_writes

    def test_facade_rejects_unknown_backend(self):
        with pytest.raises(Exception, match="backend"):
            api.synthesize("figure2", backend="carrier-pigeon")
