"""Smoke tests: every example script runs and prints what it promises.

``table1.py`` is exercised with ``--help`` only (its full run measures the
minute-scale MSI-small rows; the benchmark suite covers that path).
"""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_quickstart():
    proc = run_example("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert "solutions:         1" in proc.stdout
    assert "goto_C" in proc.stdout


def test_figure2_walkthrough():
    proc = run_example("figure2_walkthrough.py")
    assert proc.returncode == 0, proc.stderr
    assert "with pruning: 10 candidates evaluated" in proc.stdout
    assert "naive:        24 candidates evaluated" in proc.stdout
    assert proc.stdout.count("pruning pattern") == 5


def test_msi_verify():
    proc = run_example("msi_verify.py", "2")
    assert proc.returncode == 0, proc.stderr
    assert "with symmetry" in proc.stdout
    assert "success" in proc.stdout
    assert "minimal counterexample" in proc.stdout  # the injected bug


def test_msi_synthesis_tiny():
    proc = run_example("msi_synthesis.py", "tiny")
    assert proc.returncode == 0, proc.stderr
    assert "textbook completion is among the synthesised solutions" in proc.stdout


def test_vi_synthesis():
    proc = run_example("vi_synthesis.py")
    assert proc.returncode == 0, proc.stderr
    assert "hand-written completion was rediscovered" in proc.stdout


def test_mesi_synthesis():
    proc = run_example("mesi_synthesis.py")
    assert proc.returncode == 0, proc.stderr
    assert "unique solution = the textbook completion" in proc.stdout


def test_protocol_zoo():
    proc = run_example("protocol_zoo.py")
    assert proc.returncode == 0, proc.stderr
    assert "the zoo is healthy" in proc.stdout
    assert "moesi no-owner-inv: caught" in proc.stdout
    assert "german stale-shared-grant: caught" in proc.stdout


def test_table1_help():
    proc = run_example("table1.py", "--help")
    assert proc.returncode == 0, proc.stderr
    assert "--large" in proc.stdout
