"""Tests for the declarative experiment-matrix subsystem."""

import json
import os
import time

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    MatrixRunner,
    MatrixSpec,
    expand_matrix,
    load_preset,
    make_cell,
    preset_names,
    run_cell,
)
from repro.experiments.runner import JOURNAL_NAME, REPORT_NAME, RESULTS_NAME


def spec_from(**data):
    data.setdefault("name", "test")
    return MatrixSpec.from_dict(data)


def _pid_running(pid):
    """Is the process alive and not a zombie?  (A reparented child may
    linger as a zombie when PID 1 is slow to reap; that still counts as
    dead for the orphan check.)"""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    try:
        with open(f"/proc/{pid}/stat") as handle:
            return handle.read().split(")")[-1].split()[0] != "Z"
    except OSError:
        return False


class TestSpecParsing:
    def test_axes_product_in_declaration_order(self):
        spec = spec_from(
            defaults={"mode": "synth"},
            axes={"target": ["figure2", "mutex"], "explorer": ["bfs", "dfs"]},
        )
        cells = expand_matrix(spec)
        assert [(c.target, c.explorer) for c in cells] == [
            ("figure2", "bfs"),
            ("figure2", "dfs"),
            ("mutex", "bfs"),
            ("mutex", "dfs"),
        ]

    def test_exclude_drops_matching_product_cells(self):
        spec = spec_from(
            axes={"target": ["figure2", "mutex"], "explorer": ["bfs", "dfs"]},
            exclude=[{"target": "mutex", "explorer": "dfs"}],
        )
        assert len(expand_matrix(spec)) == 3

    def test_exclude_matches_effective_defaulted_values(self):
        """An exclude may reference a field no axis/default sets explicitly
        (here: backend, which defaults to sequential)."""
        spec = spec_from(
            axes={"target": ["figure2", "mutex"]},
            exclude=[{"target": "figure2", "backend": "sequential"}],
        )
        cells = expand_matrix(spec)
        assert [c.target for c in cells] == ["mutex"]

    def test_exclude_never_filters_include_cells(self):
        spec = spec_from(
            include=[{"target": "figure2"}],
            exclude=[{"target": "figure2"}],
        )
        assert len(expand_matrix(spec)) == 1

    def test_exclude_with_unknown_field_rejected(self):
        with pytest.raises(ExperimentError, match="exclude entry references"):
            spec_from(
                axes={"target": ["figure2"]},
                exclude=[{"flavour": "spicy"}],
            )

    def test_include_appends_irregular_cells(self):
        spec = spec_from(
            include=[
                {"target": "figure2"},
                {"mode": "verify", "target": "german", "replicas": 3},
            ]
        )
        cells = expand_matrix(spec)
        assert [c.mode for c in cells] == ["synth", "verify"]
        assert cells[1].replicas == 3

    def test_ids_are_stable_and_unique(self):
        spec = spec_from(
            axes={"target": ["figure2"], "pruning": [True, False]},
        )
        ids = [c.id for c in expand_matrix(spec)]
        assert ids == ["synth:figure2:r2:sequential",
                       "synth:figure2:r2:sequential:naive"]

    def test_duplicate_ids_rejected(self):
        spec = spec_from(include=[{"target": "figure2"}, {"target": "figure2"}])
        with pytest.raises(ExperimentError, match="duplicate cell id"):
            expand_matrix(spec)

    def test_unknown_axis_rejected(self):
        with pytest.raises(ExperimentError, match="unknown axis"):
            spec_from(axes={"flavour": ["a"]})

    def test_unknown_cell_field_rejected(self):
        with pytest.raises(ExperimentError, match="unknown cell field"):
            make_cell({"target": "figure2", "flavour": "spicy"})

    def test_unknown_targets_rejected(self):
        with pytest.raises(ExperimentError, match="unknown skeleton"):
            make_cell({"target": "nope"})
        with pytest.raises(ExperimentError, match="unknown protocol"):
            make_cell({"mode": "verify", "target": "msi-tiny"})

    def test_estimate_reference_must_exist(self):
        spec = spec_from(
            include=[
                {"id": "est", "target": "msi-tiny", "estimate_naive_from": "gone"}
            ]
        )
        with pytest.raises(ExperimentError, match="references unknown"):
            expand_matrix(spec)

    def test_empty_expansion_rejected(self):
        with pytest.raises(ExperimentError, match="zero cells"):
            expand_matrix(spec_from())

    def test_spec_file_roundtrip(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(
            json.dumps({"name": "f", "include": [{"target": "figure2"}]})
        )
        assert len(expand_matrix(MatrixSpec.from_json_file(path))) == 1

    def test_missing_spec_file_is_a_clean_error(self, tmp_path):
        with pytest.raises(ExperimentError, match="cannot read spec"):
            MatrixSpec.from_json_file(tmp_path / "gone.json")

    def test_malformed_section_shapes_are_clean_errors(self):
        with pytest.raises(ExperimentError, match="'include' must be a list"):
            MatrixSpec.from_dict({"name": "bad", "include": ["figure2"]})
        with pytest.raises(ExperimentError, match="'defaults' must be an object"):
            MatrixSpec.from_dict({"name": "bad", "defaults": [1]})
        with pytest.raises(ExperimentError, match="'axes' must be an object"):
            MatrixSpec.from_dict({"name": "bad", "axes": ["target"]})

    def test_mistyped_numeric_fields_are_clean_errors(self):
        with pytest.raises(ExperimentError, match="replicas must be an int"):
            make_cell({"target": "figure2", "replicas": "two"})
        with pytest.raises(ExperimentError, match="timeout_seconds"):
            make_cell({"target": "figure2", "timeout_seconds": "fast"})


class TestRunCell:
    def test_synth_cell_row(self):
        row = run_cell(make_cell({"target": "figure2"}))
        assert row["kind"] == "synth"
        assert row["ok"]
        assert row["solutions"] == 1
        assert row["evaluated"] == 10
        assert row["naive_candidates"] == 24

    def test_verify_cell_row(self):
        row = run_cell(make_cell({"mode": "verify", "target": "german"}))
        assert row["kind"] == "verify"
        assert row["ok"]
        assert row["verdict"] == "success"
        assert row["states"] == 122

    def test_naive_cell_reports_naive_space(self):
        row = run_cell(make_cell({"target": "figure2", "pruning": False}))
        assert row["candidates"] == 24
        assert row["evaluated"] == 24

    def test_estimate_cell_extrapolates_base(self):
        base_cell = make_cell({"id": "base", "target": "msi-tiny"})
        base = run_cell(base_cell)
        estimate = run_cell(
            make_cell(
                {
                    "id": "est",
                    "target": "msi-tiny",
                    "estimate_naive_from": "base",
                    "estimate_samples": 3,
                }
            ),
            {"base": base},
        )
        assert estimate["estimated"]
        assert estimate["evaluated"] == base["naive_candidates"] == 21
        assert estimate["solutions"] == base["solutions"]
        assert estimate["seconds"] > 0

    def test_estimate_without_base_row_fails(self):
        cell = make_cell(
            {"id": "est", "target": "msi-tiny", "estimate_naive_from": "base"}
        )
        with pytest.raises(ExperimentError, match="has not completed"):
            run_cell(cell, {})


def tiny_spec(**extra):
    data = {
        "name": "tiny",
        "defaults": {"replicas": 2},
        "include": [
            {"id": "a", "target": "figure2"},
            {"id": "b", "mode": "verify", "target": "mutex"},
        ],
    }
    data.update(extra)
    return MatrixSpec.from_dict(data)


class TestRunnerJournal:
    def test_full_run_writes_artifacts(self, tmp_path):
        result = MatrixRunner(tiny_spec(), tmp_path / "out").run()
        assert result.executed == 2
        assert result.resumed == 0
        assert not result.failed
        out = tmp_path / "out"
        assert (out / JOURNAL_NAME).exists()
        assert (out / RESULTS_NAME).exists()
        assert (out / REPORT_NAME).exists()
        results = json.loads((out / RESULTS_NAME).read_text())
        assert [row["cell"] for row in results["cells"]] == ["a", "b"]

    def test_rerun_resumes_everything(self, tmp_path):
        out = tmp_path / "out"
        MatrixRunner(tiny_spec(), out).run()
        result = MatrixRunner(tiny_spec(), out).run()
        assert result.executed == 0
        assert result.resumed == 2

    def test_killed_run_resumes_only_missing_cells(self, tmp_path, monkeypatch):
        """Simulate a mid-matrix kill: the first cell's journal line exists,
        the second never ran.  The rerun must execute only the second."""
        out = tmp_path / "out"
        import repro.experiments.runner as runner_module

        real_run_cell = runner_module.run_cell
        executed = []

        def exploding(cell, prior=None):
            executed.append(cell.id)
            if cell.id == "b":
                raise KeyboardInterrupt  # the kill
            return real_run_cell(cell, prior)

        monkeypatch.setattr(runner_module, "run_cell", exploding)
        with pytest.raises(KeyboardInterrupt):
            MatrixRunner(tiny_spec(), out).run()
        assert executed == ["a", "b"]

        executed.clear()
        monkeypatch.setattr(runner_module, "run_cell", exploding)
        # Cell "a" is journaled; only "b" reruns (and this time survives).
        def surviving(cell, prior=None):
            executed.append(cell.id)
            return real_run_cell(cell, prior)

        monkeypatch.setattr(runner_module, "run_cell", surviving)
        result = MatrixRunner(tiny_spec(), out).run()
        assert executed == ["b"]
        assert result.resumed == 1
        assert result.executed == 1

    def test_torn_journal_line_is_ignored(self, tmp_path):
        out = tmp_path / "out"
        MatrixRunner(tiny_spec(), out).run()
        with open(out / JOURNAL_NAME, "a") as handle:
            handle.write('{"cell": "b", "row"')  # torn write from a kill
        result = MatrixRunner(tiny_spec(), out).run()
        assert result.resumed == 2

    def test_fresh_discards_journal(self, tmp_path):
        out = tmp_path / "out"
        MatrixRunner(tiny_spec(), out).run()
        result = MatrixRunner(tiny_spec(), out, fresh=True).run()
        assert result.executed == 2
        assert result.resumed == 0

    def test_journal_of_other_matrix_rejected(self, tmp_path):
        out = tmp_path / "out"
        MatrixRunner(tiny_spec(), out).run()
        other = tiny_spec(name="other")
        with pytest.raises(ExperimentError, match="belongs to matrix"):
            MatrixRunner(other, out).run()

    def test_failing_cell_recorded_and_matrix_continues(self, tmp_path):
        spec = MatrixSpec.from_dict(
            {
                "name": "partial",
                "include": [
                    # max_evaluations=1 finds no solution -> not ok.
                    {"id": "a", "target": "figure2", "max_evaluations": 1},
                    {"id": "b", "target": "figure2"},
                ],
            }
        )
        result = MatrixRunner(spec, tmp_path / "out").run()
        assert [row["cell"] for row in result.rows] == ["a", "b"]
        assert len(result.failed) == 1
        assert result.rows[1]["ok"]

    def test_timeout_cell_is_abandoned(self, tmp_path):
        spec = MatrixSpec.from_dict(
            {
                "name": "slow",
                "include": [
                    {
                        "id": "slow",
                        "target": "msi-small",
                        "timeout_seconds": 0.05,
                    }
                ],
            }
        )
        result = MatrixRunner(spec, tmp_path / "out").run()
        assert result.rows[0]["status"] == "timeout"
        assert not result.rows[0]["ok"]
        assert result.rows[0]["seconds"] >= 0.05

    @pytest.mark.skipif(not hasattr(os, "killpg"), reason="needs process groups")
    def test_timeout_reaps_spawned_grandchildren(self, tmp_path, monkeypatch):
        """A timed-out cell must not leave orphaned grandchildren (e.g. the
        processes backend's daemon workers) burning CPU: the runner kills
        the cell's whole process group."""
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork for the monkeypatched child")
        monkeypatch.setenv("REPRO_DIST_START_METHOD", "fork")
        import repro.experiments.runner as runner_module

        pid_file = tmp_path / "grandchild.pid"

        def spawning_run_cell(cell, prior=None):
            worker = multiprocessing.Process(
                target=time.sleep, args=(60,), daemon=True
            )
            worker.start()
            pid_file.write_text(str(worker.pid))
            time.sleep(60)  # force the timeout while the worker runs

        monkeypatch.setattr(runner_module, "run_cell", spawning_run_cell)
        cell = make_cell(
            {"id": "slow", "target": "figure2", "timeout_seconds": 1.0}
        )
        row = runner_module._run_cell_isolated(cell)
        assert row["status"] == "timeout"

        grandchild = int(pid_file.read_text())
        for _ in range(50):  # the group kill lands asynchronously
            if not _pid_running(grandchild):
                break
            time.sleep(0.1)
        assert not _pid_running(grandchild), (
            f"grandchild {grandchild} survived the timeout kill"
        )

    def test_timeout_and_error_rows_are_retried_not_resumed(self, tmp_path):
        """Infrastructure failures (error/timeout) must re-run on the next
        invocation; protocol results stay cached."""
        spec = MatrixSpec.from_dict(
            {
                "name": "retry",
                "include": [
                    {"id": "good", "target": "figure2"},
                    {"id": "flaky", "mode": "verify", "target": "mutex"},
                ],
            }
        )
        out = tmp_path / "out"
        first = MatrixRunner(spec, out).run()
        assert not first.failed
        # Rewrite flaky's journal row as a timeout from a "previous" run.
        lines = (out / JOURNAL_NAME).read_text().splitlines()
        rewritten = []
        for line in lines:
            entry = json.loads(line)
            if entry.get("cell") == "flaky":
                entry["row"] = {"status": "timeout", "ok": False}
            rewritten.append(json.dumps(entry))
        (out / JOURNAL_NAME).write_text("\n".join(rewritten) + "\n")

        second = MatrixRunner(spec, out).run()
        assert second.resumed == 1      # the good result stays cached
        assert second.executed == 1     # the timeout re-ran
        assert not second.failed

    def test_isolated_cell_with_large_row_survives(self, tmp_path, monkeypatch):
        """A result row bigger than the pipe buffer must come back intact
        (the runner drains the queue before joining the child)."""
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork for the monkeypatched child")
        monkeypatch.setenv("REPRO_DIST_START_METHOD", "fork")
        import repro.experiments.runner as runner_module

        blob = "x" * 300_000  # well beyond a 64KB pipe buffer

        def fat_run_cell(cell, prior=None):
            return {"kind": "synth", "ok": True, "status": "ok", "blob": blob}

        monkeypatch.setattr(runner_module, "run_cell", fat_run_cell)
        spec = MatrixSpec.from_dict(
            {
                "name": "fat",
                "include": [
                    {"id": "fat", "target": "figure2", "timeout_seconds": 30}
                ],
            }
        )
        result = MatrixRunner(spec, tmp_path / "out").run()
        assert result.rows[0]["status"] == "ok"
        assert result.rows[0]["blob"] == blob

    def test_estimate_uses_resumed_base_row(self, tmp_path):
        """An estimate cell must find its base row even when the base was
        resumed from the journal, not re-executed."""
        spec = MatrixSpec.from_dict(
            {
                "name": "est",
                "include": [
                    {"id": "base", "target": "msi-tiny"},
                    {
                        "id": "est",
                        "target": "msi-tiny",
                        "estimate_naive_from": "base",
                        "estimate_samples": 2,
                    },
                ],
            }
        )
        out = tmp_path / "out"
        first = MatrixRunner(spec, out).run()
        assert not first.failed
        # Drop the estimate row from the journal; keep the base row.
        lines = (out / JOURNAL_NAME).read_text().splitlines()
        kept = [line for line in lines if '"cell": "est"' not in line]
        (out / JOURNAL_NAME).write_text("\n".join(kept) + "\n")
        second = MatrixRunner(spec, out).run()
        assert second.resumed == 1
        assert second.executed == 1
        assert not second.failed


class TestPresets:
    def test_preset_names(self):
        assert set(preset_names()) == {"table1", "smoke", "fuzz"}

    def test_unknown_preset_rejected(self):
        with pytest.raises(ExperimentError, match="unknown preset"):
            load_preset("nope")

    def test_presets_expand(self):
        table1 = expand_matrix(load_preset("table1"))
        assert [cell.id for cell in table1] == [
            "tiny-naive",
            "tiny-pruned",
            "small-seq",
            "small-threads",
            "small-processes",
            "small-naive-estimated",
        ]
        smoke = expand_matrix(load_preset("smoke"))
        targets = {cell.target for cell in smoke}
        # The smoke matrix covers the new workloads in both modes.
        assert {"moesi-small", "german-small", "moesi", "german"} <= targets

    def test_rows_carry_timing_and_peak_states(self, tmp_path):
        out = tmp_path / "out"
        MatrixRunner(tiny_spec(), out).run()
        rows = [
            entry["row"]
            for entry in map(
                json.loads,
                (out / JOURNAL_NAME).read_text().splitlines(),
            )
            if "row" in entry
        ]
        assert len(rows) == 2
        for row in rows:
            assert row["seconds"] >= 0
            assert row["peak_states"] > 0
        report = (out / REPORT_NAME).read_text()
        assert "Peak states" in report
        assert "Seconds" in report

    def test_runner_telemetry_traces_cells(self, tmp_path):
        from repro.obs import Telemetry, load_events

        trace = tmp_path / "trace.jsonl"
        tele = Telemetry.create(trace_path=str(trace))
        with_tele = MatrixRunner(
            tiny_spec(), tmp_path / "out", telemetry=tele
        ).run()
        tele.close()
        plain = MatrixRunner(tiny_spec(), tmp_path / "out2").run()
        assert with_tele.executed == plain.executed == 2
        events = load_events(trace)
        cells = [
            e for e in events
            if e["type"] == "span_start" and e["name"] == "cell"
        ]
        assert [e["cell"] for e in cells] == ["a", "b"]
        # Cell results are journalled identically either way.
        rows = lambda out: [
            {k: entry["row"][k] for k in ("cell", "ok", "peak_states")}
            for entry in map(
                json.loads,
                (out / JOURNAL_NAME).read_text().splitlines(),
            )
            if "row" in entry
        ]
        assert rows(tmp_path / "out") == rows(tmp_path / "out2")

    def test_table1_text_uses_classic_columns(self, tmp_path):
        spec = MatrixSpec.from_dict(
            {
                "name": "mini",
                "include": [
                    {"id": "a", "label": "Figure2 toy", "target": "figure2"}
                ],
            }
        )
        result = MatrixRunner(spec, tmp_path / "out").run()
        text = result.table_text()
        assert "Pruning Patterns" in text
        assert "Figure2 toy" in text
