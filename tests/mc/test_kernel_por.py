"""Kernel-level partial-order reduction behaviour (checkpoint modes,
counters, provisos); the verdict-equivalence matrix lives in
``tests/integration/test_por_equivalence.py``."""

import pytest

from repro.errors import ModelError
from repro.mc.kernel import ExplorationKernel, ExplorationLimits, make_explorer
from repro.mc.result import Verdict
from repro.protocols.catalog import PROTOCOL_BUILDERS


def moesi():
    return PROTOCOL_BUILDERS["moesi"](2)


class TestPorKernel:
    def test_counters_surface_in_stats(self):
        result = make_explorer("bfs", moesi(), partial_order=True).run()
        assert result.verdict is Verdict.SUCCESS
        assert result.stats.ample_states > 0
        assert result.stats.por_rules_skipped >= result.stats.ample_states

    def test_off_by_default(self):
        result = make_explorer("bfs", moesi()).run()
        assert result.stats.ample_states == 0
        assert result.stats.por_rules_skipped == 0

    def test_checkpoint_records_reduction_mode(self):
        explorer = ExplorationKernel(
            moesi(), partial_order=True, collect_checkpoint=True
        )
        explorer.run()
        assert explorer.checkpoint is not None
        assert explorer.checkpoint.reduction == "por"
        assert explorer.checkpoint.ample_states > 0

    def test_cross_mode_resume_refused(self):
        system = moesi()
        producer = ExplorationKernel(
            system, partial_order=True, collect_checkpoint=True
        )
        producer.run()
        with pytest.raises(ModelError, match="reduction"):
            ExplorationKernel(
                system, partial_order=False,
                resume_from=producer.checkpoint,
            ).run()

    def test_same_mode_resume_accepted(self):
        system = moesi()
        producer = ExplorationKernel(
            system, partial_order=True, collect_checkpoint=True
        )
        fresh = producer.run()
        resumed = ExplorationKernel(
            system, partial_order=True, resume_from=producer.checkpoint
        ).run()
        assert resumed.verdict is fresh.verdict
        assert resumed.stats.states_visited == fresh.stats.states_visited
        assert resumed.stats.ample_states == fresh.stats.ample_states

    def test_truncated_reduced_run_is_unknown(self):
        # POR under explicit kernel limits is allowed (the synthesis layer
        # gates it off via partial_order_active instead); a truncated
        # reduced run reports UNKNOWN exactly like a truncated full run.
        result = ExplorationKernel(
            moesi(), partial_order=True,
            limits=ExplorationLimits(max_states=5),
        ).run()
        assert result.verdict is Verdict.UNKNOWN
        assert result.stats.truncated
