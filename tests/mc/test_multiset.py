"""Unit and property tests for the immutable multiset (unordered network)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mc.multiset import Multiset

elements = st.lists(st.integers(min_value=0, max_value=5), max_size=10)


class TestBasics:
    def test_empty(self):
        bag = Multiset()
        assert len(bag) == 0
        assert not bag
        assert 1 not in bag

    def test_add_and_count(self):
        bag = Multiset(["a"]).add("a").add("b")
        assert bag.count("a") == 2
        assert bag.count("b") == 1
        assert bag.count("c") == 0

    def test_add_is_persistent(self):
        bag = Multiset(["x"])
        bigger = bag.add("x")
        assert len(bag) == 1
        assert len(bigger) == 2

    def test_remove(self):
        bag = Multiset(["a", "a", "b"]).remove("a")
        assert bag.count("a") == 1
        assert bag.count("b") == 1

    def test_remove_last_copy_drops_element(self):
        bag = Multiset(["a"]).remove("a")
        assert "a" not in bag
        assert len(bag) == 0

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            Multiset(["a"]).remove("b")

    def test_remove_too_many_raises(self):
        with pytest.raises(KeyError):
            Multiset(["a"]).remove("a", count=2)

    def test_add_remove_zero_is_identity(self):
        bag = Multiset(["a"])
        assert bag.add("a", 0) is bag
        assert bag.remove("a", 0) is bag

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            Multiset().add("a", -1)
        with pytest.raises(ValueError):
            Multiset().remove("a", -1)


class TestValueSemantics:
    def test_order_independent_equality(self):
        assert Multiset(["a", "b", "a"]) == Multiset(["b", "a", "a"])

    def test_order_independent_hash(self):
        assert hash(Multiset([3, 1, 2])) == hash(Multiset([2, 3, 1]))

    def test_count_sensitivity(self):
        assert Multiset(["a"]) != Multiset(["a", "a"])

    def test_iteration_yields_all_copies(self):
        assert sorted(Multiset(["b", "a", "a"])) == ["a", "a", "b"]

    def test_distinct(self):
        assert list(Multiset(["b", "a", "a"]).distinct()) == ["a", "b"]

    @given(elements)
    def test_equality_invariant_under_permutation(self, items):
        assert Multiset(items) == Multiset(list(reversed(items)))

    @given(elements, st.integers(min_value=0, max_value=5))
    def test_add_then_remove_roundtrip(self, items, value):
        bag = Multiset(items)
        assert bag.add(value).remove(value) == bag

    @given(elements)
    def test_length_matches_input(self, items):
        assert len(Multiset(items)) == len(items)


class TestTransforms:
    def test_map_renames(self):
        bag = Multiset([("msg", 0), ("msg", 1)])
        renamed = bag.map(lambda item: (item[0], 1 - item[1]))
        assert renamed == Multiset([("msg", 1), ("msg", 0)])

    def test_map_can_merge(self):
        bag = Multiset([1, 2]).map(lambda _x: 0)
        assert bag.count(0) == 2

    def test_filter(self):
        bag = Multiset([1, 2, 2, 3]).filter(lambda x: x != 2)
        assert bag == Multiset([1, 3])

    def test_repr_mentions_multiplicity(self):
        assert "x2" in repr(Multiset(["a", "a"]))
