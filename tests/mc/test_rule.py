"""Tests for Rule and ruleset expansion."""

import pytest

from repro.errors import ModelError
from repro.mc.context import ExecutionContext
from repro.mc.rule import Rule, ruleset


def test_rule_fire_returns_list():
    rule = Rule("inc", guard=lambda s: s < 3, apply=lambda s, ctx: [s + 1])
    assert rule.fire(0, ExecutionContext()) == [1]


def test_rule_requires_name():
    with pytest.raises(ModelError):
        Rule("", guard=lambda s: True, apply=lambda s, ctx: [])


def test_ruleset_expands_product():
    rules = ruleset(
        "move",
        {"src": [0, 1], "dst": [0, 1]},
        guard=lambda s, src, dst: src != dst,
        apply=lambda s, ctx, src, dst: [s + (src, dst)],
    )
    assert len(rules) == 4
    # Parameters sorted by name; the last parameter varies fastest.
    assert [r.name for r in rules] == [
        "move[dst=0,src=0]",
        "move[dst=0,src=1]",
        "move[dst=1,src=0]",
        "move[dst=1,src=1]",
    ]


def test_ruleset_bindings_are_independent():
    rules = ruleset(
        "set",
        {"i": [0, 1, 2]},
        guard=lambda s, i: True,
        apply=lambda s, ctx, i: [i],
    )
    ctx = ExecutionContext()
    results = [rule.fire(None, ctx) for rule in rules]
    assert results == [[0], [1], [2]]


def test_ruleset_guard_receives_binding():
    rules = ruleset(
        "only-one",
        {"i": [0, 1]},
        guard=lambda s, i: i == 1,
        apply=lambda s, ctx, i: [s],
    )
    assert [rule.guard("state") for rule in rules] == [False, True]


def test_ruleset_params_recorded():
    rules = ruleset(
        "r", {"i": [7]}, guard=lambda s, i: True, apply=lambda s, ctx, i: [s]
    )
    assert rules[0].params == {"i": 7}


def test_ruleset_rejects_empty_parameters():
    with pytest.raises(ModelError):
        ruleset("r", {}, guard=lambda s: True, apply=lambda s, ctx: [])


def test_ruleset_rejects_empty_domain():
    with pytest.raises(ModelError):
        ruleset("r", {"i": []}, guard=lambda s, i: True, apply=lambda s, ctx, i: [])
