"""Unit tests for the footprint analysis (repro.mc.footprint)."""


from repro.mc.footprint import (
    AccessLog,
    FootprintAnalysis,
    diff_states,
    get_footprint_analysis,
    locations_conflict,
    ser,
    value_at,
    wrap_state,
    writes_conflict,
)
from repro.mc.multiset import Multiset
from repro.mc.properties import Invariant
from repro.mc.rule import Rule
from repro.mc.state import Record
from repro.mc.system import TransitionSystem


class TestLocations:
    def test_disjoint_paths_do_not_conflict(self):
        assert not locations_conflict((0, 1), (0, 2))
        assert not locations_conflict((0,), (1,))

    def test_prefix_conflicts(self):
        assert locations_conflict((0,), (0, 2))
        assert locations_conflict((0, 2), (0,))
        assert locations_conflict((), (3, "x"))

    def test_elements_conflict_only_when_equal(self):
        a = (6, ("elem", ("tup", "Inv", 0)))
        b = (6, ("elem", ("tup", "Inv", 1)))
        assert not locations_conflict(a, b)
        assert locations_conflict(a, a)

    def test_size_read_conflicts_with_element_write(self):
        assert locations_conflict((6, ("size",)), (6, ("elem", "x")))

    def test_eclass_matches_message_elements(self):
        eclass = (2, ("eclass", "GntS", 1))
        hit = (2, ("elem", ("msg", "GntS", -1, 1, None)))
        miss = (2, ("elem", ("msg", "GntS", -1, 0, None)))
        other = (2, ("elem", ("msg", "Inv", -1, 1, None)))
        assert locations_conflict(eclass, hit)
        assert not locations_conflict(eclass, miss)
        assert not locations_conflict(eclass, other)
        # mtype None scans any type to that destination
        assert locations_conflict((2, ("eclass", None, 1)), hit)

    def test_commuting_write_kinds(self):
        a = {(6, ("elem", "m")): "delta"}
        b = {(6, ("elem", "m")): "delta"}
        assert not writes_conflict(a, b)
        assert writes_conflict(a, {(6, ("elem", "m")): "set"})


class TestTracking:
    def test_leaf_comparison_records_read(self):
        log = AccessLog()
        state = wrap_state(((1, 2), 5), log)
        assert state[0][1] == 2
        assert state[1] > 4
        assert log.reads == {(0, 1), (1,)}

    def test_navigation_alone_records_nothing(self):
        log = AccessLog()
        state = wrap_state(((1, 2), 5), log)
        _caches, _x = state
        list(_caches)
        assert log.reads == set()

    def test_multiset_membership_is_element_granular(self):
        log = AccessLog()
        state = wrap_state((Multiset([("Inv", 0)]),), log)
        assert ("Inv", 0) in state[0]
        assert ("Inv", 1) not in state[0]
        assert log.reads == {
            (0, ("elem", ser(("Inv", 0)))),
            (0, ("elem", ser(("Inv", 1)))),
        }

    def test_record_field_access(self):
        log = AccessLog()
        state = wrap_state((Record(st="I", d=0),), log)
        assert state[0].st == "I"
        assert log.reads == {(0, "st")}

    def test_frozenset_algebra_observes_whole_set(self):
        log = AccessLog()
        state = wrap_state((frozenset({1, 2}),), log)
        assert state[0] - {1} == frozenset({2})
        assert (0,) in log.reads


class TestDiff:
    def test_tuple_position_writes(self):
        writes = diff_states(((0, 0), 1), ((0, 2), 1))
        assert writes == {(0, 1): "set"}

    def test_multiset_delta_writes(self):
        before = (Multiset([("Inv", 0)]),)
        after = (Multiset([("Inv", 0), ("Ack", 1)]),)
        assert diff_states(before, after) == {
            (0, ("elem", ser(("Ack", 1)))): "delta"
        }

    def test_frozenset_add_remove_kinds(self):
        writes = diff_states((frozenset({1}),), (frozenset({2}),))
        assert writes == {
            (0, ("elem", 1)): "remove",
            (0, ("elem", 2)): "add",
        }

    def test_record_field_writes(self):
        writes = diff_states((Record(st="I", d=0),), (Record(st="S", d=0),))
        assert writes == {(0, "st"): "set"}


class TestValueAt:
    def test_leaf_and_marker_values(self):
        state = ((3, 7), frozenset({1}), Multiset([("Inv", 0)]))
        assert value_at(state, (0, 1)) == 7
        assert value_at(state, (1, ("elem", 1))) is True
        assert value_at(state, (1, ("elem", 2))) is False
        assert value_at(state, (2, ("elem", ser(("Inv", 0))))) == 1
        assert value_at(state, (2, ("size",))) == 1


def counter_system(bound=3, coupled=False):
    """Two independent counters (optionally coupled through a shared sum
    invariant) — small enough to reason about the analysis exactly."""

    def bump(position):
        def guard(state, _p=position):
            return state[_p] < bound

        def apply(state, ctx, _p=position):
            out = list(state)
            out[_p] += 1
            return [tuple(out)]

        return Rule(f"bump{position}", guard, apply)

    invariants = [Invariant("bounded", lambda s: s[0] <= bound and s[1] <= bound)]
    if coupled:
        invariants.append(Invariant("sum", lambda s: s[0] + s[1] < 2 * bound))
    return TransitionSystem(
        "counters",
        [(0, 0)],
        [bump(0), bump(1)],
        invariants=invariants,
    )


class TestAnalysis:
    def test_independent_counters(self):
        analysis = get_footprint_analysis(counter_system())
        assert analysis.complete
        assert analysis.usable
        # each bump reads and writes only its own slot
        assert not (analysis.dependent[0] >> 1) & 1
        fp = analysis.footprints[0]
        assert fp.guard_reads == {(0,)}
        assert fp.writes == {(0,): "set"}

    def test_coupled_counters_are_visible(self):
        # the sum invariant goes false at (2,3)/(3,2)-style states, so
        # bumps near the boundary change an invariant value -> visible
        analysis = get_footprint_analysis(counter_system(coupled=True))
        assert analysis.always_visible_mask & 0b11

    def test_analysis_cached_on_system(self):
        system = counter_system()
        assert get_footprint_analysis(system) is get_footprint_analysis(system)

    def test_ample_on_independent_counters(self):
        analysis = get_footprint_analysis(counter_system())
        state = (0, 0)
        visible = analysis.visible_mask_for([])
        ample = analysis.ample(0b11, state, visible)
        assert ample is not None
        assert len(ample) == 1

    def test_guard_atoms_learned(self):
        analysis = get_footprint_analysis(counter_system())
        fp = analysis.footprints[0]
        assert fp.atoms == [(0,)]
        assert fp.atom_truth[0].get(0) is True
        assert fp.atom_truth[0].get(3) is False

    def test_probe_limit_marks_incomplete(self):
        analysis = FootprintAnalysis(counter_system(bound=30), 5, 64)
        assert not analysis.complete
