"""Tests for the DFS explorer (verdict parity with BFS; trade-offs)."""

import pytest

from repro.mc.bfs import BfsExplorer, ExplorationLimits
from repro.mc.context import FixedResolver
from repro.mc.dfs import DfsExplorer
from repro.mc.properties import CoverageProperty, DeadlockPolicy, Invariant
from repro.mc.result import FailureKind, Verdict
from repro.mc.rule import Rule
from repro.mc.system import TransitionSystem
from repro.protocols.msi.system import build_msi_system
from repro.protocols.mutex import build_mutex_system
from repro.protocols.vi import build_vi_system


def counter_system(limit=5, invariants=(), coverage=()):
    return TransitionSystem(
        name="counter",
        initial_states=[0],
        rules=[
            Rule("inc", guard=lambda s: s < limit, apply=lambda s, ctx: [s + 1]),
            Rule("stay", guard=lambda s: s == limit, apply=lambda s, ctx: [s]),
        ],
        invariants=invariants,
        coverage=coverage,
    )


class TestVerdictParity:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: counter_system(),
            lambda: counter_system(invariants=[Invariant("lt3", lambda s: s < 3)]),
            lambda: counter_system(coverage=[CoverageProperty("c9", lambda s: s == 9)]),
            lambda: build_msi_system(2),
            lambda: build_msi_system(2, evictions=True),
            lambda: build_vi_system(2),
            lambda: build_mutex_system(2),
        ],
    )
    def test_same_verdict_as_bfs(self, factory):
        bfs = BfsExplorer(factory()).run()
        dfs = DfsExplorer(factory()).run()
        assert dfs.verdict == bfs.verdict

    def test_same_state_count_on_success(self):
        # On a SUCCESS both must have explored the full reachable space.
        bfs = BfsExplorer(build_msi_system(2)).run()
        dfs = DfsExplorer(build_msi_system(2)).run()
        assert dfs.stats.states_visited == bfs.stats.states_visited


class TestDfsSpecifics:
    def test_trace_may_be_longer_than_bfs(self):
        # Two roads to the violation; DFS may take the scenic one, but the
        # trace must still be a valid path ending in the violation.
        system = counter_system(invariants=[Invariant("lt4", lambda s: s < 4)])
        result = DfsExplorer(system).run()
        assert result.verdict is Verdict.FAILURE
        states = [step.state for step in result.trace]
        assert states[-1] == 4
        assert len(result.trace) >= len(BfsExplorer(system).run().trace)

    def test_deadlock_detection(self):
        system = TransitionSystem(
            name="dead",
            initial_states=[0],
            rules=[Rule("inc", guard=lambda s: s < 2, apply=lambda s, ctx: [s + 1])],
        )
        result = DfsExplorer(system).run()
        assert result.failure_kind is FailureKind.DEADLOCK

    def test_limits_truncate_to_unknown(self):
        result = DfsExplorer(
            counter_system(limit=1000), limits=ExplorationLimits(max_states=10)
        ).run()
        assert result.verdict is Verdict.UNKNOWN
        assert result.stats.truncated

    def test_wildcards_yield_unknown(self):
        from repro.core.action import Action
        from repro.core.hole import Hole

        hole = Hole("h", [Action("a")])

        def apply(s, ctx):
            ctx.resolve(hole)
            return [s + 1]

        system = TransitionSystem(
            name="holed",
            initial_states=[0],
            rules=[
                Rule("step", guard=lambda s: s == 0, apply=apply),
                Rule("stay", guard=lambda s: s > 0, apply=lambda s, ctx: [s]),
            ],
            deadlock=DeadlockPolicy.allow(),
        )
        result = DfsExplorer(system, resolver=FixedResolver({}, strict=False)).run()
        assert result.verdict is Verdict.UNKNOWN
        assert result.stats.wildcard_cuts == 1

    def test_traces_disabled(self):
        system = counter_system(invariants=[Invariant("lt3", lambda s: s < 3)])
        result = DfsExplorer(system, record_traces=False).run()
        assert result.is_failure
        assert result.trace is None
