"""Tests for the unified exploration kernel and its strategy shells."""

import pytest

from repro.errors import ModelError
from repro.mc.bfs import BfsExplorer
from repro.mc.dfs import DfsExplorer
from repro.mc.graph import StateGraph
from repro.mc.kernel import (
    EXPLORER_STRATEGIES,
    ExplorationKernel,
    ExplorationLimits,
    FifoFrontier,
    LifoFrontier,
    make_explorer,
)
from repro.mc.properties import Invariant
from repro.mc.result import Verdict
from repro.mc.rule import Rule
from repro.mc.system import TransitionSystem


def counter_system(limit=5, invariants=()):
    return TransitionSystem(
        name="counter",
        initial_states=[0],
        rules=[
            Rule("inc", guard=lambda s: s < limit, apply=lambda s, ctx: [s + 1]),
            Rule("stay", guard=lambda s: s == limit, apply=lambda s, ctx: [s]),
        ],
        invariants=invariants,
    )


def branching_system(depth=6):
    """A binary tree of states, so BFS and DFS schedules genuinely differ."""
    return TransitionSystem(
        name="tree",
        initial_states=[(0, 0)],
        rules=[
            Rule(
                "left",
                guard=lambda s, _d=depth: s[0] < _d,
                apply=lambda s, ctx: [(s[0] + 1, s[1] * 2)],
            ),
            Rule(
                "right",
                guard=lambda s, _d=depth: s[0] < _d,
                apply=lambda s, ctx: [(s[0] + 1, s[1] * 2 + 1)],
            ),
            Rule(
                "leaf",
                guard=lambda s, _d=depth: s[0] == _d,
                apply=lambda s, ctx: [s],
            ),
        ],
    )


class TestFactory:
    def test_registry_names(self):
        assert set(EXPLORER_STRATEGIES) == {"bfs", "dfs"}

    @pytest.mark.parametrize("name", ["bfs", "dfs"])
    def test_make_explorer_runs(self, name):
        result = make_explorer(name, counter_system()).run()
        assert result.verdict is Verdict.SUCCESS
        assert result.stats.states_visited == 6

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ModelError, match="unknown explorer"):
            make_explorer("idfs", counter_system())

    def test_shells_are_kernels(self):
        assert isinstance(BfsExplorer(counter_system()), ExplorationKernel)
        assert isinstance(DfsExplorer(counter_system()), ExplorationKernel)
        assert isinstance(BfsExplorer(counter_system()).strategy, FifoFrontier)
        assert isinstance(DfsExplorer(counter_system()).strategy, LifoFrontier)


class TestTruncationParity:
    """Regression: BFS and DFS must report identical ``truncated`` flags.

    BFS historically carried a redundant ``and queue`` in its max_states
    guard; the shared kernel removed it.  These tests pin the strategy-
    independent truncation semantics for both limit kinds.
    """

    @pytest.mark.parametrize("max_depth", [0, 1, 3])
    def test_max_depth_truncation_identical(self, max_depth):
        limits = ExplorationLimits(max_depth=max_depth)
        bfs = BfsExplorer(branching_system(), limits=limits).run()
        dfs = DfsExplorer(branching_system(), limits=limits).run()
        assert bfs.verdict is Verdict.UNKNOWN
        assert dfs.verdict == bfs.verdict
        assert bfs.stats.truncated is True
        assert dfs.stats.truncated is True
        assert bfs.message == dfs.message == "truncated exploration"

    def test_max_depth_not_truncated_when_limit_not_reached(self):
        limits = ExplorationLimits(max_depth=100)
        bfs = BfsExplorer(counter_system(), limits=limits).run()
        dfs = DfsExplorer(counter_system(), limits=limits).run()
        assert bfs.stats.truncated is False
        assert dfs.stats.truncated is False

    @pytest.mark.parametrize("max_states", [1, 10])
    def test_max_states_truncation_identical(self, max_states):
        limits = ExplorationLimits(max_states=max_states)
        bfs = BfsExplorer(branching_system(), limits=limits).run()
        dfs = DfsExplorer(branching_system(), limits=limits).run()
        assert bfs.verdict is Verdict.UNKNOWN
        assert dfs.verdict is Verdict.UNKNOWN
        assert bfs.stats.truncated is True
        assert dfs.stats.truncated is True
        # The cap is checked at pop time, so registration may overshoot by
        # at most one expansion's successors — identically for both.
        assert bfs.stats.states_visited <= max_states + 2
        assert dfs.stats.states_visited <= max_states + 2


class TestDfsGainsKernelFeatures:
    """DFS inherited graph capture and hole-path tracking from the kernel."""

    def test_dfs_graph_capture(self):
        graph = StateGraph()
        DfsExplorer(counter_system(limit=3), capture_graph=graph).run()
        assert graph.num_states == 4
        assert (3, 3, "stay") in graph.edges

    def test_dfs_track_hole_paths_on_failure(self):
        from repro.core.action import Action
        from repro.core.hole import Hole
        from repro.mc.context import FixedResolver

        hole = Hole("h", [Action("go")])

        def apply(s, ctx):
            ctx.resolve(hole)
            return [s + 1]

        system = TransitionSystem(
            name="holed",
            initial_states=[0],
            rules=[
                Rule("step", guard=lambda s: s < 3, apply=apply),
                Rule("stay", guard=lambda s: s >= 3, apply=lambda s, ctx: [s]),
            ],
            invariants=[Invariant("lt2", lambda s: s < 2)],
        )
        result = DfsExplorer(
            system,
            resolver=FixedResolver({hole: hole.domain[0]}),
            track_hole_paths=True,
        ).run()
        assert result.is_failure
        assert result.failure_holes == frozenset({hole})


class TestStatsParity:
    def test_full_exploration_stats_match(self):
        bfs = BfsExplorer(branching_system()).run()
        dfs = DfsExplorer(branching_system()).run()
        assert bfs.verdict is Verdict.SUCCESS
        assert dfs.stats.states_visited == bfs.stats.states_visited
        assert dfs.stats.transitions_fired == bfs.stats.transitions_fired
        assert dfs.stats.max_depth == bfs.stats.max_depth

    def test_cache_counters_default_zero_without_cache(self):
        result = BfsExplorer(counter_system()).run()
        assert result.stats.canon_cache_hits == 0
        assert result.stats.canon_cache_size == 0
