"""Tests for the unified exploration kernel and its strategy shells."""

import pytest

from repro.errors import ModelError
from repro.mc.bfs import BfsExplorer
from repro.mc.dfs import DfsExplorer
from repro.mc.graph import StateGraph
from repro.mc.kernel import (
    EXPLORER_STRATEGIES,
    ExplorationKernel,
    ExplorationLimits,
    FifoFrontier,
    LifoFrontier,
    make_explorer,
)
from repro.mc.properties import Invariant
from repro.mc.result import Verdict
from repro.mc.rule import Rule
from repro.mc.system import TransitionSystem


def counter_system(limit=5, invariants=()):
    return TransitionSystem(
        name="counter",
        initial_states=[0],
        rules=[
            Rule("inc", guard=lambda s: s < limit, apply=lambda s, ctx: [s + 1]),
            Rule("stay", guard=lambda s: s == limit, apply=lambda s, ctx: [s]),
        ],
        invariants=invariants,
    )


def branching_system(depth=6):
    """A binary tree of states, so BFS and DFS schedules genuinely differ."""
    return TransitionSystem(
        name="tree",
        initial_states=[(0, 0)],
        rules=[
            Rule(
                "left",
                guard=lambda s, _d=depth: s[0] < _d,
                apply=lambda s, ctx: [(s[0] + 1, s[1] * 2)],
            ),
            Rule(
                "right",
                guard=lambda s, _d=depth: s[0] < _d,
                apply=lambda s, ctx: [(s[0] + 1, s[1] * 2 + 1)],
            ),
            Rule(
                "leaf",
                guard=lambda s, _d=depth: s[0] == _d,
                apply=lambda s, ctx: [s],
            ),
        ],
    )


class TestFactory:
    def test_registry_names(self):
        assert set(EXPLORER_STRATEGIES) == {"bfs", "dfs"}

    @pytest.mark.parametrize("name", ["bfs", "dfs"])
    def test_make_explorer_runs(self, name):
        result = make_explorer(name, counter_system()).run()
        assert result.verdict is Verdict.SUCCESS
        assert result.stats.states_visited == 6

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ModelError, match="unknown explorer"):
            make_explorer("idfs", counter_system())

    def test_shells_are_kernels(self):
        assert isinstance(BfsExplorer(counter_system()), ExplorationKernel)
        assert isinstance(DfsExplorer(counter_system()), ExplorationKernel)
        assert isinstance(BfsExplorer(counter_system()).strategy, FifoFrontier)
        assert isinstance(DfsExplorer(counter_system()).strategy, LifoFrontier)


class TestTruncationParity:
    """Regression: BFS and DFS must report identical ``truncated`` flags.

    BFS historically carried a redundant ``and queue`` in its max_states
    guard; the shared kernel removed it.  These tests pin the strategy-
    independent truncation semantics for both limit kinds.
    """

    @pytest.mark.parametrize("max_depth", [0, 1, 3])
    def test_max_depth_truncation_identical(self, max_depth):
        limits = ExplorationLimits(max_depth=max_depth)
        bfs = BfsExplorer(branching_system(), limits=limits).run()
        dfs = DfsExplorer(branching_system(), limits=limits).run()
        assert bfs.verdict is Verdict.UNKNOWN
        assert dfs.verdict == bfs.verdict
        assert bfs.stats.truncated is True
        assert dfs.stats.truncated is True
        assert bfs.message == dfs.message == "truncated exploration"

    def test_max_depth_not_truncated_when_limit_not_reached(self):
        limits = ExplorationLimits(max_depth=100)
        bfs = BfsExplorer(counter_system(), limits=limits).run()
        dfs = DfsExplorer(counter_system(), limits=limits).run()
        assert bfs.stats.truncated is False
        assert dfs.stats.truncated is False

    @pytest.mark.parametrize("max_states", [1, 10])
    def test_max_states_truncation_identical(self, max_states):
        limits = ExplorationLimits(max_states=max_states)
        bfs = BfsExplorer(branching_system(), limits=limits).run()
        dfs = DfsExplorer(branching_system(), limits=limits).run()
        assert bfs.verdict is Verdict.UNKNOWN
        assert dfs.verdict is Verdict.UNKNOWN
        assert bfs.stats.truncated is True
        assert dfs.stats.truncated is True
        # The cap is checked at pop time, so registration may overshoot by
        # at most one expansion's successors — identically for both.
        assert bfs.stats.states_visited <= max_states + 2
        assert dfs.stats.states_visited <= max_states + 2


class TestDfsGainsKernelFeatures:
    """DFS inherited graph capture and hole-path tracking from the kernel."""

    def test_dfs_graph_capture(self):
        graph = StateGraph()
        DfsExplorer(counter_system(limit=3), capture_graph=graph).run()
        assert graph.num_states == 4
        assert (3, 3, "stay") in graph.edges

    def test_dfs_track_hole_paths_on_failure(self):
        from repro.core.action import Action
        from repro.core.hole import Hole
        from repro.mc.context import FixedResolver

        hole = Hole("h", [Action("go")])

        def apply(s, ctx):
            ctx.resolve(hole)
            return [s + 1]

        system = TransitionSystem(
            name="holed",
            initial_states=[0],
            rules=[
                Rule("step", guard=lambda s: s < 3, apply=apply),
                Rule("stay", guard=lambda s: s >= 3, apply=lambda s, ctx: [s]),
            ],
            invariants=[Invariant("lt2", lambda s: s < 2)],
        )
        result = DfsExplorer(
            system,
            resolver=FixedResolver({hole: hole.domain[0]}),
            track_hole_paths=True,
        ).run()
        assert result.is_failure
        assert result.failure_holes == frozenset({hole})


class TestStatsParity:
    def test_full_exploration_stats_match(self):
        bfs = BfsExplorer(branching_system()).run()
        dfs = DfsExplorer(branching_system()).run()
        assert bfs.verdict is Verdict.SUCCESS
        assert dfs.stats.states_visited == bfs.stats.states_visited
        assert dfs.stats.transitions_fired == bfs.stats.transitions_fired
        assert dfs.stats.max_depth == bfs.stats.max_depth

    def test_cache_counters_default_zero_without_cache(self):
        result = BfsExplorer(counter_system()).run()
        assert result.stats.canon_cache_hits == 0
        assert result.stats.canon_cache_size == 0


class TestCheckpointResume:
    """Prefix checkpoints: resumption must be verdict-exact."""

    @staticmethod
    def _setup(prefix_digits, full_digits):
        from repro.core.candidate import CandidateVector
        from repro.core.discovery import CandidateResolver, HoleRegistry
        from repro.protocols.toy import build_figure2_skeleton

        system = build_figure2_skeleton()
        registry = HoleRegistry()

        def resolver(digits):
            return CandidateResolver(registry, CandidateVector.from_digits(digits))

        return system, resolver(prefix_digits), resolver(full_digits)

    def _prefix_checkpoint(self, system, prefix_resolver):
        explorer = ExplorationKernel(
            system, resolver=prefix_resolver, collect_checkpoint=True
        )
        explorer.run()
        return explorer.checkpoint

    @pytest.mark.parametrize("full", [(1, 0, 1, 1), (1, 0, 0), (1, 1)])
    def test_resumed_equals_fresh(self, full):
        for cut in range(len(full)):
            system, prefix_res, full_res = self._setup(full[:cut], full)
            checkpoint = self._prefix_checkpoint(system, prefix_res)
            assert checkpoint is not None
            resumed_kernel = ExplorationKernel(
                system, resolver=full_res, resume_from=checkpoint
            )
            resumed = resumed_kernel.run()

            system2, _, full_res2 = self._setup(full[:cut], full)
            fresh_kernel = ExplorationKernel(system2, resolver=full_res2)
            fresh = fresh_kernel.run()

            assert resumed.verdict is fresh.verdict
            assert resumed.failure_kind == fresh.failure_kind
            assert resumed.stats.states_visited == fresh.stats.states_visited
            assert resumed.wildcard_encountered == fresh.wildcard_encountered
            assert set(resumed_kernel.visited_states) == set(
                fresh_kernel.visited_states
            )
            assert {h.name for h in resumed.executed_holes} == {
                h.name for h in fresh.executed_holes
            }
            assert resumed.stats.prefix_states_reused == checkpoint.states_visited
            assert fresh.stats.prefix_states_reused == 0

    def test_failing_prefix_collects_no_checkpoint(self):
        system, prefix_res, _ = self._setup((0,), (0, 0))  # <1@A> fails
        assert self._prefix_checkpoint(system, prefix_res) is None

    def test_truncated_run_collects_no_checkpoint(self):
        system, prefix_res, _ = self._setup((1,), (1, 0))
        explorer = ExplorationKernel(
            system,
            resolver=prefix_res,
            limits=ExplorationLimits(max_states=1),
            collect_checkpoint=True,
        )
        result = explorer.run()
        assert result.stats.truncated
        assert explorer.checkpoint is None

    def test_hole_path_mismatch_rejected(self):
        system, prefix_res, full_res = self._setup((1,), (1, 0))
        checkpoint = self._prefix_checkpoint(system, prefix_res)
        with pytest.raises(ModelError):
            ExplorationKernel(
                system,
                resolver=full_res,
                resume_from=checkpoint,
                track_hole_paths=True,
            )

    def test_exhaustive_prefix_resumes_to_immediate_verdict(self):
        # A prefix that never hits a wildcard explores the full space; the
        # resumed run inherits everything and re-expands nothing.
        full = (1, 0, 1, 1)  # the figure-2 solution
        system, prefix_res, full_res = self._setup(full, full)
        checkpoint = self._prefix_checkpoint(system, prefix_res)
        assert checkpoint is not None
        assert checkpoint.cut_states == ()
        resumed = ExplorationKernel(
            system, resolver=full_res, resume_from=checkpoint
        ).run()
        assert resumed.verdict is Verdict.SUCCESS
        assert resumed.stats.prefix_states_reused == resumed.stats.states_visited

    def test_chained_checkpoints(self):
        # Build level-k checkpoints by resuming level k-1, then finish the
        # candidate from the deepest: the classic prefix-reuse chain.
        from repro.core.candidate import CandidateVector
        from repro.core.discovery import CandidateResolver, HoleRegistry
        from repro.protocols.toy import build_figure2_skeleton

        full = (1, 0, 1, 1)
        system = build_figure2_skeleton()
        registry = HoleRegistry()
        checkpoint = None
        for cut in range(len(full)):
            explorer = ExplorationKernel(
                system,
                resolver=CandidateResolver(
                    registry, CandidateVector.from_digits(full[:cut])
                ),
                resume_from=checkpoint,
                collect_checkpoint=True,
            )
            explorer.run()
            checkpoint = explorer.checkpoint
            assert checkpoint is not None
        result = ExplorationKernel(
            system,
            resolver=CandidateResolver(registry, CandidateVector.from_digits(full)),
            resume_from=checkpoint,
        ).run()
        assert result.verdict is Verdict.SUCCESS


class TestCoverageCheckpointing:
    """A wildcard-free coverage failure is complete work: it checkpoints,
    and resumed extensions inherit the identical verdict instantly."""

    @staticmethod
    def _coverage_system():
        from repro.mc.properties import CoverageProperty, DeadlockPolicy

        return TransitionSystem(
            name="uncovered",
            initial_states=[0],
            rules=[Rule("spin", guard=lambda s: True, apply=lambda s, ctx: [s])],
            coverage=[CoverageProperty("reach-9", lambda s: s == 9)],
            deadlock=DeadlockPolicy.fail(quiescent=lambda s: True),
        )

    def test_coverage_failure_still_checkpoints(self):
        from repro.mc.result import FailureKind

        explorer = ExplorationKernel(self._coverage_system(), collect_checkpoint=True)
        result = explorer.run()
        assert result.is_failure
        assert result.failure_kind is FailureKind.COVERAGE
        assert explorer.checkpoint is not None
        assert explorer.checkpoint.cut_states == ()
        assert explorer.checkpoint.pending_coverage == ("reach-9",)

        resumed = ExplorationKernel(
            self._coverage_system(), resume_from=explorer.checkpoint
        ).run()
        assert resumed.is_failure
        assert resumed.failure_kind is FailureKind.COVERAGE
        assert resumed.stats.states_visited == result.stats.states_visited
        assert resumed.stats.prefix_states_reused == result.stats.states_visited
