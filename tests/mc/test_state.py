"""Tests for Record and state serialisation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mc.multiset import Multiset
from repro.mc.state import Record, state_key


class TestRecord:
    def test_field_access(self):
        record = Record(x=1, name="cache")
        assert record.x == 1
        assert record.name == "cache"

    def test_unknown_field_raises(self):
        with pytest.raises(AttributeError):
            _ = Record(x=1).y

    def test_update_returns_new(self):
        first = Record(x=1, y=2)
        second = first.update(x=10)
        assert first.x == 1
        assert second.x == 10
        assert second.y == 2

    def test_update_unknown_field_rejected(self):
        with pytest.raises(AttributeError):
            Record(x=1).update(z=3)

    def test_update_preserves_field_order(self):
        # The sorted-merge walks the existing (canonically ordered)
        # fields, so the updated record's layout is bit-identical to the
        # original's — the packed codec relies on stable field order.
        record = Record(c=3, a=1, b=2)
        updated = record.update(b=20, c=30)
        assert list(updated.as_dict()) == list(record.as_dict())
        assert updated.as_dict() == {"a": 1, "b": 20, "c": 30}
        assert record.as_dict() == {"a": 1, "b": 2, "c": 3}

    def test_update_rejects_unknown_among_valid(self):
        # Valid names are merged before the leftover check, so a mixed
        # call still names the offending field.
        with pytest.raises(AttributeError, match="nope"):
            Record(a=1, b=2).update(a=5, nope=9)

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Record(x=1).x = 5

    def test_equality_and_hash(self):
        assert Record(a=1, b=2) == Record(b=2, a=1)
        assert hash(Record(a=1, b=2)) == hash(Record(b=2, a=1))
        assert Record(a=1) != Record(a=2)

    def test_as_dict(self):
        assert Record(a=1, b="x").as_dict() == {"a": 1, "b": "x"}

    def test_usable_in_sets(self):
        assert len({Record(s="I"), Record(s="I"), Record(s="M")}) == 2


class TestStateKey:
    def test_orders_mixed_types_without_error(self):
        keys = [state_key(v) for v in (1, "a", None, True, (1, 2), frozenset({3}))]
        assert sorted(keys)  # must not raise TypeError

    def test_distinguishes_bool_from_int(self):
        assert state_key(True) != state_key(1)

    def test_record_key_is_field_order_independent(self):
        assert state_key(Record(a=1, b=2)) == state_key(Record(b=2, a=1))

    def test_multiset_key_is_insertion_order_independent(self):
        assert state_key(Multiset(["b", "a"])) == state_key(Multiset(["a", "b"]))

    def test_nested_structures(self):
        state = (Record(caches=(Record(s="I"), Record(s="M"))), Multiset([("Data", 0)]))
        assert state_key(state) == state_key(state)

    @given(st.tuples(st.integers(), st.text(max_size=5)))
    def test_deterministic(self, value):
        assert state_key(value) == state_key(value)

    @given(
        st.lists(st.integers(min_value=0, max_value=3), max_size=6),
        st.lists(st.integers(min_value=0, max_value=3), max_size=6),
    )
    def test_injective_on_simple_tuples(self, left, right):
        if tuple(left) != tuple(right):
            assert state_key(tuple(left)) != state_key(tuple(right))
