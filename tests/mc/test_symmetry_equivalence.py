"""Symmetry reduction must never change a verdict — only the state count.

Verdict-equivalence suite: canonicalised and uncanonicalised runs of the
same system must agree on the verdict and failure kind (mutex, msi-tiny,
mesi), the symmetry-reduced run visiting no more states.  Plus unit tests
for the orbit-representative memo cache and the sorted-replica fast path.
"""

import itertools

import pytest

from repro.mc.bfs import BfsExplorer
from repro.mc.context import FixedResolver
from repro.mc.dfs import DfsExplorer
from repro.mc.multiset import Multiset
from repro.mc.result import Verdict
from repro.mc.symmetry import CachingCanonicalizer, Permuter, ScalarSet
from repro.protocols.mesi import build_mesi_system
from repro.protocols.msi import defs
from repro.protocols.msi.skeleton import SkeletonSpec, msi_skeleton
from repro.protocols.msi.system import build_msi_system
from repro.protocols.mutex import build_mutex_system


def tiny_skeleton(symmetry: bool):
    return msi_skeleton(
        SkeletonSpec(
            name="msi-tiny",
            cache_rules=((defs.C_IM_D, defs.DATA),),
            n_caches=2,
            symmetry=symmetry,
        )
    )


def tiny_resolver(skeleton):
    """Replay the reference completion of the msi-tiny skeleton."""
    assignment = skeleton.reference_assignment()
    return FixedResolver(
        {
            hole: hole.domain[hole.index_of(assignment[hole.name])]
            for hole in skeleton.holes
        }
    )


class TestVerdictEquivalence:
    """Same verdict/failure-kind with and without canonicalisation."""

    @pytest.mark.parametrize("explorer_cls", [BfsExplorer, DfsExplorer])
    @pytest.mark.parametrize(
        "builder",
        [
            lambda symmetry: build_mutex_system(2, symmetry=symmetry),
            lambda symmetry: build_mutex_system(3, symmetry=symmetry),
            lambda symmetry: build_msi_system(2, symmetry=symmetry),
            lambda symmetry: build_mesi_system(2, symmetry=symmetry),
        ],
        ids=["mutex-2", "mutex-3", "msi-2", "mesi-2"],
    )
    def test_complete_protocols(self, builder, explorer_cls):
        reduced = explorer_cls(builder(True)).run()
        full = explorer_cls(builder(False)).run()
        assert reduced.verdict == full.verdict
        assert reduced.failure_kind == full.failure_kind
        assert reduced.unmet_coverage == full.unmet_coverage
        assert reduced.stats.states_visited <= full.stats.states_visited

    def test_msi_tiny_skeleton_reference_completion(self):
        reduced_skel = tiny_skeleton(symmetry=True)
        full_skel = tiny_skeleton(symmetry=False)
        reduced = BfsExplorer(
            reduced_skel.system, resolver=tiny_resolver(reduced_skel)
        ).run()
        full = BfsExplorer(
            full_skel.system, resolver=tiny_resolver(full_skel)
        ).run()
        assert reduced.verdict is Verdict.SUCCESS
        assert full.verdict == reduced.verdict
        assert reduced.stats.states_visited <= full.stats.states_visited

    def test_msi_tiny_skeleton_failing_completion(self):
        """A known-bad completion must fail identically either way."""

        def bad_resolver(skeleton):
            # Resolve every hole to its first action: "respond with
            # nothing, go to I" — drops the store, failing coverage or
            # livelocking into an invariant/deadlock, never SUCCESS.
            return FixedResolver(
                {hole: hole.domain[0] for hole in skeleton.holes}
            )

        reduced_skel = tiny_skeleton(symmetry=True)
        full_skel = tiny_skeleton(symmetry=False)
        reduced = BfsExplorer(
            reduced_skel.system, resolver=bad_resolver(reduced_skel)
        ).run()
        full = BfsExplorer(full_skel.system, resolver=bad_resolver(full_skel)).run()
        assert reduced.verdict is Verdict.FAILURE
        assert full.verdict == reduced.verdict
        assert reduced.failure_kind == full.failure_kind
        assert reduced.unmet_coverage == full.unmet_coverage


# -- orbit cache -------------------------------------------------------------


def permute_caches(state, mapping):
    caches, owner, net = state
    new_caches = list(caches)
    for old_index, cache in enumerate(caches):
        new_caches[mapping[old_index]] = cache
    new_owner = None if owner is None else mapping[owner]
    return tuple(new_caches), new_owner, net.map(
        lambda msg: (msg[0], mapping[msg[1]])
    )


def make_state(caches, owner, messages):
    return tuple(caches), owner, Multiset(messages)


ALL_TEST_STATES = [
    make_state(caches, owner, messages)
    for caches in itertools.product("IMS", repeat=3)
    for owner in (None, 0, 2)
    for messages in ([], [("Data", 1)], [("Inv", 0), ("Data", 2)])
]


class TestOrbitCache:
    def test_hits_accumulate_and_representatives_match_uncached(self):
        uncached = Permuter.for_single(ScalarSet("cache", 3), permute_caches)
        cached = CachingCanonicalizer(
            Permuter.for_single(ScalarSet("cache", 3), permute_caches).canonicalize
        )
        for state in ALL_TEST_STATES:
            assert cached(state) == uncached.canonicalize(state)
        assert cached.hits == 0  # every state distinct so far
        for state in ALL_TEST_STATES:
            assert cached(state) == uncached.canonicalize(state)
        assert cached.hits == len(ALL_TEST_STATES)
        assert cached.size >= len(ALL_TEST_STATES)

    def test_canonical_member_is_seeded(self):
        cached = CachingCanonicalizer(
            Permuter.for_single(ScalarSet("cache", 3), permute_caches).canonicalize
        )
        state = make_state("MIS", 0, [("Data", 2)])
        canon = cached(state)
        assert cached(canon) == canon
        assert cached.hits == 1  # the representative was seeded, not recomputed

    def test_cache_clears_at_capacity(self):
        cached = CachingCanonicalizer(lambda s: s, max_entries=4)
        for n in range(10):
            cached((n,))
        assert cached.size <= 4
        assert cached.misses == 10

    def test_recent_entries_survive_capacity_overflow(self):
        # Overflow evicts the *oldest* half, not the whole memo: entries
        # the frontier is still generating near keep hitting.
        cached = CachingCanonicalizer(lambda s: s, max_entries=4)
        for n in range(4):
            cached((n,))  # cache now full: (0,) (1,) (2,) (3,)
        cached((4,))  # overflow: (0,) and (1,) evicted, recent half stays
        assert cached.misses == 5
        cached((3,))
        cached((4,))
        assert cached.hits == 2  # survivors of the eviction
        cached((0,))  # evicted -> recomputed
        assert cached.misses == 6

    def test_run_stats_surface_cache_counters(self):
        system = build_msi_system(2)
        first = BfsExplorer(system).run()
        assert first.stats.canon_cache_size > 0
        # A second run over the same system is served from the shared cache.
        second = BfsExplorer(system).run()
        assert second.stats.canon_cache_hits > 0
        assert second.stats.canon_cache_hits >= first.stats.canon_cache_hits
        assert second.stats.states_visited == first.stats.states_visited


class TestSortedReplicaFastPath:
    def keys(self, state):
        caches, owner, net = state
        messages = tuple([] for _ in caches)
        for (mtype, cache), count in net.items():
            messages[cache].append((mtype, count))
        return tuple(
            (caches[i], i == owner, tuple(sorted(messages[i])))
            for i in range(len(caches))
        )

    def make_permuters(self):
        fast = Permuter.for_single(
            ScalarSet("cache", 3), permute_caches, replica_keys=self.keys
        )
        slow = Permuter.for_single(ScalarSet("cache", 3), permute_caches)
        return fast, slow

    def test_orbit_consistency(self):
        """Every orbit member must canonicalise to one representative,
        and fast/slow must agree on orbit *identity* (same partition)."""
        fast, slow = self.make_permuters()
        for state in ALL_TEST_STATES:
            canon = fast.canonicalize(state)
            slow_canon = slow.canonicalize(state)
            assert canon in set(slow.orbit(state))
            for mapping in itertools.permutations(range(3)):
                permuted = permute_caches(state, mapping)
                assert fast.canonicalize(permuted) == canon
                assert slow.canonicalize(permuted) == slow_canon

    def test_fast_path_actually_taken(self):
        fast, _slow = self.make_permuters()
        fast.canonicalize(make_state("MIS", 0, []))  # distinct keys
        assert fast.fast_path_hits == 1
        assert fast.full_orbit_scans == 0
        fast.canonicalize(make_state("MII", None, []))  # tie between 1 and 2
        assert fast.full_orbit_scans == 1

    def test_identity_fast_path_returns_same_object(self):
        fast, _slow = self.make_permuters()
        state = make_state("IMS", None, [])  # already sorted by key?
        canon = fast.canonicalize(state)
        # Either identity (same object) or a permutation — both must be
        # stable under re-canonicalisation.
        assert fast.canonicalize(canon) == canon

    def test_msi_protocol_states_agree_between_paths(self):
        """The bundled MSI replica_keys must partition orbits exactly like
        the full orbit search on real protocol states."""
        fast = Permuter.for_single(
            ScalarSet("cache", 3), defs.permute_state,
            replica_keys=defs.replica_keys,
        )
        slow = Permuter.for_single(ScalarSet("cache", 3), defs.permute_state)
        system = build_msi_system(3, symmetry=False)
        seen = []
        frontier = system.initial_states()
        from repro.mc.context import ExecutionContext

        ctx = ExecutionContext()
        while frontier and len(seen) < 60:
            state = frontier.pop()
            seen.append(state)
            for rule in system.rules:
                if rule.guard(state):
                    frontier.extend(rule.fire(state, ctx))
        for state in seen:
            fast_canon = fast.canonicalize(state)
            for mapping in itertools.permutations(range(3)):
                permuted = defs.permute_state(state, mapping)
                assert fast.canonicalize(permuted) == fast_canon
            # Fast and slow agree on whether two states share an orbit.
            assert (fast_canon == fast.canonicalize(seen[0])) == (
                slow.canonicalize(state) == slow.canonicalize(seen[0])
            )
