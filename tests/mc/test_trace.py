"""Tests for Trace construction and formatting."""

import pytest

from repro.mc.trace import Trace, TraceStep


def make_trace():
    return Trace(
        [
            TraceStep(None, "s0"),
            TraceStep("r1", "s1"),
            TraceStep("r2", "s2"),
        ]
    )


def test_length_counts_transitions():
    assert len(make_trace()) == 2


def test_endpoints():
    trace = make_trace()
    assert trace.initial_state == "s0"
    assert trace.final_state == "s2"


def test_rule_names():
    assert make_trace().rule_names == ["r1", "r2"]


def test_rejects_empty():
    with pytest.raises(ValueError):
        Trace([])


def test_rejects_rule_on_first_step():
    with pytest.raises(ValueError):
        Trace([TraceStep("r", "s0")])


def test_single_state_trace():
    trace = Trace([TraceStep(None, "s0")])
    assert len(trace) == 0
    assert trace.final_state == "s0"


def test_equality_and_hash():
    assert make_trace() == make_trace()
    assert hash(make_trace()) == hash(make_trace())


def test_format_contains_states_and_rules():
    text = make_trace().format()
    assert "<initial>" in text
    assert "r1" in text
    assert "'s2'" in text


def test_iteration():
    assert [step.state for step in make_trace()] == ["s0", "s1", "s2"]
