"""Tests for property objects."""

import pytest

from repro.errors import ModelError
from repro.mc.properties import CoverageProperty, DeadlockPolicy, Invariant


def test_invariant_holds():
    invariant = Invariant("positive", lambda s: s > 0)
    assert invariant.holds(1)
    assert not invariant.holds(0)


def test_invariant_requires_name():
    with pytest.raises(ModelError):
        Invariant("", lambda s: True)


def test_coverage_satisfied_by():
    prop = CoverageProperty("sees-three", lambda s: s == 3)
    assert prop.satisfied_by(3)
    assert not prop.satisfied_by(2)


def test_coverage_requires_name():
    with pytest.raises(ModelError):
        CoverageProperty("", lambda s: True)


def test_deadlock_fail_policy():
    assert DeadlockPolicy.fail().is_deadlock("anything")


def test_deadlock_allow_policy():
    assert not DeadlockPolicy.allow().is_deadlock("anything")


def test_deadlock_quiescent_whitelist():
    policy = DeadlockPolicy.fail(quiescent=lambda s: s == "done")
    assert not policy.is_deadlock("done")
    assert policy.is_deadlock("stuck")


def test_reprs_include_names():
    assert "positive" in repr(Invariant("positive", lambda s: True))
    assert "fail" in repr(DeadlockPolicy.fail())
