"""Tests for execution contexts and hole resolvers."""

import pytest

from repro.core.action import Action
from repro.core.hole import Hole
from repro.errors import ModelError, WildcardEncountered
from repro.mc.context import ExecutionContext, FixedResolver, NullResolver


@pytest.fixture
def hole():
    return Hole("h", [Action("a"), Action("b")])


def test_null_resolver_rejects_holes(hole):
    ctx = ExecutionContext(NullResolver())
    with pytest.raises(ModelError):
        ctx.resolve(hole)


def test_default_context_uses_null_resolver(hole):
    with pytest.raises(ModelError):
        ExecutionContext().resolve(hole)


def test_fixed_resolver_by_object(hole):
    ctx = ExecutionContext(FixedResolver({hole: hole.domain[1]}))
    assert ctx.resolve(hole).name == "b"


def test_fixed_resolver_by_name(hole):
    ctx = ExecutionContext(FixedResolver({"h": hole.domain[0]}))
    assert ctx.resolve(hole).name == "a"


def test_fixed_resolver_strict_missing(hole):
    ctx = ExecutionContext(FixedResolver({}))
    with pytest.raises(ModelError):
        ctx.resolve(hole)


def test_fixed_resolver_lenient_missing_is_wildcard(hole):
    ctx = ExecutionContext(FixedResolver({}, strict=False))
    with pytest.raises(WildcardEncountered):
        ctx.resolve(hole)
    assert ctx.run_wildcard_encountered
    assert ctx.firing_hit_wildcard


def test_context_tracks_executed_holes(hole):
    other = Hole("g", [Action("x")])
    resolver = FixedResolver({hole: hole.domain[0], other: other.domain[0]})
    ctx = ExecutionContext(resolver)
    ctx.begin_firing()
    ctx.resolve(hole)
    assert ctx.firing_executed_holes == frozenset({hole})
    ctx.begin_firing()
    ctx.resolve(other)
    assert ctx.firing_executed_holes == frozenset({other})
    assert ctx.run_executed_holes == {hole, other}


def test_begin_firing_resets_wildcard_flag(hole):
    ctx = ExecutionContext(FixedResolver({}, strict=False))
    with pytest.raises(WildcardEncountered):
        ctx.resolve(hole)
    ctx.begin_firing()
    assert not ctx.firing_hit_wildcard
    assert ctx.run_wildcard_encountered  # run-level flag persists
