"""Round-trip and group-action tests for the packed-state codecs.

Every catalog protocol carries a :class:`~repro.mc.packed.PackedSpec`;
these tests pin the two properties the packed kernel's exactness rests
on, over randomly simulated (raw, non-canonical) reachable states:

* ``decode(encode(s)) == s`` — the fixed-layout vector loses nothing;
* the codec's table-driven remap is the *same group action* as the
  object layer's permutation — directly (``decode(remap(encode(s), m))
  == permute(s, m)``) where the protocol exposes its permute function,
  and via orbit-partition agreement with ``system.canonicalize``
  everywhere.
"""

from __future__ import annotations

import random

import pytest

from repro.mc.simulate import simulate
from repro.protocols import german, mutex, vi
from repro.protocols.catalog import PROTOCOL_CATALOG, build_protocol
from repro.protocols.msi.defs import permute_state

CASES = [
    (name, replicas)
    for name in sorted(PROTOCOL_CATALOG)
    for replicas in (2, 3)
]


def _raw_states(system, seed: int, walks: int = 6, steps: int = 40):
    """Distinct raw states from seeded random walks (non-canonical)."""
    states, seen = [], set()
    for index in range(walks):
        result = simulate(system, max_steps=steps, seed=seed + index)
        for step in result.trace.steps:
            if step.state not in seen:
                seen.add(step.state)
                states.append(step.state)
    return states


def _dsl_permute(rename_glob):
    """The builder's object permute, reconstructed for a DSL protocol."""

    def permute(state, mapping):
        procs, glob, net = state
        return (procs.renamed(mapping), rename_glob(glob, mapping),
                net.renamed(mapping))

    return permute


#: protocol name -> the object layer's permute function (None where the
#: protocol keeps it private; those still get the partition test)
OBJECT_PERMUTES = {
    "msi": permute_state,
    "mesi": permute_state,
    "moesi": permute_state,
    "mutex": _dsl_permute(mutex._rename_glob),
    "vi": _dsl_permute(vi._rename_glob),
    "german": _dsl_permute(german._rename_glob),
}


@pytest.mark.parametrize("name,replicas", CASES)
def test_encode_decode_round_trip(name, replicas):
    system = build_protocol(name, replicas)
    codec = system.packed_spec.codec
    states = _raw_states(system, seed=replicas * 1000 + len(name))
    assert states
    for state in states:
        codes = codec.encode(state)
        assert len(codes) == codec.width
        assert codec.decode(codes) == state
        assert codec.encode(codec.decode(codes)) == codes


@pytest.mark.parametrize("name,replicas", CASES)
def test_remap_matches_object_permute(name, replicas):
    system = build_protocol(name, replicas)
    codec = system.packed_spec.codec
    permute = OBJECT_PERMUTES[name]
    rng = random.Random(replicas * 100 + len(name))
    states = _raw_states(system, seed=replicas)
    for state in rng.sample(states, min(len(states), 25)):
        codes = codec.encode(state)
        for mapping in codec.mappings:
            assert codec.decode(codec.remap(codes, mapping)) == permute(
                state, mapping
            ), (name, state, mapping)


@pytest.mark.parametrize("name,replicas", CASES)
def test_canonical_codes_invariant_under_remap(name, replicas):
    system = build_protocol(name, replicas)
    codec = system.packed_spec.codec
    for state in _raw_states(system, seed=7 * replicas)[:40]:
        codes = codec.encode(state)
        canon = codec.canonical_codes(codes)
        for mapping in codec.mappings:
            assert codec.canonical_codes(codec.remap(codes, mapping)) == canon


@pytest.mark.parametrize("name,replicas", CASES)
def test_orbit_partition_matches_object_canonicalizer(name, replicas):
    """Packed and object canonicalisation induce the same partition.

    The representatives may differ (the object layer may use the
    sorted-replica fast path; the codec takes the minimal vector), but
    two states must share a packed canonical form exactly when they
    share an object one — that is what makes packed verdicts and state
    counts identical.
    """
    system = build_protocol(name, replicas)
    if system.canonicalize is None:
        pytest.skip("symmetry disabled for this configuration")
    codec = system.packed_spec.codec
    states = _raw_states(system, seed=replicas + 13, walks=8)
    packed_groups, object_groups = {}, {}
    for index, state in enumerate(states):
        packed_groups.setdefault(
            codec.canonical_codes(codec.encode(state)), set()
        ).add(index)
        object_groups.setdefault(system.canonicalize(state), set()).add(index)
    assert sorted(map(sorted, packed_groups.values())) == sorted(
        map(sorted, object_groups.values())
    )
