"""Tests for scalarset symmetry reduction."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.mc.multiset import Multiset
from repro.mc.symmetry import Permuter, ScalarSet
from repro.mc.state import state_key


def permute_caches(state, mapping):
    """State shape: (tuple-of-cache-states, owner-or-None, net multiset)."""
    caches, owner, net = state
    new_caches = list(caches)
    for old_index, cache in enumerate(caches):
        new_caches[mapping[old_index]] = cache
    new_owner = None if owner is None else mapping[owner]
    new_net = net.map(lambda msg: (msg[0], mapping[msg[1]]))
    return tuple(new_caches), new_owner, new_net


def make_state(caches, owner, messages):
    return tuple(caches), owner, Multiset(messages)


class TestScalarSet:
    def test_rejects_non_positive_size(self):
        with pytest.raises(ModelError):
            ScalarSet("c", 0)

    def test_permutations_count(self):
        assert len(ScalarSet("c", 3).permutations()) == 6

    def test_identity_first(self):
        assert ScalarSet("c", 3).permutations()[0] == (0, 1, 2)


class TestPermuter:
    @pytest.fixture
    def permuter(self):
        return Permuter.for_single(ScalarSet("cache", 3), permute_caches)

    def test_orbit_size(self, permuter):
        assert permuter.orbit_size == 6

    def test_canonical_form_is_orbit_member(self, permuter):
        state = make_state(["M", "I", "S"], 0, [("Data", 2)])
        orbit_keys = {state_key(s) for s in permuter.orbit(state)}
        assert state_key(permuter.canonicalize(state)) in orbit_keys

    def test_canonical_form_invariant_under_permutation(self, permuter):
        state = make_state(["M", "I", "S"], 0, [("Data", 2)])
        canon = permuter.canonicalize(state)
        for mapping in itertools.permutations(range(3)):
            permuted = permute_caches(state, mapping)
            assert permuter.canonicalize(permuted) == canon

    def test_distinct_orbits_stay_distinct(self, permuter):
        one_m = make_state(["M", "I", "I"], 0, [])
        two_m = make_state(["M", "M", "I"], 0, [])
        assert permuter.canonicalize(one_m) != permuter.canonicalize(two_m)

    def test_owner_renamed_consistently(self, permuter):
        # Owner must follow its cache through the permutation.
        state = make_state(["M", "I", "I"], 0, [])
        canon = permuter.canonicalize(state)
        caches, owner, _net = canon
        assert caches[owner] == "M"

    @given(
        st.lists(st.sampled_from(["I", "S", "M"]), min_size=3, max_size=3),
        st.integers(min_value=0, max_value=2),
        st.lists(
            st.tuples(st.sampled_from(["Data", "Inv"]), st.integers(0, 2)),
            max_size=3,
        ),
    )
    def test_property_canonical_invariance(self, caches, owner, messages):
        permuter = Permuter.for_single(ScalarSet("cache", 3), permute_caches)
        state = make_state(caches, owner, messages)
        canon = permuter.canonicalize(state)
        for mapping in itertools.permutations(range(3)):
            assert permuter.canonicalize(permute_caches(state, mapping)) == canon


class TestMultipleScalarsets:
    def test_product_group(self):
        # Two independent scalarsets of sizes 2 and 3 -> 2! * 3! = 12 mappings.
        def permute(state, mappings):
            first, second = mappings
            a, b = state
            return (tuple(sorted(first[x] for x in a)), tuple(sorted(second[y] for y in b)))

        permuter = Permuter(
            [ScalarSet("a", 2), ScalarSet("b", 3)],
            permute,
        )
        assert permuter.orbit_size == 12
