"""Tests for random simulation."""

from repro.mc.properties import Invariant
from repro.mc.rule import Rule
from repro.mc.simulate import simulate
from repro.mc.system import TransitionSystem


def chain_system(invariants=()):
    return TransitionSystem(
        name="chain",
        initial_states=[0],
        rules=[
            Rule("inc", guard=lambda s: s < 3, apply=lambda s, ctx: [s + 1]),
        ],
        invariants=invariants,
    )


def test_simulation_reaches_deadlock():
    result = simulate(chain_system(), max_steps=10, seed=1)
    assert result.deadlocked
    assert result.trace.final_state == 3


def test_simulation_detects_violation():
    system = chain_system(invariants=[Invariant("lt2", lambda s: s < 2)])
    result = simulate(system, max_steps=10, seed=1)
    assert result.violated_invariant == "lt2"
    assert result.trace.final_state == 2


def test_simulation_respects_step_limit():
    system = TransitionSystem(
        name="loop",
        initial_states=[0],
        rules=[Rule("flip", guard=lambda s: True, apply=lambda s, ctx: [1 - s])],
    )
    result = simulate(system, max_steps=7, seed=3)
    assert result.steps_taken == 7
    assert not result.deadlocked


def test_simulation_deterministic_with_seed():
    first = simulate(chain_system(), max_steps=10, seed=42)
    second = simulate(chain_system(), max_steps=10, seed=42)
    assert [s.state for s in first.trace] == [s.state for s in second.trace]


def test_initial_state_violation():
    system = TransitionSystem(
        name="bad",
        initial_states=[5],
        rules=[Rule("noop", guard=lambda s: True, apply=lambda s, ctx: [s])],
        invariants=[Invariant("ne5", lambda s: s != 5)],
    )
    result = simulate(system, seed=0)
    assert result.violated_invariant == "ne5"
    assert result.steps_taken == 0
