"""Tests for the BFS explorer: verdicts, minimal traces, wildcard semantics."""


from repro.core.action import Action
from repro.core.hole import Hole
from repro.mc.bfs import BfsExplorer, ExplorationLimits
from repro.mc.context import FixedResolver
from repro.mc.graph import StateGraph
from repro.mc.properties import CoverageProperty, DeadlockPolicy, Invariant
from repro.mc.result import FailureKind, Verdict
from repro.mc.rule import Rule
from repro.mc.system import TransitionSystem


def counter_system(limit=5, invariants=(), coverage=(), deadlock=None):
    """0 -> 1 -> ... -> limit, with a self-loop at the end."""
    return TransitionSystem(
        name="counter",
        initial_states=[0],
        rules=[
            Rule("inc", guard=lambda s: s < limit, apply=lambda s, ctx: [s + 1]),
            Rule("stay", guard=lambda s: s == limit, apply=lambda s, ctx: [s]),
        ],
        invariants=invariants,
        coverage=coverage,
        deadlock=deadlock or DeadlockPolicy.fail(),
    )


class TestVerdicts:
    def test_success_on_clean_system(self):
        result = BfsExplorer(counter_system()).run()
        assert result.verdict is Verdict.SUCCESS
        assert result.stats.states_visited == 6

    def test_invariant_failure(self):
        system = counter_system(invariants=[Invariant("small", lambda s: s < 3)])
        result = BfsExplorer(system).run()
        assert result.verdict is Verdict.FAILURE
        assert result.failure_kind is FailureKind.INVARIANT
        assert "small" in result.message

    def test_invariant_checked_on_initial_state(self):
        system = TransitionSystem(
            name="bad-init",
            initial_states=[99],
            rules=[Rule("noop", guard=lambda s: True, apply=lambda s, ctx: [s])],
            invariants=[Invariant("not-99", lambda s: s != 99)],
        )
        result = BfsExplorer(system).run()
        assert result.is_failure
        assert len(result.trace) == 0  # violation in the initial state itself

    def test_deadlock_failure(self):
        system = TransitionSystem(
            name="dead",
            initial_states=[0],
            rules=[Rule("inc", guard=lambda s: s < 2, apply=lambda s, ctx: [s + 1])],
        )
        result = BfsExplorer(system).run()
        assert result.verdict is Verdict.FAILURE
        assert result.failure_kind is FailureKind.DEADLOCK
        assert result.trace.final_state == 2

    def test_quiescent_state_is_not_deadlock(self):
        system = TransitionSystem(
            name="quiet",
            initial_states=[0],
            rules=[Rule("inc", guard=lambda s: s < 2, apply=lambda s, ctx: [s + 1])],
            deadlock=DeadlockPolicy.fail(quiescent=lambda s: s == 2),
        )
        assert BfsExplorer(system).run().verdict is Verdict.SUCCESS

    def test_deadlock_allow_policy(self):
        system = TransitionSystem(
            name="quiet",
            initial_states=[0],
            rules=[Rule("inc", guard=lambda s: s < 2, apply=lambda s, ctx: [s + 1])],
            deadlock=DeadlockPolicy.allow(),
        )
        assert BfsExplorer(system).run().verdict is Verdict.SUCCESS

    def test_coverage_met(self):
        system = counter_system(coverage=[CoverageProperty("reaches-5", lambda s: s == 5)])
        assert BfsExplorer(system).run().verdict is Verdict.SUCCESS

    def test_coverage_unmet_is_failure_without_wildcards(self):
        system = counter_system(coverage=[CoverageProperty("reaches-9", lambda s: s == 9)])
        result = BfsExplorer(system).run()
        assert result.verdict is Verdict.FAILURE
        assert result.failure_kind is FailureKind.COVERAGE
        assert result.unmet_coverage == ("reaches-9",)


class TestMinimalTraces:
    def test_trace_is_shortest_path(self):
        # Two paths to the violation: a long chain and a short jump.
        def apply_jump(s, ctx):
            return [10]

        system = TransitionSystem(
            name="shortcut",
            initial_states=[0],
            rules=[
                Rule("inc", guard=lambda s: 0 <= s < 10, apply=lambda s, ctx: [s + 1]),
                Rule("jump", guard=lambda s: s == 0, apply=apply_jump),
                Rule("stay", guard=lambda s: s == 10, apply=lambda s, ctx: [s]),
            ],
            invariants=[Invariant("not-ten", lambda s: s != 10)],
        )
        result = BfsExplorer(system).run()
        assert result.is_failure
        assert len(result.trace) == 1
        assert result.trace.rule_names == ["jump"]

    def test_trace_states_form_a_path(self):
        system = counter_system(invariants=[Invariant("small", lambda s: s < 4)])
        trace = BfsExplorer(system).run().trace
        states = [step.state for step in trace]
        assert states == [0, 1, 2, 3, 4]

    def test_traces_disabled(self):
        system = counter_system(invariants=[Invariant("small", lambda s: s < 4)])
        result = BfsExplorer(system, record_traces=False).run()
        assert result.is_failure
        assert result.trace is None


class TestWildcards:
    def make_holed_system(self):
        hole = Hole("h", [Action("go"), Action("stop")])

        def apply(s, ctx):
            act = ctx.resolve(hole)
            return [s + 1] if act.name == "go" else [s]

        system = TransitionSystem(
            name="holed",
            initial_states=[0],
            rules=[
                Rule("step", guard=lambda s: s < 2, apply=apply),
                Rule("stay", guard=lambda s: s >= 2, apply=lambda s, ctx: [s]),
            ],
            invariants=[Invariant("small", lambda s: s < 10)],
        )
        return system, hole

    def test_wildcard_yields_unknown(self):
        system, _hole = self.make_holed_system()
        result = BfsExplorer(system, resolver=FixedResolver({}, strict=False)).run()
        assert result.verdict is Verdict.UNKNOWN
        assert result.wildcard_encountered
        assert result.stats.wildcard_cuts >= 1

    def test_wildcard_cut_state_is_not_deadlock(self):
        system, _hole = self.make_holed_system()
        # The initial state's only rule is wildcard-cut: must be UNKNOWN,
        # not a deadlock failure.
        result = BfsExplorer(system, resolver=FixedResolver({}, strict=False)).run()
        assert result.verdict is Verdict.UNKNOWN

    def test_assigned_hole_explores_fully(self):
        system, hole = self.make_holed_system()
        resolver = FixedResolver({hole: hole.domain[0]})
        result = BfsExplorer(system, resolver=resolver).run()
        assert result.verdict is Verdict.SUCCESS
        assert result.executed_holes == frozenset({hole})

    def test_unmet_coverage_with_wildcards_is_unknown(self):
        system, _hole = self.make_holed_system()
        system.coverage.append(CoverageProperty("reach-2", lambda s: s == 2))
        result = BfsExplorer(system, resolver=FixedResolver({}, strict=False)).run()
        assert result.verdict is Verdict.UNKNOWN
        assert result.unmet_coverage == ("reach-2",)


class TestLimitsAndCanonicalisation:
    def test_max_states_truncates_to_unknown(self):
        result = BfsExplorer(
            counter_system(limit=1000),
            limits=ExplorationLimits(max_states=10),
        ).run()
        assert result.verdict is Verdict.UNKNOWN
        assert result.stats.truncated

    def test_max_depth_truncates_to_unknown(self):
        result = BfsExplorer(
            counter_system(limit=1000),
            limits=ExplorationLimits(max_depth=3),
        ).run()
        assert result.verdict is Verdict.UNKNOWN

    def test_failure_beats_truncation(self):
        system = counter_system(
            limit=1000, invariants=[Invariant("tiny", lambda s: s < 2)]
        )
        result = BfsExplorer(system, limits=ExplorationLimits(max_states=500)).run()
        assert result.verdict is Verdict.FAILURE

    def test_canonicalisation_merges_states(self):
        # States n and -n are symmetric; canonicalise to abs().
        system = TransitionSystem(
            name="mirror",
            initial_states=[0],
            rules=[
                Rule("up", guard=lambda s: abs(s) < 4, apply=lambda s, ctx: [s + 1]),
                Rule("down", guard=lambda s: abs(s) < 4, apply=lambda s, ctx: [s - 1]),
                Rule("stay", guard=lambda s: abs(s) >= 4, apply=lambda s, ctx: [s]),
            ],
            canonicalize=abs,
        )
        result = BfsExplorer(system).run()
        assert result.verdict is Verdict.SUCCESS
        assert result.stats.states_visited == 5  # 0..4 instead of -4..4

    def test_graph_capture(self):
        graph = StateGraph()
        BfsExplorer(counter_system(limit=3), capture_graph=graph).run()
        assert graph.num_states == 4
        assert (3, 3, "stay") in graph.edges
        assert "digraph" in graph.to_dot()
