"""Tests for deterministic state fingerprints."""

from hypothesis import given
from hypothesis import strategies as st

from repro.mc.hashing import fingerprint_bytes, fingerprint_state, fingerprint_state_set


def test_fingerprint_bytes_known_value():
    # FNV-1a of empty input is the offset basis.
    assert fingerprint_bytes(b"") == 0xCBF29CE484222325


def test_fingerprint_bytes_differs():
    assert fingerprint_bytes(b"a") != fingerprint_bytes(b"b")


def _reference_fnv1a(data: bytes) -> int:
    """The textbook byte-at-a-time FNV-1a loop, kept as the oracle."""
    value = 0xCBF29CE484222325
    for byte in data:
        value = ((value ^ byte) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value


def test_chunked_mix_matches_per_byte_reference():
    # The production loop reads 8-byte chunks (int.from_bytes) and
    # unrolls the per-byte mixing; it must stay byte-for-byte identical
    # to the reference loop on fixed vectors covering every tail length
    # and both chunked and unchunked sizes.
    vectors = [
        b"",
        b"\x00",
        b"\xff" * 7,
        b"\x00\x01\x02\x03\x04\x05\x06\x07",
        b"chongo was here!\n",  # 17 bytes: two chunks + 1-byte tail
        bytes(range(256)),
        b"a" * 64,
        b"\x80" + b"\x00" * 14 + b"\x01",
    ]
    for data in vectors:
        assert fingerprint_bytes(data) == _reference_fnv1a(data), data


@given(st.binary(max_size=40))
def test_chunked_mix_matches_reference_property(data):
    assert fingerprint_bytes(data) == _reference_fnv1a(data)


def test_state_fingerprint_deterministic():
    state = (("I", "M"), 0)
    assert fingerprint_state(state) == fingerprint_state(state)


def test_state_fingerprint_pinned_value():
    # Pinned literal: guards cross-process AND cross-version determinism of
    # the tuple-walk encoding (behavioural solution groups are compared
    # across worker processes and across stored artifacts by these values).
    # If a deliberate encoding change breaks this, bump the literal and note
    # that stored fingerprints lose comparability.
    assert fingerprint_state((("I", "M"), 0)) == 0xB46E666138F2477A


def test_structural_prefix_freedom():
    # The tuple walk must not collide values whose flat text agrees.
    assert fingerprint_state(("ab",)) != fingerprint_state(("a", "b"))
    assert fingerprint_state((1,)) != fingerprint_state(("1",))
    assert fingerprint_state((12,)) != fingerprint_state((1, 2))
    # Variable-width int payloads must not re-align across boundaries
    # (regression: a constructed collision before the length prefix).
    assert fingerprint_state(
        (5, 99832540237137117736)
    ) != fingerprint_state((1945297886358876071941, 5))


def test_state_fingerprint_distinguishes():
    assert fingerprint_state(("I",)) != fingerprint_state(("M",))


def test_set_fingerprint_order_independent():
    states = [("I",), ("S",), ("M",)]
    assert fingerprint_state_set(states) == fingerprint_state_set(reversed(states))


def test_set_fingerprint_sensitive_to_content():
    assert fingerprint_state_set([("I",)]) != fingerprint_state_set([("M",)])


def test_set_fingerprint_sensitive_to_count():
    # XOR alone would cancel duplicates; the count mix-in must not.
    assert fingerprint_state_set([]) != fingerprint_state_set([("I",), ("I",)])


@given(st.lists(st.tuples(st.integers(), st.text(max_size=3)), max_size=8))
def test_set_fingerprint_permutation_property(states):
    import random

    shuffled = list(states)
    random.Random(0).shuffle(shuffled)
    assert fingerprint_state_set(states) == fingerprint_state_set(shuffled)
