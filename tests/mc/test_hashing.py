"""Tests for deterministic state fingerprints."""

from hypothesis import given
from hypothesis import strategies as st

from repro.mc.hashing import fingerprint_bytes, fingerprint_state, fingerprint_state_set


def test_fingerprint_bytes_known_value():
    # FNV-1a of empty input is the offset basis.
    assert fingerprint_bytes(b"") == 0xCBF29CE484222325


def test_fingerprint_bytes_differs():
    assert fingerprint_bytes(b"a") != fingerprint_bytes(b"b")


def test_state_fingerprint_deterministic():
    state = (("I", "M"), 0)
    assert fingerprint_state(state) == fingerprint_state(state)


def test_state_fingerprint_pinned_value():
    # Pinned literal: guards cross-process AND cross-version determinism of
    # the tuple-walk encoding (behavioural solution groups are compared
    # across worker processes and across stored artifacts by these values).
    # If a deliberate encoding change breaks this, bump the literal and note
    # that stored fingerprints lose comparability.
    assert fingerprint_state((("I", "M"), 0)) == 0xB46E666138F2477A


def test_structural_prefix_freedom():
    # The tuple walk must not collide values whose flat text agrees.
    assert fingerprint_state(("ab",)) != fingerprint_state(("a", "b"))
    assert fingerprint_state((1,)) != fingerprint_state(("1",))
    assert fingerprint_state((12,)) != fingerprint_state((1, 2))
    # Variable-width int payloads must not re-align across boundaries
    # (regression: a constructed collision before the length prefix).
    assert fingerprint_state(
        (5, 99832540237137117736)
    ) != fingerprint_state((1945297886358876071941, 5))


def test_state_fingerprint_distinguishes():
    assert fingerprint_state(("I",)) != fingerprint_state(("M",))


def test_set_fingerprint_order_independent():
    states = [("I",), ("S",), ("M",)]
    assert fingerprint_state_set(states) == fingerprint_state_set(reversed(states))


def test_set_fingerprint_sensitive_to_content():
    assert fingerprint_state_set([("I",)]) != fingerprint_state_set([("M",)])


def test_set_fingerprint_sensitive_to_count():
    # XOR alone would cancel duplicates; the count mix-in must not.
    assert fingerprint_state_set([]) != fingerprint_state_set([("I",), ("I",)])


@given(st.lists(st.tuples(st.integers(), st.text(max_size=3)), max_size=8))
def test_set_fingerprint_permutation_property(states):
    import random

    shuffled = list(states)
    random.Random(0).shuffle(shuffled)
    assert fingerprint_state_set(states) == fingerprint_state_set(shuffled)
