"""Tests for solution grouping, run comparisons, and table rendering."""

import pytest

from repro.analysis.grouping import describe_groups, group_solutions
from repro.analysis.stats import (
    RunComparison,
    compare_reports,
    estimate_naive_seconds,
    pattern_economy,
)
from repro.analysis.tables import format_table, render_table1_row
from repro.core.report import Solution, SynthesisReport
from repro.core.hole import Hole
from repro.core.action import Action


def solution(digits, states, fingerprint=None, run_index=1):
    return Solution(
        digits=tuple(digits),
        assignment=tuple((f"h{i}", f"a{d}") for i, d in enumerate(digits)),
        states_visited=states,
        fingerprint=fingerprint,
        run_index=run_index,
    )


class TestGrouping:
    def test_groups_by_fingerprint(self):
        solutions = [
            solution([0], 100, fingerprint=1),
            solution([1], 100, fingerprint=1),
            solution([2], 120, fingerprint=2),
        ]
        groups = group_solutions(solutions)
        assert [group.size for group in groups] == [1, 2]
        assert groups[0].states_visited == 120

    def test_groups_by_state_count_fallback(self):
        solutions = [solution([0], 50), solution([1], 50), solution([2], 60)]
        groups = group_solutions(solutions)
        assert [(g.states_visited, g.size) for g in groups] == [(60, 1), (50, 2)]

    def test_empty(self):
        assert group_solutions([]) == []

    def test_describe_groups(self):
        report = SynthesisReport(system_name="s", pruning=True, threads=1)
        report.holes = [Hole("h0", [Action("a0"), Action("a1"), Action("a2")])]
        report.solutions = [solution([0], 10), solution([1], 10)]
        text = describe_groups(report)
        assert "2 solutions in 1 behavioural group(s)" in text
        assert "10 visited states" in text


class TestComparisons:
    def test_reduction_and_speedup(self):
        comparison = RunComparison(
            baseline_evaluated=231_525,
            optimised_evaluated=855,
            baseline_seconds=64.5,
            optimised_seconds=1.8,
        )
        assert comparison.evaluated_reduction == pytest.approx(0.9963, abs=1e-4)
        assert comparison.speedup == pytest.approx(35.8, abs=0.1)

    def test_compare_reports(self):
        baseline = SynthesisReport(system_name="s", pruning=False, threads=1)
        baseline.evaluated = 100
        baseline.elapsed_seconds = 10.0
        optimised = SynthesisReport(system_name="s", pruning=True, threads=1)
        optimised.evaluated = 10
        optimised.elapsed_seconds = 1.0
        comparison = compare_reports(baseline, optimised)
        assert comparison.evaluated_reduction == pytest.approx(0.9)
        assert comparison.speedup == pytest.approx(10.0)
        assert "90.0% reduction" in comparison.summary()

    def test_pattern_economy(self):
        report = SynthesisReport(system_name="s", pruning=True, threads=1)
        report.pruned_failure = 120
        report.failure_patterns = 4
        assert pattern_economy(report) == pytest.approx(30.0)
        report.failure_patterns = 0
        assert pattern_economy(report) == 0.0

    def test_estimated_baseline_flagged(self):
        comparison = RunComparison(10, 1, 5.0, 1.0, baseline_estimated=True)
        assert "estimated" in comparison.summary()

    def test_estimate_naive_seconds(self):
        assert estimate_naive_seconds(1000, 10, 1.0) == pytest.approx(100.0)
        with pytest.raises(ValueError):
            estimate_naive_seconds(1000, 0, 1.0)

    def test_sample_candidate_cost(self):
        from repro.analysis.stats import sample_candidate_cost
        from repro.protocols.msi import msi_tiny

        sample = sample_candidate_cost(msi_tiny(n_caches=2), samples=3, seed=1)
        assert sample["samples"] == 3
        assert sample["mean_seconds"] > 0
        with pytest.raises(ValueError):
            sample_candidate_cost(msi_tiny(n_caches=2), samples=0)


class TestTables:
    def make_report(self):
        report = SynthesisReport(system_name="msi", pruning=True, threads=1)
        report.holes = [Hole(f"h{i}", [Action("x"), Action("y")]) for i in range(3)]
        report.evaluated = 42
        report.failure_patterns = 7
        report.elapsed_seconds = 1.25
        return report

    def test_row_contents(self):
        row = render_table1_row("msi-small 1 thread, pruning", self.make_report())
        assert row["Holes"] == 3
        assert row["Candidates"] == 27  # (2+1)^3 wildcard space for pruning
        assert row["Pruning Patterns"] == 7
        assert row["Evaluated"] == 42

    def test_naive_row_uses_plain_space(self):
        report = self.make_report()
        report.pruning = False
        row = render_table1_row("naive", report)
        assert row["Candidates"] == 8  # 2^3
        assert row["Pruning Patterns"] is None

    def test_overrides_and_estimation(self):
        row = render_table1_row(
            "naive", self.make_report(), evaluated_override=99,
            seconds_override=12.5, estimated=True,
        )
        assert row["Evaluated"] == 99
        assert row["Exec. Time"] == 12.5
        assert "estimated" in row["Configuration"]

    def test_format_table_alignment(self):
        rows = [
            render_table1_row("cfg-a", self.make_report()),
            render_table1_row("cfg-b", self.make_report()),
        ]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert lines[0].startswith("Configuration")
        assert "N/A" not in text
        assert "1.2s" in text  # time formatting
        assert len({len(line) for line in lines}) <= 2  # aligned

    def test_format_table_handles_none(self):
        report = self.make_report()
        report.pruning = False
        text = format_table([render_table1_row("naive", report)])
        assert "N/A" in text
