"""Tests for the throttled progress reporter."""

import io

from repro.obs.progress import ProgressReporter


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TtyStream(io.StringIO):
    def isatty(self):
        return True


def make(stream=None, interval=1.0, tracer=None):
    clock = FakeClock()
    stream = stream if stream is not None else io.StringIO()
    reporter = ProgressReporter(
        interval=interval, stream=stream, tracer=tracer, clock=clock
    )
    return reporter, stream, clock


class TestThrottle:
    def test_first_tick_emits_immediately(self):
        reporter, stream, _clock = make()
        assert reporter.tick(states=10) is True
        assert "states=10" in stream.getvalue()

    def test_ticks_within_interval_suppressed(self):
        reporter, stream, clock = make()
        reporter.tick(states=1)
        clock.now = 0.5
        assert reporter.tick(states=2) is False
        assert reporter.emissions == 1
        clock.now = 1.5
        assert reporter.tick(states=3) is True
        assert reporter.emissions == 2

    def test_suppressed_fields_accumulate_last_value_wins(self):
        reporter, stream, clock = make()
        reporter.tick(states=1)
        clock.now = 0.2
        reporter.tick(states=5)
        clock.now = 0.4
        reporter.tick(evaluated=3)  # different source, same line
        clock.now = 1.5
        reporter.tick(states=9)
        last_line = stream.getvalue().strip().splitlines()[-1]
        assert "states=9" in last_line
        assert "evaluated=3" in last_line

    def test_thousands_separators(self):
        reporter, stream, _clock = make()
        reporter.tick(states=1234567)
        assert "states=1,234,567" in stream.getvalue()


class TestRendering:
    def test_non_tty_writes_newline_lines(self):
        reporter, stream, clock = make()
        reporter.tick(states=1)
        clock.now = 2.0
        reporter.tick(states=2)
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert all(line.startswith("[progress]") for line in lines)

    def test_tty_rewrites_in_place(self):
        reporter, stream, _clock = make(stream=TtyStream())
        reporter.tick(states=1)
        text = stream.getvalue()
        assert text.startswith("\r")
        assert "\n" not in text

    def test_finish_closes_tty_line(self):
        reporter, stream, _clock = make(stream=TtyStream())
        reporter.tick(states=1)
        reporter.finish(solutions=3)
        assert stream.getvalue().endswith("\n")

    def test_finish_flushes_pending_fields(self):
        reporter, stream, clock = make()
        reporter.tick(states=1)
        clock.now = 0.5
        reporter.tick(states=7)  # suppressed
        reporter.finish()
        assert "states=7" in stream.getvalue().splitlines()[-1]

    def test_broken_stream_is_swallowed(self):
        class Broken:
            def isatty(self):
                return False

            def write(self, _text):
                raise OSError("closed")

            def flush(self):
                raise OSError("closed")

        reporter = ProgressReporter(stream=Broken(), clock=FakeClock())
        assert reporter.tick(states=1) is True  # no raise


class TestTracerBridge:
    def test_emissions_land_in_trace(self):
        class RecordingTracer:
            def __init__(self):
                self.events = []

            def event(self, type_, **fields):
                self.events.append((type_, fields))

        tracer = RecordingTracer()
        reporter, _stream, clock = make(tracer=tracer)
        reporter.tick(states=1)
        clock.now = 0.5
        reporter.tick(states=2)  # suppressed: no trace event either
        assert tracer.events == [("progress", {"states": 1})]
