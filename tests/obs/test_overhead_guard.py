"""Tier-1 guard: disabled telemetry must stay free.

Two layers:

* **structural** — with no telemetry attached, the kernel and engine must
  take the zero-overhead branch: no timing shims, no phase accumulation,
  no per-state attribute traffic.  These assertions are deterministic and
  catch the regression class directly (someone making the disabled path
  do per-state work).
* **recorded-ratio** — ``BENCH_mc.json`` carries the seed-recorded
  ``single_candidate`` timing and the ``telemetry`` section's
  ``telemetry-off`` timing for the *same* workload, measured on the same
  machine by the bench run.  The guard asserts the telemetry-off number
  stays within 3% of that baseline without re-timing anything here, so
  the tier-1 suite stays deterministic.  When the bench reruns (CI's
  non-blocking bench step), both sections refresh together and the ratio
  keeps meaning "no drift between the plain and the telemetry-plumbed
  kernel on identical work".
"""

import json
import os

import pytest

from repro.core import SynthesisConfig, SynthesisEngine
from repro.mc.kernel import make_explorer
from repro.protocols.catalog import PROTOCOL_BUILDERS, build_skeleton

BENCH_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "BENCH_mc.json"
)
#: the issue's acceptance bar: disabled-telemetry single-candidate checks
#: within 3% of the seed timing
OVERHEAD_CEILING = 1.03


class TestStructuralZeroOverhead:
    def test_kernel_without_telemetry_has_no_instrumentation(self):
        explorer = make_explorer("bfs", PROTOCOL_BUILDERS["msi"](2))
        result = explorer.run()
        assert result.is_success
        assert explorer.telemetry is None
        assert explorer.phase_seconds == {}

    def test_engine_without_telemetry_reports_disabled(self):
        report = SynthesisEngine(
            build_skeleton("figure2"), SynthesisConfig()
        ).run()
        assert report.telemetry_enabled is False
        assert report.trace_path is None
        assert report.trace_events == 0

    def test_disabled_config_costs_one_resolution_branch(self):
        from repro.core.engine import resolve_telemetry
        from repro.obs import NULL_TELEMETRY

        resolved, owns = resolve_telemetry(SynthesisConfig(), None)
        assert resolved is NULL_TELEMETRY  # the shared singleton, no alloc
        assert owns is False


class TestRecordedOverheadRatio:
    def _load(self):
        if not os.path.exists(BENCH_PATH):
            pytest.skip("BENCH_mc.json not present")
        data = json.loads(open(BENCH_PATH).read())
        if "telemetry" not in data or "single_candidate" not in data:
            pytest.skip("bench sections not recorded yet")
        return data

    @staticmethod
    def _row(section, config):
        rows = [r for r in section["rows"] if r["config"] == config]
        assert rows, f"missing {config!r} row"
        return rows[0]

    def test_telemetry_off_within_3pct_of_seed_single_candidate(self):
        data = self._load()
        baseline = self._row(data["single_candidate"], "orbit-cache-on")
        off = self._row(data["telemetry"], "telemetry-off")
        # Same workload, same machine: identical state counts prove it.
        assert off["states_per_check"] == baseline["states_per_check"]
        assert data["telemetry"]["repeats"] == data["single_candidate"]["repeats"]
        ratio = off["seconds"] / baseline["seconds"]
        assert ratio <= OVERHEAD_CEILING, (
            f"telemetry-off single-candidate checks took {ratio:.2%} of the "
            f"seed timing ({off['seconds']}s vs {baseline['seconds']}s); "
            f"ceiling is {OVERHEAD_CEILING:.0%}"
        )

    def test_instrumented_overhead_is_recorded_and_bounded(self):
        data = self._load()
        on = self._row(
            data["telemetry"], "telemetry-on (metrics + jsonl trace)"
        )
        assert on["trace_events"] > 0
        assert data["telemetry"]["overhead_on_vs_off"] < 1.0  # never 2x


class TestRecordedPackedFloor:
    """Guard the packed-state kernel's recorded advantage.

    Same recorded-ratio discipline as the telemetry guard: the bench run
    measured packed and object checks of the identical workload on the
    same machine, so the ratio is deterministic here — no re-timing in
    tier-1.  The floor (3x steady-state) is deliberately far below the
    measured ~14x and the bench's own >= 5x gate: this test exists to
    catch the packed path silently falling back to the object kernel or
    losing its memoisation, not to re-litigate the exact multiple.
    """

    def _load(self):
        if not os.path.exists(BENCH_PATH):
            pytest.skip("BENCH_mc.json not present")
        data = json.loads(open(BENCH_PATH).read())
        if "packed" not in data:
            pytest.skip("packed bench section not recorded yet")
        return data["packed"]

    @staticmethod
    def _row(section, config):
        rows = [r for r in section["rows"] if r["config"] == config]
        assert rows, f"missing {config!r} row"
        return rows[0]

    def test_packed_steady_state_floor(self):
        section = self._load()
        baseline = self._row(section, "packed-off (orbit cache on)")
        steady = self._row(section, "packed-on (steady state)")
        # Same workload, same machine: identical state counts prove it.
        assert steady["states_per_check"] == baseline["states_per_check"]
        assert section["speedup_packed_steady"] >= 3.0, (
            f"recorded packed steady-state speedup "
            f"{section['speedup_packed_steady']}x is below the 3x floor "
            f"({baseline['seconds']}s object vs {steady['seconds']}s packed "
            f"over {section['repeats']} checks)"
        )

    def test_packed_cold_start_is_not_a_loss(self):
        section = self._load()
        cold = self._row(section, "packed-on (incl. cold first check)")
        assert cold["states_per_check"] == self._row(
            section, "packed-off (orbit cache on)"
        )["states_per_check"]
        assert section["speedup_packed_cold"] >= 1.0


class TestRecordedFamilyFloor:
    """Guard the family scheduler's recorded shape.

    Same recorded-ratio discipline as the packed guard: the bench run
    measured family and 1-by-1 synthesis of identical workloads on the
    same machine, counts are deterministic, so no re-timing happens in
    tier-1.  Family mode's honest contract is *coverage*, not fewer
    checks (see ``BENCH_mc.json`` section ``family`` and
    docs/architecture.md): the floors guard real candidate avoidance on
    the coarse-structured eviction skeleton and a bounded
    quotient-to-reference check ratio — a broken split heuristic would
    explode interior checks and trip the ceiling."""

    def _rows(self):
        if not os.path.exists(BENCH_PATH):
            pytest.skip("BENCH_mc.json not present")
        data = json.loads(open(BENCH_PATH).read())
        if "family" not in data:
            pytest.skip("family bench section not recorded yet")
        return {row["skeleton"]: row for row in data["family"]["rows"]}

    def test_family_avoidance_floor_on_msi_evict(self):
        rows = self._rows()
        assert "msi-evict" in rows, "family bench lost its showcase row"
        row = rows["msi-evict"]
        # Measured 1,155 avoided member checks on the seed recording.
        assert row["family_candidates_avoided"] >= 500, row
        assert row["family_splits"] > 0, row

    def test_family_quotient_ratio_is_bounded(self):
        for name, row in self._rows().items():
            assert row["quotient_ratio"] <= 2.0, (name, row)
            # The quotient runs are extra work, never lost coverage: the
            # bench already asserted identical solution sets before
            # recording the row.
            assert row["solutions"] > 0, (name, row)
