"""Tests for trace spans, event schema, and the JSONL sink."""

import json
import threading

import pytest

from repro.obs.statsview import load_events
from repro.obs.tracing import JsonlTraceSink, NullSink, Tracer


class RecordingSink:
    path = None

    def __init__(self):
        self.events = []
        self.events_written = 0

    def emit(self, event):
        self.events.append(event)
        self.events_written += 1

    def flush(self):
        pass

    def close(self):
        pass


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestSpans:
    def test_span_start_end_schema(self):
        sink, clock = RecordingSink(), FakeClock()
        tracer = Tracer(sink, clock=clock)
        with tracer.span("explore", protocol="msi") as span:
            clock.now += 2.5
            span.set(verdict="success")
        start, end = sink.events
        assert start["type"] == "span_start"
        assert start["name"] == "explore"
        assert start["protocol"] == "msi"
        assert start["parent"] is None
        assert start["t"] == pytest.approx(0.0)
        assert end["type"] == "span_end"
        assert end["id"] == start["id"]
        assert end["dur"] == pytest.approx(2.5)
        assert end["verdict"] == "success"

    def test_nesting_sets_parent(self):
        sink = RecordingSink()
        tracer = Tracer(sink)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        starts = [e for e in sink.events if e["type"] == "span_start"]
        assert starts[1]["parent"] == outer.span_id
        assert inner.parent == outer.span_id

    def test_default_parent_adopts_worker_threads(self):
        sink = RecordingSink()
        tracer = Tracer(sink)
        with tracer.span("root") as root:
            tracer.default_parent = root.span_id

            def worker():
                with tracer.span("child"):
                    pass

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            tracer.default_parent = None
        child_start = [
            e for e in sink.events
            if e["type"] == "span_start" and e["name"] == "child"
        ][0]
        assert child_start["parent"] == root.span_id

    def test_exception_records_error(self):
        sink = RecordingSink()
        tracer = Tracer(sink)
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        end = sink.events[-1]
        assert end["error"] == "ValueError"

    def test_phase_and_meta_events(self):
        sink = RecordingSink()
        tracer = Tracer(sink)
        tracer.phase("canonicalise", 0.125, states=10)
        tracer.meta(command="verify msi")
        phase, meta = sink.events
        assert phase["type"] == "phase"
        assert phase["name"] == "canonicalise"
        assert phase["seconds"] == pytest.approx(0.125)
        assert phase["states"] == 10
        assert meta["type"] == "meta"
        assert meta["command"] == "verify msi"

    def test_unserialisable_attrs_coerced(self):
        sink = RecordingSink()
        tracer = Tracer(sink)
        with tracer.span("s", thing=object(), seq=(1, 2)):
            pass
        start = sink.events[0]
        assert isinstance(start["thing"], str)
        assert start["seq"] == [1, 2]
        json.dumps(sink.events)  # everything JSON-clean


class TestJsonlSink:
    def test_events_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonlTraceSink(path))
        with tracer.span("run", n=1):
            tracer.phase("expand", 0.5)
        tracer.close()
        events = load_events(path)
        assert [e["type"] for e in events] == [
            "span_start", "phase", "span_end",
        ]
        assert tracer.events_written == 3

    def test_batching_defers_disk_until_flush(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path, flush_every=1000)
        sink.emit({"type": "meta"})
        assert path.read_text() == ""  # buffered
        sink.flush()
        assert json.loads(path.read_text())["type"] == "meta"
        sink.close()

    def test_flush_every_triggers_drain(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path, flush_every=2)
        sink.emit({"n": 1})
        sink.emit({"n": 2})  # second event crosses the batch boundary
        assert len(path.read_text().splitlines()) == 2
        sink.close()

    def test_null_sink_counts_without_files(self):
        sink = NullSink()
        sink.emit({"type": "meta"})
        assert sink.events_written == 1
        assert sink.path is None
