"""Tests for trace loading and phase-attributed statistics."""


import pytest

from repro.obs.statsview import build_stats, load_events, render_stats
from repro.obs.tracing import JsonlTraceSink, Tracer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestLoadEvents:
    def _write(self, path, lines):
        path.write_text("\n".join(lines) + "\n")

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(path, ['{"type":"meta"}', "", '{"type":"phase"}'])
        assert len(load_events(path)) == 2

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type":"meta"}\n{"type":"span_sta')
        events = load_events(path)
        assert [e["type"] for e in events] == ["meta"]

    def test_torn_middle_line_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(path, ['{"type":"meta"}', "{corrupt", '{"type":"phase"}'])
        with pytest.raises(ValueError):
            load_events(path)


def synthetic_trace(clock=None):
    """One root span with two children and a phase; returns the events."""
    collected = []

    class Sink:
        path = None
        events_written = 0

        def emit(self, event):
            collected.append(event)

        def flush(self):
            pass

        def close(self):
            pass

    clock = clock or FakeClock()
    tracer = Tracer(Sink(), clock=clock)
    with tracer.span("synth"):
        with tracer.span("evaluate"):
            clock.now = 4.0
        with tracer.span("evaluate"):
            clock.now = 7.0
        tracer.phase("canonicalise", 2.0)
        clock.now = 10.0
    return collected


class TestBuildStats:
    def test_aggregates_and_root(self):
        stats = build_stats(synthetic_trace())
        assert stats.root_name == "synth"
        assert stats.root_seconds == pytest.approx(10.0)
        assert stats.count_for("evaluate") == 2
        assert stats.total_for("evaluate") == pytest.approx(7.0)
        assert stats.count_for("canonicalise", "phase") == 1
        assert stats.total_for("canonicalise", "phase") == pytest.approx(2.0)

    def test_attribution_unions_child_intervals(self):
        # children cover [0,4] and [4,7]; the phase covers [5,7] (inside
        # the second child) -> union 7 of 10 root seconds.
        stats = build_stats(synthetic_trace())
        assert stats.attribution == pytest.approx(0.7)

    def test_open_spans_counted(self):
        events = synthetic_trace()
        # Drop the final span_end: the root never closes.
        truncated = events[:-1]
        stats = build_stats(truncated)
        assert stats.open_spans == 1
        assert stats.attribution is None  # root duration unknown

    def test_progress_events_counted(self):
        events = synthetic_trace()
        events.append({"t": 9.0, "type": "progress", "states": 5})
        assert build_stats(events).progress_events == 1

    def test_attribution_caps_at_one(self):
        clock = FakeClock()
        collected = synthetic_trace(clock)
        # A phase wider than the root cannot push attribution past 100%.
        collected.insert(
            len(collected) - 1,
            {"t": 10.0, "type": "phase", "name": "huge", "seconds": 50.0,
             "span": 1},
        )
        assert build_stats(collected).attribution == pytest.approx(1.0)


class TestRenderStats:
    def test_render_lists_names_sorted_by_total(self):
        text = render_stats(synthetic_trace(), source="t.jsonl")
        lines = text.splitlines()
        assert lines[0].startswith("trace: t.jsonl")
        assert "root span: synth" in text
        assert "attributed to named phases: 70.0%" in text
        table = [l for l in lines if l.startswith(("synth", "evaluate"))]
        assert table[0].startswith("synth")  # largest total first
        assert table[1].startswith("evaluate")

    def test_render_real_file_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        clock = FakeClock()
        tracer = Tracer(JsonlTraceSink(path), clock=clock)
        with tracer.span("verify", protocol="msi"):
            clock.now = 1.0
        tracer.close()
        text = render_stats(load_events(path), source=str(path))
        assert "root span: verify" in text
        assert "verify" in text
