"""Tests for the metrics registry: handles, labels, snapshot semantics."""

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry, diff_snapshots


class TestHandles:
    def test_counter_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("runs", "runs dispatched")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_set_and_track_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "frontier depth")
        gauge.set(7)
        gauge.track_max(3)
        assert gauge.value == 7
        gauge.track_max(11)
        assert gauge.value == 11

    def test_histogram_observe(self):
        registry = MetricsRegistry()
        hist = registry.histogram("seconds", "per-run seconds")
        for value in (0.001, 0.5, 2.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == pytest.approx(2.501)
        assert hist.minimum == pytest.approx(0.001)
        assert hist.maximum == pytest.approx(2.0)
        assert hist.mean == pytest.approx(2.501 / 3)
        assert sum(hist.counts) == 3

    def test_factory_is_idempotent_prebinding(self):
        registry = MetricsRegistry()
        assert registry.counter("runs", "h") is registry.counter("runs", "h")

    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        ok = registry.counter("verdicts", "by kind", verdict="success")
        bad = registry.counter("verdicts", "by kind", verdict="failure")
        assert ok is not bad
        ok.inc(2)
        bad.inc()
        series = registry.snapshot()["verdicts"]["series"]
        assert series == {"verdict=success": 2, "verdict=failure": 1}

    def test_label_key_order_independent(self):
        registry = MetricsRegistry()
        a = registry.counter("c", "h", x="1", y="2")
        b = registry.counter("c", "h", y="2", x="1")
        assert a is b

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing", "h")
        with pytest.raises(ValueError):
            registry.gauge("thing", "h")

    def test_label_name_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing", "h", worker="0")
        with pytest.raises(ValueError):
            registry.counter("thing", "h", shard="0")


class TestSnapshotMerge:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("evaluated", "candidates").inc(10)
        registry.gauge("peak", "states").track_max(500)
        registry.histogram("seconds", "check time").observe(0.25)
        registry.counter("verdicts", "by kind", verdict="success").inc(2)
        return registry

    def test_snapshot_roundtrips_through_merge(self):
        source = self._populated()
        target = MetricsRegistry()
        target.merge(source.snapshot())
        assert target.snapshot() == source.snapshot()

    def test_merge_counters_sum_gauges_max(self):
        one, two = self._populated(), self._populated()
        two.gauge("peak", "states").track_max(900)
        one.merge(two.snapshot())
        snap = one.snapshot()
        assert snap["evaluated"]["series"][""] == 20
        assert snap["peak"]["series"][""] == 900

    def test_merge_histograms_accumulate(self):
        one, two = self._populated(), self._populated()
        two.histogram("seconds", "check time").observe(1.5)
        one.merge(two.snapshot())
        data = one.snapshot()["seconds"]["series"][""]
        assert data["count"] == 3
        assert data["total"] == pytest.approx(0.25 + 0.25 + 1.5)
        assert data["max"] == pytest.approx(1.5)
        assert data["buckets"] == list(DEFAULT_BUCKETS)

    def test_merge_is_order_independent(self):
        deltas = []
        for amount in (3, 7, 11):
            registry = MetricsRegistry()
            registry.counter("evaluated", "candidates").inc(amount)
            registry.gauge("peak", "states").track_max(amount * 100)
            deltas.append(registry.snapshot())
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for delta in deltas:
            forward.merge(delta)
        for delta in reversed(deltas):
            backward.merge(delta)
        assert forward.snapshot() == backward.snapshot()


class TestDiffSnapshots:
    def test_counter_delta(self):
        registry = MetricsRegistry()
        handle = registry.counter("evaluated", "candidates")
        handle.inc(5)
        before = registry.snapshot()
        handle.inc(3)
        delta = diff_snapshots(before, registry.snapshot())
        assert delta["evaluated"]["series"][""] == 3

    def test_zero_deltas_omitted(self):
        registry = MetricsRegistry()
        registry.counter("evaluated", "candidates").inc(5)
        before = registry.snapshot()
        delta = diff_snapshots(before, registry.snapshot())
        assert delta == {}

    def test_delta_merges_like_the_increments(self):
        """diff -> merge on a second registry reproduces the increments:
        the exact worker -> coordinator roundtrip in BatchResult."""
        worker = MetricsRegistry()
        worker.counter("evaluated", "candidates").inc(5)
        worker.histogram("seconds", "t").observe(0.1)
        before = worker.snapshot()
        worker.counter("evaluated", "candidates").inc(7)
        worker.histogram("seconds", "t").observe(0.4)
        delta = diff_snapshots(before, worker.snapshot())

        coordinator = MetricsRegistry()
        coordinator.counter("evaluated", "candidates").inc(100)
        coordinator.merge(delta)
        snap = coordinator.snapshot()
        assert snap["evaluated"]["series"][""] == 107
        assert snap["seconds"]["series"][""]["count"] == 1
        assert snap["seconds"]["series"][""]["total"] == pytest.approx(0.4)

    def test_render_mentions_every_family(self):
        registry = MetricsRegistry()
        registry.counter("evaluated", "candidates").inc(2)
        registry.gauge("peak", "states").track_max(9)
        text = registry.render()
        assert "evaluated" in text and "peak" in text
