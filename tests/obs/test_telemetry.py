"""Tests for the Telemetry facade and the disabled singleton."""

import io
import json

from repro.core.engine import SynthesisConfig, resolve_telemetry
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.obs.statsview import load_events


class TestNullTelemetry:
    def test_disabled_and_inert(self):
        tele = NULL_TELEMETRY
        assert tele.enabled is False
        assert tele.metrics is None
        assert tele.tracer is None
        assert tele.progress is None
        assert tele.trace_path is None
        assert tele.events_written == 0

    def test_span_is_shared_noop_context_manager(self):
        with NULL_TELEMETRY.span("anything", attr=1) as span:
            span.set(more=2)
        assert NULL_TELEMETRY.span("a") is NULL_TELEMETRY.span("b")

    def test_other_methods_are_noops(self):
        NULL_TELEMETRY.event("progress", n=1)
        NULL_TELEMETRY.phase("expand", 0.5)
        NULL_TELEMETRY.meta(command="x")
        NULL_TELEMETRY.flush()
        NULL_TELEMETRY.close()


class TestTelemetryCreate:
    def test_default_bundle_has_metrics_and_null_sink(self):
        tele = Telemetry.create()
        assert tele.enabled is True
        assert tele.metrics is not None
        assert tele.trace_path is None
        with tele.span("run"):
            pass
        assert tele.events_written == 2
        tele.close()

    def test_trace_path_opens_jsonl_sink(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tele = Telemetry.create(trace_path=str(path))
        with tele.span("run", system="msi"):
            tele.phase("expand", 0.1)
        tele.close()
        events = load_events(path)
        assert [e["type"] for e in events] == [
            "span_start", "phase", "span_end",
        ]

    def test_progress_reporter_wired_to_tracer(self, tmp_path):
        path = tmp_path / "t.jsonl"
        stream = io.StringIO()
        tele = Telemetry.create(
            trace_path=str(path), progress=True, stream=stream
        )
        tele.progress.tick(states=5)
        tele.close()
        assert "states=5" in stream.getvalue()
        assert any(e["type"] == "progress" for e in load_events(path))

    def test_write_metrics(self, tmp_path):
        tele = Telemetry.create()
        tele.metrics.counter("runs", "h").inc(3)
        out = tmp_path / "metrics.json"
        tele.write_metrics(out)
        data = json.loads(out.read_text())
        assert data["runs"]["series"][""] == 3
        tele.close()


class TestFromConfig:
    def test_worker_gets_suffixed_sink_and_no_progress(self, tmp_path):
        path = tmp_path / "t.jsonl"
        config = SynthesisConfig(
            telemetry=True, trace_path=str(path), progress=True
        )
        worker = Telemetry.from_config(config, worker_id=3)
        assert worker.trace_path == f"{path}.worker-3"
        assert worker.progress is None
        worker.close()

    def test_coordinator_keeps_plain_path(self, tmp_path):
        path = tmp_path / "t.jsonl"
        config = SynthesisConfig(telemetry=True, trace_path=str(path))
        tele = Telemetry.from_config(config)
        assert tele.trace_path == str(path)
        tele.close()


class TestResolveTelemetry:
    def test_explicit_bundle_is_used_not_owned(self):
        tele = Telemetry.create()
        resolved, owns = resolve_telemetry(SynthesisConfig(), tele)
        assert resolved is tele
        assert owns is False
        tele.close()

    def test_config_activation_builds_owned_bundle(self, tmp_path):
        config = SynthesisConfig(trace_path=str(tmp_path / "t.jsonl"))
        resolved, owns = resolve_telemetry(config, None)
        assert resolved.enabled is True
        assert owns is True
        resolved.close()

    def test_disabled_config_resolves_to_null(self):
        resolved, owns = resolve_telemetry(SynthesisConfig(), None)
        assert resolved is NULL_TELEMETRY
        assert owns is False
