"""Tests for the complete (reference) MSI protocol."""


import pytest

from repro.mc.bfs import BfsExplorer
from repro.mc.result import Verdict
from repro.mc.simulate import simulate
from repro.protocols.msi import defs
from repro.protocols.msi.defs import View, format_state, initial_state, permute_state
from repro.protocols.msi.properties import (
    msi_coverage,
    msi_invariants,
    msi_quiescent,
)
from repro.protocols.msi.system import build_msi_system


class TestReferenceVerifies:
    @pytest.mark.parametrize("n_caches", [1, 2, 3])
    def test_complete_protocol_is_correct(self, n_caches):
        result = BfsExplorer(build_msi_system(n_caches=n_caches)).run()
        assert result.verdict is Verdict.SUCCESS, result.summary()

    def test_known_state_counts(self):
        # Regression pin: symmetry-reduced reachable states of the reference
        # protocol (recorded in EXPERIMENTS.md).
        counts = {}
        for n_caches in (1, 2, 3):
            result = BfsExplorer(build_msi_system(n_caches=n_caches)).run()
            counts[n_caches] = result.stats.states_visited
        assert counts[1] == 10
        assert counts[2] == 59
        assert counts[3] == 311

    def test_symmetry_reduces_state_count(self):
        with_symmetry = BfsExplorer(build_msi_system(2, symmetry=True)).run()
        without = BfsExplorer(build_msi_system(2, symmetry=False)).run()
        assert with_symmetry.stats.states_visited < without.stats.states_visited
        assert without.verdict is Verdict.SUCCESS

    def test_coverage_disabled_still_succeeds(self):
        result = BfsExplorer(build_msi_system(2, coverage=False)).run()
        assert result.verdict is Verdict.SUCCESS

    def test_random_walks_respect_invariants(self):
        system = build_msi_system(2)
        for seed in range(20):
            outcome = simulate(system, max_steps=60, seed=seed)
            assert outcome.violated_invariant is None
            if outcome.deadlocked:
                assert msi_quiescent(outcome.trace.final_state)


class TestStateHelpers:
    def test_initial_state_shape(self):
        state = initial_state(3)
        assert state[0] == (defs.C_I,) * 3
        assert state[1] == defs.D_I
        assert len(state[6]) == 0

    def test_view_roundtrip(self):
        state = initial_state(2)
        view = View(state)
        assert view.freeze() == state

    def test_view_send_consume(self):
        view = View(initial_state(2))
        view.send(defs.GETS, 1)
        frozen = view.freeze()
        assert (defs.GETS, 1) in frozen[6]
        view2 = View(frozen)
        view2.consume(defs.GETS, 1)
        assert len(view2.freeze()[6]) == 0

    def test_permute_state_roundtrip(self):
        state = (
            (defs.C_M, defs.C_I, defs.C_S),
            defs.D_M,
            0,
            frozenset({2}),
            1,
            1,
            View(initial_state(3)).net.add((defs.DATA, 2)),
        )
        mapping = (1, 2, 0)
        inverse = tuple(mapping.index(i) for i in range(3))
        assert permute_state(permute_state(state, mapping), inverse) == state

    def test_permute_moves_everything_consistently(self):
        state = (
            (defs.C_M, defs.C_I),
            defs.D_M,
            0,
            frozenset(),
            0,
            0,
            View(initial_state(2)).net.add((defs.INV, 0)),
        )
        caches, _d, owner, _sh, req, _a, net = permute_state(state, (1, 0))
        assert caches == (defs.C_I, defs.C_M)
        assert owner == 1
        assert req == 1
        assert (defs.INV, 1) in net

    def test_format_state_readable(self):
        text = format_state(initial_state(2))
        assert "caches[I,I]" in text
        assert "dir=I" in text


class TestProperties:
    def test_swmr_rejects_two_writers(self):
        swmr = msi_invariants()[0]
        bad = ((defs.C_M, defs.C_M), defs.D_M, 0, frozenset(), -1, 0,
               View(initial_state(2)).net)
        assert not swmr.holds(bad)

    def test_swmr_rejects_writer_plus_reader(self):
        swmr = msi_invariants()[0]
        bad = ((defs.C_M, defs.C_S), defs.D_M, 0, frozenset(), -1, 0,
               View(initial_state(2)).net)
        assert not swmr.holds(bad)

    def test_swmr_accepts_multiple_readers(self):
        swmr = msi_invariants()[0]
        good = ((defs.C_S, defs.C_S), defs.D_S, -1, frozenset({0, 1}), -1, 0,
                View(initial_state(2)).net)
        assert swmr.holds(good)

    def test_unexpected_message_detector(self):
        unexpected = msi_invariants()[1]
        view = View(initial_state(2))
        view.send(defs.DATA, 0)  # Data at a cache in I: protocol error
        assert not unexpected.holds(view.freeze())
        view2 = View(initial_state(2))
        view2.caches[0] = defs.C_IS_D
        view2.send(defs.DATA, 0)
        assert unexpected.holds(view2.freeze())

    def test_requests_never_unexpected(self):
        unexpected = msi_invariants()[1]
        view = View(initial_state(2))
        view.send(defs.GETS, 0)
        view.send(defs.GETM, 1)
        assert unexpected.holds(view.freeze())

    def test_dir_bookkeeping(self):
        bookkeeping = msi_invariants()[2]
        view = View(initial_state(2))
        view.dirst = defs.D_M  # owner still -1
        assert not bookkeeping.holds(view.freeze())

    def test_quiescence(self):
        assert msi_quiescent(initial_state(2))
        view = View(initial_state(2))
        view.caches[0] = defs.C_M
        view.dirst = defs.D_M
        view.owner = 0
        assert msi_quiescent(view.freeze())
        view.send(defs.GETS, 1)
        assert not msi_quiescent(view.freeze())

    def test_coverage_list_toggle(self):
        assert len(msi_coverage(True)) == 4
        assert msi_coverage(False) == []
