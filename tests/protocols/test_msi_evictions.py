"""Tests for the MSI eviction extension (writebacks and their races)."""

import pytest

from repro.core import SynthesisEngine
from repro.mc.bfs import BfsExplorer
from repro.mc.result import Verdict
from repro.mc.simulate import simulate
from repro.protocols.msi import defs
from repro.protocols.msi.actions import cache_next_domain, cache_response_domain
from repro.protocols.msi.skeleton import msi_evict
from repro.protocols.msi.system import build_msi_system


class TestEvictionReference:
    @pytest.mark.parametrize("n_caches", [1, 2, 3])
    def test_verifies(self, n_caches):
        result = BfsExplorer(build_msi_system(n_caches, evictions=True)).run()
        assert result.verdict is Verdict.SUCCESS, result.summary()

    def test_eviction_grows_state_space(self):
        base = BfsExplorer(build_msi_system(2)).run()
        evict = BfsExplorer(build_msi_system(2, evictions=True)).run()
        assert evict.stats.states_visited > base.stats.states_visited

    def test_known_state_counts(self):
        # Regression pins (recorded in EXPERIMENTS.md).
        counts = {
            n: BfsExplorer(build_msi_system(n, evictions=True)).run().stats.states_visited
            for n in (1, 2)
        }
        assert counts[1] == 16
        assert counts[2] == 209

    def test_base_protocol_unchanged_by_extension_code(self):
        result = BfsExplorer(build_msi_system(2, evictions=False)).run()
        assert result.stats.states_visited == 59

    def test_random_walks(self):
        system = build_msi_system(2, evictions=True)
        for seed in range(15):
            outcome = simulate(system, max_steps=80, seed=seed)
            assert outcome.violated_invariant is None


class TestExtendedDomains:
    def test_base_domains_keep_paper_arity(self):
        assert len(cache_response_domain()) == 3
        assert len(cache_next_domain()) == 7

    def test_extended_domains(self):
        assert len(cache_response_domain(extended=True)) == 4
        assert len(cache_next_domain(extended=True)) == 9
        names = [a.name for a in cache_next_domain(extended=True)]
        assert "goto_MI_A" in names and "goto_II_A" in names

    def test_putm_action_sends_writeback(self):
        from repro.protocols.msi.defs import View, initial_state

        putm = {a.name: a for a in cache_response_domain(extended=True)}["send_putm"]
        view = View(initial_state(2))
        putm.fn(view, 1)
        assert (defs.PUTM, 1) in view.freeze()[6]


class TestEvictionSynthesis:
    @pytest.fixture(scope="class")
    def report(self):
        return SynthesisEngine(msi_evict(n_caches=2).system).run()

    def test_skeleton_shape(self):
        skeleton = msi_evict(n_caches=2)
        assert skeleton.hole_count == 6  # 3 cache rules x 2 holes
        arities = sorted(hole.arity for hole in skeleton.holes)
        assert arities == [4, 4, 4, 9, 9, 9]

    def test_reference_rediscovered(self, report):
        reference = msi_evict(n_caches=2).reference_assignment()
        assert reference in [dict(s.assignment) for s in report.solutions]

    def test_ack_and_wait_variant_found(self, report):
        # A genuinely different valid design: ack the crossing invalidation
        # but keep waiting in MI_A (skip II_A entirely).
        solutions = [dict(s.assignment) for s in report.solutions]
        variant = {
            "cache.MI_A+PutAck.response": "none",
            "cache.MI_A+PutAck.next": "goto_I",
            "cache.MI_A+Inv.response": "send_invack",
            "cache.MI_A+Inv.next": "goto_MI_A",
        }
        assert variant in solutions

    def test_all_solutions_ack_the_crossing_inv(self, report):
        # Without the InvAck the directory's collection transient hangs.
        for solution in report.solutions:
            assignment = dict(solution.assignment)
            assert assignment["cache.MI_A+Inv.response"] == "send_invack"
