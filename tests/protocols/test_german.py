"""Tests for the German directory protocol (data-carrying workload)."""

import pytest

from repro.core import SynthesisConfig, SynthesisEngine
from repro.mc.bfs import BfsExplorer
from repro.mc.result import Verdict
from repro.mc.simulate import simulate
from repro.protocols.german import (
    E,
    GE_W,
    GS_W,
    IE_W,
    REFERENCE_ASSIGNMENT,
    S,
    SE_W,
    build_german_skeleton,
    build_german_system,
)


class TestReference:
    @pytest.mark.parametrize("n_clients", [1, 2, 3])
    def test_verifies(self, n_clients):
        result = BfsExplorer(build_german_system(n_clients)).run()
        assert result.verdict is Verdict.SUCCESS, result.summary()

    def test_known_state_counts(self):
        counts = {
            n: BfsExplorer(build_german_system(n)).run().stats.states_visited
            for n in (1, 2, 3)
        }
        assert counts == {1: 10, 2: 122, 3: 900}

    def test_random_walks(self):
        system = build_german_system(2)
        for seed in range(15):
            outcome = simulate(system, max_steps=60, seed=seed)
            assert outcome.violated_invariant is None

    def test_symmetry_reduces(self):
        reduced = BfsExplorer(build_german_system(3)).run()
        full = BfsExplorer(build_german_system(3, symmetry=False)).run()
        assert reduced.stats.states_visited < full.stats.states_visited
        assert full.verdict is Verdict.SUCCESS


class TestDataSemantics:
    def test_writeback_path_reachable(self):
        """The directory really collects dirty data: both grant-wait
        states and both data values are exercised."""
        explorer = BfsExplorer(build_german_system(2))
        explorer.run()
        states = list(explorer.visited_states)
        assert any(s[1].st == GS_W for s in states)
        assert any(s[1].st == GE_W for s in states)
        assert any(s[1].mem == 1 for s in states)
        assert any(s[1].aux == 1 for s in states)

    def test_upgrade_race_reachable(self):
        """A client invalidated mid-upgrade lands in IE_W — the transient
        the german-small skeleton synthesises."""
        explorer = BfsExplorer(build_german_system(2))
        explorer.run()
        races = [
            s
            for s in explorer.visited_states
            if any(p.st == IE_W for p in s[0]) and s[1].st == GE_W
        ]
        assert races

    def test_sharers_always_see_last_write(self):
        # The data-integrity invariant holds in every reachable state by
        # construction; double-check it structurally here.
        explorer = BfsExplorer(build_german_system(2))
        result = explorer.run()
        assert result.verdict is Verdict.SUCCESS
        for state in explorer.visited_states:
            procs, glob, _net = state
            for proc in procs:
                if proc.st in (S, SE_W, E):
                    assert proc.d == glob.aux


class TestSeededBug:
    def test_stale_shared_grant_is_caught(self):
        result = BfsExplorer(
            build_german_system(2, bug="stale-shared-grant")
        ).run()
        assert result.verdict is Verdict.FAILURE

    def test_unknown_bug_rejected(self):
        with pytest.raises(ValueError, match="unknown seeded bug"):
            build_german_system(2, bug="nope")


class TestSynthesis:
    def test_upgrade_race_hole_unique_solution(self):
        """Only 'ack with writeback, wait in IE_W' survives: the stale-S
        completion is killed by data integrity, the silent ones by
        deadlock, the re-request by channel capacity."""
        system, _holes = build_german_skeleton(2)
        report = SynthesisEngine(system).run()
        assert [dict(s.assignment) for s in report.solutions] == [
            REFERENCE_ASSIGNMENT
        ]

    def test_naive_mode_agrees(self):
        system, _holes = build_german_skeleton(2)
        pruned = SynthesisEngine(system).run()
        system2, _ = build_german_skeleton(2)
        naive = SynthesisEngine(system2, SynthesisConfig(pruning=False)).run()
        assert {s.digits for s in naive.solutions} == {
            s.digits for s in pruned.solutions
        }
