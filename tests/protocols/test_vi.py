"""Tests for the VI protocol (DSL-built)."""

import pytest

from repro.core import SynthesisEngine
from repro.mc.bfs import BfsExplorer
from repro.mc.result import Verdict
from repro.mc.simulate import simulate
from repro.protocols.vi import (
    REFERENCE_ASSIGNMENT,
    build_vi_skeleton,
    build_vi_system,
)


class TestReference:
    @pytest.mark.parametrize("n_clients", [1, 2, 3])
    def test_verifies(self, n_clients):
        result = BfsExplorer(build_vi_system(n_clients)).run()
        assert result.verdict is Verdict.SUCCESS, result.summary()

    def test_symmetry_reduces(self):
        reduced = BfsExplorer(build_vi_system(3)).run()
        full = BfsExplorer(build_vi_system(3, symmetry=False)).run()
        assert reduced.stats.states_visited < full.stats.states_visited
        assert full.verdict is Verdict.SUCCESS

    def test_random_walks(self):
        system = build_vi_system(2)
        for seed in range(10):
            outcome = simulate(system, max_steps=40, seed=seed)
            assert outcome.violated_invariant is None


class TestSynthesis:
    @pytest.fixture(scope="class")
    def report(self):
        system, _holes = build_vi_skeleton(2)
        return SynthesisEngine(system).run()

    def test_reference_among_solutions(self, report):
        assert REFERENCE_ASSIGNMENT in [dict(s.assignment) for s in report.solutions]

    def test_all_solutions_acknowledge_grant(self, report):
        # Without GotIt the directory never records the owner.
        for solution in report.solutions:
            assignment = dict(solution.assignment)
            assert assignment["vi.client.IV_D+Data.response"] == "send_gotit"

    def test_client_only_skeleton(self):
        system, holes = build_vi_skeleton(2, hole_dir=False)
        assert len(holes) == 2
        report = SynthesisEngine(system).run()
        expected = {
            name: action
            for name, action in REFERENCE_ASSIGNMENT.items()
            if name.startswith("vi.client")
        }
        assert expected in [dict(s.assignment) for s in report.solutions]

    def test_pruning_reduces_evaluations(self, report):
        assert report.evaluated < report.naive_candidate_space * 2
        assert report.failure_patterns > 0
