"""Tests for the MESI protocol (scope extension)."""

import pytest

from repro.core import SynthesisConfig, SynthesisEngine
from repro.mc.bfs import BfsExplorer
from repro.mc.result import Verdict
from repro.mc.simulate import simulate
from repro.protocols import mesi
from repro.protocols.mesi import (
    build_mesi_skeleton,
    build_mesi_system,
    initial_state,
    permute_state,
    reference_assignment_for,
)


class TestReference:
    @pytest.mark.parametrize("n_caches", [1, 2, 3])
    def test_verifies(self, n_caches):
        result = BfsExplorer(build_mesi_system(n_caches)).run()
        assert result.verdict is Verdict.SUCCESS, result.summary()

    def test_known_state_counts(self):
        counts = {
            n: BfsExplorer(build_mesi_system(n)).run().stats.states_visited
            for n in (1, 2, 3)
        }
        assert counts == {1: 9, 2: 70, 3: 335}

    def test_mesi_larger_than_msi(self):
        # The Exclusive state adds behaviour over MSI at the same size.
        from repro.protocols.msi.system import build_msi_system

        mesi_states = BfsExplorer(build_mesi_system(2)).run().stats.states_visited
        msi_states = BfsExplorer(build_msi_system(2)).run().stats.states_visited
        assert mesi_states > msi_states

    def test_random_walks(self):
        system = build_mesi_system(2)
        for seed in range(15):
            outcome = simulate(system, max_steps=60, seed=seed)
            assert outcome.violated_invariant is None

    def test_symmetry_reduces(self):
        reduced = BfsExplorer(build_mesi_system(3)).run()
        full = BfsExplorer(build_mesi_system(3, symmetry=False)).run()
        assert reduced.stats.states_visited < full.stats.states_visited
        assert full.verdict is Verdict.SUCCESS


class TestExclusiveSemantics:
    def test_silent_upgrade_exists(self):
        """Some reachable state has a cache in M while the directory never
        saw a GetM from it (the silent E->M upgrade)."""
        explorer = BfsExplorer(build_mesi_system(1))
        explorer.run()
        states = list(explorer.visited_states)
        assert any(mesi.C_E in s[0] for s in states)
        assert any(mesi.C_M in s[0] for s in states)

    def test_swmr_counts_e_as_exclusive(self):
        from repro.protocols.mesi import mesi_invariants

        swmr = mesi_invariants(2)[0]
        net = initial_state(2)[6]
        bad = ((mesi.C_E, mesi.C_S), mesi.D_EM, 0, frozenset(), -1, 0, net)
        assert not swmr.holds(bad)
        bad2 = ((mesi.C_E, mesi.C_E), mesi.D_EM, 0, frozenset(), -1, 0, net)
        assert not swmr.holds(bad2)
        good = ((mesi.C_S, mesi.C_S), mesi.D_S, -1, frozenset({0, 1}), -1, 0, net)
        assert swmr.holds(good)

    def test_permute_roundtrip(self):
        state = (
            (mesi.C_E, mesi.C_I, mesi.C_S),
            mesi.D_EM,
            0,
            frozenset({2}),
            1,
            1,
            initial_state(3)[6].add(("DataE", 2)),
        )
        mapping = (1, 2, 0)
        inverse = tuple(mapping.index(i) for i in range(3))
        assert permute_state(permute_state(state, mapping), inverse) == state


class TestSynthesis:
    def test_exclusive_grant_hole_unique_solution(self):
        system, holes = build_mesi_skeleton(n_caches=2)
        report = SynthesisEngine(system).run()
        assert [dict(s.assignment) for s in report.solutions] == [
            reference_assignment_for(holes)
        ]

    def test_without_e_coverage_msi_like_solutions_appear(self):
        # Dropping coverage admits completions that never actually use E.
        system, _holes = build_mesi_skeleton(n_caches=2, coverage=False)
        report = SynthesisEngine(system).run()
        assert len(report.solutions) > 1

    def test_dir_completion_hole(self):
        system, holes = build_mesi_skeleton(
            cache_rules=(),
            dir_rules=((mesi.D_IE_A, mesi.DATAACK),),
            n_caches=2,
        )
        assert len(holes) == 3  # 5 x 7 x 3 directory triple
        report = SynthesisEngine(system).run()
        assert reference_assignment_for(holes) in [
            dict(s.assignment) for s in report.solutions
        ]

    def test_naive_mode_agrees(self):
        system, holes = build_mesi_skeleton(n_caches=2)
        pruned = SynthesisEngine(system).run()
        system2, _ = build_mesi_skeleton(n_caches=2)
        naive = SynthesisEngine(system2, SynthesisConfig(pruning=False)).run()
        assert {s.digits for s in naive.solutions} == {
            s.digits for s in pruned.solutions
        }
