"""Tests for the protocol/skeleton catalog (names, metadata, error paths)."""

import pytest

from repro.core.hole import Hole
from repro.mc.bfs import BfsExplorer
from repro.mc.context import FixedResolver
from repro.mc.system import TransitionSystem
from repro.protocols.catalog import (
    PROTOCOL_CATALOG,
    SKELETON_BUILDERS,
    SKELETON_CATALOG,
    SkeletonEntry,
    build_protocol,
    build_skeleton,
    build_skeleton_with_holes,
    protocol_names,
    register_skeleton,
    skeleton_names,
    unregister_skeleton,
)

#: entries cheap enough to build in a metadata sweep
FAST_SKELETONS = [
    name for name in SKELETON_CATALOG if name not in ("msi-large",)
]


class TestSkeletonCatalog:
    def test_unknown_name_raises_keyerror_listing_names(self):
        with pytest.raises(KeyError) as excinfo:
            build_skeleton("nope")
        message = str(excinfo.value)
        assert "unknown skeleton 'nope'" in message
        for name in skeleton_names():
            assert name in message

    def test_unknown_name_with_holes_raises_too(self):
        with pytest.raises(KeyError, match="unknown skeleton"):
            build_skeleton_with_holes("nope")

    @pytest.mark.parametrize("name", sorted(FAST_SKELETONS))
    def test_metadata_matches_build(self, name):
        """The static hole count and replica minimum must match what the
        builder actually produces (the gallery and `list` print these)."""
        entry = SKELETON_CATALOG[name]
        system, holes = build_skeleton_with_holes(name, entry.replicas[0])
        assert isinstance(system, TransitionSystem)
        assert len(holes) == entry.holes
        assert all(isinstance(hole, Hole) for hole in holes)
        low, high = entry.replicas
        assert 1 <= low <= high
        assert entry.summary

    def test_builders_dict_matches_catalog(self):
        assert set(SKELETON_BUILDERS) == set(SKELETON_CATALOG)

    def test_holes_are_the_embedded_objects(self):
        """build_skeleton_with_holes returns the objects the system's rule
        bodies resolve — a FixedResolver over them must drive a run."""
        system, holes = build_skeleton_with_holes("figure2")
        from repro.protocols.toy import build_figure2_solution

        solution = build_figure2_solution()
        resolver = FixedResolver(
            {hole: hole.action_named(solution[hole.name]) for hole in holes}
        )
        result = BfsExplorer(system, resolver=resolver).run()
        assert result.is_success

    def test_register_and_unregister_roundtrip(self):
        entry = SkeletonEntry(
            name="catalog-test-demo",
            build=lambda n: build_skeleton_with_holes("figure2"),
            holes=4,
            replicas=(1, 1),
            summary="test entry",
        )
        register_skeleton(entry)
        try:
            assert "catalog-test-demo" in skeleton_names()
            assert build_skeleton("catalog-test-demo").name == "figure2-toy"
            assert SKELETON_BUILDERS["catalog-test-demo"](1).name == "figure2-toy"
        finally:
            unregister_skeleton("catalog-test-demo")
        assert "catalog-test-demo" not in skeleton_names()
        assert "catalog-test-demo" not in SKELETON_BUILDERS
        unregister_skeleton("catalog-test-demo")  # idempotent


class TestProtocolCatalog:
    def test_unknown_name_raises_keyerror_listing_names(self):
        with pytest.raises(KeyError) as excinfo:
            build_protocol("nope")
        message = str(excinfo.value)
        assert "unknown protocol 'nope'" in message
        for name in protocol_names():
            assert name in message

    @pytest.mark.parametrize("name", sorted(PROTOCOL_CATALOG))
    def test_every_protocol_verifies_at_minimum_replicas(self, name):
        entry = PROTOCOL_CATALOG[name]
        system = build_protocol(name, entry.replicas[0])
        assert BfsExplorer(system).run().is_success

    def test_kwargs_are_accepted_everywhere(self):
        # Builders must tolerate the shared keyword surface.
        for name in PROTOCOL_CATALOG:
            system = build_protocol(name, 2, evictions=False, symmetry=False)
            assert isinstance(system, TransitionSystem)
