"""Tests for the MOESI protocol (Owned-state scope extension)."""

import pytest

from repro.core import SynthesisConfig, SynthesisEngine
from repro.mc.bfs import BfsExplorer
from repro.mc.result import Verdict
from repro.mc.simulate import simulate
from repro.protocols import moesi
from repro.protocols.moesi import (
    build_moesi_skeleton,
    build_moesi_system,
    initial_state,
    permute_state,
    reference_assignment_for,
)


class TestReference:
    @pytest.mark.parametrize("n_caches", [1, 2, 3])
    def test_verifies(self, n_caches):
        result = BfsExplorer(build_moesi_system(n_caches)).run()
        assert result.verdict is Verdict.SUCCESS, result.summary()

    def test_known_state_counts(self):
        counts = {
            n: BfsExplorer(build_moesi_system(n)).run().stats.states_visited
            for n in (1, 2, 3)
        }
        assert counts == {1: 9, 2: 83, 3: 613}

    def test_moesi_larger_than_mesi(self):
        # The Owned state adds behaviour over MESI at the same size.
        from repro.protocols.mesi import build_mesi_system

        moesi_states = BfsExplorer(build_moesi_system(2)).run().stats.states_visited
        mesi_states = BfsExplorer(build_mesi_system(2)).run().stats.states_visited
        assert moesi_states > mesi_states

    def test_random_walks(self):
        system = build_moesi_system(2)
        for seed in range(15):
            outcome = simulate(system, max_steps=60, seed=seed)
            assert outcome.violated_invariant is None

    def test_symmetry_reduces(self):
        reduced = BfsExplorer(build_moesi_system(3)).run()
        full = BfsExplorer(build_moesi_system(3, symmetry=False)).run()
        assert reduced.stats.states_visited < full.stats.states_visited
        assert full.verdict is Verdict.SUCCESS


class TestOwnedSemantics:
    def test_dirty_sharing_reachable(self):
        """Some reachable state has an Owned cache coexisting with a
        Shared one — the dirty-sharing configuration MESI cannot express."""
        explorer = BfsExplorer(build_moesi_system(2))
        explorer.run()
        states = list(explorer.visited_states)
        assert any(
            moesi.C_O in s[0] and moesi.C_S in s[0] for s in states
        )
        assert any(s[1] == moesi.D_O for s in states)

    def test_swmr_allows_o_plus_s_but_not_two_owners(self):
        from repro.protocols.moesi import moesi_invariants

        swmr = moesi_invariants(2)[0]
        net = initial_state(2)[6]
        good = ((moesi.C_O, moesi.C_S), moesi.D_O, 0, frozenset({1}), -1, 0, net)
        assert swmr.holds(good)
        two_owners = ((moesi.C_O, moesi.C_M), moesi.D_O, 0, frozenset(), -1, 0, net)
        assert not swmr.holds(two_owners)
        m_with_reader = ((moesi.C_M, moesi.C_S), moesi.D_EM, 0, frozenset(), -1, 0, net)
        assert not swmr.holds(m_with_reader)

    def test_permute_roundtrip(self):
        state = (
            (moesi.C_O, moesi.C_I, moesi.C_S),
            moesi.D_O,
            0,
            frozenset({2}),
            1,
            1,
            initial_state(3)[6].add(("FwdGetS", 2)),
        )
        mapping = (1, 2, 0)
        inverse = tuple(mapping.index(i) for i in range(3))
        assert permute_state(permute_state(state, mapping), inverse) == state


class TestSeededBug:
    def test_no_owner_inv_bug_is_caught(self):
        """Skipping the owner invalidation on a GetM in O violates SWMR."""
        result = BfsExplorer(build_moesi_system(2, bug="no-owner-inv")).run()
        assert result.verdict is Verdict.FAILURE
        assert "swmr" in (result.message or "")

    def test_unknown_bug_rejected(self):
        with pytest.raises(ValueError, match="unknown seeded bug"):
            build_moesi_system(2, bug="nope")


class TestSynthesis:
    def test_hallmark_hole_unique_solution(self):
        """The M+FwdGetS skeleton admits exactly the reference completion:
        keep ownership (-> O) and serve the reader directly."""
        system, holes = build_moesi_skeleton(n_caches=2)
        report = SynthesisEngine(system).run()
        assert [dict(s.assignment) for s in report.solutions] == [
            reference_assignment_for(holes)
        ]

    def test_without_o_coverage_mesi_like_solutions_appear(self):
        # Dropping coverage admits completions that never actually use O
        # (e.g. write back and downgrade to S, i.e. plain MESI behaviour).
        system, _holes = build_moesi_skeleton(n_caches=2, coverage=False)
        report = SynthesisEngine(system).run()
        assert len(report.solutions) > 1

    def test_dir_completion_hole(self):
        system, holes = build_moesi_skeleton(
            cache_rules=(),
            dir_rules=((moesi.D_EO_A, moesi.ACKO),),
            n_caches=2,
        )
        assert len(holes) == 3  # 6 x 9 x 4 directory triple
        report = SynthesisEngine(system).run()
        assert reference_assignment_for(holes) in [
            dict(s.assignment) for s in report.solutions
        ]

    def test_naive_mode_agrees(self):
        system, _holes = build_moesi_skeleton(n_caches=2)
        pruned = SynthesisEngine(system).run()
        system2, _ = build_moesi_skeleton(n_caches=2)
        naive = SynthesisEngine(system2, SynthesisConfig(pruning=False)).run()
        assert {s.digits for s in naive.solutions} == {
            s.digits for s in pruned.solutions
        }
