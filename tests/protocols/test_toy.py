"""Tests for the Figure 2 toy system."""


from repro.core.candidate import CandidateVector
from repro.core.discovery import CandidateResolver, HoleRegistry
from repro.mc.bfs import BfsExplorer
from repro.mc.result import Verdict
from repro.protocols.toy import (
    DECISION_STATES,
    TRANSITIONS,
    build_figure2_holes,
    build_figure2_skeleton,
    build_figure2_solution,
)


def test_hole_domains_match_figure2():
    holes = build_figure2_holes()
    assert [h.arity for h in holes] == [3, 2, 2, 2]
    assert [a.name for a in holes[0].domain] == ["A", "B", "C"]


def test_transition_table_consistency():
    # Every decision state has a transition per action of its hole.
    holes = dict(zip(DECISION_STATES, build_figure2_holes()))
    for state, hole in holes.items():
        for action in hole.domain:
            assert action.payload in TRANSITIONS[state]


def test_correct_assignment_verifies():
    system = build_figure2_skeleton()
    registry = HoleRegistry()
    # Resolve holes through a candidate matching the published solution;
    # discovery order is s0, s2, s3, s4.
    solution = build_figure2_solution()
    # Pre-register holes in discovery order by running once is overkill:
    # instead, build the digits in hole construction order (same thing here).
    holes = build_figure2_holes()
    # The skeleton creates its own hole objects; fetch them via a probe run.
    probe = BfsExplorer(
        system, resolver=CandidateResolver(registry, CandidateVector.empty())
    ).run()
    assert probe.verdict is Verdict.UNKNOWN
    digits = []
    for hole in registry.holes:
        digits.append(hole.index_of(solution[hole.name]))
    # Iterate: each run discovers the next hole.
    while True:
        result = BfsExplorer(
            system,
            resolver=CandidateResolver(
                registry, CandidateVector.from_digits(tuple(digits))
            ),
        ).run()
        if len(registry) == len(digits):
            break
        digits = [
            hole.index_of(solution[hole.name]) for hole in registry.holes
        ]
    assert result.verdict is Verdict.SUCCESS


def test_wrong_assignment_fails():
    system = build_figure2_skeleton()
    registry = HoleRegistry()
    BfsExplorer(
        system, resolver=CandidateResolver(registry, CandidateVector.empty())
    ).run()
    (hole1,) = registry.holes
    digits = (hole1.index_of("A"),)  # A leads straight to the error state
    result = BfsExplorer(
        system,
        resolver=CandidateResolver(registry, CandidateVector.from_digits(digits)),
    ).run()
    assert result.verdict is Verdict.FAILURE
