"""Unit tests for the MSI directory controller handlers (in isolation)."""

import pytest

from repro.protocols.msi import defs
from repro.protocols.msi.defs import View, initial_state
from repro.protocols.msi.directory import (
    ACK_COUNTING,
    REFERENCE_DIR_COMPLETIONS,
    _putm,
    make_reference_completion,
    reference_dir_table,
)


def fresh_view(n=2, **overrides):
    view = View(initial_state(n))
    for name, value in overrides.items():
        setattr(view, name, value)
    return view


class TestStableHandlers:
    @pytest.fixture
    def table(self):
        return reference_dir_table()

    def test_gets_in_i_grants_and_shares(self, table):
        view = fresh_view()
        table[(defs.D_I, defs.GETS)](view, 0, None)
        assert view.dirst == defs.D_S
        assert view.sharers == frozenset({0})
        assert (defs.DATA, 0) in view.net

    def test_getm_in_i_serialises_through_im_a(self, table):
        view = fresh_view()
        table[(defs.D_I, defs.GETM)](view, 1, None)
        assert view.dirst == defs.D_IM_A
        assert view.owner == 1
        assert view.req == 1
        assert (defs.DATA, 1) in view.net

    def test_gets_in_s_adds_sharer(self, table):
        view = fresh_view(dirst=defs.D_S, sharers=frozenset({0}))
        table[(defs.D_S, defs.GETS)](view, 1, None)
        assert view.dirst == defs.D_S
        assert view.sharers == frozenset({0, 1})

    def test_getm_in_s_with_other_sharers_invalidates(self, table):
        view = fresh_view(n=3, dirst=defs.D_S, sharers=frozenset({0, 2}))
        table[(defs.D_S, defs.GETM)](view, 0, None)
        assert view.dirst == defs.D_SM_A
        assert view.acks == 1
        assert (defs.INV, 2) in view.net
        assert (defs.INV, 0) not in view.net  # never invalidate the requestor

    def test_getm_in_s_sole_sharer_grants_directly(self, table):
        view = fresh_view(dirst=defs.D_S, sharers=frozenset({1}))
        table[(defs.D_S, defs.GETM)](view, 1, None)
        assert view.dirst == defs.D_IM_A
        assert view.owner == 1
        assert (defs.DATA, 1) in view.net

    def test_gets_in_m_recalls_owner(self, table):
        view = fresh_view(dirst=defs.D_M, owner=0)
        table[(defs.D_M, defs.GETS)](view, 1, None)
        assert view.dirst == defs.D_MS_A
        assert (defs.INV, 0) in view.net
        assert view.acks == 1

    def test_getm_in_m_transfers_ownership_path(self, table):
        view = fresh_view(dirst=defs.D_M, owner=0)
        table[(defs.D_M, defs.GETM)](view, 1, None)
        assert view.dirst == defs.D_MM_A
        assert (defs.INV, 0) in view.net


class TestTransientCompletions:
    def run_completion(self, key, **view_overrides):
        handler = make_reference_completion(key, *REFERENCE_DIR_COMPLETIONS[key])
        view = fresh_view(n=3, **view_overrides)
        handler(view, 0, None)
        return view

    def test_sm_a_counts_down_before_completing(self):
        key = (defs.D_SM_A, defs.INVACK)
        view = self.run_completion(key, dirst=defs.D_SM_A, req=1, acks=2)
        assert view.dirst == defs.D_SM_A  # still waiting for one more ack
        assert view.acks == 1
        assert (defs.DATA, 1) not in view.net

    def test_sm_a_last_ack_grants(self):
        key = (defs.D_SM_A, defs.INVACK)
        view = self.run_completion(
            key, dirst=defs.D_SM_A, req=1, acks=1, sharers=frozenset({0, 2})
        )
        assert view.dirst == defs.D_IM_A
        assert view.owner == 1
        assert view.sharers == frozenset()
        assert (defs.DATA, 1) in view.net

    def test_mm_a_transfers_to_requestor(self):
        key = (defs.D_MM_A, defs.INVACK)
        view = self.run_completion(key, dirst=defs.D_MM_A, req=2, acks=1, owner=0)
        assert view.dirst == defs.D_IM_A
        assert view.owner == 2
        assert (defs.DATA, 2) in view.net

    def test_ms_a_downgrades_to_shared(self):
        key = (defs.D_MS_A, defs.INVACK)
        view = self.run_completion(key, dirst=defs.D_MS_A, req=1, acks=1, owner=0)
        assert view.dirst == defs.D_S
        assert view.owner == -1
        assert view.sharers == frozenset({1})
        assert view.req == -1  # stable entry clears pending bookkeeping

    def test_im_a_completion_is_silent(self):
        key = (defs.D_IM_A, defs.DATAACK)
        view = self.run_completion(key, dirst=defs.D_IM_A, req=1, owner=1)
        assert view.dirst == defs.D_M
        assert view.owner == 1
        assert len(view.net) == 0

    def test_ack_counting_set(self):
        assert (defs.D_SM_A, defs.INVACK) in ACK_COUNTING
        assert (defs.D_IM_A, defs.DATAACK) not in ACK_COUNTING


class TestWritebacks:
    def test_owner_putm_returns_line(self):
        view = fresh_view(dirst=defs.D_M, owner=0)
        _putm(view, 0, None)
        assert view.dirst == defs.D_I
        assert view.owner == -1
        assert (defs.PUTACK, 0) in view.net

    def test_non_owner_putm_only_acked(self):
        view = fresh_view(dirst=defs.D_M, owner=1)
        _putm(view, 0, None)
        assert view.dirst == defs.D_M
        assert view.owner == 1
        assert (defs.PUTACK, 0) in view.net

    def test_stale_putm_in_s(self):
        view = fresh_view(dirst=defs.D_S, sharers=frozenset({1}))
        _putm(view, 0, None)
        assert view.dirst == defs.D_S
        assert (defs.PUTACK, 0) in view.net

    def test_eviction_table_contains_putm_entries(self):
        table = reference_dir_table(evictions=True)
        for state in (defs.D_I, defs.D_S, defs.D_M):
            assert (state, defs.PUTM) in table
        base = reference_dir_table(evictions=False)
        assert (defs.D_I, defs.PUTM) not in base
