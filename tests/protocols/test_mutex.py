"""Tests for the mutual-exclusion protocol (DSL-built)."""

import pytest

from repro.core import SynthesisConfig, SynthesisEngine
from repro.core.parallel import ParallelSynthesisEngine
from repro.mc.bfs import BfsExplorer
from repro.mc.result import Verdict
from repro.mc.simulate import simulate
from repro.protocols.mutex import (
    REFERENCE_ASSIGNMENT,
    build_mutex_skeleton,
    build_mutex_system,
)


class TestReference:
    @pytest.mark.parametrize("n_clients", [1, 2, 3])
    def test_verifies(self, n_clients):
        result = BfsExplorer(build_mutex_system(n_clients)).run()
        assert result.verdict is Verdict.SUCCESS, result.summary()

    def test_random_walks(self):
        system = build_mutex_system(3)
        for seed in range(10):
            outcome = simulate(system, max_steps=40, seed=seed)
            assert outcome.violated_invariant is None
            assert not outcome.deadlocked


class TestSynthesis:
    def test_unique_solution_is_reference(self):
        system, _holes = build_mutex_skeleton(2)
        report = SynthesisEngine(system).run()
        assert [dict(s.assignment) for s in report.solutions] == [
            REFERENCE_ASSIGNMENT
        ]

    def test_naive_mode_agrees(self):
        system, _holes = build_mutex_skeleton(2)
        naive = SynthesisEngine(system, SynthesisConfig(pruning=False)).run()
        assert naive.evaluated == naive.naive_candidate_space == 9
        assert [dict(s.assignment) for s in naive.solutions] == [
            REFERENCE_ASSIGNMENT
        ]

    def test_parallel_agrees(self):
        system, _holes = build_mutex_skeleton(2)
        report = ParallelSynthesisEngine(system, threads=2).run()
        assert [dict(s.assignment) for s in report.solutions] == [
            REFERENCE_ASSIGNMENT
        ]
