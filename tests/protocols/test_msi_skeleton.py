"""Tests for MSI skeletons and their synthesis (tiny size for speed)."""

import pytest

from repro.core import SynthesisConfig, SynthesisEngine
from repro.core.candidate import CandidateVector
from repro.core.discovery import CandidateResolver, HoleRegistry
from repro.errors import SynthesisError
from repro.mc.bfs import BfsExplorer
from repro.mc.result import Verdict
from repro.protocols.msi import (
    msi_large,
    msi_read_tiny,
    msi_skeleton,
    msi_small,
    msi_tiny,
)
from repro.protocols.msi.skeleton import SkeletonSpec


class TestSkeletonShapes:
    def test_tiny_hole_count(self):
        skeleton = msi_tiny()
        assert skeleton.hole_count == 2
        assert skeleton.spec.hole_count == 2

    def test_small_matches_paper(self):
        skeleton = msi_small()
        assert skeleton.hole_count == 8  # 2 dir rules * 3 + 1 cache rule * 2
        space = 1
        for hole in skeleton.holes:
            space *= hole.arity
        assert space == 231_525  # Table I, MSI-small naive candidates
        wildcard_space = 1
        for hole in skeleton.holes:
            wildcard_space *= hole.arity + 1
        assert wildcard_space == 1_179_648  # Table I, MSI-small with pruning

    def test_large_matches_paper(self):
        skeleton = msi_large()
        assert skeleton.hole_count == 12
        space = 1
        for hole in skeleton.holes:
            space *= hole.arity
        assert space == 102_102_525  # Table I, MSI-large naive candidates
        wildcard_space = 1
        for hole in skeleton.holes:
            wildcard_space *= hole.arity + 1
        assert wildcard_space == 1_207_959_552

    def test_invalid_rule_rejected(self):
        with pytest.raises(SynthesisError):
            msi_skeleton(SkeletonSpec(name="bad", cache_rules=(((99, "Nope")),)))

    def test_reference_assignment_covers_all_holes(self):
        skeleton = msi_large()
        assignment = skeleton.reference_assignment()
        assert set(assignment) == {hole.name for hole in skeleton.holes}


class TestReferenceAssignmentVerifies:
    @pytest.mark.parametrize("factory", [msi_tiny, msi_small])
    def test_reference_completion_is_a_solution(self, factory):
        skeleton = factory(n_caches=2)
        assignment = skeleton.reference_assignment()
        registry = HoleRegistry()
        digits = ()
        # Iterate discovery: run, extend assignment, until stable.
        for _round in range(20):
            result = BfsExplorer(
                skeleton.system,
                resolver=CandidateResolver(
                    registry, CandidateVector.from_digits(digits)
                ),
            ).run()
            new_digits = tuple(
                hole.index_of(assignment[hole.name]) for hole in registry.holes
            )
            if new_digits == digits:
                break
            digits = new_digits
        assert result.verdict is Verdict.SUCCESS, result.summary()

    def test_wrong_completion_fails(self):
        skeleton = msi_tiny(n_caches=2)
        registry = HoleRegistry()
        BfsExplorer(
            skeleton.system,
            resolver=CandidateResolver(registry, CandidateVector.empty()),
        ).run()
        (response_hole,) = [
            h for h in registry.holes if h.name.endswith("response")
        ]
        # Respond with an invalidation ack instead of the data ack: the
        # directory sees an unexpected InvAck.
        digits = (response_hole.index_of("send_invack"),)
        result = BfsExplorer(
            skeleton.system,
            resolver=CandidateResolver(registry, CandidateVector.from_digits(digits)),
        ).run()
        assert result.verdict is not Verdict.SUCCESS


class TestTinySynthesis:
    @pytest.fixture(scope="class")
    def report(self):
        return SynthesisEngine(msi_tiny(n_caches=2).system).run()

    def test_finds_reference_solution(self, report):
        skeleton = msi_tiny(n_caches=2)
        reference = skeleton.reference_assignment()
        found = [dict(s.assignment) for s in report.solutions]
        assert reference in found

    def test_solutions_all_send_dataack(self, report):
        # Without the data acknowledgement the directory never leaves IM_A.
        for solution in report.solutions:
            assert dict(solution.assignment)[
                "cache.IM_D+Data.response"
            ] == "send_dataack"

    def test_patterns_present(self, report):
        assert report.failure_patterns > 0

    def test_coverage_never_removes_real_solutions(self):
        # Dropping coverage can only widen the solution set.
        with_coverage = SynthesisEngine(msi_tiny(n_caches=2).system).run()
        without = SynthesisEngine(
            msi_tiny(n_caches=2, coverage=False).system
        ).run()
        with_set = {s.digits for s in with_coverage.solutions}
        without_set = {s.digits for s in without.solutions}
        assert with_set <= without_set


class TestCoverageMatters:
    """The paper's Section III observation: without "all stable states must
    be visited", degenerate protocols verify — e.g. a cache that requests
    data in Invalid, receives the response, and transitions straight back
    to Invalid ("effectively renders the cache useless")."""

    def test_useless_read_protocol_verifies_without_coverage(self):
        report = SynthesisEngine(
            msi_read_tiny(n_caches=2, coverage=False).system
        ).run()
        useless = {
            "cache.IS_D+Data.response": "none",
            "cache.IS_D+Data.next": "goto_I",
        }
        assert useless in [dict(s.assignment) for s in report.solutions]

    def test_coverage_rejects_the_useless_protocol(self):
        with_coverage = SynthesisEngine(msi_read_tiny(n_caches=2).system).run()
        useless = {
            "cache.IS_D+Data.response": "none",
            "cache.IS_D+Data.next": "goto_I",
        }
        solutions = [dict(s.assignment) for s in with_coverage.solutions]
        assert useless not in solutions
        assert {
            "cache.IS_D+Data.response": "none",
            "cache.IS_D+Data.next": "goto_S",
        } in solutions

    def test_solution_count_grows_without_coverage(self):
        with_coverage = SynthesisEngine(msi_read_tiny(n_caches=2).system).run()
        without = SynthesisEngine(
            msi_read_tiny(n_caches=2, coverage=False).system
        ).run()
        assert len(without.solutions) > len(with_coverage.solutions)


class TestNaiveMatchesSubtree:
    def test_tiny_counts_identical(self):
        subtree = SynthesisEngine(msi_tiny(n_caches=2).system).run()
        flat = SynthesisEngine(
            msi_tiny(n_caches=2).system, SynthesisConfig(naive_match=True)
        ).run()
        assert flat.evaluated == subtree.evaluated
        assert flat.failure_patterns == subtree.failure_patterns
        assert sorted(s.digits for s in flat.solutions) == sorted(
            s.digits for s in subtree.solutions
        )
