"""Unit tests for the MSI action library (each action in isolation)."""

import pytest

from repro.protocols.msi import defs
from repro.protocols.msi.actions import (
    CacheHoles,
    DirHoles,
    apply_cache_next,
    apply_dir_next,
    cache_next_domain,
    cache_response_domain,
    dir_next_domain,
    dir_response_domain,
    dir_track_domain,
)
from repro.protocols.msi.defs import View, initial_state


def fresh_view(n=2, **overrides):
    view = View(initial_state(n))
    for name, value in overrides.items():
        setattr(view, name, value)
    return view


class TestDomainShapes:
    """The paper's per-hole domain sizes (the Table I arithmetic)."""

    def test_cache_response_is_3(self):
        assert len(cache_response_domain()) == 3

    def test_cache_next_is_7(self):
        assert len(cache_next_domain()) == 7

    def test_dir_response_is_5(self):
        assert len(dir_response_domain()) == 5

    def test_dir_next_is_7(self):
        assert len(dir_next_domain()) == 7

    def test_dir_track_is_3(self):
        assert len(dir_track_domain()) == 3

    def test_dir_rule_combo_count(self):
        assert (
            len(dir_response_domain())
            * len(dir_next_domain())
            * len(dir_track_domain())
            == 105
        )

    def test_cache_rule_combo_count(self):
        assert len(cache_response_domain()) * len(cache_next_domain()) == 21

    def test_next_payloads_are_state_codes(self):
        for code, action in enumerate(cache_next_domain()):
            assert action.payload == code
        for code, action in enumerate(dir_next_domain()):
            assert action.payload == code


class TestCacheResponses:
    def get(self, name):
        return {a.name: a for a in cache_response_domain()}[name]

    def test_none_sends_nothing(self):
        view = fresh_view()
        self.get("none").fn(view, 0)
        assert len(view.freeze()[6]) == 0

    def test_send_invack(self):
        view = fresh_view()
        self.get("send_invack").fn(view, 1)
        assert (defs.INVACK, 1) in view.freeze()[6]

    def test_send_dataack(self):
        view = fresh_view()
        self.get("send_dataack").fn(view, 0)
        assert (defs.DATAACK, 0) in view.freeze()[6]


class TestDirResponses:
    def get(self, name):
        return {a.name: a for a in dir_response_domain()}[name]

    def test_send_data_to_requestor(self):
        view = fresh_view(req=1)
        self.get("send_data").fn(view, 0)
        assert (defs.DATA, 1) in view.freeze()[6]

    def test_send_data_without_requestor_is_noop(self):
        view = fresh_view(req=-1)
        self.get("send_data").fn(view, 0)
        assert len(view.freeze()[6]) == 0

    def test_send_inv_sharers_excludes_requestor_and_counts_acks(self):
        view = fresh_view(n=3, sharers=frozenset({0, 1, 2}), req=1)
        self.get("send_inv_sharers").fn(view, 1)
        net = view.freeze()[6]
        assert (defs.INV, 0) in net and (defs.INV, 2) in net
        assert (defs.INV, 1) not in net
        assert view.acks == 2

    def test_send_inv_sharers_empty_is_noop(self):
        view = fresh_view(sharers=frozenset(), req=0)
        self.get("send_inv_sharers").fn(view, 0)
        assert len(view.freeze()[6]) == 0
        assert view.acks == 0

    def test_send_inv_owner(self):
        view = fresh_view(owner=1)
        self.get("send_inv_owner").fn(view, 0)
        assert (defs.INV, 1) in view.freeze()[6]
        assert view.acks == 1

    def test_send_inv_owner_without_owner_is_noop(self):
        view = fresh_view(owner=-1)
        self.get("send_inv_owner").fn(view, 0)
        assert len(view.freeze()[6]) == 0

    def test_send_data_sharers_broadcasts(self):
        view = fresh_view(n=3, sharers=frozenset({0, 2}))
        self.get("send_data_sharers").fn(view, 0)
        net = view.freeze()[6]
        assert (defs.DATA, 0) in net and (defs.DATA, 2) in net


class TestTrackActions:
    def get(self, name):
        return {a.name: a for a in dir_track_domain()}[name]

    def test_owner_is_req(self):
        view = fresh_view(req=1, sharers=frozenset({0, 1}))
        self.get("owner_is_req").fn(view, 0)
        assert view.owner == 1
        assert view.sharers == frozenset()

    def test_owner_is_req_without_req_is_noop(self):
        view = fresh_view(req=-1, owner=0)
        self.get("owner_is_req").fn(view, 0)
        assert view.owner == 0

    def test_add_req_sharer(self):
        view = fresh_view(req=1, owner=0, sharers=frozenset({0}))
        self.get("add_req_sharer").fn(view, 0)
        assert view.sharers == frozenset({0, 1})
        assert view.owner == -1

    def test_none_keeps_everything(self):
        view = fresh_view(req=1, owner=0, sharers=frozenset({0}))
        self.get("none").fn(view, 0)
        assert (view.owner, view.sharers) == (0, frozenset({0}))


class TestNextStateApplication:
    def test_cache_next(self):
        view = fresh_view()
        apply_cache_next(view, 1, defs.C_M)
        assert view.caches == [defs.C_I, defs.C_M]

    def test_dir_next_to_transient_keeps_bookkeeping(self):
        view = fresh_view(req=1, acks=2)
        apply_dir_next(view, defs.D_SM_A)
        assert (view.req, view.acks) == (1, 2)

    @pytest.mark.parametrize("stable", [defs.D_I, defs.D_S, defs.D_M])
    def test_dir_next_to_stable_clears_pending(self, stable):
        view = fresh_view(req=1, acks=2)
        apply_dir_next(view, stable)
        assert (view.req, view.acks) == (-1, 0)


class TestHoleGroups:
    def test_cache_holes_naming(self):
        group = CacheHoles("IM_D+Data")
        assert group.response.name == "cache.IM_D+Data.response"
        assert group.next_state.name == "cache.IM_D+Data.next"
        assert [h.arity for h in group.holes] == [3, 7]

    def test_dir_holes_naming(self):
        group = DirHoles("IM_A+DataAck")
        assert [h.name.split(".")[-1] for h in group.holes] == [
            "response", "next", "track",
        ]
        assert [h.arity for h in group.holes] == [5, 7, 3]
