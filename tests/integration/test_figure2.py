"""Integration test: exact reproduction of the paper's Figure 2.

The worked example is the paper's specification of the synthesis procedure;
this test asserts the entire run table — run numbers, candidates, verdicts,
recorded pruning patterns, and the 10-vs-24 headline — in one place.
"""

from repro.core.candidate import WILDCARD, CandidateVector, format_candidate
from repro.core.engine import SynthesisConfig, SynthesisEngine, SynthesisObserver
from repro.protocols.toy import build_figure2_skeleton


class TableObserver(SynthesisObserver):
    """Reconstructs Figure 2's table in the paper's notation."""

    def __init__(self):
        self.rows = []
        self.pattern_rows = []
        self.discovered = []
        self._known_before = 0

    def on_run(self, run_index, vector, result, holes):
        # Pad the displayed candidate with wildcards up to the number of
        # holes known *before* this run, exactly like the paper's table
        # (run 4 shows <1@C, 2@?>; run 3, which discovered hole 2, shows
        # just <1@B>).
        pad = max(0, self._known_before - len(vector))
        entries = list(vector.entries) + [WILDCARD] * pad
        text = format_candidate(CandidateVector(entries), holes)
        self.rows.append((run_index, text, result.verdict.value))
        self._known_before = len(holes)

    def on_pattern(self, pattern, holes):
        entries: list = []
        for position in range((pattern.max_position + 1)):
            entries.append(dict(pattern.constraints).get(position, WILDCARD))
        self.pattern_rows.append(
            format_candidate(CandidateVector(entries), holes)
        )

    def on_solution(self, solution, holes):
        self.discovered.append(solution)


def test_figure2_full_table():
    observer = TableObserver()
    report = SynthesisEngine(
        build_figure2_skeleton(), SynthesisConfig(), observer
    ).run()

    assert observer.rows == [
        (1, "<>", "unknown"),
        (2, "<1@A>", "failure"),
        (3, "<1@B>", "unknown"),
        (4, "<1@C, 2@?>", "failure"),
        (5, "<1@B, 2@A>", "unknown"),
        (6, "<1@B, 2@B, 3@?>", "failure"),
        (7, "<1@B, 2@A, 3@A>", "failure"),
        (8, "<1@B, 2@A, 3@B>", "unknown"),
        (9, "<1@B, 2@A, 3@B, 4@A>", "failure"),
        (10, "<1@B, 2@A, 3@B, 4@B>", "success"),
    ]

    assert observer.pattern_rows == [
        "<1@A>",
        "<1@C>",
        "<1@B, 2@B>",
        "<1@B, 2@A, 3@A>",
        "<1@B, 2@A, 3@B, 4@A>",
    ]

    # Headline numbers of the figure caption.
    assert report.evaluated == 10
    assert report.naive_candidate_space == 24
    assert len(report.solutions) == 1


def test_figure2_naive_baseline_is_24():
    report = SynthesisEngine(
        build_figure2_skeleton(), SynthesisConfig(pruning=False)
    ).run()
    assert report.evaluated == 24
    assert len(report.solutions) == 1
