"""Equivalence suite for conflict generalisation + prefix reuse.

Both features are pure optimisations: generalised patterns prune *more*
candidates but only ever candidates that would fail, and prefix resumption
is verdict-exact.  So against the pre-generalisation baseline
(``generalise_conflicts=False, prefix_reuse=False`` — the PR 2 behaviour)
every skeleton must yield:

* the identical solution set (digits, assignments, per-solution state
  counts, executed holes) on every backend;
* the identical canonical hole registry;
* per-candidate verdict agreement: any candidate model checked under both
  configurations received the same verdict;
* no more evaluations than the baseline (sequentially — parallel counts
  drift with pattern timing, as the paper's own Table I shows).
"""

import pytest

from repro.core import SynthesisConfig, SynthesisEngine
from repro.core.engine import SynthesisObserver
from repro.core.parallel import ParallelSynthesisEngine
from repro.dist import DistributedSynthesisEngine, SystemSpec
from repro.protocols.catalog import build_skeleton

SKELETONS = ["mutex", "msi-tiny", "msi-read-tiny", "mesi", "vi"]

BASELINE = dict(generalise_conflicts=False, prefix_reuse=False)


def run_backend(backend, name, config):
    if backend == "sequential":
        return SynthesisEngine(build_skeleton(name), config).run()
    if backend == "threads":
        return ParallelSynthesisEngine(build_skeleton(name), config, threads=2).run()
    return DistributedSynthesisEngine(
        SystemSpec(name), config, workers=2, min_batch_size=2
    ).run()


def solution_view(report):
    return {
        (
            solution.digits,
            solution.assignment,
            solution.states_visited,
            solution.executed_holes,
        )
        for solution in report.solutions
    }


def registry_view(report):
    return [
        (hole.name, tuple(action.name for action in hole.domain))
        for hole in report.holes
    ]


class VerdictRecorder(SynthesisObserver):
    """digits -> verdict for every dispatched model-checker run."""

    def __init__(self):
        self.verdicts = {}

    def on_run(self, run_index, vector, result, holes):
        self.verdicts[vector.entries] = result.verdict.value


@pytest.mark.parametrize("name", SKELETONS)
class TestGeneralisationEquivalence:
    def test_all_backends_match_ungeneralised_baseline(self, name):
        baseline = run_backend("sequential", name, SynthesisConfig(**BASELINE))
        assert baseline.solutions
        for backend in ("sequential", "threads", "processes"):
            report = run_backend(backend, name, SynthesisConfig())
            assert solution_view(report) == solution_view(baseline), backend
            assert registry_view(report) == registry_view(baseline), backend

    def test_per_candidate_verdicts_agree(self, name):
        base_obs, gen_obs = VerdictRecorder(), VerdictRecorder()
        SynthesisEngine(
            build_skeleton(name), SynthesisConfig(**BASELINE), base_obs
        ).run()
        SynthesisEngine(build_skeleton(name), SynthesisConfig(), gen_obs).run()
        shared = set(base_obs.verdicts) & set(gen_obs.verdicts)
        assert shared  # the runs overlap at least on the initial candidates
        for digits in shared:
            assert base_obs.verdicts[digits] == gen_obs.verdicts[digits], digits

    def test_generalisation_never_evaluates_more(self, name):
        baseline = run_backend("sequential", name, SynthesisConfig(**BASELINE))
        generalised = run_backend("sequential", name, SynthesisConfig())
        assert generalised.evaluated <= baseline.evaluated


@pytest.mark.parametrize("name", ["mutex", "msi-tiny"])
class TestFeatureIndependence:
    """Each feature alone must already preserve the solution set."""

    def test_each_flag_combination_agrees(self, name):
        reference = None
        for generalise in (False, True):
            for reuse in (False, True):
                report = run_backend(
                    "sequential",
                    name,
                    SynthesisConfig(
                        generalise_conflicts=generalise, prefix_reuse=reuse
                    ),
                )
                view = (solution_view(report), registry_view(report))
                if reference is None:
                    reference = view
                assert view == reference, (generalise, reuse)

    def test_dfs_explorer_agrees_too(self, name):
        baseline = run_backend(
            "sequential", name, SynthesisConfig(explorer="dfs", **BASELINE)
        )
        generalised = run_backend("sequential", name, SynthesisConfig(explorer="dfs"))
        assert solution_view(generalised) == solution_view(baseline)
        assert registry_view(generalised) == registry_view(baseline)


class TestLimitsStandDown:
    def test_limits_restore_exact_baseline_behaviour(self):
        # With exploration limits set, both features deactivate (a
        # truncated run's verdict is visit-order-dependent, which breaks
        # their arguments) — so the default config must behave *exactly*
        # like the baseline, counters included.
        from repro.mc.kernel import ExplorationLimits

        limits = ExplorationLimits(max_states=10_000)
        baseline = run_backend(
            "sequential", "msi-tiny", SynthesisConfig(limits=limits, **BASELINE)
        )
        default = run_backend(
            "sequential", "msi-tiny", SynthesisConfig(limits=limits)
        )
        assert default.evaluated == baseline.evaluated
        assert default.failure_patterns == baseline.failure_patterns
        assert default.prefix_cache_hits == 0
        assert solution_view(default) == solution_view(baseline)


class TestPrefixCacheReporting:
    def test_report_surfaces_cache_stats(self):
        report = run_backend("sequential", "msi-tiny", SynthesisConfig())
        assert report.prefix_cache_hits > 0
        assert report.prefix_states_reused > 0
        assert report.prefix_cache_builds > 0
        assert "prefix cache" in report.summary()

    def test_processes_backend_merges_worker_cache_stats(self):
        report = run_backend("processes", "msi-tiny", SynthesisConfig())
        assert report.prefix_cache_hits > 0
        assert report.prefix_states_reused > 0

    def test_disabled_cache_reports_zero(self):
        report = run_backend(
            "sequential", "msi-tiny", SynthesisConfig(prefix_reuse=False)
        )
        assert report.prefix_cache_hits == 0
        assert report.prefix_cache_builds == 0
        assert "prefix cache" not in report.summary()
