"""Property test: the synthesis engines are sound and complete.

Random synthesis problems are generated as layered decision DAGs (a
generalisation of the paper's Figure 2 toy): each node carries a hole whose
actions jump to a later node, an error state, or the accepting state.
Ground truth is computed by brute force — every full assignment is model
checked with a fixed resolver — and compared against what the engines
report:

* **pruned engine**: each solution constrains the holes discovered up to
  its success; its don't-care *expansions* must partition the ground-truth
  set exactly (soundness: every expansion verifies; completeness: nothing
  verified is missed; disjointness: success memoisation prevents overlap).
* **naive engine**: solutions padded with default actions must equal the
  ground truth set exactly, and the number of evaluations must equal the
  full product (the telescoping dedup argument).
"""

import itertools
from typing import Dict, List

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SynthesisConfig, SynthesisEngine
from repro.core.action import Action
from repro.core.hole import Hole
from repro.mc.bfs import BfsExplorer
from repro.mc.context import FixedResolver
from repro.mc.properties import DeadlockPolicy, Invariant
from repro.mc.rule import Rule
from repro.mc.result import Verdict
from repro.mc.system import TransitionSystem

ERR = -1
OK = -2


def build_random_problem(arities: List[int], targets: List[List[int]]):
    """A layered decision DAG: node i's hole picks targets[i][action].

    Targets are node indices greater than i, or ERR/OK.
    """
    holes = [
        Hole(f"hole{i}", [Action(f"a{j}") for j in range(arity)])
        for i, arity in enumerate(arities)
    ]

    def make_rule(i: int) -> Rule:
        hole = holes[i]

        def apply(state, ctx, _i=i, _hole=hole):
            action = ctx.resolve(_hole)
            return [targets[_i][_hole.index_of(action.name)]]

        return Rule(f"step{i}", guard=lambda s, _i=i: s == _i, apply=apply)

    system = TransitionSystem(
        name="random-dag",
        initial_states=[0],
        rules=[make_rule(i) for i in range(len(arities))],
        invariants=[Invariant("no-err", lambda s: s != ERR)],
        deadlock=DeadlockPolicy.fail(quiescent=lambda s: s == OK),
    )
    return system, holes


def ground_truth(system_factory, holes) -> set:
    """All fully-assigned candidates that verify, by brute force."""
    verified = set()
    for combo in itertools.product(*(range(h.arity) for h in holes)):
        # Key by hole *name*: each factory() call creates fresh hole
        # objects, and FixedResolver resolves by name as a fallback.
        assignment = {
            hole.name: hole.domain[digit] for hole, digit in zip(holes, combo)
        }
        result = BfsExplorer(
            system_factory(), resolver=FixedResolver(assignment)
        ).run()
        if result.verdict is Verdict.SUCCESS:
            verified.add(combo)
    return verified


def expand_solution(assignment: Dict[str, str], holes) -> set:
    """All full assignments agreeing with a (possibly partial) solution."""
    choices = []
    for hole in holes:
        if hole.name in assignment:
            choices.append([hole.index_of(assignment[hole.name])])
        else:
            choices.append(list(range(hole.arity)))
    return set(itertools.product(*choices))


@st.composite
def dag_problems(draw):
    n_nodes = draw(st.integers(min_value=1, max_value=4))
    arities = [draw(st.integers(min_value=2, max_value=3)) for _ in range(n_nodes)]
    targets: List[List[int]] = []
    for i in range(n_nodes):
        node_targets = []
        for _ in range(arities[i]):
            candidates = [ERR, OK] + list(range(i + 1, n_nodes))
            node_targets.append(draw(st.sampled_from(candidates)))
        targets.append(node_targets)
    return arities, targets


@settings(max_examples=40, deadline=None)
@given(dag_problems())
def test_pruned_engine_matches_brute_force(problem):
    arities, targets = problem

    def factory():
        return build_random_problem(arities, targets)

    system, holes = factory()
    truth = ground_truth(lambda: factory()[0], holes)

    report = SynthesisEngine(system).run()
    hole_order = {hole.name: hole for hole in holes}
    assert set(hole_order) == {h.name for h in holes}

    covered: set = set()
    for solution in report.solutions:
        expansion = expand_solution(solution.assignment_dict(), holes)
        # soundness: every expansion member verifies
        assert expansion <= truth, "pruned engine reported a non-solution"
        # disjointness: success memoisation prevents double counting
        assert not (covered & expansion), "solutions overlap"
        covered |= expansion
    # completeness
    assert covered == truth


@settings(max_examples=40, deadline=None)
@given(dag_problems())
def test_naive_engine_matches_brute_force(problem):
    arities, targets = problem

    def factory():
        return build_random_problem(arities, targets)

    system, holes = factory()
    truth = ground_truth(lambda: factory()[0], holes)

    report = SynthesisEngine(system, SynthesisConfig(pruning=False)).run()

    # Naive-mode solution semantics: assigned holes are fixed; executed-but-
    # unassigned holes took the default action (index 0); holes never
    # executed by the verifying run are genuine don't-cares.
    covered: set = set()
    for solution in report.solutions:
        assignment = dict(solution.assignment_dict())
        executed = set(solution.executed_holes)
        choices = []
        for hole in holes:
            if hole.name in assignment:
                choices.append([hole.index_of(assignment[hole.name])])
            elif hole.name in executed:
                choices.append([0])  # the default action
            else:
                choices.append(list(range(hole.arity)))
        expansion = set(itertools.product(*choices))
        assert expansion <= truth, "naive engine reported a non-solution"
        # NOTE: no disjointness here — the naive algorithm re-evaluates
        # extensions of an earlier success whose extra holes are
        # unreachable, reporting them again; eliminating that redundancy is
        # exactly what the pruned engine's success memoisation is for.
        covered |= expansion
    assert covered == truth

    # the telescoping dedup: evaluations == the full product over the holes
    # the naive runs actually discovered
    discovered = report.holes
    product = 1
    for hole in discovered:
        product *= hole.arity
    assert report.evaluated == product


@settings(max_examples=25, deadline=None)
@given(dag_problems())
def test_flat_matching_agrees_with_subtree(problem):
    arities, targets = problem

    def factory():
        return build_random_problem(arities, targets)[0]

    subtree = SynthesisEngine(factory()).run()
    flat = SynthesisEngine(factory(), SynthesisConfig(naive_match=True)).run()
    assert {s.digits for s in flat.solutions} == {s.digits for s in subtree.solutions}
    assert flat.evaluated == subtree.evaluated
    assert flat.failure_patterns == subtree.failure_patterns
