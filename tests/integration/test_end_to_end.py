"""Cross-module integration tests on real skeletons (kept small for speed)."""

import pytest

from repro.analysis.grouping import group_solutions
from repro.analysis.stats import compare_reports
from repro.core import SynthesisConfig, SynthesisEngine
from repro.core.parallel import ParallelSynthesisEngine
from repro.mc.bfs import ExplorationLimits
from repro.protocols.msi import msi_tiny
from repro.protocols.mutex import build_mutex_skeleton
from repro.protocols.vi import build_vi_skeleton


class TestEnginesAgree:
    """Sequential, parallel, flat-match, and naive engines must find the
    same solution sets on every skeleton (counts may differ, solutions not)."""

    @pytest.fixture(scope="class")
    def systems(self):
        return {
            "msi-tiny": lambda: msi_tiny(n_caches=2).system,
            "vi": lambda: build_vi_skeleton(2)[0],
            "mutex": lambda: build_mutex_skeleton(2)[0],
        }

    @pytest.mark.parametrize("key", ["msi-tiny", "vi", "mutex"])
    def test_all_engines_same_solutions(self, systems, key):
        make = systems[key]
        sequential = SynthesisEngine(make()).run()
        flat = SynthesisEngine(make(), SynthesisConfig(naive_match=True)).run()
        naive = SynthesisEngine(make(), SynthesisConfig(pruning=False)).run()
        parallel = ParallelSynthesisEngine(make(), threads=3).run()

        def solution_set(report):
            return {tuple(sorted(dict(s.assignment).items())) for s in report.solutions}

        reference = solution_set(sequential)
        assert solution_set(flat) == reference
        assert solution_set(naive) == reference
        assert solution_set(parallel) == reference

    @pytest.mark.parametrize("key", ["msi-tiny", "vi", "mutex"])
    def test_pruned_evaluates_no_more_than_naive_space(self, systems, key):
        make = systems[key]
        naive = SynthesisEngine(make(), SynthesisConfig(pruning=False)).run()
        assert naive.evaluated == naive.naive_candidate_space


class TestRefinedPruning:
    def test_refined_never_loses_solutions(self):
        base = SynthesisEngine(msi_tiny(n_caches=2).system).run()
        refined = SynthesisEngine(
            msi_tiny(n_caches=2).system, SynthesisConfig(refined_patterns=True)
        ).run()
        assert {s.digits for s in refined.solutions} == {
            s.digits for s in base.solutions
        }

    def test_refined_evaluates_no_more(self):
        base = SynthesisEngine(msi_tiny(n_caches=2).system).run()
        refined = SynthesisEngine(
            msi_tiny(n_caches=2).system, SynthesisConfig(refined_patterns=True)
        ).run()
        assert refined.evaluated <= base.evaluated


class TestLimitsIntegration:
    def test_exploration_limits_keep_soundness(self):
        # Harsh per-run state caps may make runs UNKNOWN but never lose or
        # fabricate solutions on this skeleton (its spaces are tiny).
        capped = SynthesisEngine(
            msi_tiny(n_caches=2).system,
            SynthesisConfig(limits=ExplorationLimits(max_states=10_000)),
        ).run()
        base = SynthesisEngine(msi_tiny(n_caches=2).system).run()
        assert {s.digits for s in capped.solutions} == {
            s.digits for s in base.solutions
        }


class TestAnalysisIntegration:
    def test_grouping_with_fingerprints(self):
        report = SynthesisEngine(
            msi_tiny(n_caches=2).system, SynthesisConfig(compute_fingerprints=True)
        ).run()
        groups = group_solutions(report.solutions)
        assert sum(group.size for group in groups) == len(report.solutions)
        # goto_M and goto_S variants reach different state graphs.
        assert len(groups) >= 2

    def test_comparison_on_real_reports(self):
        # VI has enough cross-rule structure for pruning to win outright
        # (on MSI-tiny, a single-rule skeleton, pruning cannot pay off —
        # the wildcard passes add runs; see the benchmark ablation).
        naive = SynthesisEngine(
            build_vi_skeleton(2)[0], SynthesisConfig(pruning=False)
        ).run()
        pruned = SynthesisEngine(build_vi_skeleton(2)[0]).run()
        comparison = compare_reports(naive, pruned)
        assert 0.0 <= comparison.evaluated_reduction <= 1.0
        assert comparison.optimised_evaluated < comparison.baseline_evaluated
