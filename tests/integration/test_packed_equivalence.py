"""Equivalence matrix for the packed-state kernel.

Packed mode must be *exact*, not just verdict-preserving: the codec's
table-driven remaps evaluate the same expressions as the object layer's
permutations, so on every catalog protocol and skeleton, exploring with
packed on and off must produce

* identical verify verdicts AND identical state/transition/attempt
  counts (including the seeded-bug builds, the eviction extension, and
  symmetry off), under both frontier strategies, with any
  counterexample trace *replayable* — packed traces are decoded back to
  real states, so each step must be a real firing of the named rule;
* identical synthesis solution sets and per-candidate verdicts, under
  every other acceleration toggle (POR, prefix reuse off, naive mode,
  DFS) and on the thread and process backends;
* bit-identical solution fingerprints (packed explorers decode and
  re-canonicalise their visited sets before fingerprinting).
"""

import pytest

from repro.core import SynthesisConfig, SynthesisEngine
from repro.core.parallel import ParallelSynthesisEngine
from repro.dist import DistributedSynthesisEngine, SystemSpec
from repro.mc.kernel import make_explorer
from repro.protocols.catalog import PROTOCOL_BUILDERS, build_skeleton
from repro.protocols.german import build_german_system
from repro.protocols.moesi import build_moesi_system

from tests.integration.test_por_equivalence import (
    NamedVerdictRecorder,
    assignment_view,
    executed_view,
    replay_trace,
)

VERIFY_SYSTEMS = [
    ("mutex", lambda: PROTOCOL_BUILDERS["mutex"](2)),
    ("vi", lambda: PROTOCOL_BUILDERS["vi"](2)),
    ("msi@2", lambda: PROTOCOL_BUILDERS["msi"](2)),
    ("msi@3", lambda: PROTOCOL_BUILDERS["msi"](3)),
    ("msi-evict", lambda: PROTOCOL_BUILDERS["msi"](2, evictions=True)),
    ("mesi", lambda: PROTOCOL_BUILDERS["mesi"](2)),
    ("moesi", lambda: PROTOCOL_BUILDERS["moesi"](2)),
    ("german", lambda: PROTOCOL_BUILDERS["german"](2)),
    ("moesi-bug", lambda: build_moesi_system(2, bug="no-owner-inv")),
    ("german-bug", lambda: build_german_system(2, bug="stale-shared-grant")),
    ("msi-nosym", lambda: PROTOCOL_BUILDERS["msi"](2, symmetry=False)),
    ("german-nosym", lambda: PROTOCOL_BUILDERS["german"](2, symmetry=False)),
]

SKELETONS = [
    "figure2",
    "mutex",
    "vi",
    "msi-tiny",
    "msi-read-tiny",
    "msi-small",
    "mesi",
    "moesi-small",
    "german-small",
]


@pytest.mark.parametrize("label,builder", VERIFY_SYSTEMS,
                         ids=[label for label, _ in VERIFY_SYSTEMS])
def test_verify_runs_are_identical(label, builder):
    for strategy in ("bfs", "dfs"):
        baseline = make_explorer(strategy, builder(), packed=False).run()
        packed_system = builder()
        assert packed_system.packed_spec is not None
        packed = make_explorer(strategy, packed_system, packed=True).run()
        assert packed.verdict == baseline.verdict, strategy
        assert packed.failure_kind == baseline.failure_kind, strategy
        stats, base = packed.stats, baseline.stats
        assert stats.states_visited == base.states_visited, strategy
        assert stats.transitions_fired == base.transitions_fired, strategy
        assert stats.rules_attempted == base.rules_attempted, strategy
        assert packed.wildcard_encountered == baseline.wildcard_encountered
        if packed.trace is not None:
            # Packed traces are decoded back to object states, so they
            # must replay as real firings on a fresh (object) system.
            replay_trace(builder(), packed.trace)


def test_packed_fingerprints_match_object_mode():
    """Cross-mode fingerprints agree: packed visited sets are decoded
    and re-canonicalised before hashing."""
    object_run = make_explorer(
        "bfs", PROTOCOL_BUILDERS["msi"](2), packed=False
    )
    object_run.run()
    packed_run = make_explorer("bfs", PROTOCOL_BUILDERS["msi"](2), packed=True)
    packed_run.run()
    assert packed_run.packed_runtime is not None
    assert object_run.fingerprint_visited() == packed_run.fingerprint_visited()


@pytest.mark.parametrize("name", SKELETONS)
def test_synthesis_solution_sets_match(name):
    on_observer = NamedVerdictRecorder()
    off_observer = NamedVerdictRecorder()
    on = SynthesisEngine(
        build_skeleton(name),
        SynthesisConfig(packed=True, compute_fingerprints=True),
        on_observer,
    ).run()
    off = SynthesisEngine(
        build_skeleton(name),
        SynthesisConfig(packed=False, compute_fingerprints=True),
        off_observer,
    ).run()
    assert assignment_view(on) == assignment_view(off)
    assert executed_view(on) == executed_view(off)
    assert {hole.name for hole in on.holes} == {hole.name for hole in off.holes}
    assert on.packed and not off.packed
    fingerprints = {
        mode: {
            frozenset(s.assignment): s.fingerprint for s in report.solutions
        }
        for mode, report in (("on", on), ("off", off))
    }
    assert fingerprints["on"] == fingerprints["off"]
    shared = set(on_observer.verdicts) & set(off_observer.verdicts)
    assert shared, "modes share no dispatched candidates"
    for key in shared:
        assert on_observer.verdicts[key] == off_observer.verdicts[key], key


@pytest.mark.parametrize("name", ["msi-tiny", "german-small"])
def test_synthesis_backends_match_when_packed(name):
    """Packed mode composes with the thread and process backends (and
    the PassStart tripwire lets matching configs through)."""
    sequential = SynthesisEngine(
        build_skeleton(name), SynthesisConfig(packed=True)
    ).run()
    threaded = ParallelSynthesisEngine(
        build_skeleton(name), SynthesisConfig(packed=True), threads=2
    ).run()
    distributed = DistributedSynthesisEngine(
        SystemSpec(name), SynthesisConfig(packed=True),
        workers=2, min_batch_size=2,
    ).run()
    assert (
        assignment_view(sequential)
        == assignment_view(threaded)
        == assignment_view(distributed)
    )


@pytest.mark.parametrize("flags", [
    dict(partial_order=True),
    dict(generalise_conflicts=False),
    dict(prefix_reuse=False),
    dict(pruning=False),
    dict(explorer="dfs"),
])
def test_synthesis_flag_combinations_match(flags):
    """Packed on/off agree under every other acceleration toggle too."""
    on = SynthesisEngine(
        build_skeleton("msi-tiny"), SynthesisConfig(packed=True, **flags)
    ).run()
    off = SynthesisEngine(
        build_skeleton("msi-tiny"), SynthesisConfig(packed=False, **flags)
    ).run()
    assert assignment_view(on) == assignment_view(off)
