"""Telemetry must be verdict-neutral: observation cannot change results.

On every catalog protocol and skeleton, running with full telemetry
(metrics + trace + instrumented kernel) and with telemetry off must
produce

* identical verify verdicts AND identical ``states_visited`` — unlike
  POR, telemetry is pure observation, so even the state counts must
  match exactly;
* identical synthesis solution sets, evaluated-candidate counts, and
  verdict tallies, on every backend;
* a structurally valid trace: balanced span_start/span_end, every event
  JSON-clean.

The acceptance bar from the issue rides along: an instrumented
``synth msi-small`` trace must attribute >= 95% of the root span's
wall-clock to named spans/phases, and the disabled path must cost at
most one predicate check per hot-loop iteration (guarded structurally
in ``tests/obs`` and by the bench overhead section; here we assert the
kernel takes the zero-overhead branch when no telemetry is attached).
"""

import json

import pytest

from repro.core import SynthesisConfig, SynthesisEngine
from repro.core.parallel import ParallelSynthesisEngine
from repro.dist import DistributedSynthesisEngine, SystemSpec
from repro.mc.kernel import make_explorer
from repro.obs import Telemetry, build_stats, load_events
from repro.protocols.catalog import PROTOCOL_BUILDERS, build_skeleton
from repro.protocols.german import build_german_system
from repro.protocols.moesi import build_moesi_system

#: (label, builder) mirroring the POR equivalence matrix: every catalog
#: protocol plus seeded-bug builds, the eviction extension, and
#: symmetry-off variants
VERIFY_SYSTEMS = [
    ("mutex", lambda: PROTOCOL_BUILDERS["mutex"](2)),
    ("vi", lambda: PROTOCOL_BUILDERS["vi"](2)),
    ("msi@2", lambda: PROTOCOL_BUILDERS["msi"](2)),
    ("msi@3", lambda: PROTOCOL_BUILDERS["msi"](3)),
    ("msi-evict", lambda: PROTOCOL_BUILDERS["msi"](2, evictions=True)),
    ("mesi", lambda: PROTOCOL_BUILDERS["mesi"](2)),
    ("moesi", lambda: PROTOCOL_BUILDERS["moesi"](2)),
    ("german", lambda: PROTOCOL_BUILDERS["german"](2)),
    ("moesi-bug", lambda: build_moesi_system(2, bug="no-owner-inv")),
    ("german-bug", lambda: build_german_system(2, bug="stale-shared-grant")),
    ("msi-nosym", lambda: PROTOCOL_BUILDERS["msi"](2, symmetry=False)),
]

#: every catalog skeleton except msi-large (shares msi-small's machinery
#: at a size that is not tier-1 material); msi-small itself is exercised
#: by the attribution acceptance test below
SKELETONS = [
    "figure2",
    "mutex",
    "vi",
    "msi-tiny",
    "msi-read-tiny",
    "mesi",
    "moesi-small",
    "german-small",
]


def assignment_view(report):
    return sorted(frozenset(s.assignment) for s in report.solutions)


def assert_balanced_trace(path):
    events = load_events(path)
    assert events, path
    opened = [e["id"] for e in events if e["type"] == "span_start"]
    closed = [e["id"] for e in events if e["type"] == "span_end"]
    assert sorted(opened) == sorted(closed)
    json.dumps(events)  # JSON-clean end to end
    return events


@pytest.mark.parametrize("label,builder", VERIFY_SYSTEMS,
                         ids=[label for label, _ in VERIFY_SYSTEMS])
def test_verify_identical_with_telemetry(label, builder, tmp_path):
    for strategy in ("bfs", "dfs"):
        off = make_explorer(strategy, builder()).run()
        trace = tmp_path / f"{strategy}.jsonl"
        tele = Telemetry.create(trace_path=str(trace))
        on = make_explorer(strategy, builder(), telemetry=tele).run()
        tele.close()
        assert on.verdict == off.verdict, strategy
        assert on.failure_kind == off.failure_kind, strategy
        # Pure observation: exactly the same exploration.
        assert on.stats.states_visited == off.stats.states_visited
        assert on.stats.transitions_fired == off.stats.transitions_fired
        assert on.stats.max_depth == off.stats.max_depth
        if on.trace is not None:
            assert [s.rule_name for s in on.trace.steps] == [
                s.rule_name for s in off.trace.steps
            ]
        events = assert_balanced_trace(trace)
        phase_names = {e["name"] for e in events if e["type"] == "phase"}
        assert "canonicalise" in phase_names
        assert "expand" in phase_names


def test_verify_por_kernel_emits_ample_phase(tmp_path):
    trace = tmp_path / "por.jsonl"
    tele = Telemetry.create(trace_path=str(trace))
    on = make_explorer(
        "bfs", PROTOCOL_BUILDERS["moesi"](2), partial_order=True,
        telemetry=tele,
    ).run()
    tele.close()
    off = make_explorer(
        "bfs", PROTOCOL_BUILDERS["moesi"](2), partial_order=True
    ).run()
    assert on.stats.states_visited == off.stats.states_visited
    events = load_events(trace)
    phase_names = {e["name"] for e in events if e["type"] == "phase"}
    assert "ample_select" in phase_names
    span_names = {e["name"] for e in events if e["type"] == "span_start"}
    assert "footprint_probe" in span_names


@pytest.mark.parametrize("name", SKELETONS)
def test_synthesis_solution_sets_match(name, tmp_path):
    off = SynthesisEngine(build_skeleton(name), SynthesisConfig()).run()
    trace = tmp_path / "synth.jsonl"
    on = SynthesisEngine(
        build_skeleton(name),
        SynthesisConfig(telemetry=True, trace_path=str(trace)),
    ).run()
    assert assignment_view(on) == assignment_view(off)
    assert on.evaluated == off.evaluated
    assert on.verdict_counts == off.verdict_counts
    assert {h.name for h in on.holes} == {h.name for h in off.holes}
    assert on.telemetry_enabled and not off.telemetry_enabled
    assert on.trace_path == str(trace)
    assert on.trace_events > 0
    assert on.peak_states > 0
    assert_balanced_trace(trace)


@pytest.mark.parametrize("backend", ["sequential", "threads", "processes"])
@pytest.mark.parametrize("name", ["msi-tiny", "german-small"])
def test_backends_match_with_telemetry(name, backend, tmp_path):
    baseline = SynthesisEngine(build_skeleton(name), SynthesisConfig()).run()
    trace = tmp_path / f"{backend}.jsonl"
    config = SynthesisConfig(telemetry=True, trace_path=str(trace))
    if backend == "threads":
        report = ParallelSynthesisEngine(
            build_skeleton(name), config, threads=2
        ).run()
    elif backend == "processes":
        report = DistributedSynthesisEngine(
            SystemSpec(name), config, workers=2, min_batch_size=2
        ).run()
    else:
        report = SynthesisEngine(build_skeleton(name), config).run()
    assert assignment_view(report) == assignment_view(baseline)
    assert report.telemetry_enabled
    assert report.peak_states > 0
    events = assert_balanced_trace(trace)
    roots = [
        e for e in events
        if e["type"] == "span_start" and e.get("parent") is None
    ]
    assert roots and roots[0]["name"] == "synthesis"
    if backend == "processes":
        worker_traces = sorted(tmp_path.glob(f"{backend}.jsonl.worker-*"))
        assert len(worker_traces) == 2
        for worker_trace in worker_traces:
            worker_events = assert_balanced_trace(worker_trace)
            names = {
                e["name"] for e in worker_events
                if e["type"] == "span_start"
            }
            assert "batch" in names


def test_dist_metrics_aggregate_to_single_process_totals():
    """The coordinator's merged registry equals the report's counters."""
    engine = DistributedSynthesisEngine(
        SystemSpec("msi-tiny"), SynthesisConfig(telemetry=True),
        workers=2, min_batch_size=2,
    )
    report = engine.run()
    snap = engine.core.telemetry.metrics.snapshot()
    assert sum(
        snap["synth_candidates_evaluated"]["series"].values()
    ) == report.evaluated
    verdicts = {
        key.split("=", 1)[1]: value
        for key, value in snap["synth_verdicts"]["series"].items()
    }
    assert verdicts == report.verdict_counts
    assert max(
        snap["mc_peak_states"]["series"].values()
    ) == report.peak_states


def test_synth_msi_small_trace_attribution_meets_bar(tmp_path):
    """Issue acceptance: >= 95% of an instrumented synth run's wall-clock
    attributes to named spans/phases, via the real CLI entry point."""
    from repro.cli import main

    trace = tmp_path / "accept.jsonl"
    code = main([
        "synth", "msi-small", "--trace", str(trace), "--no-progress",
    ])
    assert code == 0
    stats = build_stats(load_events(trace))
    assert stats.root_name == "synth"
    assert stats.open_spans == 0
    assert stats.attribution is not None
    assert stats.attribution >= 0.95, f"attribution {stats.attribution:.1%}"


def test_kernel_without_telemetry_takes_zero_overhead_branch():
    """No telemetry -> the kernel must not install the canonicalise
    timing shim or accumulate phase timings (the disabled path costs one
    setup-time branch, not per-state work)."""
    explorer = make_explorer("bfs", PROTOCOL_BUILDERS["msi"](2))
    result = explorer.run()
    assert result.is_success
    assert explorer.phase_seconds == {}
    assert explorer.telemetry is None
