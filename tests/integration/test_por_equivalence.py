"""Equivalence matrix for footprint-based partial-order reduction.

POR must be a pure state-space optimisation: on every catalog protocol and
skeleton, exploring with it on and off must produce

* identical verify verdicts (including the seeded-bug builds and the
  eviction extension), under symmetry on and off and both frontier
  strategies, with any counterexample trace *replayable* — each step a
  real firing of the named rule, ending in a state violating a property;
* identical synthesis solution sets (compared by hole-name -> action-name
  assignment: POR changes rule firing order, hence hole discovery order
  and digit positions, but never which completions are correct);
* per-candidate verdict agreement wherever both modes dispatched the same
  (named) candidate to the model checker;
* never *more* states visited with the reduction on.

``states_visited`` and the pruning-pattern economy legitimately differ —
patterns are generalised from traces, and POR traces interleave
differently — so neither is compared.
"""

import pytest

from repro.core import SynthesisConfig, SynthesisEngine
from repro.core.candidate import WILDCARD
from repro.core.engine import SynthesisObserver
from repro.core.parallel import ParallelSynthesisEngine
from repro.dist import DistributedSynthesisEngine, SystemSpec
from repro.mc.kernel import make_explorer
from repro.mc.context import ExecutionContext, FixedResolver
from repro.mc.result import Verdict
from repro.protocols.catalog import PROTOCOL_BUILDERS, build_skeleton
from repro.protocols.german import build_german_system
from repro.protocols.moesi import build_moesi_system

#: (label, builder) for every complete system the verify matrix covers:
#: each catalog protocol plus the seeded-bug builds and the MSI eviction
#: extension
VERIFY_SYSTEMS = [
    ("mutex", lambda: PROTOCOL_BUILDERS["mutex"](2)),
    ("vi", lambda: PROTOCOL_BUILDERS["vi"](2)),
    ("msi@2", lambda: PROTOCOL_BUILDERS["msi"](2)),
    ("msi@3", lambda: PROTOCOL_BUILDERS["msi"](3)),
    ("msi-evict", lambda: PROTOCOL_BUILDERS["msi"](2, evictions=True)),
    ("mesi", lambda: PROTOCOL_BUILDERS["mesi"](2)),
    ("moesi", lambda: PROTOCOL_BUILDERS["moesi"](2)),
    ("german", lambda: PROTOCOL_BUILDERS["german"](2)),
    ("moesi-bug", lambda: build_moesi_system(2, bug="no-owner-inv")),
    ("german-bug", lambda: build_german_system(2, bug="stale-shared-grant")),
    ("msi-nosym", lambda: PROTOCOL_BUILDERS["msi"](2, symmetry=False)),
    ("german-nosym", lambda: PROTOCOL_BUILDERS["german"](2, symmetry=False)),
]

#: every catalog skeleton the synthesis matrix covers; msi-large shares
#: msi-small's machinery at a size that is not tier-1 material
SKELETONS = [
    "figure2",
    "mutex",
    "vi",
    "msi-tiny",
    "msi-read-tiny",
    "msi-small",
    "mesi",
    "moesi-small",
    "german-small",
]


def replay_trace(system, trace):
    """Assert a trace is a real execution of ``system`` ending in a
    property violation (or a deadlock state)."""
    rules = {rule.name: rule for rule in system.rules}
    ctx = ExecutionContext()
    current = None
    for step in trace.steps:
        if step.rule_name is None:
            assert any(step.state == s for s in system.initial_states())
        else:
            rule = rules[step.rule_name]
            assert rule.guard(current), step.rule_name
            successors = rule.fire(current, ctx)
            assert any(step.state == s for s in successors), step.rule_name
        current = step.state
    violated = any(not inv.holds(current) for inv in system.invariants)
    deadlocked = not any(rule.guard(current) for rule in system.rules)
    assert violated or deadlocked


@pytest.mark.parametrize("label,builder", VERIFY_SYSTEMS,
                         ids=[label for label, _ in VERIFY_SYSTEMS])
def test_verify_verdicts_match(label, builder):
    # One shared system for the reduced runs: the footprint analysis is
    # cached per system object, so both strategies amortise one probe.
    reduced_system = builder()
    for strategy in ("bfs", "dfs"):
        baseline = make_explorer(strategy, builder()).run()
        reduced = make_explorer(
            strategy, reduced_system, partial_order=True
        ).run()
        assert reduced.verdict == baseline.verdict, strategy
        assert reduced.failure_kind == baseline.failure_kind, strategy
        assert reduced.stats.states_visited <= baseline.stats.states_visited
        assert reduced.wildcard_encountered == baseline.wildcard_encountered
        if reduced.trace is not None:
            replay_trace(builder(), reduced.trace)


def test_verify_por_reduces_states_somewhere():
    """The reduction must actually reduce on the workloads it targets."""
    system = PROTOCOL_BUILDERS["moesi"](2)
    reduced = make_explorer("bfs", system, partial_order=True).run()
    baseline = make_explorer("bfs", PROTOCOL_BUILDERS["moesi"](2)).run()
    assert reduced.stats.ample_states > 0
    assert reduced.stats.por_rules_skipped > 0
    assert reduced.stats.states_visited < baseline.stats.states_visited


def test_reference_candidate_check_matches():
    """A skeleton's reference completion verifies identically under POR."""
    from repro.protocols.msi.skeleton import msi_small

    def run(por):
        skeleton = msi_small(2)
        resolver = FixedResolver({
            hole: hole.domain[
                hole.index_of(skeleton.reference_assignment()[hole.name])
            ]
            for hole in skeleton.holes
        })
        return make_explorer(
            "bfs", skeleton.system, resolver=resolver, partial_order=por
        ).run()

    on, off = run(True), run(False)
    assert on.verdict is Verdict.SUCCESS
    assert off.verdict is Verdict.SUCCESS
    assert on.stats.states_visited <= off.stats.states_visited


class NamedVerdictRecorder(SynthesisObserver):
    """Candidate (by hole names) -> verdict, robust to digit reordering."""

    def __init__(self):
        self.verdicts = {}

    def on_run(self, run_index, vector, result, holes):
        key = frozenset(
            (
                holes[position].name,
                "*" if entry is WILDCARD else holes[position].domain[entry].name,
            )
            for position, entry in enumerate(vector.entries)
        )
        self.verdicts[key] = result.verdict.value


def assignment_view(report):
    return sorted(frozenset(solution.assignment) for solution in report.solutions)


def executed_view(report):
    return sorted(
        (frozenset(s.assignment), s.executed_holes) for s in report.solutions
    )


@pytest.mark.parametrize("name", SKELETONS)
def test_synthesis_solution_sets_match(name):
    on_observer = NamedVerdictRecorder()
    off_observer = NamedVerdictRecorder()
    on = SynthesisEngine(
        build_skeleton(name), SynthesisConfig(partial_order=True), on_observer
    ).run()
    off = SynthesisEngine(
        build_skeleton(name), SynthesisConfig(partial_order=False), off_observer
    ).run()
    assert assignment_view(on) == assignment_view(off)
    assert executed_view(on) == executed_view(off)
    assert {hole.name for hole in on.holes} == {hole.name for hole in off.holes}
    assert on.partial_order and not off.partial_order
    shared = set(on_observer.verdicts) & set(off_observer.verdicts)
    assert shared, "modes share no dispatched candidates"
    for key in shared:
        assert on_observer.verdicts[key] == off_observer.verdicts[key], key


@pytest.mark.parametrize("name", ["msi-tiny", "german-small"])
def test_synthesis_backends_match_under_por(name):
    """POR composes with the thread and process backends (and the
    PassStart tripwire lets matching configs through)."""
    config = SynthesisConfig(partial_order=True)
    sequential = SynthesisEngine(build_skeleton(name), config).run()
    threaded = ParallelSynthesisEngine(
        build_skeleton(name), SynthesisConfig(partial_order=True), threads=2
    ).run()
    distributed = DistributedSynthesisEngine(
        SystemSpec(name), SynthesisConfig(partial_order=True),
        workers=2, min_batch_size=2,
    ).run()
    assert (
        assignment_view(sequential)
        == assignment_view(threaded)
        == assignment_view(distributed)
    )
    assert distributed.por_rules_skipped == 0 or distributed.ample_states > 0


@pytest.mark.parametrize("flags", [
    dict(generalise_conflicts=False),
    dict(prefix_reuse=False),
    dict(pruning=False),
    dict(explorer="dfs"),
])
def test_synthesis_flag_combinations_match(flags):
    """POR on/off agree under every other acceleration toggle too."""
    on = SynthesisEngine(
        build_skeleton("msi-tiny"), SynthesisConfig(partial_order=True, **flags)
    ).run()
    off = SynthesisEngine(
        build_skeleton("msi-tiny"), SynthesisConfig(partial_order=False, **flags)
    ).run()
    assert assignment_view(on) == assignment_view(off)
