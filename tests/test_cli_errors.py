"""CLI error-path coverage: unknown targets, bad numeric flags, and
conflicting flag combinations all exit with status 2 and a message."""

import pytest

from repro.cli import main


def run_expect_usage_error(capsys, argv, fragment):
    """Invoke the CLI expecting exit status 2 and ``fragment`` on stderr."""
    code = main(argv)
    assert code == 2
    assert fragment in capsys.readouterr().err


class TestUnknownTargets:
    def test_unknown_protocol(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", "nonexistent"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_unknown_skeleton(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["synth", "nonexistent"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_unknown_command(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2


class TestBadWorkerCounts:
    def test_workers_zero(self, capsys):
        run_expect_usage_error(
            capsys,
            ["synth", "figure2", "--backend", "processes", "--workers", "0"],
            "--workers must be >= 1",
        )

    def test_workers_negative(self, capsys):
        run_expect_usage_error(
            capsys,
            ["synth", "figure2", "--backend", "processes", "--workers", "-2"],
            "--workers must be >= 1",
        )

    def test_threads_zero(self, capsys):
        run_expect_usage_error(
            capsys,
            ["synth", "figure2", "--threads", "0"],
            "--threads must be >= 1",
        )

    def test_replicas_zero_verify(self, capsys):
        run_expect_usage_error(
            capsys, ["verify", "msi", "--caches", "0"], ">= 1"
        )

    def test_replicas_zero_synth(self, capsys):
        run_expect_usage_error(
            capsys, ["synth", "msi-tiny", "--caches", "0"], ">= 1"
        )


class TestConflictingFlags:
    def test_dfs_contradicts_explicit_bfs(self, capsys):
        run_expect_usage_error(
            capsys,
            ["verify", "vi", "--dfs", "--explorer", "bfs"],
            "conflicting flags",
        )

    def test_dfs_with_matching_explorer_is_fine(self, capsys):
        assert main(["verify", "vi", "--dfs", "--explorer", "dfs"]) == 0

    def test_naive_contradicts_refined(self, capsys):
        run_expect_usage_error(
            capsys,
            ["synth", "figure2", "--naive", "--refined"],
            "conflicting flags",
        )

    def test_por_and_no_por_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["verify", "msi", "--por", "--no-por"])
        assert excinfo.value.code == 2

    def test_naive_contradicts_family(self, capsys):
        run_expect_usage_error(
            capsys,
            ["synth", "figure2", "--family", "--naive"],
            "conflicting flags",
        )

    def test_family_and_no_family_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["synth", "figure2", "--family", "--no-family"])
        assert excinfo.value.code == 2

    def test_family_auto_inactivates_under_exploration_limits(self, capsys):
        """Exploration limits stand the family scheduler down exactly
        like prefix reuse (a truncated quotient's verdict is unsound for
        the members), and a user who typed the flag gets a warning."""
        from unittest import mock

        from repro.core.engine import SynthesisConfig
        from repro.mc.kernel import ExplorationLimits

        limited = SynthesisConfig(
            family=True, limits=ExplorationLimits(max_states=10)
        )
        assert not limited.family_active
        assert SynthesisConfig(family=True).family_active

        # The synth command surfaces the fallback on stderr; no synth
        # flag sets kernel limits today, so patch the config the CLI
        # builds to carry one.
        with mock.patch(
            "repro.cli.SynthesisConfig",
            lambda **kwargs: SynthesisConfig(
                limits=ExplorationLimits(max_states=100_000), **kwargs
            ),
        ):
            assert main(["synth", "figure2", "--family"]) == 0
        captured = capsys.readouterr()
        assert "--family is inactive" in captured.err
        assert "family synthesis:" not in captured.out

    def test_matrix_preset_and_spec_mutually_exclusive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["matrix", "--preset", "smoke", "--spec", "x.json"])
        assert excinfo.value.code == 2


class TestMatrixErrors:
    def test_matrix_without_source(self, capsys):
        assert main(["matrix"]) == 2
        assert "--preset or --spec" in capsys.readouterr().err

    def test_matrix_missing_spec_file(self, capsys, tmp_path):
        assert main(["matrix", "--spec", str(tmp_path / "absent.json")]) == 2
        assert "cannot read spec" in capsys.readouterr().err


class TestMatrixPorOverride:
    def test_matrix_por_override_no_id_collisions(self, tmp_path):
        """--por/--no-por apply post-expansion: no duplicate-id crash even
        when a preset already contains explicit por cells, and every cell
        really runs in the forced mode."""
        from repro.experiments import load_preset
        from repro.experiments.runner import MatrixRunner

        for force in (True, False):
            runner = MatrixRunner(
                load_preset("smoke"), tmp_path / str(force), force_por=force
            )
            assert all(cell.por is force for cell in runner.cells)
