"""Tests for repro.util.logging (previously the least-covered module)."""

import logging

from repro.util.logging import enable_verbose_logging, get_logger


class TestGetLogger:
    def test_namespaces_under_repro(self):
        assert get_logger("dist").name == "repro.dist"

    def test_keeps_existing_repro_prefix(self):
        assert get_logger("repro.mc").name == "repro.mc"
        assert get_logger("repro").name == "repro"

    def test_same_logger_object(self):
        assert get_logger("core") is logging.getLogger("repro.core")


class TestEnableVerboseLogging:
    def teardown_method(self):
        logger = logging.getLogger("repro")
        for handler in list(logger.handlers):
            logger.removeHandler(handler)
        logger.setLevel(logging.NOTSET)

    def test_attaches_stream_handler_and_level(self):
        enable_verbose_logging()
        logger = logging.getLogger("repro")
        assert logger.level == logging.INFO
        assert any(
            isinstance(h, logging.StreamHandler) for h in logger.handlers
        )

    def test_idempotent(self):
        enable_verbose_logging()
        enable_verbose_logging(logging.DEBUG)
        logger = logging.getLogger("repro")
        handlers = [
            h for h in logger.handlers if isinstance(h, logging.StreamHandler)
        ]
        assert len(handlers) == 1
        assert logger.level == logging.DEBUG

    def test_messages_flow_through(self, caplog):
        enable_verbose_logging()
        with caplog.at_level(logging.INFO, logger="repro"):
            get_logger("test").info("footprints ready")
        assert "footprints ready" in caplog.text
