"""Tests for repro.util.logging (previously the least-covered module)."""

import logging

from repro.util.logging import enable_verbose_logging, get_logger


class TestGetLogger:
    def test_namespaces_under_repro(self):
        assert get_logger("dist").name == "repro.dist"

    def test_keeps_existing_repro_prefix(self):
        assert get_logger("repro.mc").name == "repro.mc"
        assert get_logger("repro").name == "repro"

    def test_same_logger_object(self):
        assert get_logger("core") is logging.getLogger("repro.core")


class TestEnableVerboseLogging:
    def teardown_method(self):
        logger = logging.getLogger("repro")
        for handler in list(logger.handlers):
            logger.removeHandler(handler)
        logger.setLevel(logging.NOTSET)

    def test_attaches_stream_handler_and_level(self):
        enable_verbose_logging()
        logger = logging.getLogger("repro")
        assert logger.level == logging.INFO
        assert any(
            isinstance(h, logging.StreamHandler) for h in logger.handlers
        )

    def test_idempotent(self):
        enable_verbose_logging()
        enable_verbose_logging(logging.DEBUG)
        logger = logging.getLogger("repro")
        handlers = [
            h for h in logger.handlers if isinstance(h, logging.StreamHandler)
        ]
        assert len(handlers) == 1
        assert logger.level == logging.DEBUG

    def test_messages_flow_through(self, caplog):
        enable_verbose_logging()
        with caplog.at_level(logging.INFO, logger="repro"):
            get_logger("test").info("footprints ready")
        assert "footprints ready" in caplog.text

    def test_reentry_returns_same_handler(self):
        first = enable_verbose_logging()
        second = enable_verbose_logging()
        assert first is second

    def test_reentry_with_different_level_retunes_handler(self):
        handler = enable_verbose_logging(logging.INFO)
        assert handler.level == logging.INFO
        again = enable_verbose_logging(logging.DEBUG)
        assert again is handler
        assert handler.level == logging.DEBUG
        assert logging.getLogger("repro").level == logging.DEBUG
        back = enable_verbose_logging(logging.WARNING)
        assert back is handler
        assert handler.level == logging.WARNING
        assert logging.getLogger("repro").level == logging.WARNING

    def test_many_reentries_attach_exactly_one_handler(self):
        for level in (logging.INFO, logging.DEBUG, logging.INFO,
                      logging.ERROR, logging.DEBUG):
            enable_verbose_logging(level)
        logger = logging.getLogger("repro")
        assert len(logger.handlers) == 1

    def test_application_file_handler_is_not_counted_as_ours(self, tmp_path):
        # FileHandler subclasses StreamHandler; the old isinstance check
        # mistook it for the library handler and never attached one.
        logger = logging.getLogger("repro")
        app_handler = logging.FileHandler(tmp_path / "app.log")
        logger.addHandler(app_handler)
        try:
            ours = enable_verbose_logging()
            assert ours is not app_handler
            assert ours in logger.handlers
            assert app_handler in logger.handlers  # untouched
            assert app_handler.level == logging.NOTSET
        finally:
            app_handler.close()

    def test_telemetry_create_routes_verbose(self):
        from repro.obs import Telemetry

        tele = Telemetry.create(verbose=True)
        try:
            logger = logging.getLogger("repro")
            assert logger.level == logging.INFO
            assert len(logger.handlers) == 1
        finally:
            tele.close()
