"""Unit and property tests for mixed-radix counting helpers."""

import itertools

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.itertools2 import (
    MixedRadixCounter,
    mixed_radix_decode,
    mixed_radix_encode,
    product_size,
    split_ranges,
)

radices_strategy = st.lists(st.integers(min_value=1, max_value=5), min_size=0, max_size=5)


class TestProductSize:
    def test_empty(self):
        assert product_size([]) == 1

    def test_simple(self):
        assert product_size([3, 2, 2, 2]) == 24

    def test_msi_small_space(self):
        # The paper's MSI-small naive candidate space.
        assert product_size([5, 7, 3, 5, 7, 3, 3, 7]) == 231_525

    def test_msi_large_space(self):
        assert product_size([5, 7, 3, 5, 7, 3, 3, 7, 3, 7, 3, 7]) == 102_102_525

    def test_wildcard_extended_spaces(self):
        assert product_size([6, 8, 4, 6, 8, 4, 4, 8]) == 1_179_648
        assert product_size([6, 8, 4, 6, 8, 4, 4, 8, 4, 8, 4, 8]) == 1_207_959_552

    def test_rejects_zero_radix(self):
        with pytest.raises(ValueError):
            product_size([3, 0])


class TestEncodeDecode:
    def test_decode_zero(self):
        assert mixed_radix_decode(0, [3, 2]) == (0, 0)

    def test_decode_last(self):
        assert mixed_radix_decode(5, [3, 2]) == (2, 1)

    def test_first_position_most_significant(self):
        # Matches Figure 2's ordering: <1@A,2@A> before <1@B,2@A>.
        assert mixed_radix_decode(2, [3, 2]) == (1, 0)

    def test_decode_out_of_range(self):
        with pytest.raises(ValueError):
            mixed_radix_decode(6, [3, 2])

    def test_encode_rejects_bad_digit(self):
        with pytest.raises(ValueError):
            mixed_radix_encode([3], [3])

    def test_encode_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            mixed_radix_encode([0], [3, 2])

    @given(radices_strategy, st.integers(min_value=0, max_value=10_000))
    def test_roundtrip(self, radices, raw_index):
        total = product_size(radices)
        index = raw_index % total
        digits = mixed_radix_decode(index, radices)
        assert mixed_radix_encode(digits, radices) == index

    @given(radices_strategy)
    def test_decode_matches_itertools_product(self, radices):
        expected = list(itertools.product(*(range(r) for r in radices)))
        actual = [mixed_radix_decode(i, radices) for i in range(product_size(radices))]
        assert actual == expected


class TestMixedRadixCounter:
    def test_iterates_full_product(self):
        counter = MixedRadixCounter([3, 2])
        assert list(counter) == [(0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1)]

    def test_empty_radices_yield_single_empty(self):
        assert list(MixedRadixCounter([])) == [()]

    def test_skip_suffix(self):
        counter = MixedRadixCounter([3, 2, 2])
        counter.skip_suffix(0)  # skip everything starting with digit 0
        assert counter.digits == (1, 0, 0)

    def test_skip_suffix_at_last_digit_is_advance(self):
        counter = MixedRadixCounter([2, 2])
        counter.skip_suffix(1)
        assert counter.digits == (0, 1)

    def test_skip_suffix_exhausts(self):
        counter = MixedRadixCounter([2])
        counter.skip_suffix(0)
        counter.skip_suffix(0)
        assert counter.exhausted

    def test_skip_suffix_bad_position(self):
        with pytest.raises(IndexError):
            MixedRadixCounter([2]).skip_suffix(5)

    @given(radices_strategy.filter(lambda r: r))
    def test_counter_matches_decode(self, radices):
        expected = [
            mixed_radix_decode(i, radices) for i in range(product_size(radices))
        ]
        assert list(MixedRadixCounter(radices)) == expected


class TestSplitRanges:
    def test_even_split(self):
        assert split_ranges(10, 2) == [(0, 5), (5, 10)]

    def test_uneven_split_front_loads(self):
        assert split_ranges(10, 3) == [(0, 4), (4, 7), (7, 10)]

    def test_more_parts_than_items(self):
        assert split_ranges(2, 4) == [(0, 1), (1, 2)]

    def test_zero_total(self):
        assert split_ranges(0, 3) == []

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            split_ranges(5, 0)
        with pytest.raises(ValueError):
            split_ranges(-1, 2)

    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=1, max_value=16),
    )
    def test_partition_properties(self, total, parts):
        ranges = split_ranges(total, parts)
        # Contiguous, ordered, covering exactly [0, total).
        cursor = 0
        for start, end in ranges:
            assert start == cursor
            assert end > start
            cursor = end
        assert cursor == total
        # Balanced: sizes differ by at most one.
        if ranges:
            sizes = [end - start for start, end in ranges]
            assert max(sizes) - min(sizes) <= 1
