"""Tests for the Stopwatch helper."""

import pytest

from repro.util.timing import Stopwatch


def test_started_factory_runs():
    watch = Stopwatch.started()
    assert watch.elapsed >= 0.0


def test_stop_accumulates():
    watch = Stopwatch.started()
    first = watch.stop()
    watch.start()
    second = watch.stop()
    assert second >= first


def test_double_start_rejected():
    watch = Stopwatch.started()
    with pytest.raises(RuntimeError):
        watch.start()


def test_stop_without_start_rejected():
    with pytest.raises(RuntimeError):
        Stopwatch().stop()


def test_context_manager():
    with Stopwatch() as watch:
        pass
    assert watch.elapsed >= 0.0
