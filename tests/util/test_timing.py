"""Tests for the Stopwatch helper."""

import pytest

from repro.util.timing import Stopwatch


def test_started_factory_runs():
    watch = Stopwatch.started()
    assert watch.elapsed >= 0.0


def test_stop_accumulates():
    watch = Stopwatch.started()
    first = watch.stop()
    watch.start()
    second = watch.stop()
    assert second >= first


def test_double_start_rejected():
    watch = Stopwatch.started()
    with pytest.raises(RuntimeError):
        watch.start()


def test_stop_without_start_rejected():
    with pytest.raises(RuntimeError):
        Stopwatch().stop()


def test_context_manager():
    with Stopwatch() as watch:
        pass
    assert watch.elapsed >= 0.0


def test_elapsed_while_running_is_live_and_monotonic():
    watch = Stopwatch.started()
    first = watch.elapsed
    # A second read must never go backwards while the watch runs, and
    # reading must not stop it.
    second = watch.elapsed
    assert second >= first >= 0.0
    total = watch.stop()
    assert total >= second


def test_elapsed_frozen_after_stop():
    watch = Stopwatch.started()
    frozen = watch.stop()
    assert watch.elapsed == frozen
    assert watch.elapsed == frozen  # stable across reads


def test_context_manager_reentry_accumulates():
    watch = Stopwatch()
    with watch:
        pass
    first = watch.elapsed
    with watch:  # sequential re-entry restarts and accumulates
        pass
    assert watch.elapsed >= first


def test_nested_context_rejected():
    watch = Stopwatch()
    with watch:
        with pytest.raises(RuntimeError):
            with watch:
                pass


def test_context_exit_stops_on_exception():
    watch = Stopwatch()
    with pytest.raises(ValueError):
        with watch:
            raise ValueError("boom")
    frozen = watch.elapsed
    assert frozen >= 0.0
    assert watch.elapsed == frozen  # stopped despite the exception
    watch.start()  # and restartable afterwards
    watch.stop()
