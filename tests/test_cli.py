"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestVerify:
    def test_verify_msi_success(self, capsys):
        assert main(["verify", "msi", "--caches", "2"]) == 0
        out = capsys.readouterr().out
        assert "success" in out
        assert "msi-2c" in out

    def test_verify_with_evictions(self, capsys):
        assert main(["verify", "msi", "--caches", "2", "--evictions"]) == 0

    def test_verify_dfs(self, capsys):
        assert main(["verify", "vi", "--procs", "2", "--dfs"]) == 0
        assert "success" in capsys.readouterr().out

    def test_verify_explorer_flag(self, capsys):
        assert main(["verify", "vi", "--procs", "2", "--explorer", "dfs"]) == 0
        assert "success" in capsys.readouterr().out

    def test_verify_no_symmetry(self, capsys):
        assert main(["verify", "mutex", "--procs", "2", "--no-symmetry"]) == 0

    def test_verify_truncated_is_nonzero(self, capsys):
        assert main(["verify", "msi", "--max-states", "5"]) == 1
        assert "unknown" in capsys.readouterr().out


class TestSynth:
    def test_synth_mutex(self, capsys):
        assert main(["synth", "mutex"]) == 0
        out = capsys.readouterr().out
        assert "solutions:         1" in out

    def test_synth_figure2(self, capsys):
        assert main(["synth", "figure2"]) == 0
        out = capsys.readouterr().out
        assert "evaluated:         10" in out

    def test_synth_naive(self, capsys):
        assert main(["synth", "figure2", "--naive"]) == 0
        out = capsys.readouterr().out
        assert "evaluated:         24" in out

    def test_synth_threads(self, capsys):
        assert main(["synth", "mutex", "--threads", "2"]) == 0

    def test_synth_processes_backend(self, capsys):
        assert main(
            ["synth", "mutex", "--backend", "processes", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "processes backend" in out
        assert "solutions:         1" in out

    def test_synth_backend_sequential_ignores_threads(self, capsys):
        assert main(["synth", "figure2", "--backend", "sequential"]) == 0
        assert "sequential backend" in capsys.readouterr().out

    def test_synth_explorer_dfs(self, capsys):
        assert main(["synth", "mutex", "--explorer", "dfs"]) == 0
        out = capsys.readouterr().out
        assert "dfs explorer" in out
        assert "solutions:         1" in out

    def test_synth_explorer_default_is_bfs(self, capsys):
        assert main(["synth", "figure2"]) == 0
        assert "bfs explorer" in capsys.readouterr().out

    def test_synth_backend_threads_honors_explicit_count(self, capsys):
        assert main(
            ["synth", "figure2", "--backend", "threads", "--threads", "1"]
        ) == 0
        assert "threads backend, 1 worker(s)" in capsys.readouterr().out

    def test_synth_backend_threads_zero_rejected(self, capsys):
        # The CLI validates worker counts itself now (exit 2 + message),
        # instead of letting the engine raise a bare ValueError.
        assert main(
            ["synth", "figure2", "--backend", "threads", "--threads", "0"]
        ) == 2
        assert "--threads must be >= 1" in capsys.readouterr().err

    def test_synth_groups(self, capsys):
        assert main(["synth", "msi-tiny", "--groups"]) == 0
        assert "behavioural group" in capsys.readouterr().out

    def test_synth_solution_limit(self, capsys):
        assert main(["synth", "msi-tiny", "--solution-limit", "1"]) == 0
        assert "solutions:         1" in capsys.readouterr().out

    def test_synth_refined(self, capsys):
        assert main(["synth", "figure2", "--refined"]) == 0

    def test_synth_no_generalise(self, capsys):
        # The escape hatch restores the paper's full-width patterns; on
        # figure2 the two modes coincide, so the headline must match.
        assert main(["synth", "figure2", "--no-generalise"]) == 0
        assert "evaluated:         10" in capsys.readouterr().out

    def test_synth_no_prefix_reuse(self, capsys):
        assert main(["synth", "msi-tiny", "--no-prefix-reuse"]) == 0
        out = capsys.readouterr().out
        assert "prefix cache" not in out

    def test_synth_prefix_reuse_reported_by_default(self, capsys):
        assert main(["synth", "msi-tiny"]) == 0
        assert "prefix cache" in capsys.readouterr().out


class TestNewWorkloads:
    def test_verify_moesi(self, capsys):
        assert main(["verify", "moesi", "--caches", "2"]) == 0
        assert "moesi-2c" in capsys.readouterr().out

    def test_verify_german(self, capsys):
        assert main(["verify", "german", "--procs", "2"]) == 0
        assert "german-2p" in capsys.readouterr().out

    def test_synth_moesi_small(self, capsys):
        assert main(["synth", "moesi-small"]) == 0
        assert "solutions:         1" in capsys.readouterr().out

    def test_synth_german_small(self, capsys):
        assert main(["synth", "german-small"]) == 0
        assert "solutions:         1" in capsys.readouterr().out


class TestMatrix:
    def test_matrix_requires_a_source(self, capsys):
        assert main(["matrix"]) == 2
        assert "--preset or --spec" in capsys.readouterr().err

    def test_matrix_list_presets(self, capsys):
        assert main(["matrix", "--list-presets"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "smoke" in out

    def test_matrix_spec_runs_and_resumes(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(
            '{"name": "cli-test", "include": [{"id": "a", "target": "figure2"}]}'
        )
        out_dir = tmp_path / "out"
        assert main(["matrix", "--spec", str(spec), "--out", str(out_dir)]) == 0
        assert "1 executed" in capsys.readouterr().out
        assert main(["matrix", "--spec", str(spec), "--out", str(out_dir)]) == 0
        assert "1 resumed" in capsys.readouterr().out

    def test_matrix_bad_spec_is_a_clean_error(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text('{"name": "bad", "include": [{"target": "nope"}]}')
        assert main(["matrix", "--spec", str(spec), "--out", str(tmp_path)]) == 2
        assert "unknown skeleton" in capsys.readouterr().err


class TestTelemetry:
    def test_synth_trace_writes_jsonl(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(["synth", "figure2", "--trace", str(trace)]) == 0
        lines = trace.read_text().splitlines()
        assert lines
        import json

        events = [json.loads(line) for line in lines]
        assert events[0]["type"] == "span_start"
        assert events[0]["name"] == "synth"

    def test_synth_metrics_out(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        assert main(["synth", "figure2", "--metrics-out", str(out)]) == 0
        import json

        data = json.loads(out.read_text())
        assert sum(
            data["synth_candidates_evaluated"]["series"].values()
        ) == 10

    def test_verify_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "v.jsonl"
        out = tmp_path / "m.json"
        assert main([
            "verify", "msi", "--caches", "2",
            "--trace", str(trace), "--metrics-out", str(out),
        ]) == 0
        import json

        events = [json.loads(l) for l in trace.read_text().splitlines()]
        assert events[0]["name"] == "verify"
        data = json.loads(out.read_text())
        assert sum(data["mc_states_visited"]["series"].values()) > 0

    def test_progress_flag_emits_lines_on_stderr(self, capsys):
        assert main(["synth", "figure2", "--progress"]) == 0
        assert "[progress]" in capsys.readouterr().err

    def test_no_progress_suppresses(self, capsys):
        assert main(["synth", "figure2", "--no-progress"]) == 0
        assert "[progress]" not in capsys.readouterr().err

    def test_progress_flags_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(["synth", "figure2", "--progress", "--no-progress"])

    def test_matrix_bare_trace_defaults_into_out_dir(self, tmp_path, capsys):
        spec = tmp_path / "spec.json"
        spec.write_text(
            '{"name": "t", "include": [{"target": "figure2"}]}'
        )
        out = tmp_path / "out"
        assert main([
            "matrix", "--spec", str(spec), "--out", str(out), "--trace",
        ]) == 0
        assert (out / "trace.jsonl").exists()

    def test_stats_renders_trace(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(["synth", "figure2", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["stats", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "root span: synth" in out
        assert "attributed to named phases" in out

    def test_stats_missing_file_is_clean_error(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_stats_empty_trace_is_clean_error(self, tmp_path, capsys):
        trace = tmp_path / "empty.jsonl"
        trace.write_text("")
        assert main(["stats", str(trace)]) == 2
        assert "empty trace" in capsys.readouterr().err

    def test_stats_corrupt_trace_is_clean_error(self, tmp_path, capsys):
        trace = tmp_path / "bad.jsonl"
        trace.write_text('{"type":"meta"}\n{corrupt\n{"type":"phase"}\n')
        assert main(["stats", str(trace)]) == 2
        assert capsys.readouterr().err


class TestMisc:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "msi-small" in out
        assert "mutex" in out

    def test_list_shows_hole_counts_and_replica_ranges(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert " 8 holes" in out          # msi-small
        assert "replicas 2..3" in out     # the new workloads' range
        assert "german-small" in out
        assert "moesi-small" in out
        # The verify side gets ranges too.
        assert "german" in out.split("skeletons")[0]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_skeleton_rejected(self):
        with pytest.raises(SystemExit):
            main(["synth", "nope"])
