"""Tests for the declarative protocol builder."""

import pytest

from repro.dsl.builder import (
    GLOBAL,
    ControllerSpec,
    ProtocolBuilder,
    StateView,
    local_matches,
)
from repro.dsl.network import Message, UnorderedNetwork
from repro.dsl.process import ProcessArray
from repro.errors import ModelError
from repro.mc.bfs import BfsExplorer
from repro.mc.properties import DeadlockPolicy
from repro.mc.result import Verdict


def ping_pong_builder(n_procs=2):
    """Each process pings the server; the server pongs back."""
    client = ControllerSpec("client")

    def send_ping(view, proc, ctx, message):
        view.send("Ping", proc, GLOBAL)
        view.become(proc, "waiting")

    def got_pong(view, proc, ctx, message):
        view.become(proc, "done")

    client.on("idle", "go", send_ping, spontaneous=True)
    client.on("waiting", "Pong", got_pong)

    server = ControllerSpec("server", replicated=False)

    def on_ping(view, proc, ctx, message):
        view.send("Pong", GLOBAL, message.src)
        view.glob = view.glob + 1

    server.on(lambda count: True, "Ping", on_ping)

    builder = ProtocolBuilder(
        "pingpong", n_procs, initial_local="idle", initial_global=0
    )
    builder.add_controller(client)
    builder.add_controller(server)
    builder.set_deadlock_policy(
        DeadlockPolicy.fail(quiescent=lambda s: all(p == "done" for p in s[0]))
    )
    return builder


class TestBuilder:
    def test_builds_and_verifies(self):
        result = BfsExplorer(ping_pong_builder().build()).run()
        assert result.verdict is Verdict.SUCCESS

    def test_coverage_and_invariants_wired(self):
        builder = ping_pong_builder()
        builder.add_invariant("server-counts", lambda s: s[1] <= 2)
        builder.add_coverage("someone-done", lambda s: "done" in list(s[0]))
        result = BfsExplorer(builder.build()).run()
        assert result.verdict is Verdict.SUCCESS

    def test_invariant_violation_detected(self):
        builder = ping_pong_builder()
        builder.add_invariant("server-never-counts", lambda s: s[1] == 0)
        result = BfsExplorer(builder.build()).run()
        assert result.verdict is Verdict.FAILURE

    def test_symmetry_reduction_active(self):
        reduced = BfsExplorer(ping_pong_builder(3).build()).run()
        builder = ping_pong_builder(3)
        builder.symmetry = False
        full = BfsExplorer(builder.build()).run()
        assert reduced.stats.states_visited < full.stats.states_visited

    def test_requires_controllers(self):
        with pytest.raises(ModelError):
            ProtocolBuilder("empty", 1, initial_local="x").build()

    def test_duplicate_transition_rejected(self):
        spec = ControllerSpec("c")
        spec.on("a", "e", lambda *a: None)
        with pytest.raises(ModelError):
            spec.on("a", "e", lambda *a: None)

    def test_message_guard_filters(self):
        client = ControllerSpec("client")

        def recv(view, proc, ctx, message):
            view.become(proc, "got")

        client.on(
            "idle",
            "M",
            recv,
            message_guard=lambda state, message: message.payload == "yes",
        )
        builder = ProtocolBuilder("guarded", 1, initial_local="idle")
        builder.add_controller(client)
        builder.set_deadlock_policy(DeadlockPolicy.allow())
        system = builder.build()
        # Seed the network manually with both messages.
        (procs, glob, net) = system.initial_states()[0]
        net = net.send(Message("M", GLOBAL, 0, "no")).send(
            Message("M", GLOBAL, 0, "yes")
        )
        system._initial_states = [(procs, glob, net)]
        explorer = BfsExplorer(system)
        result = explorer.run()
        assert result.verdict is Verdict.SUCCESS
        states = {tuple(state[0]) for state in explorer.visited_states}
        assert ("got",) in states


class TestStateView:
    def test_view_mutations(self):
        state = (ProcessArray(("a", "b")), 0, UnorderedNetwork())
        view = StateView(state)
        view.become(1, "c")
        view.send("M", 0, 1)
        procs, glob, net = view.freeze()
        assert list(procs) == ["a", "c"]
        assert Message("M", 0, 1) in net
        # original untouched
        assert list(state[0]) == ["a", "b"]


class TestLocalMatches:
    def test_equality_pattern(self):
        assert local_matches("I", "I")
        assert not local_matches("I", "V")

    def test_callable_pattern(self):
        assert local_matches(5, lambda s: s > 3)
        assert not local_matches(2, lambda s: s > 3)
