"""Tests for typed fields and validated schemas."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dsl.fields import (
    BoolField,
    EnumField,
    IdField,
    IdSetField,
    RangeField,
    Schema,
)
from repro.errors import ModelError
from repro.mc.state import Record


class TestEnumField:
    def test_accepts_members(self):
        EnumField("A", "B").validate("f", "A")

    def test_rejects_non_members(self):
        with pytest.raises(ModelError):
            EnumField("A", "B").validate("f", "C")

    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ModelError):
            EnumField()
        with pytest.raises(ModelError):
            EnumField("A", "A")


class TestRangeField:
    def test_bounds_inclusive(self):
        field = RangeField(0, 3)
        field.validate("f", 0)
        field.validate("f", 3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ModelError):
            RangeField(0, 3).validate("f", 4)
        with pytest.raises(ModelError):
            RangeField(0, 3).validate("f", -1)

    def test_rejects_bool_masquerading_as_int(self):
        with pytest.raises(ModelError):
            RangeField(0, 3).validate("f", True)

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ModelError):
            RangeField(3, 0)


class TestIdField:
    def test_valid_ids(self):
        IdField(3).validate("f", 2)

    def test_none_handling(self):
        IdField(3, allow_none=True).validate("f", None)
        with pytest.raises(ModelError):
            IdField(3).validate("f", None)

    def test_out_of_range(self):
        with pytest.raises(ModelError):
            IdField(3).validate("f", 3)

    def test_rename(self):
        field = IdField(3, allow_none=True)
        assert field.rename(0, (2, 0, 1)) == 2
        assert field.rename(None, (2, 0, 1)) is None


class TestIdSetField:
    def test_valid(self):
        IdSetField(3).validate("f", frozenset({0, 2}))

    def test_requires_frozenset(self):
        with pytest.raises(ModelError):
            IdSetField(3).validate("f", {0})

    def test_member_range(self):
        with pytest.raises(ModelError):
            IdSetField(3).validate("f", frozenset({3}))

    def test_rename(self):
        renamed = IdSetField(3).rename(frozenset({0, 1}), (2, 0, 1))
        assert renamed == frozenset({2, 0})


class TestBoolField:
    def test_bools_only(self):
        BoolField().validate("f", True)
        with pytest.raises(ModelError):
            BoolField().validate("f", 1)


class TestSchema:
    @pytest.fixture
    def schema(self):
        return Schema(
            st=EnumField("FREE", "OWNED"),
            owner=IdField(3, allow_none=True),
            sharers=IdSetField(3),
            acks=RangeField(0, 3),
        )

    def test_make_and_read(self, schema):
        record = schema.make(st="FREE", owner=None, sharers=frozenset(), acks=0)
        assert record.st == "FREE"
        assert isinstance(record, Record)

    def test_make_missing_field(self, schema):
        with pytest.raises(ModelError, match="missing"):
            schema.make(st="FREE")

    def test_make_unknown_field(self, schema):
        with pytest.raises(ModelError, match="unknown"):
            schema.make(st="FREE", owner=None, sharers=frozenset(), acks=0, zap=1)

    def test_update_validates(self, schema):
        record = schema.make(st="FREE", owner=None, sharers=frozenset(), acks=0)
        updated = schema.update(record, st="OWNED", owner=2)
        assert updated.owner == 2
        with pytest.raises(ModelError):
            schema.update(record, owner=9)
        with pytest.raises(ModelError):
            schema.update(record, nope=1)

    def test_rename_full_record(self, schema):
        record = schema.make(st="OWNED", owner=0, sharers=frozenset({1}), acks=1)
        renamed = schema.rename(record, (2, 0, 1))
        assert renamed.owner == 2
        assert renamed.sharers == frozenset({0})
        assert renamed.acks == 1

    def test_check_existing_record(self, schema):
        good = schema.make(st="FREE", owner=None, sharers=frozenset(), acks=0)
        schema.check(good)
        with pytest.raises(ModelError):
            schema.check(Record(st="NOPE", owner=None, sharers=frozenset(), acks=0))

    def test_empty_schema_rejected(self):
        with pytest.raises(ModelError):
            Schema()

    @given(st.integers(0, 2), st.integers(0, 3))
    def test_property_valid_values_roundtrip(self, owner, acks):
        schema = Schema(owner=IdField(3), acks=RangeField(0, 3))
        record = schema.make(owner=owner, acks=acks)
        assert (record.owner, record.acks) == (owner, acks)
