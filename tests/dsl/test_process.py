"""Tests for ProcessArray."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dsl.process import ProcessArray


def test_uniform():
    array = ProcessArray.uniform("I", 3)
    assert len(array) == 3
    assert list(array) == ["I", "I", "I"]


def test_uniform_rejects_empty():
    with pytest.raises(ValueError):
        ProcessArray.uniform("I", 0)


def test_set_is_persistent():
    array = ProcessArray.uniform("I", 2)
    updated = array.set(1, "V")
    assert array[1] == "I"
    assert updated[1] == "V"


def test_count():
    array = ProcessArray(("I", "V", "V"))
    assert array.count("V") == 2
    assert array.count("X") == 0


def test_renamed():
    array = ProcessArray(("A", "B", "C"))
    renamed = array.renamed((2, 0, 1))  # old 0 -> new 2, old 1 -> new 0, ...
    assert list(renamed) == ["B", "C", "A"]


def test_equality_hash():
    assert ProcessArray(("I",)) == ProcessArray(("I",))
    assert hash(ProcessArray(("I",))) == hash(ProcessArray(("I",)))


@given(st.permutations(list(range(4))))
def test_rename_roundtrip(mapping):
    array = ProcessArray(("A", "B", "C", "D"))
    mapping = tuple(mapping)
    inverse = tuple(mapping.index(i) for i in range(4))
    assert array.renamed(mapping).renamed(inverse) == array
