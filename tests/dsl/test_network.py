"""Tests for DSL messages and channels."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dsl.network import Message, OrderedChannel, UnorderedNetwork


def msg(mtype="Data", src=0, dst=1, payload=None):
    return Message(mtype, src, dst, payload)


class TestMessage:
    def test_fields(self):
        message = msg(payload=7)
        assert (message.mtype, message.src, message.dst, message.payload) == (
            "Data", 0, 1, 7,
        )

    def test_renamed(self):
        renamed = msg().renamed((1, 0))
        assert (renamed.src, renamed.dst) == (1, 0)

    def test_renamed_preserves_global_ids(self):
        message = Message("Req", 0, -1)
        renamed = message.renamed((1, 0))
        assert renamed.dst == -1
        assert renamed.src == 1

    def test_hashable(self):
        assert len({msg(), msg()}) == 1


class TestUnorderedNetwork:
    def test_send_deliver_roundtrip(self):
        net = UnorderedNetwork().send(msg())
        assert msg() in net
        assert len(net) == 1
        assert len(net.deliver(msg())) == 0

    def test_deliver_missing_raises(self):
        with pytest.raises(KeyError):
            UnorderedNetwork().deliver(msg())

    def test_duplicate_messages_counted(self):
        net = UnorderedNetwork().send(msg()).send(msg())
        assert len(net) == 2
        assert len(net.deliver(msg())) == 1

    def test_deliverable_filters(self):
        net = (
            UnorderedNetwork()
            .send(msg("Data", 0, 1))
            .send(msg("Inv", 0, 1))
            .send(msg("Data", 0, 2))
        )
        assert {m.mtype for m in net.deliverable(1)} == {"Data", "Inv"}
        assert [m.dst for m in net.deliverable(1, "Data")] == [1]

    def test_order_independent_equality(self):
        first = UnorderedNetwork().send(msg("A", 0, 1)).send(msg("B", 1, 0))
        second = UnorderedNetwork().send(msg("B", 1, 0)).send(msg("A", 0, 1))
        assert first == second
        assert hash(first) == hash(second)

    def test_renamed(self):
        net = UnorderedNetwork().send(msg("Data", 0, 1))
        renamed = net.renamed((1, 0))
        assert Message("Data", 1, 0) in renamed

    @given(st.lists(st.tuples(st.sampled_from("AB"), st.integers(0, 1)), max_size=6))
    def test_rename_is_involution_for_swap(self, raw):
        net = UnorderedNetwork()
        for mtype, dst in raw:
            net = net.send(Message(mtype, 0, dst))
        swap = (1, 0)
        assert net.renamed(swap).renamed(swap) == net


class TestOrderedChannel:
    def test_fifo_order(self):
        channel = OrderedChannel().send(msg("A")).send(msg("B"))
        assert channel.head.mtype == "A"
        assert channel.deliver_head().head.mtype == "B"

    def test_empty_head(self):
        assert OrderedChannel().head is None
        with pytest.raises(IndexError):
            OrderedChannel().deliver_head()

    def test_equality_is_order_sensitive(self):
        first = OrderedChannel().send(msg("A")).send(msg("B"))
        second = OrderedChannel().send(msg("B")).send(msg("A"))
        assert first != second

    def test_renamed(self):
        channel = OrderedChannel().send(msg("A", 0, 1))
        assert channel.renamed((1, 0)).head == Message("A", 1, 0)
