"""Execute every fenced snippet in docs/*.md so the guides cannot rot.

Conventions (documented in the guides themselves):

* ```python fences run via ``exec`` — all snippets of one file share a
  namespace and run in document order, so a guide reads as one program;
* ```console fences: each ``$ ``-prefixed line runs as a shell command
  from the repository root with ``src`` on ``PYTHONPATH`` and must exit 0
  (other lines are illustrative output and are ignored);
* a ``<!-- snippet: skip -->`` comment directly above a fence excludes it
  (slow or intentionally failing examples);
* fences in other languages (``text``, ...) are never executed.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import List

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
DOCS_DIR = REPO_ROOT / "docs"
SKIP_MARKER = "<!-- snippet: skip -->"

_FENCE = re.compile(r"^```(\w*)\s*$")


@dataclass
class Snippet:
    language: str
    content: str
    line: int  # 1-based line of the opening fence
    skipped: bool


def extract_snippets(path: Path) -> List[Snippet]:
    snippets: List[Snippet] = []
    lines = path.read_text().splitlines()
    in_fence = False
    language = ""
    start = 0
    buffer: List[str] = []
    skip_next = False
    for number, line in enumerate(lines, start=1):
        match = _FENCE.match(line.strip()) if not in_fence else None
        if not in_fence and match:
            in_fence = True
            language = match.group(1).lower()
            start = number
            buffer = []
            continue
        if in_fence and line.strip() == "```":
            snippets.append(
                Snippet(language, "\n".join(buffer), start, skip_next)
            )
            in_fence = False
            skip_next = False
            continue
        if in_fence:
            buffer.append(line)
        elif line.strip():
            skip_next = line.strip() == SKIP_MARKER
    if in_fence:
        raise AssertionError(f"{path.name}: unterminated fence at line {start}")
    return snippets


def doc_files() -> List[Path]:
    files = sorted(DOCS_DIR.glob("*.md"))
    assert files, "docs/ contains no markdown files"
    return files


def run_console_line(command: str) -> None:
    # Pin "python" to the interpreter running the tests.
    if command.startswith("python "):
        command = f"{sys.executable} {command[len('python '):]}"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    completed = subprocess.run(
        command,
        shell=True,
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"`{command}` exited {completed.returncode}\n"
        f"stdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )


@pytest.mark.parametrize("path", doc_files(), ids=lambda p: p.name)
def test_doc_snippets_execute(path):
    namespace: dict = {"__name__": f"docs_snippet_{path.stem}"}
    executed = 0
    for snippet in extract_snippets(path):
        if snippet.skipped:
            continue
        if snippet.language == "python":
            code = compile(snippet.content, f"{path.name}:{snippet.line}", "exec")
            exec(code, namespace)  # noqa: S102 - executing our own docs
            executed += 1
        elif snippet.language == "console":
            for line in snippet.content.splitlines():
                if line.strip().startswith("$ "):
                    run_console_line(line.strip()[2:])
                    executed += 1
    assert executed > 0, f"{path.name} has no executable snippets"


def test_skip_marker_is_honoured(tmp_path):
    doc = tmp_path / "sample.md"
    doc.write_text(
        "text\n\n"
        "<!-- snippet: skip -->\n"
        "```python\nraise RuntimeError('must not run')\n```\n\n"
        "```python\nx = 1\n```\n"
    )
    snippets = extract_snippets(doc)
    assert [s.skipped for s in snippets] == [True, False]


def test_internal_doc_links_resolve():
    """Markdown link check: every relative link in docs/ and README.md
    points at a file that exists (external http(s) links are not probed —
    CI's link job handles those)."""
    link = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")
    for path in doc_files() + [REPO_ROOT / "README.md"]:
        for target in link.findall(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            resolved = (path.parent / target).resolve()
            assert resolved.exists(), f"{path.name}: broken link -> {target}"
