"""Backend equivalence: sequential vs threads vs processes.

The three backends share one verdict-handling code path
(:meth:`SynthesisCore.process_candidate`) but differ in how they split and
schedule the candidate space.  They must agree exactly on *what* they find
— solution sets and the canonical hole registry — while evaluated-candidate
counts may differ slightly because pruning patterns reach the walkers at
different times (the paper's Table I shows the same 855-vs-825 effect).
"""

import pytest

from repro.core import SynthesisConfig, SynthesisEngine
from repro.core.parallel import ParallelSynthesisEngine
from repro.dist import DistributedSynthesisEngine, SystemSpec
from repro.errors import SynthesisError
from repro.protocols.catalog import build_skeleton

SKELETONS = ["msi-tiny", "mutex", "moesi-small", "german-small"]


def run_backend(backend, name, config=None):
    config = config or SynthesisConfig()
    if backend == "sequential":
        return SynthesisEngine(build_skeleton(name), config).run()
    if backend == "threads":
        return ParallelSynthesisEngine(build_skeleton(name), config, threads=2).run()
    return DistributedSynthesisEngine(
        SystemSpec(name), config, workers=2, min_batch_size=2
    ).run()


def solution_view(report):
    return {
        (solution.digits, solution.assignment, solution.states_visited)
        for solution in report.solutions
    }


def registry_view(report):
    return [
        (hole.name, tuple(action.name for action in hole.domain))
        for hole in report.holes
    ]


@pytest.mark.parametrize("name", SKELETONS)
class TestPruningEquivalence:
    def test_backends_agree(self, name):
        sequential = run_backend("sequential", name)
        assert sequential.solutions
        for backend in ("threads", "processes"):
            report = run_backend(backend, name)
            assert solution_view(report) == solution_view(sequential), backend
            assert registry_view(report) == registry_view(sequential), backend
            # Evaluated counts may drift with pattern-sharing timing, but
            # only within a narrow band around the sequential walk.
            assert (
                sequential.evaluated // 2
                <= report.evaluated
                <= sequential.evaluated * 2
            ), backend


@pytest.mark.parametrize("explorer", ["bfs", "dfs"])
class TestExplorerStrategyEquivalence:
    """Both frontier strategies must find the same solutions on every
    backend; only trace shapes (and hence refined patterns) may differ."""

    def test_backends_agree_per_strategy(self, explorer):
        sequential = run_backend(
            "sequential", "msi-tiny", SynthesisConfig(explorer=explorer)
        )
        assert sequential.solutions
        assert sequential.explorer == explorer
        for backend in ("threads", "processes"):
            report = run_backend(
                backend, "msi-tiny", SynthesisConfig(explorer=explorer)
            )
            assert report.explorer == explorer
            assert solution_view(report) == solution_view(sequential), backend
            assert registry_view(report) == registry_view(sequential), backend

    def test_strategies_agree_with_each_other(self, explorer):
        report = run_backend(
            "sequential", "mutex", SynthesisConfig(explorer=explorer)
        )
        baseline = run_backend("sequential", "mutex")
        assert solution_view(report) == solution_view(baseline)
        assert registry_view(report) == registry_view(baseline)


@pytest.mark.parametrize("name", SKELETONS)
class TestNaiveEquivalence:
    def test_backends_agree_without_pruning(self, name):
        config = SynthesisConfig(pruning=False)
        sequential = run_backend("sequential", name, config)
        for backend in ("threads", "processes"):
            report = run_backend(backend, name, SynthesisConfig(pruning=False))
            assert solution_view(report) == solution_view(sequential), backend
            assert registry_view(report) == registry_view(sequential), backend
            # Without pruning every backend must evaluate the exact naive
            # candidate space (dedup included): no timing effects exist.
            assert report.evaluated == sequential.evaluated, backend
            assert report.deduplicated == sequential.deduplicated, backend


class TestDistributedSpecifics:
    def test_many_small_batches_still_agree(self):
        sequential = SynthesisEngine(build_skeleton("msi-tiny")).run()
        report = DistributedSynthesisEngine(
            SystemSpec("msi-tiny"),
            workers=3,
            batches_per_worker=8,
            min_batch_size=1,
            max_inflight=1,
        ).run()
        assert solution_view(report) == solution_view(sequential)
        assert registry_view(report) == registry_view(sequential)

    def test_solution_limit_stops_early(self):
        report = DistributedSynthesisEngine(
            SystemSpec("msi-tiny"), SynthesisConfig(solution_limit=1), workers=2
        ).run()
        assert len(report.solutions) == 1
        assert report.stopped_early

    def test_solution_limit_caps_observer_notifications(self):
        """Solutions beyond the limit are dropped before the observer sees
        them — an observer must not record more than the report carries."""
        from repro.core.engine import SynthesisObserver

        class Collector(SynthesisObserver):
            def __init__(self):
                self.seen = []

            def on_solution(self, solution, holes):
                self.seen.append(solution)

        observer = Collector()
        report = DistributedSynthesisEngine(
            SystemSpec("msi-tiny"),
            SynthesisConfig(solution_limit=1),
            workers=2,
            observer=observer,
        ).run()
        assert len(report.solutions) == 1
        assert [s.digits for s in observer.seen] == [
            s.digits for s in report.solutions
        ]

    def test_max_evaluations_trips(self):
        report = DistributedSynthesisEngine(
            SystemSpec("msi-tiny"), SynthesisConfig(max_evaluations=4), workers=2
        ).run()
        assert report.stopped_early
        # Overshoot is bounded by in-flight batches, not unbounded.
        assert report.evaluated <= 4 + 2 * 2 * 4

    def test_built_system_is_rejected(self):
        with pytest.raises(SynthesisError, match="SystemSpec"):
            DistributedSynthesisEngine(build_skeleton("mutex"))

    def test_invalid_worker_counts_rejected(self):
        with pytest.raises(ValueError):
            DistributedSynthesisEngine(SystemSpec("mutex"), workers=0)
        with pytest.raises(ValueError):
            DistributedSynthesisEngine(SystemSpec("mutex"), max_inflight=0)

    def test_report_is_labeled_processes(self):
        report = DistributedSynthesisEngine(SystemSpec("mutex"), workers=2).run()
        assert report.backend == "processes"
        assert report.threads == 2
