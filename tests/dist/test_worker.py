"""Worker-side logic, driven inline (no processes)."""

import pytest

from repro.core import SynthesisConfig
from repro.core.engine import SynthesisCore
from repro.core.hole import Hole
from repro.core.action import Action
from repro.dist.messages import BatchTask, HoleSpec, PassStart
from repro.dist.worker import BatchRunner, WorkerHoleRegistry
from repro.errors import SynthesisError
from repro.protocols.catalog import build_skeleton
from repro.util.itertools2 import product_size


def hole(name, arity=2):
    return Hole(name, tuple(Action(f"{name}.a{i}") for i in range(arity)))


class TestWorkerHoleRegistry:
    def test_reserved_positions_follow_spec_order(self):
        registry = WorkerHoleRegistry(
            [HoleSpec("x", ("a", "b")), HoleSpec("y", ("a", "b", "c"))]
        )
        assert [h.name for h in registry.holes] == ["x", "y"]
        assert registry.radices() == (2, 3)

    def test_real_hole_binds_to_reserved_position_by_name(self):
        registry = WorkerHoleRegistry([HoleSpec("x", ("x.a0", "x.a1"))])
        real = hole("x")
        assert registry.position_of(real) == 0
        # Bound: the identity fast path now hits.
        assert registry.position_of(real, register=False) == 0
        assert len(registry) == 1

    def test_unreserved_hole_appends_after_prefix(self):
        registry = WorkerHoleRegistry([HoleSpec("x", ("x.a0", "x.a1"))])
        late = hole("late", arity=3)
        assert registry.position_of(late) == 1
        assert [h.name for h in registry.holes] == ["x", "late"]

    def test_register_false_still_resolves_reserved_names(self):
        registry = WorkerHoleRegistry([HoleSpec("x", ("x.a0", "x.a1"))])
        assert registry.position_of(hole("x"), register=False) == 0
        assert registry.position_of(hole("other"), register=False) is None

    def test_arity_mismatch_is_fatal(self):
        registry = WorkerHoleRegistry([HoleSpec("x", ("x.a0",))])
        with pytest.raises(SynthesisError, match="arity"):
            registry.position_of(hole("x", arity=2))

    def test_two_distinct_holes_sharing_a_name_are_fatal(self):
        """Same modelling error the base registry rejects: bind-by-name
        must not silently merge two genuinely distinct holes."""
        registry = WorkerHoleRegistry([HoleSpec("x", ("x.a0", "x.a1"))])
        assert registry.position_of(hole("x")) == 0
        with pytest.raises(SynthesisError, match="share the name"):
            registry.position_of(hole("x"))  # a second, distinct object
        late = hole("late")
        assert registry.position_of(late) == 1
        with pytest.raises(SynthesisError, match="share the name"):
            registry.position_of(hole("late"))


def start_message(system_name="figure2", config=None):
    """Run the initial (hole-discovering) evaluation and build PassStart."""
    system = build_skeleton(system_name)
    core = SynthesisCore(system, config or SynthesisConfig())
    core.run_initial()
    holes = core.registry.holes
    return system, core, PassStart(
        pass_index=1,
        first_new=0,
        hole_specs=tuple(HoleSpec.from_hole(h) for h in holes),
        fail_patterns=tuple(p.constraints for p in core.fail_table.all_patterns()),
        success_patterns=tuple(
            p.constraints for p in core.success_table.all_patterns()
        ),
    )


class TestBatchRunner:
    def test_batch_before_pass_is_an_error(self):
        runner = BatchRunner(build_skeleton("figure2"), SynthesisConfig())
        with pytest.raises(SynthesisError, match="before PassStart"):
            runner.run_batch(BatchTask(0, 0, 1))

    def test_full_range_batch_reports_deltas(self):
        system, _core, start = start_message()
        runner = BatchRunner(build_skeleton("figure2"), SynthesisConfig())
        runner.start_pass(start)
        total = product_size([spec.arity for spec in start.hole_specs])
        result = runner.run_batch(BatchTask(0, 0, total))
        assert result.covered == total
        assert result.evaluated > 0
        assert result.new_holes  # pass 1 of figure2 discovers more holes
        assert result.verdict_counts
        # Local run indices are 1-based within the batch.
        for solution in result.solutions:
            assert 1 <= solution.run_index <= result.evaluated

    def test_split_batches_match_contiguous_walk(self):
        _system, _core, start = start_message()
        total = product_size([spec.arity for spec in start.hole_specs])
        split = total // 2

        contiguous = BatchRunner(build_skeleton("figure2"), SynthesisConfig())
        contiguous.start_pass(start)
        whole = contiguous.run_batch(BatchTask(0, 0, total))

        chunked = BatchRunner(build_skeleton("figure2"), SynthesisConfig())
        chunked.start_pass(start)
        first = chunked.run_batch(BatchTask(0, 0, split))
        second = chunked.run_batch(BatchTask(1, split, total))

        assert first.evaluated + second.evaluated == whole.evaluated
        assert first.covered + second.covered == whole.covered
        assert set(first.new_fail_patterns) | set(second.new_fail_patterns) == set(
            whole.new_fail_patterns
        )

    def test_eval_budget_stops_the_batch(self):
        _system, _core, start = start_message()
        runner = BatchRunner(build_skeleton("figure2"), SynthesisConfig())
        runner.start_pass(start)
        total = product_size([spec.arity for spec in start.hole_specs])
        result = runner.run_batch(BatchTask(0, 0, total, eval_budget=1))
        assert result.budget_exhausted
        assert result.evaluated == 1

    def test_pattern_delta_prunes_immediately(self):
        """A delta arriving with the task must prune before evaluation."""
        _system, _core, start = start_message()
        total = product_size([spec.arity for spec in start.hole_specs])

        baseline = BatchRunner(build_skeleton("figure2"), SynthesisConfig())
        baseline.start_pass(start)
        unpruned = baseline.run_batch(BatchTask(0, 0, total))

        runner = BatchRunner(build_skeleton("figure2"), SynthesisConfig())
        runner.start_pass(start)
        # Fabricate a pattern matching the whole first digit subtree.
        delta = (((0, 0),),)
        pruned = runner.run_batch(BatchTask(0, 0, total, fail_delta=delta))
        assert pruned.evaluated < unpruned.evaluated

    def test_global_stop_conditions_are_stripped(self):
        _system, _core, start = start_message(
            config=SynthesisConfig(solution_limit=1, max_evaluations=1)
        )
        runner = BatchRunner(
            build_skeleton("figure2"),
            SynthesisConfig(solution_limit=1, max_evaluations=1),
        )
        runner.start_pass(start)
        total = product_size([spec.arity for spec in start.hole_specs])
        result = runner.run_batch(BatchTask(0, 0, total))
        # The worker must not stop itself: limits belong to the coordinator.
        assert not result.budget_exhausted
        assert result.evaluated > 1
