"""Wire-protocol types: specs rebuild systems, batches plan sanely."""

import pickle

import pytest

from repro.core.hole import Hole
from repro.core.action import Action
from repro.dist.coordinator import plan_batches
from repro.dist.messages import BatchTask, HoleSpec, PassStart, SystemSpec
from repro.mc.system import TransitionSystem
from repro.protocols.catalog import build_skeleton, skeleton_names


class TestSystemSpec:
    @pytest.mark.parametrize("name", ["figure2", "mutex", "vi", "msi-tiny"])
    def test_build_matches_catalog(self, name):
        system = SystemSpec(name).build()
        assert isinstance(system, TransitionSystem)
        assert system.name == build_skeleton(name).name

    def test_rebuild_is_deterministic(self):
        a = SystemSpec("msi-tiny").build()
        b = SystemSpec("msi-tiny").build()
        assert [rule.name for rule in a.rules] == [rule.name for rule in b.rules]

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown skeleton"):
            SystemSpec("nope").build()

    def test_catalog_covers_cli_names(self):
        assert {"msi-small", "msi-large", "mutex", "figure2"} <= set(
            skeleton_names()
        )

    def test_spec_is_picklable(self):
        spec = SystemSpec("mutex", replicas=3)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestHoleSpec:
    def test_round_trip_preserves_names_and_order(self):
        hole = Hole("h", (Action("a"), Action("b"), Action("c")))
        spec = HoleSpec.from_hole(hole)
        assert spec.name == "h"
        assert spec.actions == ("a", "b", "c")
        assert spec.arity == 3
        placeholder = spec.placeholder()
        assert placeholder.name == hole.name
        assert placeholder.arity == hole.arity
        assert [a.name for a in placeholder.domain] == ["a", "b", "c"]

    def test_messages_are_picklable(self):
        spec = HoleSpec("h", ("a", "b"))
        start = PassStart(1, 0, (spec,), (((0, 1),),), ())
        task = BatchTask(0, 0, 10, fail_delta=(((0, 0),),))
        for message in (spec, start, task):
            assert pickle.loads(pickle.dumps(message)) == message


class TestPlanBatches:
    def test_covers_range_contiguously(self):
        batches = plan_batches(1000, workers=4)
        assert batches[0][0] == 0
        assert batches[-1][1] == 1000
        for (_, end), (start, _) in zip(batches, batches[1:]):
            assert end == start

    def test_batch_count_tracks_workers(self):
        batches = plan_batches(100_000, workers=4, batches_per_worker=4)
        assert len(batches) == 16

    def test_min_batch_size_floor(self):
        batches = plan_batches(40, workers=4, min_batch_size=16)
        assert all(end - start <= 16 for start, end in batches)
        assert len(batches) == 3

    def test_tiny_and_empty_spaces(self):
        assert plan_batches(1, workers=4) == [(0, 1)]
        assert plan_batches(0, workers=4) == []
