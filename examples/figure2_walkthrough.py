#!/usr/bin/env python
"""Reproduce Figure 2 of the paper, live.

Prints the worked example's run table — candidate, verdict, pruning
pattern, discovered holes — while the synthesis engine executes the toy
state graph, then the headline comparison: 10 model-checker runs with
candidate pruning versus 24 with naive enumeration.

Run:  python examples/figure2_walkthrough.py
"""

from repro.core import SynthesisConfig, SynthesisEngine
from repro.core.candidate import WILDCARD, CandidateVector, format_candidate
from repro.core.engine import SynthesisObserver
from repro.protocols.toy import build_figure2_skeleton


class Figure2Printer(SynthesisObserver):
    """Prints rows in the paper's notation as the engine runs."""

    def __init__(self) -> None:
        self._known = 0

    def on_run(self, run_index, vector, result, holes):
        pad = max(0, self._known - len(vector))
        entries = list(vector.entries) + [WILDCARD] * pad
        candidate = format_candidate(CandidateVector(entries), holes)
        discovered = [h.name for h in holes[self._known:]]
        self._known = len(holes)
        note = f"  discovers {', '.join(discovered)}" if discovered else ""
        print(f"run {run_index:2d}  {candidate:28s} {result.verdict.value:8s}{note}")

    def on_pattern(self, pattern, holes):
        entries = []
        for position in range(pattern.max_position + 1):
            entries.append(dict(pattern.constraints).get(position, WILDCARD))
        text = format_candidate(CandidateVector(entries), holes)
        print(f"{'':7s}-> pruning pattern {text}")

    def on_solution(self, solution, holes):
        print(f"{'':7s}-> solution found")


def main() -> None:
    print("Figure 2 worked example: candidate pruning")
    print(f"{'':8s}{'Candidate':28s} {'Verdict':8s} {'Pruning pattern':28s}")
    observer = Figure2Printer()
    pruned = SynthesisEngine(build_figure2_skeleton(), SynthesisConfig(), observer)
    report = pruned.run()

    naive = SynthesisEngine(
        build_figure2_skeleton(), SynthesisConfig(pruning=False)
    ).run()

    print()
    print(f"with pruning: {report.evaluated} candidates evaluated "
          f"(paper: 10)")
    print(f"naive:        {naive.evaluated} candidates evaluated (paper: 24)")
    print(f"solution:     {report.format_solution(report.solutions[0])}")


if __name__ == "__main__":
    main()
