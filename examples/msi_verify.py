#!/usr/bin/env python
"""Model-check the directory MSI protocol (the paper's Figure 3).

Verifies the complete reference protocol for a configurable number of
caches, reports state counts with and without symmetry reduction, and then
demonstrates counterexample traces by injecting a classic transient-state
bug: the cache acknowledges data receipt but "forgets" to move to M.

Run:  python examples/msi_verify.py [n_caches]
"""

import sys

from repro.mc.bfs import BfsExplorer
from repro.protocols.msi import defs
from repro.protocols.msi.defs import format_state
from repro.protocols.msi.cache import make_reference_completion, reference_cache_table
from repro.protocols.msi.system import build_msi_system
from repro.util.timing import Stopwatch


def verify_reference(n_caches: int) -> None:
    print(f"== reference protocol, {n_caches} cache(s) ==")
    for symmetry in (True, False):
        system = build_msi_system(n_caches, symmetry=symmetry)
        with Stopwatch() as watch:
            result = BfsExplorer(system).run()
        label = "with symmetry   " if symmetry else "without symmetry"
        print(
            f"  {label}: {result.verdict.value:7s} "
            f"{result.stats.states_visited:6d} states "
            f"{result.stats.transitions_fired:7d} transitions "
            f"({watch.elapsed:.2f}s)"
        )


def demonstrate_bug(n_caches: int) -> None:
    print(f"\n== injected bug: IM_D+Data acks but stays in IM_D ==")
    table = reference_cache_table()
    table[(defs.C_IM_D, defs.DATA)] = make_reference_completion(
        "send_dataack", "goto_IM_D"
    )
    system = build_msi_system(n_caches, cache_table=table, name="msi-buggy")
    result = BfsExplorer(system).run()
    print(f"  verdict: {result.summary()}")
    if result.trace is not None:
        print("  minimal counterexample:")
        for line in result.trace.format(format_state).splitlines():
            print("   ", line)


def main() -> None:
    n_caches = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    verify_reference(n_caches)
    demonstrate_bug(n_caches)


if __name__ == "__main__":
    main()
