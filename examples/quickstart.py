#!/usr/bin/env python
"""Quickstart: synthesise a hole in a mutual-exclusion protocol.

A central server grants a lock to one client at a time.  We blank out the
client's "Grant received" transition — what should a waiting client do when
the grant arrives? — give the synthesiser a small action library, and let
it rediscover the answer: enter the critical section, send nothing.

Run:  python examples/quickstart.py
"""

from repro import SynthesisConfig, synthesize
from repro.analysis.grouping import describe_groups
from repro.protocols.mutex import build_mutex_skeleton


def main() -> None:
    system, holes = build_mutex_skeleton(n_clients=2)
    print(f"skeleton: {system.name} with {len(holes)} holes")
    for hole in holes:
        print(f"  {hole.name}: {[a.name for a in hole.domain]}")

    report = synthesize(system, SynthesisConfig(compute_fingerprints=True))

    print()
    print(report.summary())
    print()
    print(describe_groups(report))
    print()
    print("The synthesiser evaluated", report.evaluated, "candidates out of",
          report.naive_candidate_space, "possible completions.")


if __name__ == "__main__":
    main()
