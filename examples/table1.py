#!/usr/bin/env python
"""Regenerate Table I of the paper.

Rows and gating:

* MSI-tiny rows always run (not in the paper; a fast sanity row).
* MSI-small rows run by default: pruning x {1 thread, 4 threads,
  4 processes} measured, the naive baseline measured in full with
  ``--naive-full`` or estimated from a random sample of candidate checks
  otherwise.  The threads row is an algorithmic reproduction only (GIL);
  the processes row (``repro.dist``) is the one that can show the paper's
  wall-clock speedup on a multi-core host.
* MSI-large rows with ``--large`` (tens of minutes in CPython).

Run:  python examples/table1.py [--large] [--naive-full] [--caches N]
"""

import argparse

from repro.analysis.stats import estimate_naive_seconds, sample_candidate_cost
from repro.analysis.tables import format_table, render_table1_row
from repro.core import SynthesisConfig, SynthesisEngine
from repro.core.parallel import ParallelSynthesisEngine
from repro.dist import DistributedSynthesisEngine, SystemSpec
from repro.protocols.msi import msi_large, msi_small, msi_tiny


def measure(system, pruning=True, threads=1):
    if threads == 1:
        return SynthesisEngine(system, SynthesisConfig(pruning=pruning)).run()
    return ParallelSynthesisEngine(
        system, SynthesisConfig(pruning=pruning), threads=threads
    ).run()


def rows_for(name, factory, catalog_name, caches, naive_full, rows):
    skeleton = factory(caches)
    print(f"[{name}] pruning, 1 thread ...", flush=True)
    pruned = measure(skeleton.system)
    rows.append(render_table1_row(f"{name} 1 thread, pruning", pruned))

    print(f"[{name}] pruning, 4 threads (GIL-bound, algorithmic repro) ...",
          flush=True)
    parallel = measure(factory(caches).system, threads=4)
    rows.append(render_table1_row(
        f"{name} 4 threads, pruning (algorithmic repro)", parallel
    ))

    print(f"[{name}] pruning, 4 processes ...", flush=True)
    distributed = DistributedSynthesisEngine(
        SystemSpec(catalog_name, caches), workers=4
    ).run()
    if distributed.system_name != pruned.system_name:
        raise SystemExit(
            f"catalog name {catalog_name!r} built {distributed.system_name!r} "
            f"but the factory built {pruned.system_name!r} — rows would "
            f"compare different systems"
        )
    rows.append(render_table1_row(f"{name} 4 processes, pruning", distributed))

    if naive_full:
        print(f"[{name}] naive (full) ...", flush=True)
        naive = measure(factory(caches).system, pruning=False)
        rows.append(render_table1_row(f"{name} 1 thread, no pruning", naive))
    else:
        print(f"[{name}] naive (estimating from a sample) ...", flush=True)
        sample = sample_candidate_cost(factory(caches), samples=25)
        naive_candidates = pruned.naive_candidate_space
        estimate = estimate_naive_seconds(
            naive_candidates, 1, sample["mean_seconds"]
        )
        row = render_table1_row(
            f"{name} 1 thread, no pruning",
            pruned,
            evaluated_override=naive_candidates,
            seconds_override=estimate,
            estimated=True,
        )
        row["Candidates"] = naive_candidates
        row["Pruning Patterns"] = None
        rows.append(row)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--large", action="store_true", help="run MSI-large rows")
    parser.add_argument(
        "--naive-full", action="store_true",
        help="measure naive baselines in full instead of estimating",
    )
    parser.add_argument("--caches", type=int, default=2)
    args = parser.parse_args()

    rows = []
    print("[MSI-tiny] ...", flush=True)
    tiny_naive = measure(msi_tiny(args.caches).system, pruning=False)
    rows.append(render_table1_row("MSI-tiny 1 thread, no pruning", tiny_naive))
    tiny = measure(msi_tiny(args.caches).system)
    rows.append(render_table1_row("MSI-tiny 1 thread, pruning", tiny))

    rows_for("MSI-small", msi_small, "msi-small", args.caches,
             args.naive_full, rows)
    if args.large:
        rows_for("MSI-large", msi_large, "msi-large", args.caches,
                 args.naive_full, rows)

    print()
    print(format_table(rows))
    print("\n(naive rows marked 'estimated' extrapolate mean sampled candidate-check"
          "\n cost to the full candidate space; see DESIGN.md substitution 1)")


if __name__ == "__main__":
    main()
