#!/usr/bin/env python
"""Synthesise the Exclusive-grant decision of a MESI protocol.

MESI's whole point is the E state: a cache granted the only copy may write
silently, without asking the directory.  We blank out the cache's
"exclusive data arrived" rule and ask the synthesiser: what should a cache
do when it asked to *read* and the directory granted *exclusively*?

The action library admits plausible wrong answers — treat it like a shared
grant (``goto_S``: correct, but then E is never used and the silent-upgrade
optimisation is dead), or forget the acknowledgement (the directory's
serialisation transient hangs).  With the "some cache reaches E" coverage
property, exactly one completion survives.

Run:  python examples/mesi_synthesis.py [n_caches]
"""

import sys

from repro.core import SynthesisConfig, SynthesisEngine
from repro.protocols.mesi import build_mesi_skeleton, reference_assignment_for


def main() -> None:
    n_caches = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    system, holes = build_mesi_skeleton(n_caches=n_caches)
    print(f"skeleton: {system.name}; blanked rule: IS_D + DataE")
    for hole in holes:
        print(f"  {hole.name}: {[a.name for a in hole.domain]}")

    report = SynthesisEngine(system, SynthesisConfig()).run()
    print()
    print(report.summary())

    reference = reference_assignment_for(holes)
    found = [dict(s.assignment) for s in report.solutions]
    print()
    if found == [reference]:
        print("unique solution = the textbook completion:")
        for hole_name, action in sorted(reference.items()):
            print(f"  {hole_name} = {action}")

    # Show what happens without the E-coverage property.
    system2, _holes2 = build_mesi_skeleton(n_caches=n_caches, coverage=False)
    without = SynthesisEngine(system2).run()
    print()
    print(
        f"without coverage properties: {len(without.solutions)} solutions — "
        "including MSI-degenerate completions that never use E"
    )


if __name__ == "__main__":
    main()
