#!/usr/bin/env python
"""Tour the protocol zoo: every catalog workload, verified and synthesised.

Walks the complete-protocol catalog (``verify``) and the fast skeletons
(``synth``) including the MOESI and German workloads, then demonstrates
each protocol's designated seeded bug being caught — the sanity check
that the property sets actually bite.

This is the scripted cousin of ``python -m repro matrix --preset smoke``;
use the matrix form when you want journaling and resumption.

Run:  python examples/protocol_zoo.py
"""

from repro.core import SynthesisEngine
from repro.mc.bfs import BfsExplorer
from repro.protocols.catalog import (
    PROTOCOL_CATALOG,
    SKELETON_CATALOG,
    build_protocol,
    build_skeleton,
)
from repro.protocols.german import build_german_system
from repro.protocols.moesi import build_moesi_system

#: skeletons cheap enough for an interactive tour
FAST_SKELETONS = (
    "figure2", "mutex", "vi", "msi-tiny", "mesi", "moesi-small", "german-small",
)


def main() -> None:
    print("== verify: every complete protocol at 2 replicas ==")
    for name in sorted(PROTOCOL_CATALOG):
        result = BfsExplorer(build_protocol(name, 2)).run()
        assert result.is_success, f"{name}: {result.summary()}"
        print(f"  {name:8s} {result.summary()}")

    print("\n== synth: every fast skeleton at its minimum replica count ==")
    for name in FAST_SKELETONS:
        entry = SKELETON_CATALOG[name]
        report = SynthesisEngine(build_skeleton(name, entry.replicas[0])).run()
        assert report.solutions, f"{name} found no solutions"
        print(
            f"  {name:14s} {report.hole_count} holes, "
            f"{report.evaluated:4d} evaluated, "
            f"{len(report.solutions)} solution(s)"
        )

    print("\n== seeded bugs: the property sets bite ==")
    for label, system in (
        ("moesi no-owner-inv", build_moesi_system(2, bug="no-owner-inv")),
        ("german stale-shared-grant",
         build_german_system(2, bug="stale-shared-grant")),
    ):
        result = BfsExplorer(system).run()
        assert result.is_failure, f"{label} was not caught"
        print(f"  {label}: caught ({result.message})")

    print("\nthe zoo is healthy")


if __name__ == "__main__":
    main()
