#!/usr/bin/env python
"""Synthesise both sides of a coherence hand-off in the VI protocol.

Two rules are blanked out simultaneously: what the *client* does when data
arrives (it must acknowledge and become valid) and what the *directory*
does when the acknowledgement arrives (it must record the new owner).  The
two holes interlock — most combinations deadlock the hand-off — and lazy
hole discovery finds the directory's holes only after the client's are
filled well enough to exercise them.

Run:  python examples/vi_synthesis.py [n_clients]
"""

import sys

from repro.core import SynthesisConfig, SynthesisEngine
from repro.core.engine import SynthesisObserver
from repro.protocols.vi import REFERENCE_ASSIGNMENT, build_vi_skeleton


class DiscoveryNarrator(SynthesisObserver):
    def __init__(self):
        self._known = 0

    def on_pass_started(self, pass_index, holes):
        new = [h.name for h in holes[self._known:]]
        self._known = len(holes)
        if new:
            print(f"pass {pass_index}: new holes discovered: {', '.join(new)}")
        else:
            print(f"pass {pass_index}: re-enumerating {len(holes)} holes")


def main() -> None:
    n_clients = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    system, holes = build_vi_skeleton(n_clients)
    print(f"skeleton: {system.name}; blanked rules:")
    for hole in holes:
        print(f"  {hole.name}: {[a.name for a in hole.domain]}")
    print()

    report = SynthesisEngine(system, SynthesisConfig(), DiscoveryNarrator()).run()

    print()
    print(report.summary())
    found = [dict(s.assignment) for s in report.solutions]
    print()
    if REFERENCE_ASSIGNMENT in found:
        print("the hand-written completion was rediscovered.")
    extras = [f for f in found if f != REFERENCE_ASSIGNMENT]
    if extras:
        print(f"{len(extras)} additional correct completion(s) exist — "
              "inspect them for subtle behavioural differences:")
        for assignment in extras:
            print(" ", assignment)


if __name__ == "__main__":
    main()
