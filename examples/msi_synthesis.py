#!/usr/bin/env python
"""Synthesise transient-state actions of the directory MSI protocol.

The paper's case study: given the protocol's stable states and the rules
leading into transient states, synthesise the transient completions.
Sizes:

* ``tiny``  — 1 cache rule, 2 holes (seconds);
* ``small`` — 2 directory + 1 cache rules, 8 holes; the paper's MSI-small,
  candidate space 231,525 (about a minute with 2 caches);
* ``large`` — 2 directory + 3 cache rules, 12 holes; the paper's
  MSI-large, candidate space 102,102,525 (tens of minutes).

Run:  python examples/msi_synthesis.py [tiny|small|large] [n_caches]
"""

import sys

from repro.analysis.grouping import describe_groups
from repro.core import SynthesisConfig, SynthesisEngine
from repro.protocols.msi import msi_large, msi_small, msi_tiny

SIZES = {"tiny": msi_tiny, "small": msi_small, "large": msi_large}


def main() -> None:
    size = sys.argv[1] if len(sys.argv) > 1 else "tiny"
    n_caches = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    if size not in SIZES:
        raise SystemExit(f"unknown size {size!r}; pick one of {sorted(SIZES)}")

    skeleton = SIZES[size](n_caches=n_caches)
    print(f"skeleton: {skeleton.system.name}, {skeleton.hole_count} holes")
    space = 1
    for hole in skeleton.holes:
        space *= hole.arity
    print(f"candidate space: {space:,}")
    print("synthesising...")

    report = SynthesisEngine(
        skeleton.system, SynthesisConfig(compute_fingerprints=True)
    ).run()

    print()
    print(report.summary())
    print()
    print(describe_groups(report))

    reference = skeleton.reference_assignment()
    found = [dict(s.assignment) for s in report.solutions]
    print()
    if reference in found:
        print("the textbook completion is among the synthesised solutions:")
        for hole_name, action in sorted(reference.items()):
            print(f"  {hole_name} = {action}")
    else:
        print("WARNING: the textbook completion was not rediscovered")


if __name__ == "__main__":
    main()
