"""Legacy setup shim (this environment lacks `wheel` for PEP 517 builds)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "VerC3 reproduction: explicit state synthesis of concurrent systems"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
