"""Ablations of the design choices DESIGN.md calls out.

1. Candidate pruning on/off (the paper's contribution) — on multi-rule
   skeletons pruning wins outright; on a single-rule skeleton the wildcard
   passes cost more than they save (an honest boundary of the technique).
2. Subtree-skipping vs flat per-candidate pattern matching (our CPython
   substitution): identical counts, different enumeration cost.
3. Refined trace-based patterns (our extension): never more evaluations.
4. Success-pattern memoisation: avoids re-verifying known solutions'
   don't-care extensions across passes.
5. Coverage properties: dropping them admits degenerate protocols
   (the paper's Section III observation).
"""


from benchmarks.conftest import attach_report, bench_caches, run_once
from repro.core import SynthesisConfig, SynthesisEngine
from repro.protocols.msi import msi_read_tiny, msi_tiny
from repro.protocols.vi import build_vi_skeleton


def run_config(system, **kwargs):
    return SynthesisEngine(system, SynthesisConfig(**kwargs)).run()


class TestPruningAblation:
    def test_vi_pruning_on(self, benchmark):
        report = run_once(benchmark, lambda: run_config(build_vi_skeleton(2)[0]))
        attach_report(benchmark, report, "vi, pruning")

    def test_vi_pruning_off(self, benchmark):
        report = run_once(
            benchmark, lambda: run_config(build_vi_skeleton(2)[0], pruning=False)
        )
        attach_report(benchmark, report, "vi, naive")

    def test_pruning_reduces_evaluations_on_vi(self):
        pruned = run_config(build_vi_skeleton(2)[0])
        naive = run_config(build_vi_skeleton(2)[0], pruning=False)
        assert pruned.evaluated < naive.evaluated


class TestMatcherAblation:
    def test_subtree_matcher(self, benchmark):
        report = run_once(
            benchmark, lambda: run_config(msi_tiny(bench_caches()).system)
        )
        attach_report(benchmark, report, "MSI-tiny, subtree matcher")

    def test_flat_matcher(self, benchmark):
        report = run_once(
            benchmark,
            lambda: run_config(msi_tiny(bench_caches()).system, naive_match=True),
        )
        attach_report(benchmark, report, "MSI-tiny, flat matcher")

    def test_matchers_agree(self):
        subtree = run_config(msi_tiny(bench_caches()).system)
        flat = run_config(msi_tiny(bench_caches()).system, naive_match=True)
        assert subtree.evaluated == flat.evaluated
        assert subtree.failure_patterns == flat.failure_patterns


class TestRefinedPatterns:
    def test_refined(self, benchmark):
        report = run_once(
            benchmark,
            lambda: run_config(
                msi_tiny(bench_caches()).system, refined_patterns=True
            ),
        )
        attach_report(benchmark, report, "MSI-tiny, refined patterns")

    def test_refined_never_worse(self):
        base = run_config(msi_tiny(bench_caches()).system)
        refined = run_config(msi_tiny(bench_caches()).system, refined_patterns=True)
        assert refined.evaluated <= base.evaluated
        assert {s.digits for s in refined.solutions} == {
            s.digits for s in base.solutions
        }


class TestSuccessMemoisation:
    def test_success_patterns_reduce_reverification(self):
        with_memo = run_config(build_vi_skeleton(2)[0], success_patterns=True)
        without = run_config(build_vi_skeleton(2)[0], success_patterns=False)
        # Identical solution sets either way...
        assert {s.digits[: len(s.digits)] for s in with_memo.solutions} == {
            s.digits[: len(s.digits)] for s in without.solutions
        } or len(without.solutions) >= len(with_memo.solutions)
        # ...but memoisation never evaluates more.
        assert with_memo.evaluated <= without.evaluated


class TestCoverageAblation:
    def test_with_coverage(self, benchmark):
        report = run_once(
            benchmark, lambda: run_config(msi_read_tiny(bench_caches()).system)
        )
        attach_report(benchmark, report, "MSI-read-tiny, with coverage")

    def test_without_coverage(self, benchmark):
        report = run_once(
            benchmark,
            lambda: run_config(
                msi_read_tiny(bench_caches(), coverage=False).system
            ),
        )
        attach_report(benchmark, report, "MSI-read-tiny, no coverage")

    def test_coverage_prunes_degenerate_solutions(self):
        with_coverage = run_config(msi_read_tiny(bench_caches()).system)
        without = run_config(msi_read_tiny(bench_caches(), coverage=False).system)
        assert len(without.solutions) > len(with_coverage.solutions)
