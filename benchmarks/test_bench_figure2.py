"""Figure 2: the worked example (10 evaluated with pruning vs 24 naive).

The figure's caption is an exact claim about the synthesis procedure; this
benchmark measures both modes on the toy state graph and asserts the counts
bit-for-bit.
"""

from benchmarks.conftest import attach_report, run_once
from repro.core import SynthesisConfig, SynthesisEngine
from repro.protocols.toy import build_figure2_skeleton


def test_figure2_with_pruning(benchmark):
    report = run_once(
        benchmark, lambda: SynthesisEngine(build_figure2_skeleton()).run()
    )
    attach_report(benchmark, report, "figure2, pruning")
    assert report.evaluated == 10  # runs 1-10 of the figure
    assert report.failure_patterns == 5
    assert len(report.solutions) == 1


def test_figure2_naive(benchmark):
    report = run_once(
        benchmark,
        lambda: SynthesisEngine(
            build_figure2_skeleton(), SynthesisConfig(pruning=False)
        ).run(),
    )
    attach_report(benchmark, report, "figure2, naive")
    assert report.evaluated == 24  # 3 * 2 * 2 * 2
    assert len(report.solutions) == 1


def test_figure2_parallel(benchmark):
    from repro.core.parallel import ParallelSynthesisEngine

    report = run_once(
        benchmark,
        lambda: ParallelSynthesisEngine(build_figure2_skeleton(), threads=4).run(),
    )
    attach_report(benchmark, report, "figure2, 4 threads pruning")
    assert len(report.solutions) == 1
