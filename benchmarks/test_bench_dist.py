"""Backend showdown: sequential vs threads vs processes wall-clock.

The paper reports 1.5x (MSI-small) / 2.5x (MSI-large) speedups at 4
workers.  Our thread backend cannot show them (GIL; it exists as an
algorithmic reproduction), so this benchmark measures the process backend
(:mod:`repro.dist`) against both, records every row into
``BENCH_dist.json`` (via the ``dist_bench_rows`` fixture), and asserts:

* all backends find identical solution sets (always);
* on hosts with >= 4 CPUs, 4 worker processes beat the sequential run on
  MSI-small and are at least as fast as 4 threads — the paper's headline
  parallel claim.  On narrower hosts (CI containers are often 1-2 cores)
  the timing assertions are skipped: time-slicing one core cannot show a
  speedup, and pretending otherwise would make the suite flaky.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import (
    attach_report,
    bench_caches,
    run_once,
    small_enabled,
)
from repro.core import SynthesisConfig, SynthesisEngine
from repro.core.parallel import ParallelSynthesisEngine
from repro.dist import DistributedSynthesisEngine, SystemSpec
from repro.protocols.catalog import build_skeleton
from repro.util.timing import Stopwatch

CPU_COUNT = os.cpu_count() or 1


def record(rows, skeleton, backend, workers, report, seconds=None, **extra):
    rows.append(
        {
            "skeleton": skeleton,
            "backend": backend,
            "workers": workers,
            # Per-row so rows merged across hosts stay interpretable:
            # a 1-core row's timing is time-slicing noise, and the
            # aggregate header alone cannot say which rows those are.
            "cpu_count": CPU_COUNT,
            "seconds": round(
                report.elapsed_seconds if seconds is None else seconds, 3
            ),
            "evaluated": report.evaluated,
            "solutions": len(report.solutions),
            **extra,
        }
    )
    return report


def digits(report):
    return {solution.digits for solution in report.solutions}


class TestMsiTinyBackends:
    """Fast, always-on rows: every backend on the 2-hole skeleton."""

    def test_sequential(self, benchmark, dist_bench_rows):
        report = run_once(
            benchmark,
            lambda: SynthesisEngine(build_skeleton("msi-tiny", bench_caches())).run(),
        )
        attach_report(benchmark, report, "MSI-tiny sequential")
        record(dist_bench_rows, "msi-tiny", "sequential", 1, report)
        assert report.solutions

    def test_threads(self, benchmark, dist_bench_rows):
        report = run_once(
            benchmark,
            lambda: ParallelSynthesisEngine(
                build_skeleton("msi-tiny", bench_caches()), threads=2
            ).run(),
        )
        attach_report(benchmark, report, "MSI-tiny 2 threads")
        record(dist_bench_rows, "msi-tiny", "threads", 2, report)
        assert report.solutions

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_processes(self, benchmark, dist_bench_rows, workers):
        report = run_once(
            benchmark,
            lambda: DistributedSynthesisEngine(
                SystemSpec("msi-tiny", bench_caches()), workers=workers
            ).run(),
        )
        attach_report(benchmark, report, f"MSI-tiny {workers} processes")
        record(dist_bench_rows, "msi-tiny", "processes", workers, report)
        assert report.solutions


@pytest.mark.skipif(not small_enabled(), reason="VERC3_BENCH_SMALL=0")
class TestMsiSmallShowdown:
    """The acceptance row: MSI-small across all three backends.

    One test measures all three so the comparison shares a process and the
    JSON rows land together; pytest-benchmark times the processes run, the
    baselines are stopwatch-timed.
    """

    def test_backend_showdown(self, benchmark, dist_bench_rows):
        caches = bench_caches()

        watch = Stopwatch.started()
        sequential = SynthesisEngine(build_skeleton("msi-small", caches)).run()
        sequential_seconds = watch.elapsed
        record(
            dist_bench_rows, "msi-small", "sequential", 1, sequential,
            seconds=sequential_seconds,
        )

        watch = Stopwatch.started()
        threaded = ParallelSynthesisEngine(
            build_skeleton("msi-small", caches), threads=4
        ).run()
        threaded_seconds = watch.elapsed
        record(
            dist_bench_rows, "msi-small", "threads", 4, threaded,
            seconds=threaded_seconds,
        )

        distributed = run_once(
            benchmark,
            lambda: DistributedSynthesisEngine(
                SystemSpec("msi-small", caches), workers=4
            ).run(),
        )
        attach_report(benchmark, distributed, "MSI-small 4 processes")
        benchmark.extra_info.update(
            {
                "sequential_seconds": round(sequential_seconds, 3),
                "threads_seconds": round(threaded_seconds, 3),
                "cpu_count": CPU_COUNT,
            }
        )
        record(dist_bench_rows, "msi-small", "processes", 4, distributed)

        # Correctness is unconditional: identical solutions everywhere.
        assert digits(distributed) == digits(sequential) == digits(threaded)
        assert distributed.solutions
        if caches == 2:  # solution count depends on cache count
            assert len(distributed.solutions) == 126

        if CPU_COUNT >= 4:
            # The paper's parallel claim, now actually reachable: faster
            # than sequential, and never slower than the GIL-bound threads.
            assert distributed.elapsed_seconds < sequential_seconds
            assert distributed.elapsed_seconds <= threaded_seconds


@pytest.mark.skipif(not small_enabled(), reason="VERC3_BENCH_SMALL=0")
class TestMsiSmallMemoWarm:
    """The verdict-store acceptance row: cold vs warm MSI-small.

    The warm run consults the store populated by the cold run and must
    perform at most 1% of its model checks while reporting identical
    solutions and fingerprints — this is the speedup that works on any
    host, including 1-core CI boxes where process parallelism cannot.
    The rows land in the ``memo_warm`` section of ``BENCH_dist.json``.
    """

    def test_store_warm_rerun(self, benchmark, dist_bench_rows, tmp_path):
        caches = bench_caches()
        store = str(tmp_path / "store")

        def run(label):
            return SynthesisEngine(
                build_skeleton("msi-small", caches),
                SynthesisConfig(store_path=store, compute_fingerprints=True),
            ).run()

        watch = Stopwatch.started()
        cold = run("cold")
        cold_seconds = watch.elapsed
        record(
            dist_bench_rows, "msi-small", "sequential", 1, cold,
            seconds=cold_seconds, section="memo_warm", phase="cold",
            model_checks=cold.model_checks, store_hits=cold.store_hits,
        )

        warm = run_once(benchmark, lambda: run("warm"))
        attach_report(benchmark, warm, "MSI-small warm store re-run")
        benchmark.extra_info.update(
            {
                "cold_seconds": round(cold_seconds, 3),
                "model_checks": warm.model_checks,
                "store_hits": warm.store_hits,
                "cpu_count": CPU_COUNT,
            }
        )
        record(
            dist_bench_rows, "msi-small", "sequential", 1, warm,
            section="memo_warm", phase="warm",
            model_checks=warm.model_checks, store_hits=warm.store_hits,
        )

        # Identical results: solution digit sets and behavioural
        # fingerprints, plus the evaluated count (hits included).
        assert digits(warm) == digits(cold)
        assert [s.fingerprint for s in warm.solutions] == [
            s.fingerprint for s in cold.solutions
        ]
        assert warm.evaluated == cold.evaluated
        # The acceptance bound: a warm re-run model checks <= 1% of cold.
        assert warm.model_checks <= max(1, cold.model_checks // 100)
