"""Table I: MSI coherence protocol synthesis (the paper's headline table).

Paper rows (i7-4800MQ, C++):

    MSI-small  1 thread, no pruning   8   231,525        N/A     231,525  4   64.5s
    MSI-small  1 thread, pruning      8   1,179,648      743     855      4   1.8s
    MSI-small  4 threads, pruning     8   1,179,648      701     825      4   1.2s
    MSI-large  1 thread, no pruning   12  102,102,525    N/A     102,102,525  12  31,573.5s
    MSI-large  1 thread, pruning      12  1,207,959,552  34,928  170,108  12  739.7s
    MSI-large  4 threads, pruning     12  1,207,959,552  34,888  170,087  12  295.7s

What we reproduce by default (CPython; see DESIGN.md substitutions):

* the candidate-space columns exactly (validated by construction);
* MSI-small with pruning, fully measured: 1 thread, 4 threads (an
  *algorithmic* reproduction only — the GIL serialises the model
  checking, so no wall-clock speedup), and 4 worker processes
  (:mod:`repro.dist`, the backend that can actually deliver the paper's
  speedup on a multi-core host);
* MSI-small naive, *estimated* from a random sample of candidate checks
  (the full 231k-run baseline takes tens of CPU-minutes in CPython; set
  VERC3_BENCH_NAIVE_FULL=1 to measure it outright);
* MSI-large rows only with VERC3_BENCH_LARGE=1.

The headline *shape* — pruning reduces evaluated candidates by >95% and
turns the naive baseline's hours into minutes — is asserted, not just
printed.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    attach_report,
    bench_caches,
    env_flag,
    large_enabled,
    run_once,
    sample_candidate_cost,
    small_enabled,
)
from repro.analysis.stats import estimate_naive_seconds
from repro.analysis.tables import render_table1_row
from repro.core import SynthesisConfig, SynthesisEngine
from repro.core.parallel import ParallelSynthesisEngine
from repro.dist import DistributedSynthesisEngine, SystemSpec
from repro.protocols.msi import msi_large, msi_small, msi_tiny


def synth(system, pruning=True):
    return SynthesisEngine(system, SynthesisConfig(pruning=pruning)).run()


class TestMsiTiny:
    """A fast, always-on miniature of the table (2 holes)."""

    def test_tiny_no_pruning(self, benchmark, table1_rows):
        report = run_once(
            benchmark, lambda: synth(msi_tiny(bench_caches()).system, pruning=False)
        )
        attach_report(benchmark, report, "MSI-tiny 1 thread, no pruning")
        table1_rows.append(render_table1_row("MSI-tiny 1 thread, no pruning", report))
        assert report.evaluated == report.naive_candidate_space == 21

    def test_tiny_pruning(self, benchmark, table1_rows):
        report = run_once(benchmark, lambda: synth(msi_tiny(bench_caches()).system))
        attach_report(benchmark, report, "MSI-tiny 1 thread, pruning")
        table1_rows.append(render_table1_row("MSI-tiny 1 thread, pruning", report))
        assert report.solutions


@pytest.mark.skipif(not small_enabled(), reason="VERC3_BENCH_SMALL=0")
class TestMsiSmall:
    """The paper's MSI-small: 8 holes = 2 directory + 1 cache rules."""

    def test_small_one_thread_pruning(self, benchmark, table1_rows):
        report = run_once(benchmark, lambda: synth(msi_small(bench_caches()).system))
        attach_report(benchmark, report, "MSI-small 1 thread, pruning")
        table1_rows.append(render_table1_row("MSI-small 1 thread, pruning", report))
        assert report.naive_candidate_space == 231_525
        assert report.wildcard_candidate_space == 1_179_648
        assert report.solutions
        # Headline shape: >95% of the naive space is never model checked
        # (paper: 99.6%).
        assert report.reduction_vs_naive > 0.95

    def test_small_four_threads_pruning(self, benchmark, table1_rows):
        """Labeled as an algorithmic reproduction: the GIL means this row's
        wall clock is *not* expected to beat the 1-thread row."""
        report = run_once(
            benchmark,
            lambda: ParallelSynthesisEngine(
                msi_small(bench_caches()).system, threads=4
            ).run(),
        )
        label = "MSI-small 4 threads, pruning (algorithmic repro)"
        attach_report(benchmark, report, label)
        table1_rows.append(render_table1_row(label, report))
        assert report.solutions

    def test_small_four_processes_pruning(self, benchmark, table1_rows):
        """The repro.dist backend row: real multi-core parallelism."""
        report = run_once(
            benchmark,
            lambda: DistributedSynthesisEngine(
                SystemSpec("msi-small", bench_caches()), workers=4
            ).run(),
        )
        label = "MSI-small 4 processes, pruning"
        attach_report(benchmark, report, label)
        table1_rows.append(render_table1_row(label, report))
        assert report.solutions
        if bench_caches() == 2:  # solution count depends on cache count
            assert len(report.solutions) == 126

    def test_small_naive_baseline(self, benchmark, table1_rows):
        """The naive row: measured outright only with VERC3_BENCH_NAIVE_FULL=1,
        otherwise estimated from a random sample of candidate checks."""
        skeleton = msi_small(bench_caches())
        if env_flag("VERC3_BENCH_NAIVE_FULL", False):
            report = run_once(benchmark, lambda: synth(skeleton.system, pruning=False))
            attach_report(benchmark, report, "MSI-small 1 thread, no pruning")
            table1_rows.append(
                render_table1_row("MSI-small 1 thread, no pruning", report)
            )
            assert report.evaluated == 231_525
            return

        sample = run_once(
            benchmark, lambda: sample_candidate_cost(skeleton, samples=25)
        )
        naive_candidates = 231_525
        estimate = estimate_naive_seconds(
            naive_candidates, sample["samples"],
            sample["mean_seconds"] * sample["samples"],
        )
        benchmark.extra_info.update(
            {
                "configuration": "MSI-small 1 thread, no pruning (estimated)",
                "evaluated": naive_candidates,
                "estimated_seconds": round(estimate, 1),
                "sampled_mean_seconds": round(sample["mean_seconds"], 5),
            }
        )
        # Build a pseudo-report row for the printed table.
        pruned = synth(skeleton.system)
        row = render_table1_row(
            "MSI-small 1 thread, no pruning",
            pruned,
            evaluated_override=naive_candidates,
            seconds_override=estimate,
            estimated=True,
        )
        row["Candidates"] = naive_candidates
        row["Pruning Patterns"] = None
        row["Solutions"] = len(pruned.solutions)
        table1_rows.append(row)
        # Shape assertion: the estimated naive baseline is far slower than
        # the measured pruned run (paper: 35.8x).
        assert estimate > pruned.elapsed_seconds * 5


@pytest.mark.skipif(not large_enabled(), reason="set VERC3_BENCH_LARGE=1 to run")
class TestMsiLarge:
    """The paper's MSI-large: 12 holes (tens of minutes in CPython)."""

    def test_large_one_thread_pruning(self, benchmark, table1_rows):
        report = run_once(benchmark, lambda: synth(msi_large(bench_caches()).system))
        attach_report(benchmark, report, "MSI-large 1 thread, pruning")
        table1_rows.append(render_table1_row("MSI-large 1 thread, pruning", report))
        assert report.naive_candidate_space == 102_102_525
        assert report.wildcard_candidate_space == 1_207_959_552
        assert report.solutions
        assert report.reduction_vs_naive > 0.99  # paper: 99.8%

    def test_large_four_threads_pruning(self, benchmark, table1_rows):
        report = run_once(
            benchmark,
            lambda: ParallelSynthesisEngine(
                msi_large(bench_caches()).system, threads=4
            ).run(),
        )
        attach_report(benchmark, report, "MSI-large 4 threads, pruning")
        table1_rows.append(render_table1_row("MSI-large 4 threads, pruning", report))
        assert report.solutions

    def test_large_naive_estimate(self, benchmark, table1_rows):
        skeleton = msi_large(bench_caches())
        sample = run_once(
            benchmark, lambda: sample_candidate_cost(skeleton, samples=25)
        )
        naive_candidates = 102_102_525
        estimate = estimate_naive_seconds(
            naive_candidates, sample["samples"],
            sample["mean_seconds"] * sample["samples"],
        )
        benchmark.extra_info.update(
            {
                "configuration": "MSI-large 1 thread, no pruning (estimated)",
                "evaluated": naive_candidates,
                "estimated_seconds": round(estimate, 1),
            }
        )
        row = {
            "Configuration": "MSI-large 1 thread, no pruning (estimated)",
            "Holes": 12,
            "Candidates": naive_candidates,
            "Pruning Patterns": None,
            "Evaluated": naive_candidates,
            "Solutions": None,
            "Exec. Time": estimate,
        }
        table1_rows.append(row)
        assert estimate > 0
