"""Model-checker micro-benchmarks: orbit-cache on/off single-candidate checks.

The paper's cost model is "one model-checking run per surviving candidate",
so the wall-clock of a *single-candidate check* is the number every other
speedup multiplies.  This bench measures it on the MSI-small skeleton at 3
replicas (orbit size 3! = 6) with the reference completion, comparing the
legacy canonicaliser (full orbit search, no memo) against the cached one
(sorted-replica fast path + orbit-representative memo), and emits
``BENCH_mc.json``.

This is a *single-threaded* comparison: no cpu_count gating is needed
(unlike ``BENCH_dist.json``'s multi-worker rows).  Repeated checks against
one system object model the synthesis engines' actual behaviour — the
orbit cache is shared across every candidate evaluation of a run.

A fingerprint-determinism sanity check rides along for the tuple-walk
``fingerprint_state`` rewrite: per-config visited-set fingerprints must be
identical across repeated runs.
"""

from __future__ import annotations

import json
import os
import sys
import time

from benchmarks.conftest import run_once
from repro.mc.bfs import BfsExplorer
from repro.mc.context import FixedResolver
from repro.mc.hashing import fingerprint_state_set
from repro.mc.result import Verdict
from repro.mc.symmetry import Permuter, ScalarSet
from repro.protocols.msi import defs
from repro.protocols.msi.skeleton import msi_small

REPLICAS = 3
#: candidate checks per configuration; >1 exercises the cross-run cache
#: reuse every synthesis pass gets for free
REPEATS = 4


def make_resolver(skeleton):
    assignment = skeleton.reference_assignment()
    return FixedResolver(
        {
            hole: hole.domain[hole.index_of(assignment[hole.name])]
            for hole in skeleton.holes
        }
    )


def make_systems():
    """(cache-off system, cache-on system) for the same skeleton."""
    cached_skel = msi_small(REPLICAS)
    uncached_skel = msi_small(REPLICAS)
    legacy = Permuter.for_single(ScalarSet("cache", REPLICAS), defs.permute_state)
    uncached_system = uncached_skel.system.with_canonicalizer(legacy.canonicalize)
    return (uncached_skel, uncached_system), (cached_skel, cached_skel.system)


def check_candidates(skeleton, system):
    """Run REPEATS single-candidate checks; return (seconds, results)."""
    resolver = make_resolver(skeleton)
    results = []
    start = time.perf_counter()
    for _ in range(REPEATS):
        explorer = BfsExplorer(system, resolver=resolver)
        results.append((explorer.run(), frozenset(explorer.visited_states)))
    return time.perf_counter() - start, results


def test_orbit_cache_single_candidate_speedup(benchmark):
    (off_skel, off_system), (on_skel, on_system) = make_systems()

    off_seconds, off_results = check_candidates(off_skel, off_system)

    def cached_run():
        return check_candidates(on_skel, on_system)

    on_seconds, on_results = run_once(benchmark, cached_run)

    # Correctness before speed: identical verdicts and state counts.
    for (off_res, _), (on_res, _) in zip(off_results, on_results):
        assert off_res.verdict is Verdict.SUCCESS
        assert on_res.verdict is Verdict.SUCCESS
        assert on_res.stats.states_visited == off_res.stats.states_visited
    last_on = on_results[-1][0]
    assert last_on.stats.canon_cache_hits > 0
    assert last_on.stats.canon_cache_size > 0

    # Fingerprint determinism sanity (tuple-walk rewrite): identical
    # visited sets fingerprint identically, run after run.
    on_prints = {fingerprint_state_set(states) for _, states in on_results}
    off_prints = {fingerprint_state_set(states) for _, states in off_results}
    assert len(on_prints) == 1
    assert len(off_prints) == 1

    speedup = off_seconds / on_seconds if on_seconds else float("inf")
    payload = {
        "cpu_count": os.cpu_count(),
        "replicas": REPLICAS,
        "repeats": REPEATS,
        "skeleton": "msi-small",
        "rows": [
            {
                "config": "orbit-cache-off",
                "seconds": round(off_seconds, 4),
                "states_per_check": off_results[0][0].stats.states_visited,
            },
            {
                "config": "orbit-cache-on",
                "seconds": round(on_seconds, 4),
                "states_per_check": on_results[0][0].stats.states_visited,
                "cache_hits_last_check": last_on.stats.canon_cache_hits,
                "cache_size": last_on.stats.canon_cache_size,
            },
        ],
        "speedup_cache_on": round(speedup, 3),
    }
    with open("BENCH_mc.json", "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    sys.__stdout__.write(
        f"\nBENCH_mc.json written: orbit cache speedup {speedup:.2f}x "
        f"({off_seconds:.3f}s -> {on_seconds:.3f}s over {REPEATS} checks)\n"
    )
    sys.__stdout__.flush()
    benchmark.extra_info.update(payload)

    # Generous floor: the acceptance target is >= 1.3x, but wall-clock on a
    # loaded CI box is noisy, so only sanity-assert the cache isn't a loss.
    assert speedup > 1.0
