"""Model-checker benchmarks feeding ``BENCH_mc.json``.

Two single-threaded comparisons (no cpu_count gating needed, unlike
``BENCH_dist.json``'s multi-worker rows):

* **orbit-cache on/off single-candidate checks** — the paper's cost model
  is "one model-checking run per surviving candidate", so the wall-clock
  of a single check is the number every other speedup multiplies.
  Measured on MSI-small at 3 replicas with the reference completion,
  legacy canonicaliser (full orbit search) vs the cached one.

* **synthesis with conflict generalisation + prefix reuse on/off** — full
  MSI-small synthesis at 2 replicas, default config vs the PR 2 baseline
  (full-width patterns, cold exploration per candidate).  Records the
  candidates-checked and wall-time reductions, and asserts the solution
  sets are identical before trusting either number.

Each test merges its section into ``BENCH_mc.json`` so partial runs don't
clobber the other section.  A fingerprint-determinism sanity check rides
along for the tuple-walk ``fingerprint_state`` rewrite.
"""

from __future__ import annotations

import json
import os
import sys
import time

import pytest

from benchmarks.conftest import run_once, small_enabled
from repro.core import SynthesisConfig, SynthesisEngine
from repro.mc.bfs import BfsExplorer
from repro.mc.context import FixedResolver
from repro.mc.hashing import fingerprint_state_set
from repro.mc.result import Verdict
from repro.mc.symmetry import Permuter, ScalarSet
from repro.protocols.catalog import build_skeleton
from repro.protocols.msi import defs
from repro.protocols.msi.skeleton import msi_small

REPLICAS = 3
#: candidate checks per configuration; >1 exercises the cross-run cache
#: reuse every synthesis pass gets for free
REPEATS = 4


def update_bench_json(section: str, payload: dict) -> None:
    """Merge one section into BENCH_mc.json, preserving the others."""
    data = {}
    if os.path.exists("BENCH_mc.json"):
        try:
            with open("BENCH_mc.json") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            data = {}
    # Drop pre-sectioned legacy top-level keys so the file self-cleans.
    sections = (
        "single_candidate",
        "synthesis",
        "moesi",
        "german",
        "por",
        "telemetry",
        "packed",
        "family",
    )
    data = {k: v for k, v in data.items() if k in sections}
    data[section] = payload
    data["cpu_count"] = os.cpu_count()
    with open("BENCH_mc.json", "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def make_resolver(skeleton):
    assignment = skeleton.reference_assignment()
    return FixedResolver(
        {
            hole: hole.domain[hole.index_of(assignment[hole.name])]
            for hole in skeleton.holes
        }
    )


def make_systems():
    """(cache-off system, cache-on system) for the same skeleton."""
    cached_skel = msi_small(REPLICAS)
    uncached_skel = msi_small(REPLICAS)
    legacy = Permuter.for_single(ScalarSet("cache", REPLICAS), defs.permute_state)
    uncached_system = uncached_skel.system.with_canonicalizer(legacy.canonicalize)
    return (uncached_skel, uncached_system), (cached_skel, cached_skel.system)


def check_candidates(skeleton, system):
    """Run REPEATS single-candidate checks; return (seconds, results)."""
    resolver = make_resolver(skeleton)
    results = []
    start = time.perf_counter()
    for _ in range(REPEATS):
        explorer = BfsExplorer(system, resolver=resolver)
        results.append((explorer.run(), frozenset(explorer.visited_states)))
    return time.perf_counter() - start, results


def test_orbit_cache_single_candidate_speedup(benchmark):
    (off_skel, off_system), (on_skel, on_system) = make_systems()

    off_seconds, off_results = check_candidates(off_skel, off_system)

    def cached_run():
        return check_candidates(on_skel, on_system)

    on_seconds, on_results = run_once(benchmark, cached_run)

    # Correctness before speed: identical verdicts and state counts.
    for (off_res, _), (on_res, _) in zip(off_results, on_results):
        assert off_res.verdict is Verdict.SUCCESS
        assert on_res.verdict is Verdict.SUCCESS
        assert on_res.stats.states_visited == off_res.stats.states_visited
    last_on = on_results[-1][0]
    assert last_on.stats.canon_cache_hits > 0
    assert last_on.stats.canon_cache_size > 0

    # Fingerprint determinism sanity (tuple-walk rewrite): identical
    # visited sets fingerprint identically, run after run.
    on_prints = {fingerprint_state_set(states) for _, states in on_results}
    off_prints = {fingerprint_state_set(states) for _, states in off_results}
    assert len(on_prints) == 1
    assert len(off_prints) == 1

    speedup = off_seconds / on_seconds if on_seconds else float("inf")
    payload = {
        "replicas": REPLICAS,
        "repeats": REPEATS,
        "skeleton": "msi-small",
        "rows": [
            {
                "config": "orbit-cache-off",
                "seconds": round(off_seconds, 4),
                "states_per_check": off_results[0][0].stats.states_visited,
            },
            {
                "config": "orbit-cache-on",
                "seconds": round(on_seconds, 4),
                "states_per_check": on_results[0][0].stats.states_visited,
                "cache_hits_last_check": last_on.stats.canon_cache_hits,
                "cache_size": last_on.stats.canon_cache_size,
            },
        ],
        "speedup_cache_on": round(speedup, 3),
    }
    update_bench_json("single_candidate", payload)
    sys.__stdout__.write(
        f"\nBENCH_mc.json updated: orbit cache speedup {speedup:.2f}x "
        f"({off_seconds:.3f}s -> {on_seconds:.3f}s over {REPEATS} checks)\n"
    )
    sys.__stdout__.flush()
    benchmark.extra_info.update(payload)

    # Generous floor: the acceptance target is >= 1.3x, but wall-clock on a
    # loaded CI box is noisy, so only sanity-assert the cache isn't a loss.
    assert speedup > 1.0


def _workload_payload(protocol_factory, skeleton_name, benchmark):
    """Verify + synthesis wall-clock for one of the new workloads.

    Single-threaded sequential numbers only, so they are meaningful on a
    1-CPU container — no cpu_count gating needed.  (Any multi-worker
    speedup rows belong in ``BENCH_dist.json`` and must stay gated on
    ``os.cpu_count() >= 4``.)
    """
    verify_rows = []
    for replicas in (2, 3):
        start = time.perf_counter()
        result = BfsExplorer(protocol_factory(replicas)).run()
        seconds = time.perf_counter() - start
        assert result.verdict is Verdict.SUCCESS
        verify_rows.append(
            {
                "replicas": replicas,
                "states": result.stats.states_visited,
                "seconds": round(seconds, 4),
            }
        )

    def synth_run():
        return SynthesisEngine(build_skeleton(skeleton_name), SynthesisConfig()).run()

    report = run_once(benchmark, synth_run)
    assert report.solutions
    return {
        "verify": verify_rows,
        "synthesis": {
            "skeleton": skeleton_name,
            "replicas": 2,
            "holes": report.hole_count,
            "evaluated": report.evaluated,
            "solutions": len(report.solutions),
            "seconds": round(report.elapsed_seconds, 4),
        },
    }


def test_moesi_workload(benchmark):
    """MOESI verify + hallmark-skeleton synthesis numbers."""
    from repro.protocols.moesi import build_moesi_system

    payload = _workload_payload(build_moesi_system, "moesi-small", benchmark)
    update_bench_json("moesi", payload)
    benchmark.extra_info.update(payload)


def test_german_workload(benchmark):
    """German-protocol verify + upgrade-race-skeleton synthesis numbers."""
    from repro.protocols.german import build_german_system

    payload = _workload_payload(build_german_system, "german-small", benchmark)
    update_bench_json("german", payload)
    benchmark.extra_info.update(payload)


def test_por_reduction(benchmark):
    """Partial-order reduction on/off: states visited and wall-clock.

    Single-threaded rows only (no cpu_count gating).  The POR runs share
    one system per workload so the one-time footprint probe is amortised
    the way a synthesis run (or any repeated checking of one system)
    amortises it; the recorded seconds *include* that probe.

    Honesty note: with symmetry reduction already folding replica
    permutations, POR's remaining win at catalog sizes is measured at
    ~9-22% of states depending on the protocol (MOESI/MESI/German reduce
    best; MSI's directory-collected invalidation acks serialise its
    replicas and leave only a few percent at 3 caches).  The ISSUE's
    aspirational >= 30% did not survive contact with the measurements;
    the floors asserted below are the deterministic measured values with
    a safety margin.
    """
    from repro.core.engine import SynthesisObserver
    from repro.mc.kernel import make_explorer
    from repro.protocols.catalog import PROTOCOL_BUILDERS

    por_repeats = 3
    verify_rows = []
    for name, replicas in (("msi", 2), ("mesi", 2), ("moesi", 2), ("german", 2)):
        builder = PROTOCOL_BUILDERS[name]

        # Both sides share one system across repeats so the orbit cache
        # is equally warm; the timing isolates POR itself (probe included).
        off_system = builder(replicas)
        start = time.perf_counter()
        for _ in range(por_repeats):
            off = make_explorer("bfs", off_system).run()
        off_seconds = time.perf_counter() - start

        shared = builder(replicas)
        start = time.perf_counter()
        for _ in range(por_repeats):
            on = make_explorer("bfs", shared, partial_order=True).run()
        on_seconds = time.perf_counter() - start

        assert off.verdict is Verdict.SUCCESS
        assert on.verdict is Verdict.SUCCESS
        assert on.stats.states_visited <= off.stats.states_visited
        reduction = 1.0 - on.stats.states_visited / off.stats.states_visited
        verify_rows.append(
            {
                "protocol": name,
                "replicas": replicas,
                "states_off": off.stats.states_visited,
                "states_on": on.stats.states_visited,
                "states_reduction": round(reduction, 4),
                "seconds_off": round(off_seconds, 4),
                "seconds_on_incl_probe": round(on_seconds, 4),
                "ample_states": on.stats.ample_states,
                "rules_deferred": on.stats.por_rules_skipped,
            }
        )

    class StateTotal(SynthesisObserver):
        """Sums states visited across every dispatched candidate run."""

        def __init__(self):
            self.states = 0

        def on_run(self, run_index, vector, result, holes):
            self.states += result.stats.states_visited

    synth_rows = []
    for skeleton_name in ("moesi-small", "german-small"):
        off_total = StateTotal()
        start = time.perf_counter()
        off_report = SynthesisEngine(
            build_skeleton(skeleton_name),
            SynthesisConfig(partial_order=False),
            off_total,
        ).run()
        off_seconds = time.perf_counter() - start

        on_total = StateTotal()
        start = time.perf_counter()
        on_report = SynthesisEngine(
            build_skeleton(skeleton_name),
            SynthesisConfig(partial_order=True),
            on_total,
        ).run()
        on_seconds = time.perf_counter() - start

        assert sorted(
            frozenset(s.assignment) for s in on_report.solutions
        ) == sorted(frozenset(s.assignment) for s in off_report.solutions)
        assert on_total.states <= off_total.states
        synth_rows.append(
            {
                "skeleton": skeleton_name,
                "replicas": 2,
                "solutions": len(on_report.solutions),
                "candidate_states_off": off_total.states,
                "candidate_states_on": on_total.states,
                "states_reduction": round(
                    1.0 - on_total.states / off_total.states, 4
                ),
                "seconds_off": round(off_seconds, 4),
                "seconds_on_incl_probe": round(on_seconds, 4),
                "rules_deferred": on_report.por_rules_skipped,
            }
        )

    payload = {
        "repeats": por_repeats,
        "verify": verify_rows,
        "synthesis": synth_rows,
    }
    update_bench_json("por", payload)
    by_name = {row["protocol"]: row["states_reduction"] for row in verify_rows}
    sys.__stdout__.write(
        "\nBENCH_mc.json updated: POR states reduction "
        + ", ".join(f"{k} {v:.1%}" for k, v in by_name.items())
        + "\n"
    )
    sys.__stdout__.flush()
    benchmark.extra_info.update(payload)

    # Deterministic state counts -> tight-but-safe floors.
    assert by_name["moesi"] >= 0.15
    assert by_name["mesi"] >= 0.10
    assert by_name["german"] >= 0.10
    assert by_name["msi"] >= 0.08
    # Candidate checks are dominated by failing completions that die on a
    # short counterexample before much interleaving exists, so synthesis
    # reduction is small-but-real; verify-style repeated checking of a
    # correct system is where POR earns its keep.
    for row in synth_rows:
        assert row["states_reduction"] >= 0.01, row


def test_packed_kernel_speedup(benchmark):
    """Packed-state kernel on/off on the single-candidate check.

    Same workload shape as the ``single_candidate`` section (MSI-small at
    3 replicas, reference completion, orbit cache on for the object
    baseline), single-threaded, so the rows are directly comparable.
    Two packed numbers are recorded because the kernel's economics are
    cold-vs-warm: the first check pays for guard evaluation, rule
    firings, and canonical scans, all of which are memoised in the
    per-system slab, so later checks of the same system — the shape of
    every synthesis pass — replay them as dictionary hits.  The
    acceptance gate (>= 5x, target >= 10x) is on the steady state.

    Correctness gates the measurement: identical verdicts and identical
    states per check, and the packed run must actually engage the packed
    runtime (no silent object-path fallback).
    """
    from repro.mc.kernel import make_explorer

    _, (skel, object_system) = make_systems()
    object_seconds, object_results = check_candidates(skel, object_system)
    for result, _ in object_results:
        assert result.verdict is Verdict.SUCCESS

    packed_skel = msi_small(REPLICAS)
    packed_system = packed_skel.system
    resolver = make_resolver(packed_skel)

    def packed_checks(repeats=REPEATS):
        results = []
        start = time.perf_counter()
        for _ in range(repeats):
            explorer = make_explorer(
                "bfs", packed_system, resolver=resolver, packed=True
            )
            assert explorer.packed_runtime is not None
            results.append(explorer.run())
        return time.perf_counter() - start, results

    cold_seconds, cold_results = packed_checks()

    def steady_run():
        return packed_checks()

    steady_seconds, steady_results = run_once(benchmark, steady_run)

    object_states = object_results[0][0].stats.states_visited
    for result in cold_results + steady_results:
        assert result.verdict is Verdict.SUCCESS
        assert result.stats.states_visited == object_states

    object_per_check = object_seconds / REPEATS
    steady_per_check = steady_seconds / REPEATS
    cold_speedup = object_seconds / cold_seconds if cold_seconds else float("inf")
    steady_speedup = (
        object_per_check / steady_per_check if steady_per_check else float("inf")
    )
    payload = {
        "replicas": REPLICAS,
        "repeats": REPEATS,
        "skeleton": "msi-small",
        "rows": [
            {
                "config": "packed-off (orbit cache on)",
                "seconds": round(object_seconds, 4),
                "states_per_check": object_states,
            },
            {
                "config": "packed-on (incl. cold first check)",
                "seconds": round(cold_seconds, 4),
                "states_per_check": cold_results[0].stats.states_visited,
            },
            {
                "config": "packed-on (steady state)",
                "seconds": round(steady_seconds, 4),
                "states_per_check": steady_results[0].stats.states_visited,
            },
        ],
        "speedup_packed_cold": round(cold_speedup, 3),
        "speedup_packed_steady": round(steady_speedup, 3),
    }
    update_bench_json("packed", payload)
    sys.__stdout__.write(
        f"\nBENCH_mc.json updated: packed kernel speedup "
        f"{steady_speedup:.2f}x steady ({object_per_check * 1000:.2f}ms -> "
        f"{steady_per_check * 1000:.2f}ms/check), {cold_speedup:.2f}x "
        f"incl. cold start\n"
    )
    sys.__stdout__.flush()
    benchmark.extra_info.update(payload)

    # The acceptance gate.  Measured ~16x steady-state on the dev
    # container; assert the >= 5x floor so a loaded CI box has headroom.
    assert steady_speedup >= 5.0
    # The cold first check must still not be a loss overall.
    assert cold_speedup > 1.0


def test_telemetry_overhead(benchmark, tmp_path):
    """Telemetry on/off on the single-candidate check (satellite of the
    observability PR).

    Single-threaded, same workload as the orbit-cache bench (MSI-small at
    3 replicas, reference completion, cached canonicaliser), so the
    ``telemetry-off`` row is directly comparable to the seed-recorded
    ``single_candidate`` section — the tier-1 guard in
    ``tests/obs/test_overhead_guard.py`` checks exactly that ratio.  The
    ``telemetry-on`` row measures the full bundle: metrics registry,
    kernel phase timings, and a JSONL trace on disk.

    Correctness gates the measurement: both sides must visit identical
    state counts (telemetry is pure observation).
    """
    from repro.mc.kernel import make_explorer
    from repro.obs import Telemetry

    _, (skel, system) = make_systems()
    resolver = make_resolver(skel)
    trials = 3

    def timed_checks(telemetry=None):
        results = []
        start = time.perf_counter()
        for _ in range(REPEATS):
            explorer = make_explorer(
                "bfs", system, resolver=resolver, telemetry=telemetry
            )
            results.append(explorer.run())
        return time.perf_counter() - start, results

    # Interleave off/on trials so drift (cache warmth, CPU frequency)
    # hits both sides equally; keep the min of each.
    off_seconds, on_seconds = float("inf"), float("inf")
    off_results = on_results = None
    tele = Telemetry.create(trace_path=str(tmp_path / "bench.jsonl"))
    for trial in range(trials):
        seconds, results = timed_checks()
        if seconds < off_seconds:
            off_seconds, off_results = seconds, results

        def instrumented_run():
            return timed_checks(tele)

        if trial == trials - 1:
            seconds, results = run_once(benchmark, instrumented_run)
        else:
            seconds, results = instrumented_run()
        if seconds < on_seconds:
            on_seconds, on_results = seconds, results
    trace_events = tele.events_written
    tele.close()

    for off_res, on_res in zip(off_results, on_results):
        assert off_res.verdict is Verdict.SUCCESS
        assert on_res.verdict is Verdict.SUCCESS
        assert on_res.stats.states_visited == off_res.stats.states_visited

    overhead = on_seconds / off_seconds - 1.0 if off_seconds else 0.0
    payload = {
        "replicas": REPLICAS,
        "repeats": REPEATS,
        "trials": trials,
        "skeleton": "msi-small",
        "rows": [
            {
                "config": "telemetry-off",
                "seconds": round(off_seconds, 4),
                "states_per_check": off_results[0].stats.states_visited,
            },
            {
                "config": "telemetry-on (metrics + jsonl trace)",
                "seconds": round(on_seconds, 4),
                "states_per_check": on_results[0].stats.states_visited,
                "trace_events": trace_events,
            },
        ],
        "overhead_on_vs_off": round(overhead, 4),
    }
    update_bench_json("telemetry", payload)
    sys.__stdout__.write(
        f"\nBENCH_mc.json updated: telemetry overhead {overhead:+.1%} "
        f"({off_seconds:.3f}s off -> {on_seconds:.3f}s on over "
        f"{REPEATS} checks)\n"
    )
    sys.__stdout__.flush()
    benchmark.extra_info.update(payload)

    # Tracing every span/phase of a sub-second check is allowed to cost
    # real percentage points; it must not multiply the run.
    assert on_seconds < off_seconds * 2.0


def test_family_scheduler_workload(benchmark):
    """Family-based synthesis on/off: checks dispatched and wall-clock.

    Single-threaded sequential rows, so they are meaningful on a 1-CPU
    container.  Correctness gates the measurement: both schedulers must
    find the identical solution set.

    Honesty note: under the kernel's wildcard-cut semantics, conflict
    generalisation already prunes 1-by-1 everything a family FAILURE
    verdict prunes (both derive from the same trace-replay certificate),
    so family mode does *not* reduce check counts on fine-grained
    workloads — on MSI-small it performs ~1.3x the reference's checks
    and the recorded row says so.  What it buys is coverage per check
    (``family_candidates_avoided``: members settled by a terminal
    quotient verdict without their own run), which dominates on
    coarse-structured spaces like the eviction skeleton.  The floors
    below guard exactly that shape: real avoidance on msi-evict, and a
    bounded quotient-to-reference ratio so a broken split heuristic
    (which would explode interior checks) fails the bench.
    """
    targets = ["msi-evict"]
    if small_enabled():
        targets.append("msi-small")

    rows = []
    for index, skeleton_name in enumerate(targets):
        without = SynthesisEngine(
            build_skeleton(skeleton_name), SynthesisConfig()
        ).run()

        def family_run(name=skeleton_name):
            return SynthesisEngine(
                build_skeleton(name), SynthesisConfig(family=True)
            ).run()

        with_family = run_once(benchmark, family_run) if index == 0 else family_run()

        # Correctness before counts: identical solution sets.
        def view(report):
            return sorted(
                tuple(sorted(s.assignment)) for s in report.solutions
            )

        assert view(with_family) == view(without)
        assert with_family.family and not without.family

        rows.append(
            {
                "skeleton": skeleton_name,
                "replicas": 2,
                "solutions": len(without.solutions),
                "evaluated_without": without.evaluated,
                "seconds_without": round(without.elapsed_seconds, 3),
                "evaluated_with": with_family.evaluated,
                "seconds_with": round(with_family.elapsed_seconds, 3),
                "family_checked": with_family.family_checked,
                "family_splits": with_family.family_splits,
                "family_max_split_depth": with_family.family_max_split_depth,
                "family_candidates_avoided": (
                    with_family.family_candidates_avoided
                ),
                "quotient_ratio": round(
                    with_family.evaluated / without.evaluated, 3
                ),
            }
        )

    payload = {"rows": rows}
    update_bench_json("family", payload)
    sys.__stdout__.write(
        "\nBENCH_mc.json updated: family scheduler "
        + ", ".join(
            f"{row['skeleton']} {row['evaluated_without']} -> "
            f"{row['evaluated_with']} checks "
            f"({row['family_candidates_avoided']} avoided)"
            for row in rows
        )
        + "\n"
    )
    sys.__stdout__.flush()
    benchmark.extra_info.update(payload)

    by_name = {row["skeleton"]: row for row in rows}
    # Measured 1,155 avoided on the dev container; wide floor for noise
    # in pattern-arrival order.
    assert by_name["msi-evict"]["family_candidates_avoided"] >= 500
    # Measured ratios ~1.27 (msi-evict) and ~1.29 (msi-small).
    for row in rows:
        assert row["quotient_ratio"] <= 2.0, row


@pytest.mark.skipif(not small_enabled(), reason="VERC3_BENCH_SMALL=0")
def test_generalised_pruning_synthesis_speedup(benchmark):
    """MSI-small synthesis: conflict generalisation + prefix reuse on/off.

    Single-threaded sequential runs, so the numbers are meaningful on a
    1-CPU container.  Correctness gates the measurement: both runs must
    find byte-identical solution sets.
    """
    baseline_config = SynthesisConfig(
        generalise_conflicts=False, prefix_reuse=False
    )
    baseline = SynthesisEngine(build_skeleton("msi-small"), baseline_config).run()

    def generalised_run():
        return SynthesisEngine(build_skeleton("msi-small"), SynthesisConfig()).run()

    generalised = run_once(benchmark, generalised_run)

    # Correctness before speed: identical solutions and hole registries.
    def view(report):
        return sorted(
            (s.digits, s.assignment, s.states_visited, s.executed_holes)
            for s in report.solutions
        )

    assert view(generalised) == view(baseline)
    assert [h.name for h in generalised.holes] == [h.name for h in baseline.holes]

    candidates_reduction = 1.0 - generalised.evaluated / baseline.evaluated
    speedup = (
        baseline.elapsed_seconds / generalised.elapsed_seconds
        if generalised.elapsed_seconds
        else float("inf")
    )
    payload = {
        "skeleton": "msi-small",
        "replicas": 2,
        "solutions": len(generalised.solutions),
        "rows": [
            {
                "config": "baseline (full-width patterns, cold explorations)",
                "seconds": round(baseline.elapsed_seconds, 3),
                "evaluated": baseline.evaluated,
                "failure_patterns": baseline.failure_patterns,
            },
            {
                "config": "generalise-conflicts + prefix-reuse",
                "seconds": round(generalised.elapsed_seconds, 3),
                "evaluated": generalised.evaluated,
                "failure_patterns": generalised.failure_patterns,
                "prefix_cache_hits": generalised.prefix_cache_hits,
                "prefix_states_reused": generalised.prefix_states_reused,
                "prefix_cache_builds": generalised.prefix_cache_builds,
            },
        ],
        "candidates_reduction": round(candidates_reduction, 4),
        "speedup": round(speedup, 3),
    }
    update_bench_json("synthesis", payload)
    sys.__stdout__.write(
        f"\nBENCH_mc.json updated: generalised synthesis "
        f"{baseline.evaluated} -> {generalised.evaluated} candidates "
        f"({candidates_reduction:.1%} fewer), "
        f"{baseline.elapsed_seconds:.1f}s -> "
        f"{generalised.elapsed_seconds:.1f}s ({speedup:.2f}x)\n"
    )
    sys.__stdout__.flush()
    benchmark.extra_info.update(payload)

    # The acceptance criterion: measurably fewer candidates checked AND a
    # wall-clock win.  Both margins are wide (≈25% and ≈3x on the dev
    # container), so assert conservatively for noisy CI boxes.
    assert generalised.evaluated < baseline.evaluated
    assert speedup > 1.0
