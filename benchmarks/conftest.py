"""Shared benchmark helpers.

Conventions:

* every benchmark runs its workload exactly once via ``benchmark.pedantic``
  (synthesis runs are long; statistical repetition is meaningless at this
  scale) and attaches the paper's Table I counters via
  ``benchmark.extra_info``;
* expensive configurations are opt-in through environment variables:
  ``VERC3_BENCH_SMALL=0`` skips the minute-scale MSI-small rows,
  ``VERC3_BENCH_LARGE=1`` enables the MSI-large rows (tens of minutes),
  ``VERC3_BENCH_CACHES`` overrides the cache count (default 2; the paper's
  testbed used more but CPython pays ~5x per extra cache).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.stats import sample_candidate_cost  # noqa: F401 (re-export)
from repro.core.report import SynthesisReport

_BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(config, items):
    """Mark everything under benchmarks/ with ``bench``.

    The tier-1 CI job deselects these with ``-m "not bench"`` so its
    timing guard measures only the functional suite; a separate
    non-blocking step runs the benches.
    """
    for item in items:
        if str(item.fspath).startswith(_BENCH_DIR):
            item.add_marker(pytest.mark.bench)


def env_flag(name: str, default: bool) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "no", "")


def bench_caches() -> int:
    return int(os.environ.get("VERC3_BENCH_CACHES", "2"))


def small_enabled() -> bool:
    return env_flag("VERC3_BENCH_SMALL", True)


def large_enabled() -> bool:
    return env_flag("VERC3_BENCH_LARGE", False)


def attach_report(benchmark, report: SynthesisReport, configuration: str) -> None:
    """Record the Table I columns on the benchmark JSON."""
    benchmark.extra_info.update(
        {
            "configuration": configuration,
            "holes": report.hole_count,
            "candidates": report.candidate_space,
            "pruning_patterns": report.failure_patterns if report.pruning else None,
            "evaluated": report.evaluated,
            "solutions": len(report.solutions),
            "exec_seconds": round(report.elapsed_seconds, 3),
            "reduction_vs_naive": round(report.reduction_vs_naive, 5),
        }
    )


def run_once(benchmark, fn):
    """Run a workload exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session")
def table1_rows():
    """Session-collected Table I rows, printed at the end of the run.

    The print bypasses pytest's capture (the fixture finalises before the
    terminal summary) and the table is also persisted next to the repo so
    EXPERIMENTS.md can reference a concrete artefact.
    """
    rows = []
    yield rows
    if rows:
        import sys

        from repro.analysis.tables import format_table

        text = "=== Table I (reproduced) ===\n" + format_table(rows) + "\n"
        sys.__stdout__.write("\n\n" + text)
        sys.__stdout__.flush()
        with open("table1_output.txt", "w") as handle:
            handle.write(text)


@pytest.fixture(scope="session")
def dist_bench_rows():
    """Session-collected backend-comparison rows, persisted as
    ``BENCH_dist.json`` so future PRs can track the perf trajectory.

    Each row: skeleton, backend, workers, cpu_count, seconds, evaluated,
    solutions.  Rows tagged ``section="memo_warm"`` (the verdict-store
    cold/warm pair) land in their own top-level section with a derived
    ``model_check_fraction``; for the backend rows the teardown derives
    ``speedup_vs_sequential`` per skeleton where a sequential row exists.
    CPU counts ride both per-row and in the header — speedups on
    single-core CI boxes are noise, and downstream consumers must be able
    to tell.
    """
    rows = []
    yield rows
    if not rows:
        return
    import json
    import sys

    memo_rows, backend_rows = [], []
    for row in rows:
        section = row.pop("section", None)
        (memo_rows if section == "memo_warm" else backend_rows).append(row)
    sequential_seconds = {
        row["skeleton"]: row["seconds"]
        for row in backend_rows
        if row["backend"] == "sequential"
    }
    for row in backend_rows:
        base = sequential_seconds.get(row["skeleton"])
        if base and row["seconds"]:
            row["speedup_vs_sequential"] = round(base / row["seconds"], 3)
    cold_checks = {
        row["skeleton"]: row["model_checks"]
        for row in memo_rows
        if row.get("phase") == "cold"
    }
    for row in memo_rows:
        base = cold_checks.get(row["skeleton"])
        if base:
            row["model_check_fraction"] = round(row["model_checks"] / base, 5)
    payload = {
        "cpu_count": os.cpu_count(),
        "caches": bench_caches(),
        "rows": backend_rows,
        "memo_warm": memo_rows,
    }
    with open("BENCH_dist.json", "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    sys.__stdout__.write(
        f"\nBENCH_dist.json written ({len(rows)} rows, "
        f"{os.cpu_count()} CPUs)\n"
    )
    sys.__stdout__.flush()
