"""Figure 3 / Section III state-space numbers: model checking the protocols.

The paper reports 5207 / 6025 / 6332 visited states for verified solutions
of its MSI protocol (richer than ours — evictions and requestor-collected
acks; our reference protocol's counts are recorded in EXPERIMENTS.md).
This benchmark measures the embedded model checker itself: visited states,
throughput (states/second), and the effect of symmetry reduction — the
facility the paper argues is cheap in explicit-state tools.
"""

import pytest

from benchmarks.conftest import bench_caches, run_once
from repro.mc.bfs import BfsExplorer
from repro.mc.result import Verdict
from repro.protocols.msi.system import build_msi_system
from repro.protocols.mutex import build_mutex_system
from repro.protocols.vi import build_vi_system


@pytest.mark.parametrize("n_caches", [1, 2, 3])
def test_msi_reference_exploration(benchmark, n_caches):
    result = run_once(
        benchmark, lambda: BfsExplorer(build_msi_system(n_caches)).run()
    )
    assert result.verdict is Verdict.SUCCESS
    benchmark.extra_info.update(
        {
            "protocol": "msi-reference",
            "caches": n_caches,
            "states": result.stats.states_visited,
            "transitions": result.stats.transitions_fired,
        }
    )


@pytest.mark.parametrize("symmetry", [True, False])
def test_msi_symmetry_ablation(benchmark, symmetry):
    """Symmetry reduction ablation (Ip & Dill): states and wall-clock."""
    n_caches = max(bench_caches(), 3)
    result = run_once(
        benchmark,
        lambda: BfsExplorer(build_msi_system(n_caches, symmetry=symmetry)).run(),
    )
    assert result.verdict is Verdict.SUCCESS
    benchmark.extra_info.update(
        {
            "protocol": "msi-reference",
            "caches": n_caches,
            "symmetry": symmetry,
            "states": result.stats.states_visited,
        }
    )


def test_msi_symmetry_state_reduction_shape():
    """The reduction factor approaches n! as replicas grow."""
    reduced = BfsExplorer(build_msi_system(3, symmetry=True)).run()
    full = BfsExplorer(build_msi_system(3, symmetry=False)).run()
    factor = full.stats.states_visited / reduced.stats.states_visited
    assert factor > 2.0  # n! = 6 is the ceiling; transients keep it below


@pytest.mark.parametrize(
    "name,factory",
    [("vi", build_vi_system), ("mutex", build_mutex_system)],
)
def test_dsl_protocol_exploration(benchmark, name, factory):
    result = run_once(benchmark, lambda: BfsExplorer(factory(3)).run())
    assert result.verdict is Verdict.SUCCESS
    benchmark.extra_info.update(
        {"protocol": name, "procs": 3, "states": result.stats.states_visited}
    )


@pytest.mark.parametrize("evictions", [False, True])
def test_msi_eviction_extension_exploration(benchmark, evictions):
    result = run_once(
        benchmark, lambda: BfsExplorer(build_msi_system(3, evictions=evictions)).run()
    )
    assert result.verdict is Verdict.SUCCESS
    benchmark.extra_info.update(
        {"protocol": "msi", "evictions": evictions,
         "states": result.stats.states_visited}
    )


def test_mesi_exploration(benchmark):
    from repro.protocols.mesi import build_mesi_system

    result = run_once(benchmark, lambda: BfsExplorer(build_mesi_system(3)).run())
    assert result.verdict is Verdict.SUCCESS
    benchmark.extra_info.update(
        {"protocol": "mesi", "caches": 3, "states": result.stats.states_visited}
    )
