"""Section II "Parallel Synthesis": thread scaling (algorithmic repro).

The paper reports 1.5x (MSI-small) and 2.5x (MSI-large) wall-clock gains at
4 threads, plus slightly *fewer* evaluated candidates because threads share
freshly recorded pruning patterns.  CPython's GIL caps our wall-clock gains
(DESIGN.md substitution 2); the algorithmic effects — identical solutions,
shared-pattern savings — are asserted here, and both wall-clock and
evaluated counts are recorded for EXPERIMENTS.md.  For the backend that
can deliver the paper's wall-clock speedups, see ``test_bench_dist.py``
(process-parallel, :mod:`repro.dist`).
"""

import pytest

from benchmarks.conftest import attach_report, bench_caches, run_once, small_enabled
from repro.core import SynthesisEngine
from repro.core.parallel import ParallelSynthesisEngine
from repro.protocols.msi import msi_small, msi_tiny
from repro.protocols.vi import build_vi_skeleton


@pytest.mark.parametrize("threads", [1, 2, 4])
def test_vi_thread_scaling(benchmark, threads):
    report = run_once(
        benchmark,
        lambda: ParallelSynthesisEngine(
            build_vi_skeleton(2)[0], threads=threads
        ).run(),
    )
    attach_report(benchmark, report, f"vi, {threads} threads, pruning")
    assert report.solutions


@pytest.mark.parametrize("threads", [1, 2, 4])
def test_msi_tiny_thread_scaling(benchmark, threads):
    report = run_once(
        benchmark,
        lambda: ParallelSynthesisEngine(
            msi_tiny(bench_caches()).system, threads=threads
        ).run(),
    )
    attach_report(benchmark, report, f"MSI-tiny, {threads} threads, pruning")
    assert report.solutions


@pytest.mark.skipif(not small_enabled(), reason="VERC3_BENCH_SMALL=0")
def test_msi_small_shared_patterns(benchmark):
    """Threads must find the same solutions as the sequential engine; the
    evaluated count may differ slightly (shared patterns change evaluation
    order), mirroring Table I's 855-vs-825."""
    sequential = SynthesisEngine(msi_small(bench_caches()).system).run()
    report = run_once(
        benchmark,
        lambda: ParallelSynthesisEngine(
            msi_small(bench_caches()).system, threads=4
        ).run(),
    )
    attach_report(benchmark, report, "MSI-small, 4 threads, pruning")
    benchmark.extra_info["sequential_evaluated"] = sequential.evaluated
    assert {s.digits for s in report.solutions} == {
        s.digits for s in sequential.solutions
    }
