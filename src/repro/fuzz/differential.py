"""The differential oracle: one spec against the configuration lattice.

Every generated protocol is pushed through a lattice of configurations —
{packed, POR, symmetry, prefix reuse, generalise, family} x {bfs, dfs} x
{sequential, threads, processes} — and the runs are compared against each
other under the *promises each mode actually makes*:

* **verdicts** are compared across every configuration, always: the
  reference completion must verify and the seeded bug completion must
  fail everywhere (and its counterexample must replay step by step);
* **state/transition/attempt counts** are compared within groups that
  promise count-exactness — packed on/off and bfs/dfs agree on complete
  explorations, but POR visits fewer states (checked as ``<=``) and
  symmetry-off visits more, so those form their own groups;
* **solution sets** (as hole-name -> action-name assignment sets) are
  compared across every synthesis configuration, always;
* **solution fingerprints** (visited-set hashes) are compared within
  groups sharing a state space — POR and symmetry-off legitimately
  change the visited set;
* **evaluated counts** are compared only where enumeration order and
  pruning-pattern content are promised identical (the packed and
  prefix-reuse toggles).

Candidate evaluations flow through
:meth:`repro.core.engine.SynthesisCore.evaluate` — the same single
verdict path the sequential, thread, and process backends share — so a
divergence here is a real engine divergence, not a harness artifact.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.candidate import CandidateVector
from repro.core.engine import SynthesisConfig, SynthesisCore, SynthesisEngine
from repro.core.parallel import ParallelSynthesisEngine
from repro.fuzz.spec import (
    ProtocolSpec,
    build_reference_system,
    build_skeleton_from_spec,
    resolver_for_assignment,
    spec_payload,
)
from repro.mc.context import ExecutionContext
from repro.mc.kernel import make_explorer
from repro.mc.result import VerificationResult

# -- lattice configurations ---------------------------------------------------


@dataclass(frozen=True)
class KernelConfig:
    """One verify/bug-replay configuration (kernel level, no backend)."""

    name: str
    explorer: str = "bfs"
    packed: bool = True
    partial_order: bool = False
    symmetry: bool = True

    @property
    def counts_group(self) -> Optional[str]:
        """Configs sharing a group promise identical complete-run counts.

        POR runs promise only ``states <= baseline`` (checked against the
        same-symmetry full group), so they carry no group of their own.
        """
        if self.partial_order:
            return None
        return "sym" if self.symmetry else "nosym"

    @property
    def failure_group(self) -> Optional[str]:
        """Counts at a *failure* stop depend on visit order, so groups
        additionally pin the frontier strategy."""
        if self.partial_order:
            return None
        return f"{self.explorer}:{'sym' if self.symmetry else 'nosym'}"


@dataclass(frozen=True)
class SynthLatticeConfig:
    """One synthesis configuration (engine + backend level).

    ``store`` is a verdict-store *tag*: configs sharing a tag share one
    store directory for the duration of a spec sweep, in list order —
    so a recording config listed before a same-tag config makes the
    latter a warm (replaying) run.  The store promises verdict-for-
    verdict equivalence, so every cross-config comparison below applies
    to store configs unchanged; sequential warm runs additionally
    promise zero model checks.
    """

    name: str
    backend: str = "sequential"
    workers: int = 2
    explorer: str = "bfs"
    packed: bool = True
    partial_order: bool = False
    symmetry: bool = True
    prefix_reuse: bool = True
    generalise: bool = True
    family: bool = False
    store: str = ""

    @property
    def evaluated_exact(self) -> bool:
        """Whether ``report.evaluated`` must equal the reference's.

        Only the packed and prefix-reuse toggles promise this: a
        different explorer or backend changes hole-discovery and
        pattern-arrival order, POR changes counterexample traces (and so
        generalised patterns), disabling generalisation changes the
        patterns themselves, and family mode checks quotients rather
        than candidates (its promise is the solution *set*, pinned
        unconditionally below, never the run count).
        """
        return (
            self.backend == "sequential"
            and self.explorer == "bfs"
            and self.symmetry
            and not self.partial_order
            and self.generalise
            and not self.family
        )

    @property
    def fingerprint_group(self) -> Tuple[bool, bool]:
        """Configs sharing (symmetry, POR) share per-solution visited sets."""
        return (self.symmetry, self.partial_order)

    @property
    def deterministic(self) -> bool:
        """Whether ``evaluated`` is reproducible run to run (journal use).

        The thread and process backends share pruning patterns with
        timing-dependent reach, so their evaluated counts may vary
        between runs even at a fixed seed.
        """
        return self.backend == "sequential"


@dataclass(frozen=True)
class Lattice:
    """A named set of kernel and synthesis configurations.

    The first entry of each list is the comparison reference and must be
    the all-promises configuration (bfs, packed, symmetric, no POR).
    """

    name: str
    verify: Tuple[KernelConfig, ...]
    synth: Tuple[SynthLatticeConfig, ...]


def ablation_lattice() -> Lattice:
    """The default lattice: the reference plus one-factor ablations and a
    few combined corners — every acceleration is pinned against the shared
    reference without paying for the full cartesian product."""
    return Lattice(
        "ablation",
        verify=(
            KernelConfig("ref"),
            KernelConfig("nopacked", packed=False),
            KernelConfig("dfs", explorer="dfs"),
            KernelConfig("dfs-nopacked", explorer="dfs", packed=False),
            KernelConfig("por", partial_order=True),
            KernelConfig("por-dfs", explorer="dfs", partial_order=True),
            KernelConfig("nosym", symmetry=False),
            KernelConfig("nosym-nopacked", symmetry=False, packed=False),
        ),
        synth=(
            SynthLatticeConfig("ref"),
            SynthLatticeConfig("nopacked", packed=False),
            SynthLatticeConfig("dfs", explorer="dfs"),
            SynthLatticeConfig("threads", backend="threads"),
            SynthLatticeConfig("processes", backend="processes"),
            SynthLatticeConfig("por", partial_order=True),
            SynthLatticeConfig("nosym", symmetry=False),
            SynthLatticeConfig("noreuse", prefix_reuse=False),
            SynthLatticeConfig("nogen", generalise=False),
            SynthLatticeConfig(
                "bare", packed=False, prefix_reuse=False, generalise=False
            ),
            SynthLatticeConfig("por-dfs", explorer="dfs", partial_order=True),
            SynthLatticeConfig(
                "processes-dfs", backend="processes", explorer="dfs"
            ),
            # Family-based synthesis: the scheduler promises the exact
            # solution set (and per-solution fingerprints) of the 1-by-1
            # enumeration, alone and composed with every acceleration
            # toggle and backend.
            SynthLatticeConfig("family", family=True),
            SynthLatticeConfig(
                "family-nopacked", family=True, packed=False
            ),
            SynthLatticeConfig("family-por", family=True, partial_order=True),
            SynthLatticeConfig("family-nosym", family=True, symmetry=False),
            SynthLatticeConfig("family-threads", family=True, backend="threads"),
            SynthLatticeConfig(
                "family-processes", family=True, backend="processes"
            ),
            # The verdict store: a cold recording run must behave
            # exactly like the reference, and the same-tag run after it
            # replays warm — still pinned against every promise above.
            # The processes pair drives recording and replay through
            # the work-stealing shard path.
            SynthLatticeConfig("store", store="seq"),
            SynthLatticeConfig("store-warm", store="seq"),
            SynthLatticeConfig("store-processes", backend="processes", store="dist"),
            SynthLatticeConfig(
                "store-processes-warm", backend="processes", store="dist"
            ),
        ),
    )


def full_lattice() -> Lattice:
    """The cartesian corners: every backend x explorer x packed (x POR for
    the kernel side).  Opt in for small ``--count`` runs; the ablation
    lattice covers the same promises at a fraction of the cost."""
    verify = [
        KernelConfig(
            f"{explorer}{'' if packed else '-nopacked'}"
            f"{'-por' if por else ''}{'' if sym else '-nosym'}",
            explorer=explorer, packed=packed, partial_order=por, symmetry=sym,
        )
        for sym in (True, False)
        for por in (False, True)
        for explorer in ("bfs", "dfs")
        for packed in (True, False)
        if not (por and not sym)  # POR x nosym adds no distinct promise
    ]
    synth = [
        SynthLatticeConfig(
            f"{backend}-{explorer}{'' if packed else '-nopacked'}",
            backend=backend, explorer=explorer, packed=packed,
        )
        for backend in ("sequential", "threads", "processes")
        for explorer in ("bfs", "dfs")
        for packed in (True, False)
    ] + [
        SynthLatticeConfig("por", partial_order=True),
        SynthLatticeConfig("por-dfs", explorer="dfs", partial_order=True),
        SynthLatticeConfig("nosym", symmetry=False),
        SynthLatticeConfig("noreuse", prefix_reuse=False),
        SynthLatticeConfig("nogen", generalise=False),
    ]
    return Lattice("full", tuple(verify), tuple(synth))


def tier1_lattice() -> Lattice:
    """The corpus-replay lattice: sequential-only, seconds per spec, so the
    checked-in corpus fits tier-1's time guard."""
    return Lattice(
        "tier1",
        verify=(
            KernelConfig("ref"),
            KernelConfig("nopacked", packed=False),
            KernelConfig("dfs", explorer="dfs"),
        ),
        synth=(
            SynthLatticeConfig("ref"),
            SynthLatticeConfig("nopacked", packed=False),
            SynthLatticeConfig("dfs", explorer="dfs"),
            SynthLatticeConfig("noreuse", prefix_reuse=False),
            SynthLatticeConfig("family", family=True),
        ),
    )


LATTICES: Dict[str, Callable[[], Lattice]] = {
    "ablation": ablation_lattice,
    "full": full_lattice,
    "tier1": tier1_lattice,
}


# -- divergences --------------------------------------------------------------


@dataclass(frozen=True)
class Divergence:
    """One broken promise between two configurations on one spec."""

    phase: str  #: "verify" | "bug" | "synth"
    kind: str  #: "verdict" | "counts" | "solutions" | "fingerprints" | ...
    config: str  #: the diverging configuration's name
    baseline: str  #: what it was compared against ("" for absolute checks)
    detail: str

    def to_dict(self) -> Dict[str, str]:
        """JSON-able view (corpus files, journals)."""
        return {
            "phase": self.phase,
            "kind": self.kind,
            "config": self.config,
            "baseline": self.baseline,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "Divergence":
        """Parse :meth:`to_dict` output."""
        return cls(
            phase=str(data.get("phase", "")),
            kind=str(data.get("kind", "")),
            config=str(data.get("config", "")),
            baseline=str(data.get("baseline", "")),
            detail=str(data.get("detail", "")),
        )


@dataclass
class SpecCheck:
    """Everything one spec's lattice sweep produced."""

    spec: ProtocolSpec
    lattice: str
    divergences: List[Divergence] = field(default_factory=list)
    verify: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    bug: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    synth: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    solutions: List[List[List[str]]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """No divergence anywhere in the sweep."""
        return not self.divergences

    def journal_row(self) -> Dict[str, Any]:
        """A deterministic JSON row (no wall-clock, no unstable counters)."""
        return {
            "spec": self.spec.name,
            "seed": self.spec.seed,
            "lattice": self.lattice,
            "ok": self.ok,
            "verify": self.verify,
            "bug": self.bug,
            "synth": self.synth,
            "solutions": self.solutions,
            "divergences": [d.to_dict() for d in self.divergences],
        }


# -- trace replay -------------------------------------------------------------


def replay_trace(system, trace, resolver=None) -> Optional[str]:
    """Replay a counterexample against a fresh system build.

    Fires each step's named rule from the previous state and requires the
    recorded successor among the real successors, then requires the final
    state to actually violate an invariant or be a real deadlock.  Returns
    ``None`` on success or a human-readable discrepancy.
    """
    rules = {rule.name: rule for rule in system.rules}
    ctx = ExecutionContext(resolver)
    current = None
    for index, step in enumerate(trace.steps):
        if step.rule_name is None:
            if not any(step.state == s for s in system.initial_states()):
                return f"step {index}: not an initial state"
        else:
            rule = rules.get(step.rule_name)
            if rule is None:
                return f"step {index}: unknown rule {step.rule_name!r}"
            if not rule.guard(current):
                return f"step {index}: guard false for {step.rule_name!r}"
            successors = rule.fire(current, ctx)
            if not any(step.state == s for s in successors):
                return (
                    f"step {index}: recorded state is not a successor of "
                    f"{step.rule_name!r}"
                )
        current = step.state
    if current is None:
        return "empty trace"
    violated = any(not inv.holds(current) for inv in system.invariants)
    deadlocked = not any(rule.guard(current) for rule in system.rules)
    if not (violated or deadlocked):
        return "final state violates no invariant and is not a deadlock"
    return None


# -- the runner ---------------------------------------------------------------


def _result_counts(result: VerificationResult) -> Tuple[int, int, int]:
    stats = result.stats
    return (
        stats.states_visited,
        stats.transitions_fired,
        stats.rules_attempted,
    )


def _assignment_view(report) -> List[Tuple[Tuple[str, str], ...]]:
    """Order-insensitive solution-set view (mirrors the equivalence suites)."""
    return sorted(
        tuple(sorted(solution.assignment)) for solution in report.solutions
    )


def _fingerprint_view(report) -> Dict[Tuple[Tuple[str, str], ...], Any]:
    return {
        tuple(sorted(s.assignment)): s.fingerprint for s in report.solutions
    }


def _covers_reference(report, reference: Dict[str, str]) -> bool:
    """Does some solution agree with the known-good completion?

    Solutions may be partial (don't-care holes stay unassigned), so
    agreement on every assigned hole is the right containment check.
    """
    for solution in report.solutions:
        assigned = dict(solution.assignment)
        if assigned and all(
            reference.get(hole) == action for hole, action in assigned.items()
        ):
            return True
    return False


class DifferentialRunner:
    """Runs specs through a lattice and reports broken promises.

    Args:
        lattice: a :class:`Lattice`, or a name in :data:`LATTICES`.
        max_evaluations: optional per-synthesis-run candidate budget
            (safety valve for pathological specs; the family's spaces are
            small enough that the default ``None`` is fine).
        workers: thread/process count for the parallel backends.
    """

    def __init__(
        self,
        lattice: Any = "ablation",
        max_evaluations: Optional[int] = None,
        workers: int = 2,
    ) -> None:
        if isinstance(lattice, str):
            try:
                lattice = LATTICES[lattice]()
            except KeyError:
                raise ValueError(
                    f"unknown lattice {lattice!r}; "
                    f"available: {', '.join(sorted(LATTICES))}"
                ) from None
        self.lattice: Lattice = lattice
        self.max_evaluations = max_evaluations
        self.workers = workers

    # -- public API ---------------------------------------------------------

    def check_spec(self, spec: ProtocolSpec) -> SpecCheck:
        """The full sweep: verify + bug-replay + synthesis phases."""
        return self._check(spec, self.lattice.verify, self.lattice.synth)

    def still_diverges(self, spec: ProtocolSpec, divergence: Divergence) -> bool:
        """Does the *specific* broken promise survive on (a shrunk) spec?

        Re-runs only the two configurations the divergence names and
        compares them with the same oracle — the shrinker's fast path.
        Any same-phase divergence between the pair counts (shrinking may
        shift a counts mismatch into a verdict mismatch).
        """
        names = {divergence.config, divergence.baseline} - {""}
        if divergence.phase in ("verify", "bug"):
            configs = tuple(
                c for c in self.lattice.verify
                if c.name in names or c.name == self.lattice.verify[0].name
            )
            check = self._check(spec, configs, ())
        else:
            # A warm store config only reproduces with its same-tag
            # recording predecessors in place, so keep the whole tag.
            tags = {
                c.store for c in self.lattice.synth
                if c.name in names and c.store
            }
            configs = tuple(
                c for c in self.lattice.synth
                if c.name in names
                or c.name == self.lattice.synth[0].name
                or (c.store and c.store in tags)
            )
            check = self._check(spec, (), configs)
        return any(d.phase == divergence.phase for d in check.divergences)

    # -- phases -------------------------------------------------------------

    def _check(
        self,
        spec: ProtocolSpec,
        verify_configs: Sequence[KernelConfig],
        synth_configs: Sequence[SynthLatticeConfig],
    ) -> SpecCheck:
        check = SpecCheck(spec=spec, lattice=self.lattice.name)
        if verify_configs:
            self._verify_phase(spec, verify_configs, check)
            self._bug_phase(spec, verify_configs, check)
        if synth_configs:
            self._synth_phase(spec, synth_configs, check)
        return check

    def _verify_phase(
        self,
        spec: ProtocolSpec,
        configs: Sequence[KernelConfig],
        check: SpecCheck,
    ) -> None:
        results: Dict[str, VerificationResult] = {}
        for kc in configs:
            try:
                results[kc.name] = self._kernel_reference_run(spec, kc)
            except Exception as exc:  # noqa: BLE001 - sweep must survive
                check.divergences.append(Divergence(
                    "verify", "error", kc.name, "",
                    f"{type(exc).__name__}: {exc}",
                ))
        group_baseline: Dict[str, Tuple[str, Tuple[int, int, int]]] = {}
        for kc in configs:
            result = results.get(kc.name)
            if result is None:
                continue
            counts = _result_counts(result)
            check.verify[kc.name] = {
                "verdict": result.verdict.value,
                "states": counts[0],
                "transitions": counts[1],
                "attempts": counts[2],
            }
            if not result.is_success:
                check.divergences.append(Divergence(
                    "verify", "ground-truth", kc.name, "",
                    f"reference completion got {result.verdict.value} "
                    f"({result.message or 'no message'})",
                ))
                continue
            group = kc.counts_group
            if group is not None:
                if group not in group_baseline:
                    group_baseline[group] = (kc.name, counts)
                else:
                    base_name, base_counts = group_baseline[group]
                    if counts != base_counts:
                        check.divergences.append(Divergence(
                            "verify", "counts", kc.name, base_name,
                            f"states/transitions/attempts {counts} != "
                            f"{base_counts}",
                        ))
        # POR's promise on complete explorations: a subset of the states.
        for kc in configs:
            result = results.get(kc.name)
            if result is None or not kc.partial_order:
                continue
            group = "sym" if kc.symmetry else "nosym"
            if group in group_baseline:
                base_name, base_counts = group_baseline[group]
                if result.stats.states_visited > base_counts[0]:
                    check.divergences.append(Divergence(
                        "verify", "counts", kc.name, base_name,
                        f"POR visited {result.stats.states_visited} states "
                        f"> unreduced {base_counts[0]}",
                    ))

    def _bug_phase(
        self,
        spec: ProtocolSpec,
        configs: Sequence[KernelConfig],
        check: SpecCheck,
    ) -> None:
        group_baseline: Dict[str, Tuple[str, Tuple[int, int, int], str]] = {}
        for kc in configs:
            try:
                result = self._kernel_bug_run(spec, kc)
            except Exception as exc:  # noqa: BLE001 - sweep must survive
                check.divergences.append(Divergence(
                    "bug", "error", kc.name, "",
                    f"{type(exc).__name__}: {exc}",
                ))
                continue
            kind = result.failure_kind.value if result.failure_kind else ""
            check.bug[kc.name] = {
                "verdict": result.verdict.value,
                "kind": kind,
                "states": result.stats.states_visited,
            }
            if not result.is_failure:
                check.divergences.append(Divergence(
                    "bug", "verdict", kc.name, "",
                    f"seeded bug got {result.verdict.value}, expected FAILURE",
                ))
                continue
            if result.trace is None:
                check.divergences.append(Divergence(
                    "bug", "trace-replay", kc.name, "",
                    "failure reported without a counterexample trace",
                ))
            else:
                problem = self._replay_bug_trace(spec, kc, result)
                if problem is not None:
                    check.divergences.append(Divergence(
                        "bug", "trace-replay", kc.name, "", problem
                    ))
            group = kc.failure_group
            if group is not None:
                entry = (kc.name, _result_counts(result), kind)
                if group not in group_baseline:
                    group_baseline[group] = entry
                else:
                    base_name, base_counts, base_kind = group_baseline[group]
                    if _result_counts(result) != base_counts:
                        check.divergences.append(Divergence(
                            "bug", "counts", kc.name, base_name,
                            f"failure-run counts {_result_counts(result)} "
                            f"!= {base_counts}",
                        ))
                    if kind != base_kind:
                        check.divergences.append(Divergence(
                            "bug", "verdict", kc.name, base_name,
                            f"failure kind {kind!r} != {base_kind!r}",
                        ))

    def _synth_phase(
        self,
        spec: ProtocolSpec,
        configs: Sequence[SynthLatticeConfig],
        check: SpecCheck,
    ) -> None:
        reports: Dict[str, Any] = {}
        warmed: set = set()
        with tempfile.TemporaryDirectory(prefix="verc3-fuzz-store-") as root:
            for sc in configs:
                try:
                    reports[sc.name] = self._synth_run(spec, sc, root)
                except Exception as exc:  # noqa: BLE001 - sweep must survive
                    check.divergences.append(Divergence(
                        "synth", "error", sc.name, "",
                        f"{type(exc).__name__}: {exc}",
                    ))
                    continue
                self._check_store_promises(sc, reports[sc.name], warmed, check)
        baseline_name = configs[0].name
        baseline = reports.get(baseline_name)
        reference = spec.reference_assignment
        fingerprint_baseline: Dict[Tuple[bool, bool], Tuple[str, Dict]] = {}
        for sc in configs:
            report = reports.get(sc.name)
            if report is None:
                continue
            view = _assignment_view(report)
            check.synth[sc.name] = {
                "solutions": len(report.solutions),
                "evaluated": report.evaluated if sc.deterministic else None,
            }
            if not _covers_reference(report, reference):
                check.divergences.append(Divergence(
                    "synth", "solutions", sc.name, "",
                    "known-good completion missing from the solution set",
                ))
            if report is baseline:
                check.solutions = [
                    [list(pair) for pair in solution] for solution in view
                ]
            elif baseline is not None:
                base_view = _assignment_view(baseline)
                if view != base_view:
                    check.divergences.append(Divergence(
                        "synth", "solutions", sc.name, baseline_name,
                        f"solution sets differ: {view!r} != {base_view!r}",
                    ))
                if sc.evaluated_exact and report.evaluated != baseline.evaluated:
                    check.divergences.append(Divergence(
                        "synth", "evaluated", sc.name, baseline_name,
                        f"evaluated {report.evaluated} != "
                        f"{baseline.evaluated}",
                    ))
            group = sc.fingerprint_group
            prints = _fingerprint_view(report)
            if group not in fingerprint_baseline:
                fingerprint_baseline[group] = (sc.name, prints)
            else:
                base_name, base_prints = fingerprint_baseline[group]
                if prints != base_prints:
                    check.divergences.append(Divergence(
                        "synth", "fingerprints", sc.name, base_name,
                        "per-solution visited-set fingerprints differ",
                    ))

    def _check_store_promises(
        self,
        sc: SynthLatticeConfig,
        report: Any,
        warmed: set,
        check: SpecCheck,
    ) -> None:
        """Absolute verdict-store promises, beyond the cross-config ones.

        Only the sequential backend promises exact hit accounting: its
        enumeration walk is deterministic, so a cold run records every
        evaluated candidate and the same-tag warm run replays all of
        them.  The parallel backends prune with timing-dependent reach —
        a warm run may evaluate a candidate its cold twin pruned — so
        for them the store is pinned only through the solution-set and
        fingerprint comparisons every config already gets.
        """
        if not sc.store or not getattr(report, "store_enabled", False):
            return
        if sc.backend == "sequential":
            if sc.store in warmed and report.model_checks != 0:
                check.divergences.append(Divergence(
                    "synth", "store", sc.name, "",
                    f"warm run performed {report.model_checks} model "
                    f"checks ({report.store_hits} replayed)",
                ))
            if sc.store not in warmed and report.store_writes != report.evaluated:
                check.divergences.append(Divergence(
                    "synth", "store", sc.name, "",
                    f"cold run recorded {report.store_writes} of "
                    f"{report.evaluated} verdicts",
                ))
        warmed.add(sc.store)

    # -- single runs --------------------------------------------------------

    def _kernel_reference_run(
        self, spec: ProtocolSpec, kc: KernelConfig
    ) -> VerificationResult:
        """One complete-protocol verification through SynthesisCore.evaluate."""
        system = build_reference_system(spec, symmetry=kc.symmetry)
        config = SynthesisConfig(
            explorer=kc.explorer,
            packed=kc.packed,
            partial_order=kc.partial_order,
        )
        core = SynthesisCore(system, config)
        result, _explorer = core.evaluate(CandidateVector.empty())
        return result

    def _kernel_bug_run(
        self, spec: ProtocolSpec, kc: KernelConfig
    ) -> VerificationResult:
        system, holes = build_skeleton_from_spec(spec, symmetry=kc.symmetry)
        resolver = resolver_for_assignment(holes, spec.bug_assignment)
        explorer = make_explorer(
            kc.explorer,
            system,
            resolver=resolver,
            partial_order=kc.partial_order,
            packed=kc.packed,
        )
        return explorer.run()

    def _replay_bug_trace(
        self, spec: ProtocolSpec, kc: KernelConfig, result: VerificationResult
    ) -> Optional[str]:
        # Replay against a *fresh* build: the trace must be a real
        # execution of the protocol, not of whatever the kernel cached.
        system, holes = build_skeleton_from_spec(spec, symmetry=kc.symmetry)
        resolver = resolver_for_assignment(holes, spec.bug_assignment)
        return replay_trace(system, result.trace, resolver)

    def _synth_run(
        self, spec: ProtocolSpec, sc: SynthLatticeConfig, store_root: str
    ):
        config = SynthesisConfig(
            explorer=sc.explorer,
            packed=sc.packed,
            partial_order=sc.partial_order,
            prefix_reuse=sc.prefix_reuse,
            generalise_conflicts=sc.generalise,
            family=sc.family,
            compute_fingerprints=True,
            max_evaluations=self.max_evaluations,
            store_path=(
                os.path.join(store_root, sc.store) if sc.store else None
            ),
        )
        if sc.backend == "sequential":
            system, _holes = build_skeleton_from_spec(spec, symmetry=sc.symmetry)
            return SynthesisEngine(system, config).run()
        if sc.backend == "threads":
            system, _holes = build_skeleton_from_spec(spec, symmetry=sc.symmetry)
            return ParallelSynthesisEngine(
                system, config, threads=self.workers
            ).run()
        if sc.backend == "processes":
            # Imported lazily: repro.dist pulls in multiprocessing wiring
            # the sequential-only paths never need.
            from repro.dist import DistributedSynthesisEngine, SystemSpec

            spec_ref = SystemSpec(
                spec.name,
                spec.n_procs,
                fuzz_payload=spec_payload(spec, symmetry=sc.symmetry),
            )
            return DistributedSynthesisEngine(
                spec_ref, config, workers=self.workers, min_batch_size=2
            ).run()
        raise ValueError(f"unknown backend {sc.backend!r}")
