"""The serialisable intermediate form of a generated protocol.

A :class:`ProtocolSpec` is *parametric*, not operational: it records the
resolved knob values and generated names of one member of the fuzzer's
protocol family, and :func:`build_skeleton_from_spec` deterministically
reconstructs the :class:`~repro.mc.system.TransitionSystem` from those
parameters through the ordinary :class:`~repro.dsl.builder.ProtocolBuilder`
API.  That makes the spec trivially JSON round-trippable (shrinking and
corpus files operate on parameters, never on code), while every generated
system still exercises the same compilation path as the hand-written
catalog protocols.

The family: randomized **grant-service protocols**, a generalisation of
the catalog's ``mutex``.  Replicated clients request a lock from a global
server; a granted client roams a random directed graph of *active* states
before releasing.  Knobs add an explicit acknowledgement round
(``ack_round``), a German-style single-slot port guard on request
consumption (``single_slot``), decorative modular grant counters
(``counters``), a second, server-side hole (``hole_server``), and the
packed-codec flavour (``codec``: a typed-schema codec, the opaque-global
codec, or *no* codec at all — the latter exercises the kernel's silent
packed fallback).

Ground truth is generator-known: the reference completion
(:attr:`ProtocolSpec.reference_assignment`) verifies by construction, and
the bug completion (:attr:`ProtocolSpec.bug_assignment`) releases the lock
while staying in an active state, which every complete exploration must
report as a failure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields as dataclass_fields, replace
from typing import Any, Dict, List, Mapping, Tuple

from repro.core.action import Action
from repro.core.hole import Hole
from repro.dsl.builder import GLOBAL, ControllerSpec, ProtocolBuilder
from repro.dsl.fields import EnumField, IdField, RangeField, Schema
from repro.errors import ModelError
from repro.mc.properties import DeadlockPolicy
from repro.mc.state import Record
from repro.mc.system import TransitionSystem

#: corpus/spec wire-format version (bumped on incompatible field changes)
FORMAT_VERSION = 1

#: the packed-codec flavours a spec may ask for
CODECS = ("schema", "opaque", "none")

#: roles every spec's message vocabulary must name
MESSAGE_ROLES = ("req", "grant", "rel", "ack")

#: roles every spec's client-state vocabulary must name (active states are
#: named separately, in :attr:`ProtocolSpec.active_states`)
STATE_ROLES = ("idle", "wait")

#: the ground-truth invariant kinds, in canonical order; a spec stores a
#: permutation (declaration order is part of the generated diversity)
INVARIANT_KINDS = (
    "mutual-exclusion",
    "holder-consistent",
    "free-consistent",
    "network-bounded",
)


class FuzzSpecError(ModelError):
    """A spec is malformed (bad field values, not a family member)."""


@dataclass(frozen=True)
class ProtocolSpec:
    """One member of the grant-service family, fully parameterised.

    Attributes:
        name: system/catalog name (also names the corpus file).
        seed: the generator seed that produced this spec (provenance
            only; building never consults it).
        n_procs: replicated client count (>= 2).
        active_states: names of the lock-holding client states; the first
            is the entry state the reference grant transition targets.
        step_edges: ``(i, j)`` pairs — spontaneous moves between active
            states ``i`` and ``j`` (lock retained).
        ack_round: insert a client->server acknowledgement between grant
            and service (the server waits in a ``granting`` state).
        single_slot: guard request consumption German-style — the server
            only consumes a request while no grant/ack is in flight.
        hole_server: also hole the server's request handler (3 actions).
        codec: packed-codec flavour, one of :data:`CODECS`.
        counters: moduli of decorative grant counters (each grant bumps
            every counter mod its modulus).
        messages: role -> generated wire name (roles :data:`MESSAGE_ROLES`).
        states: role -> generated client-state name (:data:`STATE_ROLES`).
        invariants: permutation of :data:`INVARIANT_KINDS` (declaration
            order).
    """

    name: str
    seed: int
    n_procs: int
    active_states: Tuple[str, ...]
    step_edges: Tuple[Tuple[int, int], ...]
    ack_round: bool
    single_slot: bool
    hole_server: bool
    codec: str
    counters: Tuple[int, ...]
    messages: Mapping[str, str]
    states: Mapping[str, str]
    invariants: Tuple[str, ...] = INVARIANT_KINDS

    def __post_init__(self) -> None:
        if self.n_procs < 2:
            raise FuzzSpecError("n_procs must be >= 2")
        if not self.active_states:
            raise FuzzSpecError("need at least one active state")
        if self.codec not in CODECS:
            raise FuzzSpecError(f"unknown codec {self.codec!r}; one of {CODECS}")
        for i, j in self.step_edges:
            if not (0 <= i < len(self.active_states)
                    and 0 <= j < len(self.active_states)):
                raise FuzzSpecError(f"step edge ({i}, {j}) out of range")
            if i == j:
                raise FuzzSpecError(f"step edge ({i}, {j}) is a self-loop")
        for modulus in self.counters:
            if modulus < 2:
                raise FuzzSpecError(f"counter modulus {modulus} must be >= 2")
        if set(self.messages) != set(MESSAGE_ROLES):
            raise FuzzSpecError(f"messages must name roles {MESSAGE_ROLES}")
        if set(self.states) != set(STATE_ROLES):
            raise FuzzSpecError(f"states must name roles {STATE_ROLES}")
        if sorted(self.invariants) != sorted(INVARIANT_KINDS):
            raise FuzzSpecError(
                f"invariants must permute {INVARIANT_KINDS}, "
                f"got {self.invariants}"
            )
        named = (
            list(self.states.values())
            + list(self.active_states)
            + ["granting", "free", "busy"]
        )
        if len(set(named)) != len(named):
            raise FuzzSpecError(f"client/server state names collide: {named}")
        wires = list(self.messages.values())
        if len(set(wires)) != len(wires):
            raise FuzzSpecError(f"message names collide: {wires}")

    # -- derived vocabulary -------------------------------------------------

    @property
    def entry_active(self) -> str:
        """The active state a correct grant transition enters."""
        return self.active_states[0]

    @property
    def network_bound(self) -> int:
        """The finite-interconnect capacity the bound invariant enforces."""
        return 2 * self.n_procs + 2

    def hole_names(self) -> Tuple[str, ...]:
        """The hole names this spec's skeleton exposes, in a stable order."""
        names = [
            f"{self.name}.client.grant.response",
            f"{self.name}.client.grant.next",
        ]
        if self.hole_server:
            names.append(f"{self.name}.server.req.response")
        return tuple(names)

    @property
    def reference_assignment(self) -> Dict[str, str]:
        """The generator-known correct completion (hole name -> action)."""
        response, next_state = self.hole_names()[:2]
        assignment = {
            response: "send_ack" if self.ack_round else "none",
            next_state: f"goto_{self.entry_active}",
        }
        if self.hole_server:
            assignment[self.hole_names()[2]] = "grant_and_record"
        return assignment

    @property
    def bug_assignment(self) -> Dict[str, str]:
        """A known-bad completion: release the lock yet stay active.

        Without an ack round the stray release is consumed by the busy
        server, freeing the lock under an active client (invariant
        violation); with one, the server starves in its granting state
        (deadlock).  Either way every complete exploration must FAIL.
        """
        assignment = dict(self.reference_assignment)
        assignment[self.hole_names()[0]] = "send_rel"
        return assignment

    def candidate_space(self) -> int:
        """Size of the full completion space (product of hole arities)."""
        response_arity = 4 if self.ack_round else 3
        next_arity = 2 + min(len(self.active_states), 2)
        space = response_arity * next_arity
        if self.hole_server:
            space *= 3
        return space

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A plain JSON-able dict (tuples become lists)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "n_procs": self.n_procs,
            "active_states": list(self.active_states),
            "step_edges": [list(edge) for edge in self.step_edges],
            "ack_round": self.ack_round,
            "single_slot": self.single_slot,
            "hole_server": self.hole_server,
            "codec": self.codec,
            "counters": list(self.counters),
            "messages": dict(self.messages),
            "states": dict(self.states),
            "invariants": list(self.invariants),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ProtocolSpec":
        """Parse a dict produced by :meth:`to_dict` (validating shape)."""
        if not isinstance(data, Mapping):
            raise FuzzSpecError("spec must be a JSON object")
        known = {f.name for f in dataclass_fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise FuzzSpecError(f"unknown spec field(s) {sorted(unknown)}")
        missing = known - set(data)
        if missing:
            raise FuzzSpecError(f"missing spec field(s) {sorted(missing)}")
        try:
            return cls(
                name=str(data["name"]),
                seed=int(data["seed"]),
                n_procs=int(data["n_procs"]),
                active_states=tuple(str(s) for s in data["active_states"]),
                step_edges=tuple(
                    (int(i), int(j)) for i, j in data["step_edges"]
                ),
                ack_round=bool(data["ack_round"]),
                single_slot=bool(data["single_slot"]),
                hole_server=bool(data["hole_server"]),
                codec=str(data["codec"]),
                counters=tuple(int(m) for m in data["counters"]),
                messages={str(k): str(v) for k, v in data["messages"].items()},
                states={str(k): str(v) for k, v in data["states"].items()},
                invariants=tuple(str(s) for s in data["invariants"]),
            )
        except (TypeError, ValueError) as exc:
            raise FuzzSpecError(f"malformed spec: {exc}") from None

    def to_json(self) -> str:
        """Canonical JSON text — byte-identical across round trips."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ProtocolSpec":
        """Parse :meth:`to_json` output."""
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise FuzzSpecError(f"not valid JSON: {exc}") from None
        return cls.from_dict(data)

    def with_(self, **changes: Any) -> "ProtocolSpec":
        """A copy with fields replaced (the shrinker's edit primitive)."""
        return replace(self, **changes)


# -- building -----------------------------------------------------------------


class _St:
    """A named server-state predicate, so rule names stay readable.

    ``ControllerSpec`` keys transitions by their state pattern and the
    builder embeds ``str(pattern)`` in rule names; a plain lambda would
    leak ``<function ...>`` into both.
    """

    __slots__ = ("label", "_lock")

    def __init__(self, label: str, lock: str) -> None:
        self.label = label
        self._lock = lock

    def __call__(self, glob: Record) -> bool:
        return glob.lock == self._lock

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return self.label

    def __str__(self) -> str:
        return self.label

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, _St) and other.label == self.label

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.label))


def _make_schema(spec: ProtocolSpec) -> Schema:
    lock_values = ["free", "busy"]
    if spec.ack_round:
        lock_values.insert(1, "granting")
    fields: Dict[str, Any] = {
        "lock": EnumField(*lock_values),
        "holder": IdField(spec.n_procs, allow_none=True, sentinel=-1),
    }
    for index, modulus in enumerate(spec.counters):
        fields[f"tick{index}"] = RangeField(0, modulus - 1)
    return Schema(**fields)


def _initial_glob(spec: ProtocolSpec) -> Record:
    values: Dict[str, Any] = {"lock": "free", "holder": -1}
    for index in range(len(spec.counters)):
        values[f"tick{index}"] = 0
    return Record(**values)


def _rename_glob(glob: Record, mapping: Tuple[int, ...]) -> Record:
    holder = glob.holder
    return glob.update(holder=holder if holder < 0 else mapping[holder])


def _bump_ticks(glob: Record, counters: Tuple[int, ...]) -> Record:
    if not counters:
        return glob
    changes = {
        f"tick{index}": (getattr(glob, f"tick{index}") + 1) % modulus
        for index, modulus in enumerate(counters)
    }
    return glob.update(**changes)


def _client_holes(spec: ProtocolSpec) -> Tuple[Hole, Hole]:
    req = spec.messages["req"]
    rel = spec.messages["rel"]
    ack = spec.messages["ack"]
    response_actions = [
        Action("none", fn=lambda view, proc: None),
        Action(
            "send_req",
            fn=lambda view, proc, _m=req: view.send(_m, proc, GLOBAL),
        ),
        Action(
            "send_rel",
            fn=lambda view, proc, _m=rel: view.send(_m, proc, GLOBAL),
        ),
    ]
    if spec.ack_round:
        response_actions.insert(
            1,
            Action(
                "send_ack",
                fn=lambda view, proc, _m=ack: view.send(_m, proc, GLOBAL),
            ),
        )
    # Small next-state domain: idle, wait, and up to two active states.
    targets = [spec.states["idle"], spec.states["wait"]]
    targets[0:0] = list(spec.active_states[:2])
    next_actions = [Action(f"goto_{s}", payload=s) for s in targets]
    response_name, next_name = spec.hole_names()[:2]
    return (
        Hole(response_name, response_actions),
        Hole(next_name, next_actions),
    )


def _server_hole(spec: ProtocolSpec) -> Hole:
    grant = spec.messages["grant"]
    granted_lock = "granting" if spec.ack_round else "busy"
    counters = spec.counters

    def grant_and_record(view, src):
        view.send(grant, GLOBAL, src)
        view.glob = _bump_ticks(
            view.glob.update(lock=granted_lock, holder=src), counters
        )

    def grant_forget(view, src):
        # Sends the grant but forgets the holder: the very next state has
        # a non-free lock with holder -1, violating free-consistency.
        view.send(grant, GLOBAL, src)
        view.glob = view.glob.update(lock=granted_lock)

    def record_only(view, src):
        # Records the grant but never sends it: the requester starves and
        # the system deadlocks once every client is waiting.
        view.glob = _bump_ticks(
            view.glob.update(lock=granted_lock, holder=src), counters
        )

    return Hole(
        spec.hole_names()[2],
        [
            Action("grant_and_record", fn=grant_and_record),
            Action("grant_forget", fn=grant_forget),
            Action("record_only", fn=record_only),
        ],
    )


def _add_invariants(builder: ProtocolBuilder, spec: ProtocolSpec) -> None:
    actives = frozenset(spec.active_states)
    bound = spec.network_bound

    def mutual_exclusion(state) -> bool:
        return sum(1 for local in state[0] if local in actives) <= 1

    def holder_consistent(state) -> bool:
        procs, glob, _net = state
        for index, local in enumerate(procs):
            if local in actives and glob.holder != index:
                return False
        return True

    def free_consistent(state) -> bool:
        return (state[1].holder == -1) == (state[1].lock == "free")

    def network_bounded(state, _b=bound) -> bool:
        return len(state[2]) <= _b

    predicates = {
        "mutual-exclusion": mutual_exclusion,
        "holder-consistent": holder_consistent,
        "free-consistent": free_consistent,
        "network-bounded": network_bounded,
    }
    for kind in spec.invariants:
        builder.add_invariant(kind, predicates[kind])
    builder.add_coverage(
        "some-client-active",
        lambda state: any(local in actives for local in state[0]),
    )


def _build(
    spec: ProtocolSpec,
    grant_handler,
    server_req_handler,
    name_suffix: str,
    symmetry: bool,
) -> TransitionSystem:
    idle = spec.states["idle"]
    wait = spec.states["wait"]
    req, grant, rel, ack = (spec.messages[r] for r in MESSAGE_ROLES)

    def client_want(view, proc, ctx, message):
        view.send(req, proc, GLOBAL)
        view.become(proc, wait)

    def client_done(view, proc, ctx, message):
        view.send(rel, proc, GLOBAL)
        view.become(proc, idle)

    client = ControllerSpec("client")
    client.on(idle, "want", client_want, spontaneous=True)
    client.on(wait, grant, grant_handler)
    for active in spec.active_states:
        client.on(active, "done", client_done, spontaneous=True)
    for i, j in spec.step_edges:
        target = spec.active_states[j]

        def step(view, proc, ctx, message, _t=target):
            view.become(proc, _t)

        client.on(spec.active_states[i], f"step_to_{target}", step,
                  spontaneous=True)

    message_guard = None
    if spec.single_slot:
        # German-style single-slot grant port: requests are only consumed
        # while the grant/ack channel is clear.  Vacuous on reference
        # reachable states (a free server has no grant in flight), but it
        # exercises the guard path and constrains buggy completions.
        slot_types = frozenset((grant, ack))

        def message_guard(state, message, _slot=slot_types):
            return not any(m.mtype in _slot for m in state[2])

    def server_ack(view, proc, ctx, message):
        view.glob = view.glob.update(lock="busy")

    def server_rel(view, proc, ctx, message):
        view.glob = view.glob.update(lock="free", holder=-1)

    server = ControllerSpec("server", replicated=False)
    server.on(_St("free", "free"), req, server_req_handler,
              message_guard=message_guard)
    if spec.ack_round:
        server.on(_St("granting", "granting"), ack, server_ack)
    server.on(_St("busy", "busy"), rel, server_rel)

    builder = ProtocolBuilder(
        f"{spec.name}{name_suffix}",
        spec.n_procs,
        initial_local=idle,
        initial_global=_initial_glob(spec),
        symmetry=symmetry,
    )
    builder.add_controller(client)
    builder.add_controller(server)
    builder.set_global_rename(_rename_glob)
    if spec.codec == "schema":
        builder.set_global_schema(_make_schema(spec))
    _add_invariants(builder, spec)
    builder.set_deadlock_policy(DeadlockPolicy.fail())
    system = builder.build()
    if spec.codec == "none":
        # Simulate a system compiled without any packed codec: the kernel
        # must fall back to the object path silently (engine `packed=True`
        # stays a no-op and pack_* metrics never appear).
        system.packed_spec = None
    return system


def _reference_server_handler(spec: ProtocolSpec):
    grant = spec.messages["grant"]
    granted_lock = "granting" if spec.ack_round else "busy"
    counters = spec.counters

    def server_req(view, proc, ctx, message):
        view.send(grant, GLOBAL, message.src)
        view.glob = _bump_ticks(
            view.glob.update(lock=granted_lock, holder=message.src), counters
        )

    return server_req


def build_skeleton_from_spec(
    spec: ProtocolSpec, symmetry: bool = True
) -> Tuple[TransitionSystem, List[Hole]]:
    """The holed skeleton plus its hole objects (catalog-builder shape)."""
    response, next_state = _client_holes(spec)

    def grant_handler(view, proc, ctx, message):
        ctx.resolve(response).fn(view, proc)
        view.become(proc, ctx.resolve(next_state).payload)

    holes = [response, next_state]
    if spec.hole_server:
        server_hole = _server_hole(spec)
        holes.append(server_hole)

        def server_req(view, proc, ctx, message):
            ctx.resolve(server_hole).fn(view, message.src)

    else:
        server_req = _reference_server_handler(spec)

    system = _build(spec, grant_handler, server_req, "-skel", symmetry)
    return system, holes


def build_reference_system(
    spec: ProtocolSpec, symmetry: bool = True
) -> TransitionSystem:
    """The complete, correct protocol (no holes) — the counts baseline."""
    entry = spec.entry_active
    ack = spec.messages["ack"]
    send_ack = spec.ack_round

    def grant_handler(view, proc, ctx, message):
        if send_ack:
            view.send(ack, proc, GLOBAL)
        view.become(proc, entry)

    return _build(
        spec, grant_handler, _reference_server_handler(spec), "-ref", symmetry
    )


def resolver_for_assignment(holes: List[Hole], assignment: Mapping[str, str]):
    """A strict :class:`~repro.mc.context.FixedResolver` over hole objects."""
    from repro.mc.context import FixedResolver

    mapping = {}
    for hole in holes:
        action_name = assignment.get(hole.name)
        if action_name is None:
            raise FuzzSpecError(f"assignment misses hole {hole.name!r}")
        mapping[hole] = hole.domain[hole.index_of(action_name)]
    return FixedResolver(mapping)


# -- cross-process payloads ---------------------------------------------------


def spec_payload(spec: ProtocolSpec, symmetry: bool = True) -> str:
    """Serialise a spec (plus build flags) for a worker process.

    The distributed backend's workers rebuild systems locally (rule
    bodies are closures and cannot cross a process boundary); a payload
    string rides inside :class:`repro.dist.messages.SystemSpec` so
    generated protocols work under ``--backend processes`` exactly like
    catalog entries.
    """
    return json.dumps(
        {"format": FORMAT_VERSION, "spec": spec.to_dict(), "symmetry": symmetry},
        sort_keys=True,
        separators=(",", ":"),
    )


def build_system_from_payload(payload: str) -> TransitionSystem:
    """Rebuild the holed skeleton a payload describes (worker side)."""
    try:
        data = json.loads(payload)
    except ValueError as exc:
        raise FuzzSpecError(f"bad fuzz payload: {exc}") from None
    if data.get("format") != FORMAT_VERSION:
        raise FuzzSpecError(
            f"unsupported fuzz payload format {data.get('format')!r}"
        )
    spec = ProtocolSpec.from_dict(data["spec"])
    system, _holes = build_skeleton_from_spec(
        spec, symmetry=bool(data.get("symmetry", True))
    )
    return system
