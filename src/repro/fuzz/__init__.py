"""Protocol fuzzing and differential testing.

A seeded generator (:mod:`repro.fuzz.generator`) emits well-formed holed
protocols as serialisable :class:`~repro.fuzz.spec.ProtocolSpec` values; a
differential oracle (:mod:`repro.fuzz.differential`) pins every
acceleration and backend against every other on each one; a shrinker
(:mod:`repro.fuzz.shrink`) reduces anything divergent to a minimal
reproducer; and the corpus layer (:mod:`repro.fuzz.corpus`) round-trips
both regressions and reproducers to disk.  :mod:`repro.fuzz.harness` ties
them into the campaign the ``fuzz`` CLI verb runs.
"""

from repro.fuzz.corpus import (
    CorpusEntry,
    load_corpus,
    load_entry,
    make_divergence_entry,
    make_regression_entry,
    replay_entry,
    save_entry,
)
from repro.fuzz.differential import (
    LATTICES,
    DifferentialRunner,
    Divergence,
    KernelConfig,
    Lattice,
    SpecCheck,
    SynthLatticeConfig,
    ablation_lattice,
    full_lattice,
    replay_trace,
    tier1_lattice,
)
from repro.fuzz.generator import DEFAULT_CONFIG, GeneratorConfig, generate_spec
from repro.fuzz.harness import CampaignResult, run_campaign
from repro.fuzz.shrink import shrink_spec
from repro.fuzz.spec import (
    FuzzSpecError,
    ProtocolSpec,
    build_reference_system,
    build_skeleton_from_spec,
    build_system_from_payload,
    resolver_for_assignment,
    spec_payload,
)

__all__ = [
    "LATTICES",
    "CampaignResult",
    "CorpusEntry",
    "DEFAULT_CONFIG",
    "DifferentialRunner",
    "Divergence",
    "FuzzSpecError",
    "GeneratorConfig",
    "KernelConfig",
    "Lattice",
    "ProtocolSpec",
    "SpecCheck",
    "SynthLatticeConfig",
    "ablation_lattice",
    "build_reference_system",
    "build_skeleton_from_spec",
    "build_system_from_payload",
    "full_lattice",
    "generate_spec",
    "load_corpus",
    "load_entry",
    "make_divergence_entry",
    "make_regression_entry",
    "replay_entry",
    "replay_trace",
    "resolver_for_assignment",
    "run_campaign",
    "save_entry",
    "shrink_spec",
    "spec_payload",
    "tier1_lattice",
]
