"""The fuzz campaign driver: generate, sweep, shrink, emit.

:func:`run_campaign` is what the ``fuzz`` CLI verb, the CI smoke job, and
the determinism tests all call: it walks a seed range, sweeps each
generated spec through a :class:`~repro.fuzz.differential.\
DifferentialRunner`, journals one deterministic JSON row per spec, and —
when a sweep breaks a promise — shrinks the spec against the first
divergence and writes the reproducer as a corpus file.

Everything observable is a pure function of (seeds, lattice, generator
config): journal rows carry no wall-clock and no unstable counters, so two
campaigns at the same seed produce byte-identical journals (the ISSUE's
flakiness guard).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.fuzz.corpus import make_divergence_entry, save_entry
from repro.fuzz.differential import DifferentialRunner, SpecCheck
from repro.fuzz.generator import DEFAULT_CONFIG, GeneratorConfig, generate_spec
from repro.fuzz.shrink import shrink_spec
from repro.fuzz.spec import ProtocolSpec


@dataclass
class CampaignResult:
    """Everything one campaign produced."""

    checks: List[SpecCheck] = field(default_factory=list)
    #: (original spec, shrunk spec, reproducer path or None) per divergence
    reproducers: List[Tuple[ProtocolSpec, ProtocolSpec, Optional[Path]]] = (
        field(default_factory=list)
    )
    journal_path: Optional[Path] = None

    @property
    def ok(self) -> bool:
        """Zero divergences across the whole campaign."""
        return all(check.ok for check in self.checks)

    @property
    def divergent(self) -> List[SpecCheck]:
        """The sweeps that broke a promise."""
        return [check for check in self.checks if not check.ok]

    def journal_rows(self) -> List[dict]:
        """The deterministic per-spec rows (what the journal file holds)."""
        return [check.journal_row() for check in self.checks]

    def journal_text(self) -> str:
        """The journal as JSONL bytes — identical across same-seed runs."""
        return "".join(
            json.dumps(row, sort_keys=True, separators=(",", ":")) + "\n"
            for row in self.journal_rows()
        )


def run_campaign(
    seeds: Sequence[int],
    lattice: Any = "ablation",
    generator_config: Optional[GeneratorConfig] = None,
    shrink: bool = True,
    corpus_dir: Optional[Path] = None,
    journal_path: Optional[Path] = None,
    runner: Optional[DifferentialRunner] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> CampaignResult:
    """Sweep every seed; shrink and persist whatever diverges.

    Args:
        seeds: generator seeds to sweep (``range(count)`` from the CLI).
        lattice: lattice name or :class:`~repro.fuzz.differential.Lattice`.
        generator_config: generator knobs (defaults to
            :data:`~repro.fuzz.generator.DEFAULT_CONFIG`).
        shrink: reduce divergent specs to minimal reproducers.
        corpus_dir: where divergence reproducer files land (skipped when
            ``None`` — the result still carries the shrunk specs).
        journal_path: optional JSONL journal destination.
        runner: a pre-built runner (tests inject doctored ones); overrides
            ``lattice``.
        progress: optional line sink (the CLI's stderr reporter).

    Returns:
        A :class:`CampaignResult`; inspect ``.ok`` / ``.divergent``.
    """
    if runner is None:
        runner = DifferentialRunner(lattice)
    config = generator_config or DEFAULT_CONFIG
    emit = progress or (lambda line: None)
    result = CampaignResult()
    for seed in seeds:
        spec = generate_spec(seed, config)
        check = runner.check_spec(spec)
        result.checks.append(check)
        if check.ok:
            emit(f"seed {seed}: ok ({spec.name})")
            continue
        emit(
            f"seed {seed}: DIVERGED ({spec.name}) — "
            + "; ".join(
                f"{d.phase}/{d.kind} {d.config} vs {d.baseline or '-'}"
                for d in check.divergences
            )
        )
        witness = check.divergences[0]
        shrunk = spec
        if shrink:
            shrunk = shrink_spec(
                spec, lambda s: runner.still_diverges(s, witness)
            )
            if shrunk != spec:
                emit(f"seed {seed}: shrunk to {shrunk.to_json()}")
        path: Optional[Path] = None
        if corpus_dir is not None:
            entry = make_divergence_entry(
                shrunk,
                witness,
                note=(
                    f"shrunk from seed {seed} ({spec.name}); first of "
                    f"{len(check.divergences)} divergence(s)"
                ),
            )
            path = save_entry(
                entry, Path(corpus_dir) / f"div-{spec.name}.json"
            )
            emit(f"seed {seed}: reproducer written to {path}")
        result.reproducers.append((spec, shrunk, path))
    if journal_path is not None:
        journal_path = Path(journal_path)
        journal_path.parent.mkdir(parents=True, exist_ok=True)
        journal_path.write_text(result.journal_text(), encoding="utf-8")
        result.journal_path = journal_path
    return result
