"""Seeded generation of well-formed protocol specs.

All randomness flows through one explicit ``random.Random(seed)`` instance
created per :func:`generate_spec` call — no module-level ``random`` state
anywhere in the fuzz path — so a seed fully determines a spec and two runs
at the same seed are byte-identical
(:meth:`~repro.fuzz.spec.ProtocolSpec.to_json`).

The generator only resolves *parameters*; well-formedness is by
construction (every knob combination is a valid family member, see
:mod:`repro.fuzz.spec`), which is what lets shrinking stay inside the
family too.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.fuzz.spec import INVARIANT_KINDS, ProtocolSpec

_NAME_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


@dataclass(frozen=True)
class GeneratorConfig:
    """Knob ranges and probabilities of the generator.

    The defaults keep generated state spaces interactive (hundreds to a
    few thousand states at the reference completion) so a differential
    sweep over the whole configuration lattice stays seconds per spec.
    """

    min_procs: int = 2
    max_procs: int = 3
    max_active_states: int = 3
    max_step_edges: int = 3
    max_counters: int = 1
    max_counter_modulus: int = 3
    p_ack_round: float = 0.35
    p_single_slot: float = 0.3
    p_hole_server: float = 0.4
    p_counter: float = 0.4
    codecs: Tuple[str, ...] = ("schema", "schema", "opaque", "none")

    def __post_init__(self) -> None:
        if not 2 <= self.min_procs <= self.max_procs:
            raise ValueError("need 2 <= min_procs <= max_procs")
        if self.max_active_states < 1:
            raise ValueError("max_active_states must be >= 1")
        if not self.codecs:
            raise ValueError("codecs must be non-empty")


DEFAULT_CONFIG = GeneratorConfig()


def _token(rng: random.Random, length: int) -> str:
    return "".join(rng.choice(_NAME_ALPHABET) for _ in range(length))


def _distinct_tokens(rng: random.Random, count: int, length: int) -> list:
    tokens: list = []
    seen = set()
    while len(tokens) < count:
        token = _token(rng, length)
        if token not in seen:
            seen.add(token)
            tokens.append(token)
    return tokens


def generate_spec(
    seed: int, config: Optional[GeneratorConfig] = None
) -> ProtocolSpec:
    """The family member a seed denotes (deterministic in ``seed``).

    The spec's ``name`` embeds the seed (``fuzz-s<seed>``) so journal
    rows, catalog registrations, and corpus files stay traceable back to
    their generator invocation.
    """
    cfg = config or DEFAULT_CONFIG
    rng = random.Random(seed)

    n_procs = rng.randint(cfg.min_procs, cfg.max_procs)
    n_active = rng.randint(1, cfg.max_active_states)

    # Generated vocabulary: random, distinct, readable-ish names.  The
    # roles anchor semantics; the names exist to keep consumers honest
    # about never pattern-matching on the catalog's fixed vocabulary.
    tokens = _distinct_tokens(rng, 4 + 2 + n_active, 3)
    messages = {
        "req": f"Rq_{tokens[0]}",
        "grant": f"Gr_{tokens[1]}",
        "rel": f"Rl_{tokens[2]}",
        "ack": f"Ak_{tokens[3]}",
    }
    states = {"idle": f"id_{tokens[4]}", "wait": f"wt_{tokens[5]}"}
    active_states = tuple(f"ac_{t}" for t in tokens[6:6 + n_active])

    # A random directed graph over the active states (no self-loops, no
    # duplicate edges); every active state always keeps its guaranteed
    # release exit, so any edge set preserves deadlock freedom.
    edges = []
    if n_active > 1:
        possible = [
            (i, j)
            for i in range(n_active)
            for j in range(n_active)
            if i != j
        ]
        rng.shuffle(possible)
        edges = sorted(possible[: rng.randint(0, min(cfg.max_step_edges,
                                                     len(possible)))])

    counters: Tuple[int, ...] = ()
    if cfg.max_counters > 0 and rng.random() < cfg.p_counter:
        counters = tuple(
            rng.randint(2, cfg.max_counter_modulus)
            for _ in range(rng.randint(1, cfg.max_counters))
        )

    invariants = list(INVARIANT_KINDS)
    rng.shuffle(invariants)

    return ProtocolSpec(
        name=f"fuzz-s{seed}",
        seed=seed,
        n_procs=n_procs,
        active_states=active_states,
        step_edges=tuple(edges),
        ack_round=rng.random() < cfg.p_ack_round,
        single_slot=rng.random() < cfg.p_single_slot,
        hole_server=rng.random() < cfg.p_hole_server,
        codec=rng.choice(cfg.codecs),
        counters=counters,
        messages=messages,
        states=states,
        invariants=tuple(invariants),
    )
