"""Corpus files: shrunk specs checked in (or emitted) as JSON.

Two kinds of entry share one file format:

* ``"regression"`` — a healthy spec with *pinned expectations* (solution
  set, reference state/transition counts).  The curated corpus under
  ``tests/fuzz/corpus/`` is replayed by tier-1: each file re-runs through
  the differential lattice and must still match its pinned numbers.
* ``"divergence"`` — a shrunk reproducer the harness emitted for a broken
  promise, carrying the :class:`~repro.fuzz.differential.Divergence` it
  witnessed.  Replaying one re-runs only the two configurations involved
  and reports whether the divergence still reproduces.

Files are deterministic (sorted keys, fixed indentation, no timestamps):
re-saving an unchanged entry is byte-identical, which keeps corpus diffs
honest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.fuzz.differential import DifferentialRunner, Divergence, SpecCheck
from repro.fuzz.spec import FORMAT_VERSION, FuzzSpecError, ProtocolSpec

#: kinds a corpus entry may declare
ENTRY_KINDS = ("regression", "divergence")


@dataclass(frozen=True)
class CorpusEntry:
    """One corpus file's contents."""

    kind: str
    spec: ProtocolSpec
    lattice: str = "tier1"
    note: str = ""
    #: pinned expectations (regression entries): canonical solution list,
    #: reference verify counts
    expect: Dict[str, Any] = field(default_factory=dict)
    #: the witnessed broken promise (divergence entries)
    divergence: Optional[Divergence] = None

    def __post_init__(self) -> None:
        if self.kind not in ENTRY_KINDS:
            raise FuzzSpecError(
                f"unknown corpus entry kind {self.kind!r}; one of {ENTRY_KINDS}"
            )
        if self.kind == "divergence" and self.divergence is None:
            raise FuzzSpecError("divergence entries must carry a divergence")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able view (the on-disk schema)."""
        return {
            "format": FORMAT_VERSION,
            "kind": self.kind,
            "lattice": self.lattice,
            "note": self.note,
            "spec": self.spec.to_dict(),
            "expect": self.expect,
            "divergence": (
                self.divergence.to_dict() if self.divergence else None
            ),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CorpusEntry":
        """Parse the on-disk schema (strict about format version)."""
        if data.get("format") != FORMAT_VERSION:
            raise FuzzSpecError(
                f"unsupported corpus format {data.get('format')!r}"
            )
        raw_divergence = data.get("divergence")
        return cls(
            kind=str(data.get("kind", "")),
            spec=ProtocolSpec.from_dict(data["spec"]),
            lattice=str(data.get("lattice", "tier1")),
            note=str(data.get("note", "")),
            expect=dict(data.get("expect") or {}),
            divergence=(
                Divergence.from_dict(raw_divergence) if raw_divergence else None
            ),
        )


def save_entry(entry: CorpusEntry, path: Path) -> Path:
    """Write one corpus file (deterministic bytes), creating parents."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    text = json.dumps(entry.to_dict(), sort_keys=True, indent=1)
    path.write_text(text + "\n", encoding="utf-8")
    return path


def load_entry(path: Path) -> CorpusEntry:
    """Read one corpus file."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except ValueError as exc:
        raise FuzzSpecError(f"bad corpus file {path}: {exc}") from None
    return CorpusEntry.from_dict(data)


def load_corpus(directory: Path) -> List[Tuple[Path, CorpusEntry]]:
    """All ``*.json`` entries under a directory, sorted by file name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [
        (path, load_entry(path)) for path in sorted(directory.glob("*.json"))
    ]


def make_regression_entry(
    spec: ProtocolSpec, check: SpecCheck, note: str = ""
) -> CorpusEntry:
    """Pin a healthy sweep's observables into a regression entry.

    Pins the canonical solution set plus the reference configuration's
    complete-exploration counts — the numbers every future lattice run
    over this spec must reproduce exactly.
    """
    if not check.ok:
        raise FuzzSpecError(
            "refusing to pin a divergent sweep as a regression entry"
        )
    reference = check.verify.get("ref") or {}
    expect: Dict[str, Any] = {"solutions": check.solutions}
    for key in ("states", "transitions", "attempts"):
        if key in reference:
            expect[f"ref_{key}"] = reference[key]
    return CorpusEntry(kind="regression", spec=spec, note=note, expect=expect)


def make_divergence_entry(
    spec: ProtocolSpec, divergence: Divergence, note: str = ""
) -> CorpusEntry:
    """Wrap a shrunk reproducer and its witnessed divergence."""
    return CorpusEntry(
        kind="divergence",
        spec=spec,
        lattice="ablation",
        note=note,
        divergence=divergence,
    )


def replay_entry(
    entry: CorpusEntry, runner: Optional[DifferentialRunner] = None
) -> List[str]:
    """Re-run a corpus entry; the returned problems are empty on success.

    Regression entries must sweep cleanly *and* match their pinned
    expectations.  Divergence entries must still reproduce their recorded
    divergence (meaningful while the underlying bug exists — the
    deliberate-breakage test uses this; a fixed bug makes the replay
    report the divergence as gone, the signal to delete the file).
    """
    if runner is None:
        runner = DifferentialRunner(entry.lattice)
    problems: List[str] = []
    if entry.kind == "divergence":
        assert entry.divergence is not None  # __post_init__ guarantees it
        if not runner.still_diverges(entry.spec, entry.divergence):
            problems.append(
                f"recorded divergence no longer reproduces: "
                f"{entry.divergence.to_dict()}"
            )
        return problems
    check = runner.check_spec(entry.spec)
    for divergence in check.divergences:
        problems.append(f"divergence: {divergence.to_dict()}")
    expect = entry.expect
    if "solutions" in expect and check.solutions != expect["solutions"]:
        problems.append(
            f"solution set drifted: {check.solutions!r} != "
            f"{expect['solutions']!r}"
        )
    reference = check.verify.get("ref") or {}
    for key in ("states", "transitions", "attempts"):
        pinned = expect.get(f"ref_{key}")
        if pinned is not None and reference.get(key) != pinned:
            problems.append(
                f"reference {key} drifted: {reference.get(key)} != {pinned}"
            )
    return problems
