"""Shrinking divergent specs to minimal reproducers.

The shrinker never edits protocol *code* — it edits the parameters of a
:class:`~repro.fuzz.spec.ProtocolSpec` through
:meth:`~repro.fuzz.spec.ProtocolSpec.with_`, so every candidate stays a
well-formed family member and rebuilds through the ordinary builder path.
Each reduction is accepted iff the caller's ``diverges`` predicate still
holds (typically :meth:`repro.fuzz.differential.DifferentialRunner.\
still_diverges` pinned to the original divergence, which re-runs only the
two configurations involved), and the passes repeat to a fixed point.

Reductions, roughly in decreasing-impact order:

* drop the step-edge graph, then individual edges;
* drop trailing active states (edges are re-clamped);
* shrink the replica count to 2;
* drop counters, the ack round, the single-slot guard, the server hole;
* canonicalise the codec to ``"schema"``;
* canonicalise all generated names (seeds produce random vocabularies,
  but a checked-in reproducer should read the same for everyone).

Everything is deterministic — no randomness, no time — so shrinking the
same divergence always yields the same reproducer file.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.fuzz.spec import FuzzSpecError, INVARIANT_KINDS, ProtocolSpec

#: the fixed vocabulary every fully-shrunk reproducer uses
_CANONICAL_MESSAGES = {"req": "Rq", "grant": "Gr", "rel": "Rl", "ack": "Ak"}
_CANONICAL_STATES = {"idle": "Idle", "wait": "Wait"}


def _canonical_actives(count: int) -> tuple:
    return tuple(f"Act{i}" for i in range(count))


def _candidates(spec: ProtocolSpec) -> Iterator[ProtocolSpec]:
    """Single-step reductions of ``spec``, most aggressive first.

    Invalid parameter combinations are skipped (``with_`` revalidates),
    so the stream only ever yields family members.
    """
    edits = []
    if spec.step_edges:
        edits.append({"step_edges": ()})
        for index in range(len(spec.step_edges)):
            remaining = spec.step_edges[:index] + spec.step_edges[index + 1:]
            edits.append({"step_edges": remaining})
    for count in range(1, len(spec.active_states)):
        clamped = tuple(
            (i, j) for i, j in spec.step_edges if i < count and j < count
        )
        edits.append({
            "active_states": spec.active_states[:count],
            "step_edges": clamped,
        })
    if spec.n_procs > 2:
        edits.append({"n_procs": spec.n_procs - 1})
    if spec.counters:
        edits.append({"counters": ()})
    if spec.ack_round:
        edits.append({"ack_round": False})
    if spec.single_slot:
        edits.append({"single_slot": False})
    if spec.hole_server:
        edits.append({"hole_server": False})
    if spec.codec != "schema":
        edits.append({"codec": "schema"})
    if spec.invariants != INVARIANT_KINDS:
        edits.append({"invariants": INVARIANT_KINDS})
    canonical_actives = _canonical_actives(len(spec.active_states))
    if (
        dict(spec.messages) != _CANONICAL_MESSAGES
        or dict(spec.states) != _CANONICAL_STATES
        or spec.active_states != canonical_actives
    ):
        edits.append({
            "messages": dict(_CANONICAL_MESSAGES),
            "states": dict(_CANONICAL_STATES),
            "active_states": canonical_actives,
        })
    for edit in edits:
        try:
            yield spec.with_(**edit)
        except FuzzSpecError:
            continue


def shrink_spec(
    spec: ProtocolSpec,
    diverges: Callable[[ProtocolSpec], bool],
    max_rounds: int = 8,
    on_accept: Optional[Callable[[ProtocolSpec], None]] = None,
) -> ProtocolSpec:
    """Greedily reduce ``spec`` while ``diverges`` keeps holding.

    Args:
        spec: the divergent spec to reduce (must satisfy ``diverges``).
        diverges: the oracle — ``True`` while the interesting behaviour
            survives.  Called on every candidate; make it cheap.
        max_rounds: fixed-point cap (each round retries every reduction).
        on_accept: optional progress hook, called with each accepted
            intermediate spec.

    Returns:
        The reduced spec (``spec`` itself if nothing could be removed).
    """
    current = spec
    for _round in range(max_rounds):
        changed = False
        for candidate in _candidates(current):
            if candidate == current:
                continue
            try:
                still = diverges(candidate)
            except FuzzSpecError:
                continue
            if still:
                current = candidate
                changed = True
                if on_accept is not None:
                    on_accept(current)
                break  # restart the reduction order from the top
        if not changed:
            return current
    return current
