"""A directory-based MESI coherence protocol (scope extension).

The paper's conclusion calls for widening the tool's scope; MESI is the
natural next protocol after MSI.  The Exclusive state lets a cache that was
granted the only copy write *silently* (E -> M without any message) — which
means the directory cannot know whether its owner holds E or M, so it
tracks a combined ``EM`` owner state.  That one optimisation reshapes the
transient structure:

* the directory grants **exclusive data** (``DataE``) on a GetS when no
  other copy exists, and serialises through ``IE_A`` until the grantee
  acknowledges (the same serialisation idea as MSI's ``IM_A``);
* shared grants (``DataS``) need no acknowledgement;
* invalidating "the owner" must work for owners in E *or* M.

State layout is identical to the MSI module::

    (caches, dirst, owner, sharers, req, acks, net)

Cache states: I, S, E, M, IS_D, IM_D, SM_D, IS_D_I.
Directory states: I, S, EM, IE_A, SM_A, ES_A, EM_A.
Messages: GetS, GetM, DataS, DataE, Inv, InvAck, DataAck.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.action import Action
from repro.core.hole import Hole
from repro.errors import SynthesisError
from repro.mc.multiset import Multiset
from repro.mc.properties import CoverageProperty, DeadlockPolicy, Invariant
from repro.mc.rule import Rule
from repro.mc.symmetry import Permuter, ScalarSet
from repro.mc.system import TransitionSystem

# The MESI state tuple has byte-for-byte the same layout as MSI's
# ``(caches, dirst, owner, sharers, req, acks, net)``, so the sorted-replica
# fast-path projection is shared rather than duplicated.
from repro.protocols.msi.defs import packed_spec, replica_keys

# -- states ---------------------------------------------------------------------

C_I, C_S, C_E, C_M, C_IS_D, C_IM_D, C_SM_D, C_IS_D_I = range(8)
CACHE_STATE_NAMES = ("I", "S", "E", "M", "IS_D", "IM_D", "SM_D", "IS_D_I")
CACHE_STABLE = frozenset({C_I, C_S, C_E, C_M})

D_I, D_S, D_EM, D_IE_A, D_SM_A, D_ES_A, D_EM_A = range(7)
DIR_STATE_NAMES = ("I", "S", "EM", "IE_A", "SM_A", "ES_A", "EM_A")
DIR_STABLE = frozenset({D_I, D_S, D_EM})

GETS, GETM = "GetS", "GetM"
DATAS, DATAE = "DataS", "DataE"
INV, INVACK, DATAACK = "Inv", "InvAck", "DataAck"

#: states in which each cache-bound message is acceptable
CACHE_EXPECTS = {
    DATAS: frozenset({C_IS_D, C_IS_D_I}),
    DATAE: frozenset({C_IS_D, C_IM_D, C_SM_D, C_IS_D_I}),
    INV: frozenset(range(8)),  # invalidations are acked from anywhere
}
DIR_EXPECTS = {
    INVACK: frozenset({D_SM_A, D_ES_A, D_EM_A}),
    DATAACK: frozenset({D_IE_A}),
}

LOAD, STORE = "Load", "Store"
_SPONTANEOUS = frozenset({LOAD, STORE})

State = Tuple


def initial_state(n_caches: int) -> State:
    """All caches invalid, directory invalid, empty network."""
    return ((C_I,) * n_caches, D_I, -1, frozenset(), -1, 0, Multiset())


class View:
    """Mutable per-firing scratch copy (same shape as the MSI module's)."""

    __slots__ = ("caches", "dirst", "owner", "sharers", "req", "acks", "net")

    def __init__(self, state: State) -> None:
        caches, dirst, owner, sharers, req, acks, net = state
        self.caches = list(caches)
        self.dirst = dirst
        self.owner = owner
        self.sharers = sharers
        self.req = req
        self.acks = acks
        self.net = net

    def send(self, mtype: str, cache: int) -> None:
        """Put a message addressed to (or tagged with) ``cache`` in flight."""
        self.net = self.net.add((mtype, cache))

    def consume(self, mtype: str, cache: int) -> None:
        """Remove one in-flight message."""
        self.net = self.net.remove((mtype, cache))

    def goto_dir(self, code: int) -> None:
        """Move the directory; stable states clear transaction state."""
        self.dirst = code
        if code in DIR_STABLE:
            self.req = -1
            self.acks = 0

    def freeze(self) -> State:
        """Back to the immutable tuple representation."""
        return (
            tuple(self.caches), self.dirst, self.owner, self.sharers,
            self.req, self.acks, self.net,
        )


def permute_state(state: State, mapping: Tuple[int, ...]) -> State:
    """Rename cache indices throughout one state (symmetry support)."""
    caches, dirst, owner, sharers, req, acks, net = state
    new_caches = list(caches)
    for old_index, cache_state in enumerate(caches):
        new_caches[mapping[old_index]] = cache_state
    return (
        tuple(new_caches),
        dirst,
        -1 if owner < 0 else mapping[owner],
        frozenset(mapping[s] for s in sharers),
        -1 if req < 0 else mapping[req],
        acks,
        net.map(lambda msg: (msg[0], mapping[msg[1]])),
    )


# -- cache controller --------------------------------------------------------------

Handler = Callable[[View, int, object], None]

#: holeable transient completions: (response action, next state) by name
REFERENCE_CACHE_COMPLETIONS: Dict[Tuple[int, str], Tuple[str, str]] = {
    (C_IS_D, DATAS): ("none", "goto_S"),
    (C_IS_D, DATAE): ("send_dataack", "goto_E"),   # take the exclusive grant
    (C_IS_D, INV): ("send_invack", "goto_IS_D_I"),
    (C_IS_D_I, DATAS): ("none", "goto_I"),
    (C_IS_D_I, DATAE): ("send_dataack", "goto_I"),  # still must release IE_A
    (C_IM_D, DATAE): ("send_dataack", "goto_M"),
    (C_IM_D, INV): ("send_invack", "goto_IM_D"),
    (C_SM_D, DATAE): ("send_dataack", "goto_M"),
    (C_SM_D, INV): ("send_invack", "goto_IM_D"),
}

CACHE_TABLE_ORDER: Tuple[Tuple[int, str], ...] = (
    (C_I, LOAD),
    (C_I, STORE),
    (C_S, STORE),
    (C_E, STORE),
    (C_S, INV),
    (C_E, INV),
    (C_M, INV),
    (C_I, INV),
    (C_IM_D, DATAE),
    (C_IM_D, INV),
    (C_SM_D, DATAE),
    (C_SM_D, INV),
    (C_IS_D, DATAS),
    (C_IS_D, DATAE),
    (C_IS_D, INV),
    (C_IS_D_I, DATAS),
    (C_IS_D_I, DATAE),
)


def cache_response_domain() -> List[Action]:
    """Candidate responses for holeable cache rules."""
    return [
        Action("none", fn=lambda view, cache: None),
        Action("send_invack", fn=lambda view, cache: view.send(INVACK, cache)),
        Action("send_dataack", fn=lambda view, cache: view.send(DATAACK, cache)),
    ]


def cache_next_domain() -> List[Action]:
    """Candidate next-states for holeable cache rules."""
    return [
        Action(f"goto_{name}", payload=code)
        for code, name in enumerate(CACHE_STATE_NAMES)
    ]


def _completion_handler(response_name: str, next_name: str) -> Handler:
    response = {a.name: a for a in cache_response_domain()}[response_name]
    next_state = {a.name: a for a in cache_next_domain()}[next_name]

    def handler(view: View, cache: int, ctx: object) -> None:
        response.fn(view, cache)
        view.caches[cache] = next_state.payload

    return handler


def _holed_handler(response_hole: Hole, next_hole: Hole) -> Handler:
    def handler(view: View, cache: int, ctx) -> None:
        ctx.resolve(response_hole).fn(view, cache)
        view.caches[cache] = ctx.resolve(next_hole).payload

    return handler


def reference_cache_table() -> Dict[Tuple[int, str], Handler]:
    """The complete cache controller (transients from the reference table)."""
    def load(view, cache, ctx):
        view.send(GETS, cache)
        view.caches[cache] = C_IS_D

    def store_i(view, cache, ctx):
        view.send(GETM, cache)
        view.caches[cache] = C_IM_D

    def store_s(view, cache, ctx):
        view.send(GETM, cache)
        view.caches[cache] = C_SM_D

    def store_e(view, cache, ctx):
        # The MESI hallmark: silent upgrade, no directory traffic.
        view.caches[cache] = C_M

    def inv_ack_to_i(view, cache, ctx):
        view.send(INVACK, cache)
        view.caches[cache] = C_I

    def inv_stale(view, cache, ctx):
        view.send(INVACK, cache)

    table: Dict[Tuple[int, str], Handler] = {
        (C_I, LOAD): load,
        (C_I, STORE): store_i,
        (C_S, STORE): store_s,
        (C_E, STORE): store_e,
        (C_S, INV): inv_ack_to_i,
        (C_E, INV): inv_ack_to_i,
        (C_M, INV): inv_ack_to_i,
        (C_I, INV): inv_stale,
    }
    for key, names in REFERENCE_CACHE_COMPLETIONS.items():
        table[key] = _completion_handler(*names)
    return table


# -- directory controller --------------------------------------------------------------

#: holeable directory completions: (response, next, track) by name
REFERENCE_DIR_COMPLETIONS: Dict[Tuple[int, str], Tuple[str, str, str]] = {
    (D_IE_A, DATAACK): ("none", "goto_EM", "none"),
    (D_SM_A, INVACK): ("send_data_excl", "goto_IE_A", "owner_is_req"),
    (D_ES_A, INVACK): ("send_data_shared", "goto_S", "add_req_sharer"),
    (D_EM_A, INVACK): ("send_data_excl", "goto_IE_A", "owner_is_req"),
}

ACK_COUNTING = frozenset({(D_SM_A, INVACK), (D_ES_A, INVACK), (D_EM_A, INVACK)})

DIR_TABLE_ORDER: Tuple[Tuple[int, str], ...] = (
    (D_I, GETS),
    (D_I, GETM),
    (D_S, GETS),
    (D_S, GETM),
    (D_EM, GETS),
    (D_EM, GETM),
    (D_IE_A, DATAACK),
    (D_SM_A, INVACK),
    (D_ES_A, INVACK),
    (D_EM_A, INVACK),
)


def dir_response_domain() -> List[Action]:
    """Candidate responses for holeable directory rules."""
    def send_data_shared(view: View, cache: int) -> None:
        if view.req >= 0:
            view.send(DATAS, view.req)

    def send_data_excl(view: View, cache: int) -> None:
        if view.req >= 0:
            view.send(DATAE, view.req)

    def send_inv_sharers(view: View, cache: int) -> None:
        targets = view.sharers - ({view.req} if view.req >= 0 else set())
        for target in sorted(targets):
            view.send(INV, target)
        view.acks = len(targets)

    def send_inv_owner(view: View, cache: int) -> None:
        if view.owner >= 0:
            view.send(INV, view.owner)
            view.acks = 1

    return [
        Action("none", fn=lambda view, cache: None),
        Action("send_data_shared", fn=send_data_shared),
        Action("send_data_excl", fn=send_data_excl),
        Action("send_inv_sharers", fn=send_inv_sharers),
        Action("send_inv_owner", fn=send_inv_owner),
    ]


def dir_next_domain() -> List[Action]:
    """Candidate directory next-states."""
    return [
        Action(f"goto_{name}", payload=code)
        for code, name in enumerate(DIR_STATE_NAMES)
    ]


def dir_track_domain() -> List[Action]:
    """Candidate sharer/owner bookkeeping updates."""
    def owner_is_req(view: View, cache: int) -> None:
        if view.req >= 0:
            view.owner = view.req
            view.sharers = frozenset()

    def add_req_sharer(view: View, cache: int) -> None:
        if view.req >= 0:
            view.sharers = view.sharers | {view.req}
            view.owner = -1

    return [
        Action("none", fn=lambda view, cache: None),
        Action("owner_is_req", fn=owner_is_req),
        Action("add_req_sharer", fn=add_req_sharer),
    ]


_DIR_RESPONSES = {a.name: a for a in dir_response_domain()}
_DIR_TRACKS = {a.name: a for a in dir_track_domain()}
_DIR_NEXTS = {a.name: a for a in dir_next_domain()}


def _dir_triple(view: View, cache: int, response: str, nxt: str, track: str) -> None:
    _DIR_RESPONSES[response].fn(view, cache)
    _DIR_TRACKS[track].fn(view, cache)
    view.goto_dir(_DIR_NEXTS[nxt].payload)


def _dir_completion_handler(key, response: str, nxt: str, track: str) -> Handler:
    counts_acks = key in ACK_COUNTING

    def handler(view: View, cache: int, ctx: object) -> None:
        if counts_acks:
            view.acks -= 1
            if view.acks > 0:
                return
        _dir_triple(view, cache, response, nxt, track)

    return handler


def _dir_holed_handler(key, holes: Tuple[Hole, Hole, Hole]) -> Handler:
    response_hole, next_hole, track_hole = holes
    counts_acks = key in ACK_COUNTING

    def handler(view: View, cache: int, ctx) -> None:
        if counts_acks:
            view.acks -= 1
            if view.acks > 0:
                return
        ctx.resolve(response_hole).fn(view, cache)
        ctx.resolve(track_hole).fn(view, cache)
        view.goto_dir(ctx.resolve(next_hole).payload)

    return handler


def reference_dir_table() -> Dict[Tuple[int, str], Handler]:
    """The complete directory controller."""
    def gets_in_i(view, cache, ctx):
        # No other copy exists: grant *exclusive* (the E optimisation) and
        # serialise until the grantee acks.
        view.req = cache
        _dir_triple(view, cache, "send_data_excl", "goto_IE_A", "owner_is_req")

    def getm_in_i(view, cache, ctx):
        view.req = cache
        _dir_triple(view, cache, "send_data_excl", "goto_IE_A", "owner_is_req")

    def gets_in_s(view, cache, ctx):
        view.req = cache
        _dir_triple(view, cache, "send_data_shared", "goto_S", "add_req_sharer")

    def getm_in_s(view, cache, ctx):
        view.req = cache
        targets = view.sharers - {cache}
        if targets:
            _dir_triple(view, cache, "send_inv_sharers", "goto_SM_A", "none")
        else:
            _dir_triple(view, cache, "send_data_excl", "goto_IE_A", "owner_is_req")

    def gets_in_em(view, cache, ctx):
        view.req = cache
        _dir_triple(view, cache, "send_inv_owner", "goto_ES_A", "none")

    def getm_in_em(view, cache, ctx):
        view.req = cache
        _dir_triple(view, cache, "send_inv_owner", "goto_EM_A", "none")

    table: Dict[Tuple[int, str], Handler] = {
        (D_I, GETS): gets_in_i,
        (D_I, GETM): getm_in_i,
        (D_S, GETS): gets_in_s,
        (D_S, GETM): getm_in_s,
        (D_EM, GETS): gets_in_em,
        (D_EM, GETM): getm_in_em,
    }
    for key, names in REFERENCE_DIR_COMPLETIONS.items():
        table[key] = _dir_completion_handler(key, *names)
    return table


# -- properties -----------------------------------------------------------------------

_EXCLUSIVE = frozenset({C_E, C_M})
_READABLE = frozenset({C_S, C_E, C_M})


def _mesi_swmr(state) -> bool:
    caches = state[0]
    exclusive = sum(1 for c in caches if c in _EXCLUSIVE)
    readers = sum(1 for c in caches if c in _READABLE)
    if exclusive > 1:
        return False
    return not (exclusive == 1 and readers > 1)


def _no_unexpected_message(state) -> bool:
    caches, dirst, _owner, _sharers, _req, _acks, net = state
    for mtype, cache in net.distinct():
        expected_cache = CACHE_EXPECTS.get(mtype)
        if expected_cache is not None:
            if caches[cache] not in expected_cache:
                return False
            continue
        expected_dir = DIR_EXPECTS.get(mtype)
        if expected_dir is not None and dirst not in expected_dir:
            return False
    return True


def _dir_bookkeeping(state) -> bool:
    _caches, dirst, owner, sharers, _req, _acks, _net = state
    if dirst == D_EM and owner < 0:
        return False
    if dirst == D_S and not sharers:
        return False
    return True


_WAIT_EXPECTATIONS = {
    C_IS_D: (GETS, DATAS, DATAE, INV),
    C_IS_D_I: (GETS, DATAS, DATAE),
    C_IM_D: (GETM, DATAE, INV),
    C_SM_D: (GETM, DATAE, INV),
}


def _no_orphaned_wait(state) -> bool:
    caches, dirst, _owner, _sharers, req, _acks, net = state
    for index, cache_state in enumerate(caches):
        expected = _WAIT_EXPECTATIONS.get(cache_state)
        if expected is None:
            continue
        if req == index and dirst not in DIR_STABLE:
            continue
        if any((mtype, index) in net for mtype in expected):
            continue
        return False
    return True


def _quiescent(state) -> bool:
    caches, dirst, _owner, _sharers, _req, _acks, net = state
    if net:
        return False
    if dirst not in DIR_STABLE:
        return False
    return all(c in CACHE_STABLE for c in caches)


def mesi_invariants(n_caches: int) -> List[Invariant]:
    """Safety property set: coherence plus message/bookkeeping integrity."""
    bound = 2 * n_caches + 2
    return [
        Invariant("swmr", _mesi_swmr),
        Invariant("no-unexpected-message", _no_unexpected_message),
        Invariant("dir-bookkeeping", _dir_bookkeeping),
        Invariant("no-orphaned-wait", _no_orphaned_wait),
        Invariant("network-bounded", lambda s, _b=bound: len(s[6]) <= _b),
    ]


def mesi_coverage(n_caches: int) -> List[CoverageProperty]:
    """Coverage: every stable state must actually be used."""
    properties = [
        CoverageProperty("some-cache-reaches-E", lambda s: C_E in s[0]),
        CoverageProperty("some-cache-reaches-M", lambda s: C_M in s[0]),
        CoverageProperty("dir-reaches-EM", lambda s: s[1] == D_EM),
    ]
    if n_caches >= 2:
        # A lone cache is always granted exclusively; S needs two readers.
        properties.extend(
            [
                CoverageProperty("some-cache-reaches-S", lambda s: C_S in s[0]),
                CoverageProperty("dir-reaches-S", lambda s: s[1] == D_S),
            ]
        )
    return properties


# -- assembly -------------------------------------------------------------------------


def _cache_rule(c: int, state_code: int, event: str, handler: Handler) -> Rule:
    state_name = CACHE_STATE_NAMES[state_code]
    if event in _SPONTANEOUS:
        def guard(state, _c=c, _code=state_code):
            return state[0][_c] == _code
    else:
        def guard(state, _c=c, _code=state_code, _ev=event):
            return state[0][_c] == _code and (_ev, _c) in state[6]

    def apply(state, ctx, _c=c, _ev=event, _handler=handler):
        view = View(state)
        if _ev not in _SPONTANEOUS:
            view.consume(_ev, _c)
        _handler(view, _c, ctx)
        return [view.freeze()]

    return Rule(f"cache{c}:{state_name}+{event}", guard, apply, params={"c": c})


def _dir_rule(c: int, state_code: int, event: str, handler: Handler) -> Rule:
    state_name = DIR_STATE_NAMES[state_code]

    def guard(state, _c=c, _code=state_code, _ev=event):
        return state[1] == _code and (_ev, _c) in state[6]

    def apply(state, ctx, _c=c, _ev=event, _handler=handler):
        view = View(state)
        view.consume(_ev, _c)
        _handler(view, _c, ctx)
        return [view.freeze()]

    return Rule(f"dir:{state_name}+{event}[c={c}]", guard, apply, params={"c": c})


def build_mesi_system(
    n_caches: int = 2,
    cache_table: Optional[Dict] = None,
    dir_table: Optional[Dict] = None,
    name: str = "mesi",
    symmetry: bool = True,
    coverage: bool = True,
) -> TransitionSystem:
    """The complete MESI protocol (or a skeleton when tables are passed)."""
    if n_caches < 1:
        raise ValueError("n_caches must be >= 1")
    cache_table = cache_table if cache_table is not None else reference_cache_table()
    dir_table = dir_table if dir_table is not None else reference_dir_table()

    rules = []
    for c in range(n_caches):
        for key in CACHE_TABLE_ORDER:
            if key in cache_table:
                rules.append(_cache_rule(c, key[0], key[1], cache_table[key]))
    for key in DIR_TABLE_ORDER:
        if key in dir_table:
            for c in range(n_caches):
                rules.append(_dir_rule(c, key[0], key[1], dir_table[key]))

    canonicalize = None
    if symmetry and n_caches > 1:
        permuter = Permuter.for_single(
            ScalarSet("cache", n_caches), permute_state,
            replica_keys=replica_keys,
        )
        canonicalize = permuter.make_canonicalizer()

    return TransitionSystem(
        name=f"{name}-{n_caches}c",
        initial_states=[initial_state(n_caches)],
        rules=rules,
        invariants=mesi_invariants(n_caches),
        coverage=mesi_coverage(n_caches) if coverage else [],
        deadlock=DeadlockPolicy.fail(quiescent=_quiescent),
        canonicalize=canonicalize,
        # MESI shares the MSI 7-tuple layout, so the discovery spec is shared.
        packed_spec=packed_spec(n_caches, symmetry=symmetry),
    )


# -- skeletons -------------------------------------------------------------------------

REFERENCE_ASSIGNMENT_NAMES: Dict[str, str] = {}
for (code, event), (resp, nxt) in REFERENCE_CACHE_COMPLETIONS.items():
    _rule = f"{CACHE_STATE_NAMES[code]}+{event}"
    REFERENCE_ASSIGNMENT_NAMES[f"mesi.cache.{_rule}.response"] = resp
    REFERENCE_ASSIGNMENT_NAMES[f"mesi.cache.{_rule}.next"] = nxt
for (code, event), (resp, nxt, track) in REFERENCE_DIR_COMPLETIONS.items():
    _rule = f"{DIR_STATE_NAMES[code]}+{event}"
    REFERENCE_ASSIGNMENT_NAMES[f"mesi.dir.{_rule}.response"] = resp
    REFERENCE_ASSIGNMENT_NAMES[f"mesi.dir.{_rule}.next"] = nxt
    REFERENCE_ASSIGNMENT_NAMES[f"mesi.dir.{_rule}.track"] = track


def build_mesi_skeleton(
    cache_rules: Tuple[Tuple[int, str], ...] = ((C_IS_D, DATAE),),
    dir_rules: Tuple[Tuple[int, str], ...] = (),
    n_caches: int = 2,
    coverage: bool = True,
) -> Tuple[TransitionSystem, List[Hole]]:
    """A MESI skeleton with the given transient rules blanked out.

    The default holes the exclusive-grant arrival (IS_D+DataE): should the
    cache take E, and must it acknowledge?  Only (send_dataack, goto_E)
    satisfies the coverage property that some cache actually reaches E.
    """
    cache_table = reference_cache_table()
    dir_table = reference_dir_table()
    holes: List[Hole] = []

    for key in cache_rules:
        if key not in REFERENCE_CACHE_COMPLETIONS:
            raise SynthesisError(f"cache rule {key} is not holeable")
        rule = f"{CACHE_STATE_NAMES[key[0]]}+{key[1]}"
        response = Hole(f"mesi.cache.{rule}.response", cache_response_domain())
        next_state = Hole(f"mesi.cache.{rule}.next", cache_next_domain())
        cache_table[key] = _holed_handler(response, next_state)
        holes.extend([response, next_state])

    for key in dir_rules:
        if key not in REFERENCE_DIR_COMPLETIONS:
            raise SynthesisError(f"directory rule {key} is not holeable")
        rule = f"{DIR_STATE_NAMES[key[0]]}+{key[1]}"
        triple = (
            Hole(f"mesi.dir.{rule}.response", dir_response_domain()),
            Hole(f"mesi.dir.{rule}.next", dir_next_domain()),
            Hole(f"mesi.dir.{rule}.track", dir_track_domain()),
        )
        dir_table[key] = _dir_holed_handler(key, triple)
        holes.extend(triple)

    system = build_mesi_system(
        n_caches=n_caches,
        cache_table=cache_table,
        dir_table=dir_table,
        name="mesi-skeleton",
        coverage=coverage,
    )
    return system, holes


def reference_assignment_for(holes: List[Hole]) -> Dict[str, str]:
    """Restrict the full reference assignment to the given holes."""
    return {hole.name: REFERENCE_ASSIGNMENT_NAMES[hole.name] for hole in holes}
