"""A directory-based MOESI coherence protocol (scope extension).

MOESI adds the **Owned** state to MESI: a cache whose dirty line is read by
another cache does not write back and invalidate — it *keeps* the dirty data
in state ``O`` and supplies it to readers itself.  That one optimisation
changes the directory's shape:

* a ``GetS`` hitting an ``EM`` or ``O`` owner is **forwarded**
  (``FwdGetS``) instead of answered from memory; the owner sends the data
  straight to the requester and tells the directory how it reacted —
  ``AckO`` ("I kept ownership", the M -> O hallmark transition) or ``AckS``
  ("I was clean, I downgraded to S");
* the directory therefore has a stable **O** state (a dirty owner *plus*
  sharers) in addition to MESI's ``EM``, and a ``GetM`` arriving in ``O``
  must invalidate the sharers *and* the owner before granting.

State layout is byte-for-byte the MSI/MESI tuple::

    (caches, dirst, owner, sharers, req, acks, net)

Cache states: I, S, E, O, M, IS_D, IM_D, SM_D, OM_A, IS_D_I.
Directory states: I, S, EM, O, IE_A, SM_A, EM_A, EO_A, OM_AD.
Messages: GetS, GetM, DataS, DataE, Inv, InvAck, DataAck, FwdGetS, AckO,
AckS.

Because the model carries no concrete data values, data-value integrity is
expressed as the **owner-holds-data** invariant: whenever the directory's
stable state says a cache is responsible for supplying data, that cache is
in a state in which it actually has the data (see
:func:`moesi_invariants`).  A designated seeded bug
(``build_moesi_system(..., bug="no-owner-inv")``) grants exclusive access
without invalidating the owner and is caught by the coherence invariant.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.action import Action
from repro.core.hole import Hole
from repro.errors import SynthesisError
from repro.mc.multiset import Multiset
from repro.mc.properties import CoverageProperty, DeadlockPolicy, Invariant
from repro.mc.rule import Rule
from repro.mc.symmetry import Permuter, ScalarSet
from repro.mc.system import TransitionSystem

# Same 7-tuple layout as MSI/MESI, so the sorted-replica fast path is shared.
from repro.protocols.msi.defs import packed_spec, replica_keys

# -- states ---------------------------------------------------------------------

(
    C_I,
    C_S,
    C_E,
    C_O,
    C_M,
    C_IS_D,
    C_IM_D,
    C_SM_D,
    C_OM_A,
    C_IS_D_I,
) = range(10)
CACHE_STATE_NAMES = ("I", "S", "E", "O", "M", "IS_D", "IM_D", "SM_D", "OM_A", "IS_D_I")
CACHE_STABLE = frozenset({C_I, C_S, C_E, C_O, C_M})
#: cache states that hold a current copy of the line
CACHE_OWNERLIKE = frozenset({C_E, C_O, C_M, C_OM_A})

D_I, D_S, D_EM, D_O, D_IE_A, D_SM_A, D_EM_A, D_EO_A, D_OM_AD = range(9)
DIR_STATE_NAMES = ("I", "S", "EM", "O", "IE_A", "SM_A", "EM_A", "EO_A", "OM_AD")
DIR_STABLE = frozenset({D_I, D_S, D_EM, D_O})

GETS, GETM = "GetS", "GetM"
DATAS, DATAE = "DataS", "DataE"
INV, INVACK, DATAACK = "Inv", "InvAck", "DataAck"
FWDGETS, ACKO, ACKS = "FwdGetS", "AckO", "AckS"

#: states in which each cache-bound message is acceptable
CACHE_EXPECTS = {
    DATAS: frozenset({C_IS_D, C_IS_D_I}),
    DATAE: frozenset({C_IS_D, C_IM_D, C_SM_D, C_OM_A, C_IS_D_I}),
    INV: frozenset(range(10)),  # invalidations are acked from anywhere
    FWDGETS: CACHE_OWNERLIKE,  # forwards only ever reach a data holder
}
DIR_EXPECTS = {
    INVACK: frozenset({D_SM_A, D_EM_A, D_OM_AD}),
    DATAACK: frozenset({D_IE_A}),
    ACKO: frozenset({D_EO_A}),
    ACKS: frozenset({D_EO_A}),
}

LOAD, STORE = "Load", "Store"
_SPONTANEOUS = frozenset({LOAD, STORE})

State = Tuple

#: seeded-bug names accepted by :func:`build_moesi_system`
BUGS = ("no-owner-inv",)


def initial_state(n_caches: int) -> State:
    """All caches invalid, directory invalid, empty network."""
    return ((C_I,) * n_caches, D_I, -1, frozenset(), -1, 0, Multiset())


class View:
    """Mutable per-firing scratch copy (same shape as the MESI module's)."""

    __slots__ = ("caches", "dirst", "owner", "sharers", "req", "acks", "net")

    def __init__(self, state: State) -> None:
        caches, dirst, owner, sharers, req, acks, net = state
        self.caches = list(caches)
        self.dirst = dirst
        self.owner = owner
        self.sharers = sharers
        self.req = req
        self.acks = acks
        self.net = net

    def send(self, mtype: str, cache: int) -> None:
        """Put a message addressed to (or tagged with) ``cache`` in flight."""
        self.net = self.net.add((mtype, cache))

    def consume(self, mtype: str, cache: int) -> None:
        """Remove one in-flight message."""
        self.net = self.net.remove((mtype, cache))

    def goto_dir(self, code: int) -> None:
        """Move the directory; entering a stable state clears transaction state."""
        self.dirst = code
        if code in DIR_STABLE:
            self.req = -1
            self.acks = 0

    def freeze(self) -> State:
        """Back to the immutable tuple representation."""
        return (
            tuple(self.caches), self.dirst, self.owner, self.sharers,
            self.req, self.acks, self.net,
        )


def permute_state(state: State, mapping: Tuple[int, ...]) -> State:
    """Rename cache indices throughout one state (symmetry support)."""
    caches, dirst, owner, sharers, req, acks, net = state
    new_caches = list(caches)
    for old_index, cache_state in enumerate(caches):
        new_caches[mapping[old_index]] = cache_state
    return (
        tuple(new_caches),
        dirst,
        -1 if owner < 0 else mapping[owner],
        frozenset(mapping[s] for s in sharers),
        -1 if req < 0 else mapping[req],
        acks,
        net.map(lambda msg: (msg[0], mapping[msg[1]])),
    )


# -- cache controller --------------------------------------------------------------

Handler = Callable[[View, int, object], None]

#: holeable transient completions: (response action, next state) by name
REFERENCE_CACHE_COMPLETIONS: Dict[Tuple[int, str], Tuple[str, str]] = {
    # The MOESI hallmark: a dirty owner serves the reader and keeps the
    # line in Owned instead of writing back.
    (C_M, FWDGETS): ("fwd_data_keep", "goto_O"),
    (C_E, FWDGETS): ("fwd_data_release", "goto_S"),
    (C_O, FWDGETS): ("fwd_data_keep", "goto_O"),
    (C_OM_A, FWDGETS): ("fwd_data_keep", "goto_OM_A"),
    (C_OM_A, DATAE): ("send_dataack", "goto_M"),
    (C_OM_A, INV): ("send_invack", "goto_IM_D"),
    (C_IS_D, DATAS): ("none", "goto_S"),
    (C_IS_D, DATAE): ("send_dataack", "goto_E"),
    (C_IS_D, INV): ("send_invack", "goto_IS_D_I"),
    (C_IS_D_I, DATAS): ("none", "goto_I"),
    (C_IS_D_I, DATAE): ("send_dataack", "goto_I"),
    (C_IM_D, DATAE): ("send_dataack", "goto_M"),
    (C_IM_D, INV): ("send_invack", "goto_IM_D"),
    (C_SM_D, DATAE): ("send_dataack", "goto_M"),
    (C_SM_D, INV): ("send_invack", "goto_IM_D"),
}

CACHE_TABLE_ORDER: Tuple[Tuple[int, str], ...] = (
    (C_I, LOAD),
    (C_I, STORE),
    (C_S, STORE),
    (C_E, STORE),
    (C_O, STORE),
    (C_S, INV),
    (C_E, INV),
    (C_O, INV),
    (C_M, INV),
    (C_I, INV),
    (C_M, FWDGETS),
    (C_E, FWDGETS),
    (C_O, FWDGETS),
    (C_OM_A, FWDGETS),
    (C_OM_A, DATAE),
    (C_OM_A, INV),
    (C_IM_D, DATAE),
    (C_IM_D, INV),
    (C_SM_D, DATAE),
    (C_SM_D, INV),
    (C_IS_D, DATAS),
    (C_IS_D, DATAE),
    (C_IS_D, INV),
    (C_IS_D_I, DATAS),
    (C_IS_D_I, DATAE),
)


def cache_response_domain() -> List[Action]:
    """Candidate responses for holeable cache rules.

    ``fwd_data_keep``/``fwd_data_release`` implement the owner side of a
    forwarded read: data goes straight to the directory's recorded
    requester, and the directory is told whether ownership was retained.
    """

    def fwd_data_keep(view: View, cache: int) -> None:
        if view.req >= 0:
            view.send(DATAS, view.req)
        view.send(ACKO, cache)

    def fwd_data_release(view: View, cache: int) -> None:
        if view.req >= 0:
            view.send(DATAS, view.req)
        view.send(ACKS, cache)

    return [
        Action("none", fn=lambda view, cache: None),
        Action("send_invack", fn=lambda view, cache: view.send(INVACK, cache)),
        Action("send_dataack", fn=lambda view, cache: view.send(DATAACK, cache)),
        Action("fwd_data_keep", fn=fwd_data_keep),
        Action("fwd_data_release", fn=fwd_data_release),
    ]


def cache_next_domain() -> List[Action]:
    """Candidate next-states for holeable cache rules (all ten states)."""
    return [
        Action(f"goto_{name}", payload=code)
        for code, name in enumerate(CACHE_STATE_NAMES)
    ]


def _completion_handler(response_name: str, next_name: str) -> Handler:
    response = {a.name: a for a in cache_response_domain()}[response_name]
    next_state = {a.name: a for a in cache_next_domain()}[next_name]

    def handler(view: View, cache: int, ctx: object) -> None:
        response.fn(view, cache)
        view.caches[cache] = next_state.payload

    return handler


def _holed_handler(response_hole: Hole, next_hole: Hole) -> Handler:
    def handler(view: View, cache: int, ctx) -> None:
        ctx.resolve(response_hole).fn(view, cache)
        view.caches[cache] = ctx.resolve(next_hole).payload

    return handler


def reference_cache_table() -> Dict[Tuple[int, str], Handler]:
    """The complete cache controller (transients from the reference table)."""

    def load(view, cache, ctx):
        view.send(GETS, cache)
        view.caches[cache] = C_IS_D

    def store_i(view, cache, ctx):
        view.send(GETM, cache)
        view.caches[cache] = C_IM_D

    def store_s(view, cache, ctx):
        view.send(GETM, cache)
        view.caches[cache] = C_SM_D

    def store_e(view, cache, ctx):
        # Inherited MESI hallmark: silent upgrade, no directory traffic.
        view.caches[cache] = C_M

    def store_o(view, cache, ctx):
        # An owner cannot upgrade silently — sharers must be invalidated.
        view.send(GETM, cache)
        view.caches[cache] = C_OM_A

    def inv_ack_to_i(view, cache, ctx):
        view.send(INVACK, cache)
        view.caches[cache] = C_I

    def inv_stale(view, cache, ctx):
        view.send(INVACK, cache)

    table: Dict[Tuple[int, str], Handler] = {
        (C_I, LOAD): load,
        (C_I, STORE): store_i,
        (C_S, STORE): store_s,
        (C_E, STORE): store_e,
        (C_O, STORE): store_o,
        (C_S, INV): inv_ack_to_i,
        (C_E, INV): inv_ack_to_i,
        (C_O, INV): inv_ack_to_i,
        (C_M, INV): inv_ack_to_i,
        (C_I, INV): inv_stale,
    }
    for key, names in REFERENCE_CACHE_COMPLETIONS.items():
        table[key] = _completion_handler(*names)
    return table


# -- directory controller --------------------------------------------------------------

#: holeable directory completions: (response, next, track) by name
REFERENCE_DIR_COMPLETIONS: Dict[Tuple[int, str], Tuple[str, str, str]] = {
    (D_IE_A, DATAACK): ("none", "goto_EM", "none"),
    (D_SM_A, INVACK): ("send_data_excl", "goto_IE_A", "owner_is_req"),
    (D_EM_A, INVACK): ("send_data_excl", "goto_IE_A", "owner_is_req"),
    (D_OM_AD, INVACK): ("send_data_excl", "goto_IE_A", "owner_is_req"),
    (D_EO_A, ACKO): ("none", "goto_O", "add_req_sharer"),
    (D_EO_A, ACKS): ("none", "goto_S", "release_owner_shared"),
}

ACK_COUNTING = frozenset({(D_SM_A, INVACK), (D_EM_A, INVACK), (D_OM_AD, INVACK)})

DIR_TABLE_ORDER: Tuple[Tuple[int, str], ...] = (
    (D_I, GETS),
    (D_I, GETM),
    (D_S, GETS),
    (D_S, GETM),
    (D_EM, GETS),
    (D_EM, GETM),
    (D_O, GETS),
    (D_O, GETM),
    (D_IE_A, DATAACK),
    (D_SM_A, INVACK),
    (D_EM_A, INVACK),
    (D_OM_AD, INVACK),
    (D_EO_A, ACKO),
    (D_EO_A, ACKS),
)


def dir_response_domain() -> List[Action]:
    """Candidate responses for holeable directory rules."""

    def send_data_shared(view: View, cache: int) -> None:
        if view.req >= 0:
            view.send(DATAS, view.req)

    def send_data_excl(view: View, cache: int) -> None:
        if view.req >= 0:
            view.send(DATAE, view.req)

    def send_inv_sharers(view: View, cache: int) -> None:
        targets = view.sharers - ({view.req} if view.req >= 0 else set())
        for target in sorted(targets):
            view.send(INV, target)
        view.acks = len(targets)

    def send_inv_owner(view: View, cache: int) -> None:
        if view.owner >= 0:
            view.send(INV, view.owner)
            view.acks = 1

    def send_fwd_gets(view: View, cache: int) -> None:
        if view.owner >= 0:
            view.send(FWDGETS, view.owner)

    return [
        Action("none", fn=lambda view, cache: None),
        Action("send_data_shared", fn=send_data_shared),
        Action("send_data_excl", fn=send_data_excl),
        Action("send_inv_sharers", fn=send_inv_sharers),
        Action("send_inv_owner", fn=send_inv_owner),
        Action("send_fwd_gets", fn=send_fwd_gets),
    ]


def dir_next_domain() -> List[Action]:
    """Candidate directory next-states (all nine states)."""
    return [
        Action(f"goto_{name}", payload=code)
        for code, name in enumerate(DIR_STATE_NAMES)
    ]


def dir_track_domain() -> List[Action]:
    """Candidate sharer/owner bookkeeping updates."""

    def owner_is_req(view: View, cache: int) -> None:
        if view.req >= 0:
            view.owner = view.req
            view.sharers = frozenset()

    def add_req_sharer(view: View, cache: int) -> None:
        if view.req >= 0:
            view.sharers = view.sharers | {view.req}

    def release_owner_shared(view: View, cache: int) -> None:
        extra = {view.req} if view.req >= 0 else set()
        if view.owner >= 0:
            extra = extra | {view.owner}
        view.sharers = view.sharers | extra
        view.owner = -1

    return [
        Action("none", fn=lambda view, cache: None),
        Action("owner_is_req", fn=owner_is_req),
        Action("add_req_sharer", fn=add_req_sharer),
        Action("release_owner_shared", fn=release_owner_shared),
    ]


_DIR_RESPONSES = {a.name: a for a in dir_response_domain()}
_DIR_TRACKS = {a.name: a for a in dir_track_domain()}
_DIR_NEXTS = {a.name: a for a in dir_next_domain()}


def _dir_triple(view: View, cache: int, response: str, nxt: str, track: str) -> None:
    _DIR_RESPONSES[response].fn(view, cache)
    _DIR_TRACKS[track].fn(view, cache)
    view.goto_dir(_DIR_NEXTS[nxt].payload)


def _dir_completion_handler(key, response: str, nxt: str, track: str) -> Handler:
    counts_acks = key in ACK_COUNTING

    def handler(view: View, cache: int, ctx: object) -> None:
        if counts_acks:
            view.acks -= 1
            if view.acks > 0:
                return
        _dir_triple(view, cache, response, nxt, track)

    return handler


def _dir_holed_handler(key, holes: Tuple[Hole, Hole, Hole]) -> Handler:
    response_hole, next_hole, track_hole = holes
    counts_acks = key in ACK_COUNTING

    def handler(view: View, cache: int, ctx) -> None:
        if counts_acks:
            view.acks -= 1
            if view.acks > 0:
                return
        ctx.resolve(response_hole).fn(view, cache)
        ctx.resolve(track_hole).fn(view, cache)
        view.goto_dir(ctx.resolve(next_hole).payload)

    return handler


def reference_dir_table(bug: Optional[str] = None) -> Dict[Tuple[int, str], Handler]:
    """The complete directory controller.

    ``bug="no-owner-inv"`` seeds the classic write-serialisation bug: a
    ``GetM`` arriving while the line is Owned grants exclusive access after
    collecting sharer acks but never invalidates the *owner*, so requester
    and owner end up writable/readable together (caught by ``swmr``).
    """

    def gets_in_i(view, cache, ctx):
        # No other copy exists: grant exclusive (the E optimisation) and
        # serialise until the grantee acks.
        view.req = cache
        _dir_triple(view, cache, "send_data_excl", "goto_IE_A", "owner_is_req")

    def getm_in_i(view, cache, ctx):
        view.req = cache
        _dir_triple(view, cache, "send_data_excl", "goto_IE_A", "owner_is_req")

    def gets_in_s(view, cache, ctx):
        view.req = cache
        _dir_triple(view, cache, "send_data_shared", "goto_S", "add_req_sharer")

    def getm_in_s(view, cache, ctx):
        view.req = cache
        targets = view.sharers - {cache}
        if targets:
            _dir_triple(view, cache, "send_inv_sharers", "goto_SM_A", "none")
        else:
            _dir_triple(view, cache, "send_data_excl", "goto_IE_A", "owner_is_req")

    def gets_in_em(view, cache, ctx):
        # MOESI divergence from MESI: the owner is *forwarded to*, not
        # invalidated — it answers the reader itself.
        view.req = cache
        _dir_triple(view, cache, "send_fwd_gets", "goto_EO_A", "none")

    def getm_in_em(view, cache, ctx):
        view.req = cache
        _dir_triple(view, cache, "send_inv_owner", "goto_EM_A", "none")

    def gets_in_o(view, cache, ctx):
        view.req = cache
        _dir_triple(view, cache, "send_fwd_gets", "goto_EO_A", "none")

    def getm_in_o(view, cache, ctx):
        view.req = cache
        targets = view.sharers - {cache}
        for target in sorted(targets):
            view.send(INV, target)
        acks = len(targets)
        if bug != "no-owner-inv" and view.owner != cache:
            view.send(INV, view.owner)
            acks += 1
        view.acks = acks
        if acks:
            view.goto_dir(D_OM_AD)
        else:
            # Nothing left to invalidate (only reachable with the seeded
            # bug, which skips the owner): grant immediately.
            _dir_triple(view, cache, "send_data_excl", "goto_IE_A", "owner_is_req")

    table: Dict[Tuple[int, str], Handler] = {
        (D_I, GETS): gets_in_i,
        (D_I, GETM): getm_in_i,
        (D_S, GETS): gets_in_s,
        (D_S, GETM): getm_in_s,
        (D_EM, GETS): gets_in_em,
        (D_EM, GETM): getm_in_em,
        (D_O, GETS): gets_in_o,
        (D_O, GETM): getm_in_o,
    }
    for key, names in REFERENCE_DIR_COMPLETIONS.items():
        table[key] = _dir_completion_handler(key, *names)
    return table


# -- properties -----------------------------------------------------------------------

_EXCLUSIVE = frozenset({C_E, C_M})
_READABLE = frozenset({C_S, C_E, C_O, C_M})
_OWNERSHIP = frozenset({C_E, C_O, C_M})


def _moesi_swmr(state) -> bool:
    caches = state[0]
    exclusive = sum(1 for c in caches if c in _EXCLUSIVE)
    owners = sum(1 for c in caches if c in _OWNERSHIP)
    readers = sum(1 for c in caches if c in _READABLE)
    if owners > 1:
        return False
    return not (exclusive == 1 and readers > 1)


def _no_unexpected_message(state) -> bool:
    caches, dirst, _owner, _sharers, _req, _acks, net = state
    for mtype, cache in net.distinct():
        expected_cache = CACHE_EXPECTS.get(mtype)
        if expected_cache is not None:
            if caches[cache] not in expected_cache:
                return False
            continue
        expected_dir = DIR_EXPECTS.get(mtype)
        if expected_dir is not None and dirst not in expected_dir:
            return False
    return True


def _dir_bookkeeping(state) -> bool:
    _caches, dirst, owner, sharers, _req, _acks, _net = state
    if dirst == D_EM and (owner < 0 or sharers):
        return False
    if dirst == D_O and (owner < 0 or not sharers or owner in sharers):
        return False
    if dirst == D_S and (not sharers or owner >= 0):
        return False
    return True


def _owner_holds_data(state) -> bool:
    """The data-integrity abstraction: the directory's designated supplier
    really is in a data-holding state, and recorded sharers really share.

    With no concrete values in the model, "the reader got the right data"
    reduces to "whoever the directory would have supply data actually has
    it" — a violated completion (e.g. an owner that acks ownership but
    drops the line) breaks this immediately.
    """
    caches, dirst, owner, sharers, _req, _acks, _net = state
    if dirst == D_EM and caches[owner] not in (C_E, C_M):
        return False
    if dirst == D_O and caches[owner] not in (C_O, C_OM_A):
        return False
    if dirst in (D_S, D_O):
        # A recorded sharer is either sharing already, upgrading, or still
        # waiting for its (in-flight) data response.
        for sharer in sharers:
            if caches[sharer] not in (C_S, C_SM_D, C_IS_D, C_IS_D_I):
                return False
    return True


_WAIT_EXPECTATIONS = {
    C_IS_D: (GETS, DATAS, DATAE, INV),
    C_IS_D_I: (GETS, DATAS, DATAE),
    C_IM_D: (GETM, DATAE, INV),
    C_SM_D: (GETM, DATAE, INV),
    C_OM_A: (GETM, DATAE, INV),
}


def _no_orphaned_wait(state) -> bool:
    caches, dirst, _owner, _sharers, req, _acks, net = state
    for index, cache_state in enumerate(caches):
        expected = _WAIT_EXPECTATIONS.get(cache_state)
        if expected is None:
            continue
        if req == index and dirst not in DIR_STABLE:
            continue
        if any((mtype, index) in net for mtype in expected):
            continue
        return False
    return True


def _quiescent(state) -> bool:
    caches, dirst, _owner, _sharers, _req, _acks, net = state
    if net:
        return False
    if dirst not in DIR_STABLE:
        return False
    return all(c in CACHE_STABLE for c in caches)


def moesi_invariants(n_caches: int) -> List[Invariant]:
    """Safety property set: coherence, message/bookkeeping/data integrity."""
    bound = 2 * n_caches + 3
    return [
        Invariant("swmr", _moesi_swmr),
        Invariant("no-unexpected-message", _no_unexpected_message),
        Invariant("dir-bookkeeping", _dir_bookkeeping),
        Invariant("owner-holds-data", _owner_holds_data),
        Invariant("no-orphaned-wait", _no_orphaned_wait),
        Invariant("network-bounded", lambda s, _b=bound: len(s[6]) <= _b),
    ]


def moesi_coverage(n_caches: int) -> List[CoverageProperty]:
    """Liveness-ish coverage: every stable state must actually be used."""
    properties = [
        CoverageProperty("some-cache-reaches-E", lambda s: C_E in s[0]),
        CoverageProperty("some-cache-reaches-M", lambda s: C_M in s[0]),
        CoverageProperty("dir-reaches-EM", lambda s: s[1] == D_EM),
    ]
    if n_caches >= 2:
        # O and S both need a second participant: O is entered when a
        # *different* cache reads a dirty line, S when two caches share.
        properties.extend(
            [
                CoverageProperty("some-cache-reaches-O", lambda s: C_O in s[0]),
                CoverageProperty("some-cache-reaches-S", lambda s: C_S in s[0]),
                CoverageProperty("dir-reaches-O", lambda s: s[1] == D_O),
                CoverageProperty("dir-reaches-S", lambda s: s[1] == D_S),
            ]
        )
    return properties


# -- assembly -------------------------------------------------------------------------


def _cache_rule(c: int, state_code: int, event: str, handler: Handler) -> Rule:
    state_name = CACHE_STATE_NAMES[state_code]
    if event in _SPONTANEOUS:
        def guard(state, _c=c, _code=state_code):
            return state[0][_c] == _code
    else:
        def guard(state, _c=c, _code=state_code, _ev=event):
            return state[0][_c] == _code and (_ev, _c) in state[6]

    def apply(state, ctx, _c=c, _ev=event, _handler=handler):
        view = View(state)
        if _ev not in _SPONTANEOUS:
            view.consume(_ev, _c)
        _handler(view, _c, ctx)
        return [view.freeze()]

    return Rule(f"cache{c}:{state_name}+{event}", guard, apply, params={"c": c})


def _dir_rule(c: int, state_code: int, event: str, handler: Handler) -> Rule:
    state_name = DIR_STATE_NAMES[state_code]

    def guard(state, _c=c, _code=state_code, _ev=event):
        return state[1] == _code and (_ev, _c) in state[6]

    def apply(state, ctx, _c=c, _ev=event, _handler=handler):
        view = View(state)
        view.consume(_ev, _c)
        _handler(view, _c, ctx)
        return [view.freeze()]

    return Rule(f"dir:{state_name}+{event}[c={c}]", guard, apply, params={"c": c})


def build_moesi_system(
    n_caches: int = 2,
    cache_table: Optional[Dict] = None,
    dir_table: Optional[Dict] = None,
    name: str = "moesi",
    symmetry: bool = True,
    coverage: bool = True,
    bug: Optional[str] = None,
) -> TransitionSystem:
    """The complete MOESI protocol (or a skeleton when tables are passed)."""
    if n_caches < 1:
        raise ValueError("n_caches must be >= 1")
    if bug is not None and bug not in BUGS:
        raise ValueError(f"unknown seeded bug {bug!r}; available: {', '.join(BUGS)}")
    cache_table = cache_table if cache_table is not None else reference_cache_table()
    dir_table = dir_table if dir_table is not None else reference_dir_table(bug=bug)

    rules = []
    for c in range(n_caches):
        for key in CACHE_TABLE_ORDER:
            if key in cache_table:
                rules.append(_cache_rule(c, key[0], key[1], cache_table[key]))
    for key in DIR_TABLE_ORDER:
        if key in dir_table:
            for c in range(n_caches):
                rules.append(_dir_rule(c, key[0], key[1], dir_table[key]))

    canonicalize = None
    if symmetry and n_caches > 1:
        permuter = Permuter.for_single(
            ScalarSet("cache", n_caches), permute_state,
            replica_keys=replica_keys,
        )
        canonicalize = permuter.make_canonicalizer()

    return TransitionSystem(
        name=f"{name}-{n_caches}c",
        initial_states=[initial_state(n_caches)],
        rules=rules,
        invariants=moesi_invariants(n_caches),
        coverage=moesi_coverage(n_caches) if coverage else [],
        deadlock=DeadlockPolicy.fail(quiescent=_quiescent),
        canonicalize=canonicalize,
        # MOESI shares the MSI 7-tuple layout, so the discovery spec is shared.
        packed_spec=packed_spec(n_caches, symmetry=symmetry),
    )


# -- skeletons -------------------------------------------------------------------------

REFERENCE_ASSIGNMENT_NAMES: Dict[str, str] = {}
for (code, event), (resp, nxt) in REFERENCE_CACHE_COMPLETIONS.items():
    _rule = f"{CACHE_STATE_NAMES[code]}+{event}"
    REFERENCE_ASSIGNMENT_NAMES[f"moesi.cache.{_rule}.response"] = resp
    REFERENCE_ASSIGNMENT_NAMES[f"moesi.cache.{_rule}.next"] = nxt
for (code, event), (resp, nxt, track) in REFERENCE_DIR_COMPLETIONS.items():
    _rule = f"{DIR_STATE_NAMES[code]}+{event}"
    REFERENCE_ASSIGNMENT_NAMES[f"moesi.dir.{_rule}.response"] = resp
    REFERENCE_ASSIGNMENT_NAMES[f"moesi.dir.{_rule}.next"] = nxt
    REFERENCE_ASSIGNMENT_NAMES[f"moesi.dir.{_rule}.track"] = track


def build_moesi_skeleton(
    cache_rules: Tuple[Tuple[int, str], ...] = ((C_M, FWDGETS),),
    dir_rules: Tuple[Tuple[int, str], ...] = (),
    n_caches: int = 2,
    coverage: bool = True,
) -> Tuple[TransitionSystem, List[Hole]]:
    """A MOESI skeleton with the given transient rules blanked out.

    The default holes the hallmark transition — a dirty owner receiving a
    forwarded read (M+FwdGetS): must the owner keep the line, and what does
    it tell the directory?  With coverage on, only the reference completion
    (``fwd_data_keep``, ``goto_O``) both serves the reader and actually
    reaches the Owned state.
    """
    cache_table = reference_cache_table()
    dir_table = reference_dir_table()
    holes: List[Hole] = []

    for key in cache_rules:
        if key not in REFERENCE_CACHE_COMPLETIONS:
            raise SynthesisError(f"cache rule {key} is not holeable")
        rule = f"{CACHE_STATE_NAMES[key[0]]}+{key[1]}"
        response = Hole(f"moesi.cache.{rule}.response", cache_response_domain())
        next_state = Hole(f"moesi.cache.{rule}.next", cache_next_domain())
        cache_table[key] = _holed_handler(response, next_state)
        holes.extend([response, next_state])

    for key in dir_rules:
        if key not in REFERENCE_DIR_COMPLETIONS:
            raise SynthesisError(f"directory rule {key} is not holeable")
        rule = f"{DIR_STATE_NAMES[key[0]]}+{key[1]}"
        triple = (
            Hole(f"moesi.dir.{rule}.response", dir_response_domain()),
            Hole(f"moesi.dir.{rule}.next", dir_next_domain()),
            Hole(f"moesi.dir.{rule}.track", dir_track_domain()),
        )
        dir_table[key] = _dir_holed_handler(key, triple)
        holes.extend(triple)

    system = build_moesi_system(
        n_caches=n_caches,
        cache_table=cache_table,
        dir_table=dir_table,
        name="moesi-skeleton",
        coverage=coverage,
    )
    return system, holes


def reference_assignment_for(holes: List[Hole]) -> Dict[str, str]:
    """Restrict the full reference assignment to the given holes."""
    return {hole.name: REFERENCE_ASSIGNMENT_NAMES[hole.name] for hole in holes}
