"""Named catalog of synthesis skeletons.

The catalog maps a stable string name to a builder producing a fresh
:class:`~repro.mc.system.TransitionSystem` skeleton for a given replica
count.  It exists for two consumers:

* the CLI (``python -m repro synth <name>``), and
* the distributed backend (:mod:`repro.dist`), whose worker processes
  cannot receive a ``TransitionSystem`` by pickle (rule bodies are
  closures) and instead *rebuild* it from a
  :class:`~repro.dist.messages.SystemSpec` naming a catalog entry.

Builders must be deterministic: rebuilding the same entry with the same
replica count must yield a system with identical rule order, hole names,
and hole action domains, because hole positions are correlated across
processes by name.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.mc.system import TransitionSystem
from repro.protocols.mesi import build_mesi_skeleton
from repro.protocols.msi import msi_large, msi_read_tiny, msi_small, msi_tiny
from repro.protocols.msi.skeleton import msi_evict
from repro.protocols.mutex import build_mutex_skeleton
from repro.protocols.toy import build_figure2_skeleton
from repro.protocols.vi import build_vi_skeleton

#: skeleton name -> builder(replicas) returning a TransitionSystem
SKELETON_BUILDERS: Dict[str, Callable[[int], TransitionSystem]] = {
    "msi-tiny": lambda n: msi_tiny(n).system,
    "msi-read-tiny": lambda n: msi_read_tiny(n).system,
    "msi-small": lambda n: msi_small(n).system,
    "msi-large": lambda n: msi_large(n).system,
    "msi-evict": lambda n: msi_evict(n).system,
    "mesi": lambda n: build_mesi_skeleton(n_caches=n)[0],
    "vi": lambda n: build_vi_skeleton(n)[0],
    "mutex": lambda n: build_mutex_skeleton(n)[0],
    "figure2": lambda n: build_figure2_skeleton(),
}


def skeleton_names() -> Tuple[str, ...]:
    return tuple(sorted(SKELETON_BUILDERS))


def build_skeleton(name: str, replicas: int = 2) -> TransitionSystem:
    """Build a fresh skeleton system for a catalog entry.

    Raises ``KeyError`` with the available names for unknown entries.
    """
    try:
        builder = SKELETON_BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown skeleton {name!r}; available: {', '.join(skeleton_names())}"
        ) from None
    return builder(replicas)
