"""Named catalog of protocols and synthesis skeletons.

The catalog is the single registry every consumer resolves protocol names
through:

* the CLI (``python -m repro verify/synth/list/matrix``),
* the distributed backend (:mod:`repro.dist`), whose worker processes
  cannot receive a ``TransitionSystem`` by pickle (rule bodies are
  closures) and instead *rebuild* it from a
  :class:`~repro.dist.messages.SystemSpec` naming a catalog entry, and
* the experiment-matrix runner (:mod:`repro.experiments`), which resolves
  every matrix cell's ``target`` here.

Each entry carries the metadata a human needs to pick a workload —
hole count, supported replica range, a one-line summary — which
``python -m repro list`` prints and ``docs/protocols.md`` expands on.

Builders must be deterministic: rebuilding the same entry with the same
replica count must yield a system with identical rule order, hole names,
and hole action domains, because hole positions are correlated across
processes by name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.core.hole import Hole
from repro.mc.system import TransitionSystem
from repro.protocols.german import build_german_skeleton, build_german_system
from repro.protocols.mesi import build_mesi_skeleton, build_mesi_system
from repro.protocols.moesi import build_moesi_skeleton, build_moesi_system
from repro.protocols.msi import msi_large, msi_read_tiny, msi_small, msi_tiny
from repro.protocols.msi.skeleton import msi_evict
from repro.protocols.msi.system import build_msi_system
from repro.protocols.mutex import build_mutex_skeleton, build_mutex_system
from repro.protocols.toy import build_figure2_skeleton_with_holes
from repro.protocols.vi import build_vi_skeleton, build_vi_system

#: a skeleton builder returning the system plus its hole objects
HoledBuilder = Callable[[int], Tuple[TransitionSystem, List[Hole]]]


@dataclass(frozen=True)
class SkeletonEntry:
    """One synthesisable skeleton in the catalog.

    Attributes:
        name: the stable CLI/catalog name.
        build: ``build(replicas) -> (system, holes)``; deterministic.
        holes: number of holes the skeleton exposes (for ``list`` and the
            docs gallery; the candidate space is the product of the hole
            arities and is reported per run).
        replicas: ``(minimum, suggested maximum)`` replica counts.  Below
            the minimum some holes are unreachable (their triggering race
            needs more participants); above the suggested maximum state
            spaces grow beyond interactive use.
        summary: one line for ``python -m repro list``.
    """

    name: str
    build: HoledBuilder
    holes: int
    replicas: Tuple[int, int]
    summary: str


def _from_msi(factory) -> HoledBuilder:
    def build(replicas: int):
        skeleton = factory(replicas)
        return skeleton.system, skeleton.holes

    return build


SKELETON_CATALOG: Dict[str, SkeletonEntry] = {
    entry.name: entry
    for entry in (
        SkeletonEntry(
            "figure2",
            lambda n: build_figure2_skeleton_with_holes(),
            holes=4,
            replicas=(1, 1),
            summary="the paper's Figure 2 toy chain (replica count ignored)",
        ),
        SkeletonEntry(
            "mutex",
            lambda n: build_mutex_skeleton(n),
            holes=2,
            replicas=(1, 4),
            summary="central-server mutual exclusion; client grant rule holed",
        ),
        SkeletonEntry(
            "vi",
            lambda n: build_vi_skeleton(n),
            holes=4,
            replicas=(1, 3),
            summary="VI migratory coherence; client data + dir ack rules holed",
        ),
        SkeletonEntry(
            "msi-tiny",
            _from_msi(msi_tiny),
            holes=2,
            replicas=(1, 3),
            summary="MSI write-path data arrival (IM_D+Data); space 21",
        ),
        SkeletonEntry(
            "msi-read-tiny",
            _from_msi(msi_read_tiny),
            holes=2,
            replicas=(1, 3),
            summary="MSI read-path data arrival; motivates stable-state coverage",
        ),
        SkeletonEntry(
            "msi-small",
            _from_msi(msi_small),
            holes=8,
            replicas=(2, 3),
            summary="Table I problem: 2 dir + 1 cache rules; space 231,525",
        ),
        SkeletonEntry(
            "msi-large",
            _from_msi(msi_large),
            holes=12,
            replicas=(2, 3),
            summary="Table I problem: 2 dir + 3 cache rules; space 102,102,525",
        ),
        SkeletonEntry(
            "msi-evict",
            _from_msi(msi_evict),
            holes=6,
            replicas=(2, 3),
            summary="MSI writeback-race transients (eviction extension)",
        ),
        SkeletonEntry(
            "mesi",
            lambda n: build_mesi_skeleton(n_caches=n),
            holes=2,
            replicas=(1, 3),
            summary="MESI exclusive-grant arrival (IS_D+DataE) holed",
        ),
        SkeletonEntry(
            "moesi-small",
            lambda n: build_moesi_skeleton(n_caches=n),
            holes=2,
            replicas=(2, 3),
            summary="MOESI hallmark: dirty owner's forwarded read (M+FwdGetS)",
        ),
        SkeletonEntry(
            "german-small",
            lambda n: build_german_skeleton(n),
            holes=2,
            replicas=(2, 3),
            summary="German directory protocol: the SE_W+Inv upgrade race",
        ),
    )
}

#: skeleton name -> builder(replicas) returning a TransitionSystem
#: (the original catalog surface; kept because every backend uses it)
SKELETON_BUILDERS: Dict[str, Callable[[int], TransitionSystem]] = {
    name: (lambda n, _entry=entry: _entry.build(n)[0])
    for name, entry in SKELETON_CATALOG.items()
}


def register_skeleton(entry: SkeletonEntry) -> None:
    """Add (or replace) a skeleton entry at runtime.

    Keeps :data:`SKELETON_CATALOG` and the derived
    :data:`SKELETON_BUILDERS` in sync.  Real protocols belong in the
    module-level table; this hook exists for demos and tests.
    """
    SKELETON_CATALOG[entry.name] = entry
    SKELETON_BUILDERS[entry.name] = lambda n, _entry=entry: _entry.build(n)[0]


def unregister_skeleton(name: str) -> None:
    """Remove a runtime-registered skeleton entry (missing names are fine)."""
    SKELETON_CATALOG.pop(name, None)
    SKELETON_BUILDERS.pop(name, None)


def skeleton_names() -> Tuple[str, ...]:
    """Sorted names of all registered skeletons."""
    return tuple(sorted(SKELETON_CATALOG))


def build_skeleton(name: str, replicas: int = 2) -> TransitionSystem:
    """Build a fresh skeleton system for a catalog entry.

    Raises ``KeyError`` with the available names for unknown entries.
    """
    return build_skeleton_with_holes(name, replicas)[0]


def build_skeleton_with_holes(
    name: str, replicas: int = 2
) -> Tuple[TransitionSystem, List[Hole]]:
    """Build a skeleton plus the hole objects embedded in it.

    The holes are the exact objects the returned system's rule bodies
    resolve, so they can seed a
    :class:`~repro.mc.context.FixedResolver` (e.g. for random candidate
    sampling).  Raises ``KeyError`` with the available names for unknown
    entries.
    """
    try:
        entry = SKELETON_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown skeleton {name!r}; available: {', '.join(skeleton_names())}"
        ) from None
    return entry.build(replicas)


# -- complete protocols (the ``verify`` side of the catalog) --------------------------


@dataclass(frozen=True)
class ProtocolEntry:
    """One complete (hole-free) protocol in the catalog.

    ``build(replicas, evictions=..., symmetry=...)`` returns a fresh
    system; builders ignore keywords they have no use for (only MSI has
    an eviction extension).
    """

    name: str
    build: Callable[..., TransitionSystem]
    replicas: Tuple[int, int]
    summary: str


PROTOCOL_CATALOG: Dict[str, ProtocolEntry] = {
    entry.name: entry
    for entry in (
        ProtocolEntry(
            "mutex",
            lambda n, evictions=False, symmetry=True: build_mutex_system(
                n, symmetry=symmetry
            ),
            replicas=(1, 5),
            summary="central-server mutual exclusion",
        ),
        ProtocolEntry(
            "vi",
            lambda n, evictions=False, symmetry=True: build_vi_system(
                n, symmetry=symmetry
            ),
            replicas=(1, 4),
            summary="VI migratory coherence (single validity token)",
        ),
        ProtocolEntry(
            "msi",
            lambda n, evictions=False, symmetry=True: build_msi_system(
                n, evictions=evictions, symmetry=symmetry
            ),
            replicas=(1, 4),
            summary="directory MSI (the paper's case study; --evictions extends it)",
        ),
        ProtocolEntry(
            "mesi",
            lambda n, evictions=False, symmetry=True: build_mesi_system(
                n, symmetry=symmetry
            ),
            replicas=(1, 4),
            summary="directory MESI (silent E->M upgrade)",
        ),
        ProtocolEntry(
            "moesi",
            lambda n, evictions=False, symmetry=True: build_moesi_system(
                n, symmetry=symmetry
            ),
            replicas=(1, 3),
            summary="directory MOESI (dirty sharing via the Owned state)",
        ),
        ProtocolEntry(
            "german",
            lambda n, evictions=False, symmetry=True: build_german_system(
                n, symmetry=symmetry
            ),
            replicas=(1, 3),
            summary="German directory protocol with data values (Murphi classic)",
        ),
    )
}

#: protocol name -> builder(replicas, evictions=..., symmetry=...)
PROTOCOL_BUILDERS: Dict[str, Callable[..., TransitionSystem]] = {
    name: entry.build for name, entry in PROTOCOL_CATALOG.items()
}


def protocol_names() -> Tuple[str, ...]:
    """Sorted names of all registered complete protocols."""
    return tuple(sorted(PROTOCOL_CATALOG))


def build_protocol(name: str, replicas: int = 2, **kwargs) -> TransitionSystem:
    """Build a fresh complete protocol for a catalog entry.

    Raises ``KeyError`` with the available names for unknown entries.
    """
    try:
        entry = PROTOCOL_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown protocol {name!r}; available: {', '.join(protocol_names())}"
        ) from None
    return entry.build(replicas, **kwargs)
