"""The German directory protocol (the classic Murphi/VerC3 benchmark),
built with the DSL — *with* data values.

Steffen German's protocol is the standard benchmark for parameterised
coherence verification: clients obtain shared or exclusive access to one
cache line from a central directory over three **explicit channels**:

* **channel 1** (requests): ``ReqS`` / ``ReqE``, client -> directory;
* **channel 2** (grants + invalidations): ``GntS`` / ``GntE`` / ``Inv``,
  directory -> client — a *single-slot* port: the directory does not start
  serving a new request while any channel-2 message is still in flight
  (the unordered-network equivalent of Murphi's ``Chan2[i].Cmd = Empty``
  guards);
* **channel 3** (invalidate acknowledgements): ``InvAck``, client ->
  directory, carrying the **written-back data** when the invalidated
  client held the line exclusively.

Unlike the other case studies this model carries a concrete data value:
grants carry memory data, exclusive clients *write* (toggling the value
and recording it in the ``aux`` ghost variable), and invalidate-acks write
dirty data back.  That makes the classic **data-value integrity**
properties expressible: every client holding the line sees the last value
written, and memory is current whenever no exclusive copy exists.

Client states: ``I``, ``IS_W`` (awaiting GntS), ``IE_W`` (awaiting GntE),
``S``, ``SE_W`` (upgrade requested from S), ``E``; each client also holds
its data copy.  Directory state: ``IDLE``, ``GS_W``/``GE_W`` (collecting
invalidate-acks before a shared/exclusive grant), plus the current
requester ``ptr``, the exclusive holder ``excl``, the sharer set ``shr``,
the pending-ack count, memory ``mem``, and the ghost ``aux``.

The holeable rule (used by the ``german-small`` skeleton) is the
protocol's subtle race: a client that requested an upgrade (``SE_W``) is
invalidated *before* its grant arrives.  The reference completion acks
with writeback and demotes the wait to ``IE_W`` — the exclusive grant is
still coming, but it must now be received from Invalid.

A designated seeded bug (``build_german_system(..., bug="stale-shared-grant")``)
grants shared access from memory without recalling the exclusive copy and
is caught by the safety property set (the directory's own bookkeeping
trips first; the same run also breaches coherence and stale-data
integrity a few steps later).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.action import Action
from repro.core.hole import Hole
from repro.dsl.builder import GLOBAL, ControllerSpec, ProtocolBuilder, StateView
from repro.dsl.fields import EnumField, IdField, IdSetField, RangeField, Schema
from repro.mc.properties import DeadlockPolicy
from repro.mc.state import Record
from repro.mc.system import TransitionSystem

# client control states
I, IS_W, IE_W, S, SE_W, E = "I", "IS_W", "IE_W", "S", "SE_W", "E"
# directory control states
IDLE, GS_W, GE_W = "IDLE", "GS_W", "GE_W"
# messages, by channel
REQS, REQE = "ReqS", "ReqE"                 # channel 1
GNTS, GNTE, INV = "GntS", "GntE", "Inv"     # channel 2 (single-slot port)
INVACK = "InvAck"                           # channel 3 (carries writeback)

CH2 = frozenset({GNTS, GNTE, INV})

#: seeded-bug names accepted by :func:`build_german_system`
BUGS = ("stale-shared-grant",)


def _initial_local() -> Record:
    return Record(st=I, d=0)


def _initial_glob() -> Record:
    return Record(st=IDLE, ptr=-1, excl=-1, shr=frozenset(), acks=0, mem=0, aux=0)


def _rename_glob(glob: Record, mapping: Tuple[int, ...]) -> Record:
    return Record(
        st=glob.st,
        ptr=-1 if glob.ptr < 0 else mapping[glob.ptr],
        excl=-1 if glob.excl < 0 else mapping[glob.excl],
        shr=frozenset(mapping[s] for s in glob.shr),
        acks=glob.acks,
        mem=glob.mem,
        aux=glob.aux,
    )


class _StatePattern:
    """Control-state predicate that prints as the state name.

    The builder derives rule names from the transition's state pattern, so
    a plain lambda would leak ``<function ...>`` into every rule name and
    trace; this wrapper keeps them readable (``client0:SE_W+Inv``).
    """

    __slots__ = ("pattern",)

    def __init__(self, pattern: str) -> None:
        self.pattern = pattern

    def __call__(self, local) -> bool:
        return local.st == self.pattern

    def __repr__(self) -> str:
        return self.pattern

    __str__ = __repr__


def _st(pattern: str) -> _StatePattern:
    """Local-state predicate matching on the control state only."""
    return _StatePattern(pattern)


_glob_st = _st  # the directory record exposes the same ``st`` field


def _ch2_clear(state, message) -> bool:
    """The single-slot channel-2 port: no grant/invalidate in flight.

    Guarding request *consumption* on this condition is the unordered-
    network rendering of Murphi's per-client ``Chan2`` capacity checks:
    the directory never overlaps two channel-2 conversations.
    """
    return not any(m.mtype in CH2 for m in state[2])


# -- client handlers -----------------------------------------------------------


def _client_want_shared(view: StateView, proc: int, ctx, message) -> None:
    view.send(REQS, proc, GLOBAL)
    view.become(proc, view.local(proc).update(st=IS_W))


def _client_want_excl(view: StateView, proc: int, ctx, message) -> None:
    view.send(REQE, proc, GLOBAL)
    view.become(proc, view.local(proc).update(st=IE_W))


def _client_upgrade(view: StateView, proc: int, ctx, message) -> None:
    view.send(REQE, proc, GLOBAL)
    view.become(proc, view.local(proc).update(st=SE_W))


def _client_store(view: StateView, proc: int, ctx, message) -> None:
    # The only place data is written; the ghost records the latest value.
    value = 1 - view.local(proc).d
    view.become(proc, view.local(proc).update(d=value))
    view.glob = view.glob.update(aux=value)


def _client_gnts(view: StateView, proc: int, ctx, message) -> None:
    view.become(proc, view.local(proc).update(st=S, d=message.payload))


def _client_gnte(view: StateView, proc: int, ctx, message) -> None:
    view.become(proc, view.local(proc).update(st=E, d=message.payload))


def _client_inv(view: StateView, proc: int, ctx, message) -> None:
    # Ack with writeback data; the directory decides whether it matters.
    view.send(INVACK, proc, GLOBAL, payload=view.local(proc).d)
    view.become(proc, view.local(proc).update(st=I))


def _client_sew_inv_reference(view: StateView, proc: int, ctx, message) -> None:
    # The subtle race: invalidated while the upgrade grant is pending.
    # Ack (with writeback) and keep waiting — but now from Invalid.
    view.send(INVACK, proc, GLOBAL, payload=view.local(proc).d)
    view.become(proc, view.local(proc).update(st=IE_W))


# -- directory handlers -----------------------------------------------------------


def _dir_reqs(view: StateView, proc: int, ctx, message) -> None:
    glob = view.glob
    src = message.src
    if glob.excl >= 0:
        # An exclusive copy exists: recall it before granting from memory.
        view.send(INV, GLOBAL, glob.excl)
        view.glob = glob.update(st=GS_W, ptr=src, acks=1)
    else:
        view.send(GNTS, GLOBAL, src, payload=glob.mem)
        view.glob = glob.update(shr=glob.shr | {src})


def _dir_reqs_stale_grant(view: StateView, proc: int, ctx, message) -> None:
    # Seeded bug: grant from (possibly stale) memory without the recall.
    glob = view.glob
    view.send(GNTS, GLOBAL, message.src, payload=glob.mem)
    view.glob = glob.update(shr=glob.shr | {message.src})


def _dir_reqe(view: StateView, proc: int, ctx, message) -> None:
    glob = view.glob
    src = message.src
    targets = set(glob.shr) - {src}
    if glob.excl >= 0:
        targets.add(glob.excl)
    if not targets:
        view.send(GNTE, GLOBAL, src, payload=glob.mem)
        view.glob = glob.update(excl=src, shr=frozenset(), ptr=-1)
        return
    for target in sorted(targets):
        view.send(INV, GLOBAL, target)
    view.glob = glob.update(st=GE_W, ptr=src, acks=len(targets))


def _dir_gsw_invack(view: StateView, proc: int, ctx, message) -> None:
    # GS_W is only ever entered by recalling the exclusive holder, so this
    # ack *is* the writeback: update memory, then grant from it.
    glob = view.glob.update(mem=message.payload, excl=-1)
    view.send(GNTS, GLOBAL, glob.ptr, payload=glob.mem)
    view.glob = glob.update(
        st=IDLE, shr=glob.shr | {glob.ptr}, ptr=-1, acks=0
    )


def _dir_gew_invack(view: StateView, proc: int, ctx, message) -> None:
    glob = view.glob
    if glob.excl >= 0 and message.src == glob.excl:
        glob = glob.update(mem=message.payload, excl=-1)
    glob = glob.update(shr=glob.shr - {message.src}, acks=glob.acks - 1)
    if glob.acks > 0:
        view.glob = glob
        return
    view.send(GNTE, GLOBAL, glob.ptr, payload=glob.mem)
    view.glob = glob.update(st=IDLE, excl=glob.ptr, shr=frozenset(), ptr=-1)


# -- hole-driven handlers ------------------------------------------------------------


def sew_inv_holes() -> Tuple[Hole, Hole]:
    """Holes for the SE_W+Inv race: what to send, and where to wait next."""
    response = Hole(
        "german.client.SE_W+Inv.response",
        [
            Action("none", fn=lambda view, proc: None),
            Action(
                "send_invack",
                fn=lambda view, proc: view.send(
                    INVACK, proc, GLOBAL, payload=view.local(proc).d
                ),
            ),
            Action(
                "send_reqe",
                fn=lambda view, proc: view.send(REQE, proc, GLOBAL),
            ),
        ],
    )
    next_state = Hole(
        "german.client.SE_W+Inv.next",
        [Action(f"goto_{s}", payload=s) for s in (I, IS_W, IE_W, S, SE_W, E)],
    )
    return response, next_state


#: reference action names for each holeable rule
REFERENCE_ASSIGNMENT: Dict[str, str] = {
    "german.client.SE_W+Inv.response": "send_invack",
    "german.client.SE_W+Inv.next": "goto_IE_W",
}


# -- properties ----------------------------------------------------------------------


def _coherence(state) -> bool:
    procs, _glob, _net = state
    exclusive = sum(1 for p in procs if p.st == E)
    if exclusive > 1:
        return False
    sharing = sum(1 for p in procs if p.st in (S, SE_W))
    return not (exclusive == 1 and sharing > 0)


def _data_integrity_cache(state) -> bool:
    # Everyone holding the line sees the last value written.
    procs, glob, _net = state
    return all(p.d == glob.aux for p in procs if p.st in (S, SE_W, E))


def _data_integrity_mem(state) -> bool:
    # Memory is current whenever no exclusive copy is outstanding.
    _procs, glob, _net = state
    return glob.excl >= 0 or glob.mem == glob.aux


def _dir_bookkeeping(state) -> bool:
    procs, glob, _net = state
    if glob.excl >= 0 and glob.shr:
        return False
    for index, local in enumerate(procs):
        if local.st == S and index not in glob.shr:
            return False
        if local.st == SE_W and index not in glob.shr and glob.excl != index:
            # An upgrader leaves ``shr`` the moment its exclusive grant is
            # issued (the grant may still be in flight).
            return False
        if local.st == E and glob.excl != index:
            return False
    return True


def _channel_capacity(state) -> bool:
    # Per-client single-slot channels: one request out, one grant/inv in,
    # one ack out.  (The spurious re-request completions trip this.)
    procs, _glob, net = state
    for index in range(len(procs)):
        ch1 = sum(1 for m in net if m.src == index and m.mtype in (REQS, REQE))
        ch2 = sum(1 for m in net if m.dst == index and m.mtype in CH2)
        ch3 = sum(1 for m in net if m.src == index and m.mtype == INVACK)
        if ch1 > 1 or ch2 > 1 or ch3 > 1:
            return False
    return True


def _single_grant(state) -> bool:
    _procs, _glob, net = state
    return sum(1 for m in net if m.mtype in (GNTS, GNTE)) <= 1


def _build(
    n_clients: int,
    sew_inv_handler,
    name: str,
    symmetry: bool = True,
    bug: Optional[str] = None,
) -> TransitionSystem:
    if bug is not None and bug not in BUGS:
        raise ValueError(f"unknown seeded bug {bug!r}; available: {', '.join(BUGS)}")

    client = ControllerSpec("client")
    client.on(_st(I), "want_shared", _client_want_shared, spontaneous=True)
    client.on(_st(I), "want_excl", _client_want_excl, spontaneous=True)
    client.on(_st(S), "upgrade", _client_upgrade, spontaneous=True)
    client.on(_st(E), "store", _client_store, spontaneous=True)
    client.on(_st(IS_W), GNTS, _client_gnts)
    client.on(_st(IE_W), GNTE, _client_gnte)
    client.on(_st(SE_W), GNTE, _client_gnte)
    client.on(_st(S), INV, _client_inv)
    client.on(_st(E), INV, _client_inv)
    client.on(_st(SE_W), INV, sew_inv_handler)

    reqs_handler = _dir_reqs_stale_grant if bug == "stale-shared-grant" else _dir_reqs
    directory = ControllerSpec("dir", replicated=False)
    directory.on(_glob_st(IDLE), REQS, reqs_handler, message_guard=_ch2_clear)
    directory.on(_glob_st(IDLE), REQE, _dir_reqe, message_guard=_ch2_clear)
    directory.on(_glob_st(GS_W), INVACK, _dir_gsw_invack)
    directory.on(_glob_st(GE_W), INVACK, _dir_gew_invack)

    builder = ProtocolBuilder(
        name,
        n_clients,
        initial_local=_initial_local(),
        initial_global=_initial_glob(),
        symmetry=symmetry,
    )
    builder.add_controller(client)
    builder.add_controller(directory)
    builder.set_global_rename(_rename_glob)
    # The schema gives the packed codec table-driven slots for the
    # replica-indexed fields; the IdField/IdSetField renames agree with
    # _rename_glob on every reachable value, so the two paths coincide.
    builder.set_global_schema(
        Schema(
            st=EnumField(IDLE, GS_W, GE_W),
            ptr=IdField(n_clients, allow_none=True, sentinel=-1),
            excl=IdField(n_clients, allow_none=True, sentinel=-1),
            shr=IdSetField(n_clients),
            acks=RangeField(0, n_clients),
            mem=RangeField(0, 1),
            aux=RangeField(0, 1),
        )
    )
    builder.add_invariant("coherence", _coherence)
    builder.add_invariant("data-integrity-cache", _data_integrity_cache)
    builder.add_invariant("data-integrity-mem", _data_integrity_mem)
    builder.add_invariant("dir-bookkeeping", _dir_bookkeeping)
    builder.add_invariant("channel-capacity", _channel_capacity)
    builder.add_invariant("single-grant", _single_grant)
    # Finite interconnect (see the VI protocol for rationale): 3 single-slot
    # channels per client bound the healthy protocol well below this.
    bound = 3 * n_clients
    builder.add_invariant("network-bounded", lambda s, _b=bound: len(s[2]) <= _b)
    builder.add_coverage("some-client-E", lambda s: any(p.st == E for p in s[0]))
    builder.add_coverage("some-client-S", lambda s: any(p.st == S for p in s[0]))
    builder.add_coverage("some-upgrade", lambda s: any(p.st == SE_W for p in s[0]))
    builder.add_coverage("write-happens", lambda s: s[1].aux == 1)
    if n_clients >= 2:
        # A writeback needs a second client to force the recall.
        builder.add_coverage("writeback-happens", lambda s: s[1].st == GS_W)
    # Every client control state has a spontaneous or message rule, so a
    # genuinely terminal state is always a real deadlock (stuck waits with
    # undeliverable messages) — no quiescent whitelist.
    builder.set_deadlock_policy(DeadlockPolicy.fail())
    return builder.build()


def build_german_system(
    n_clients: int = 2, symmetry: bool = True, bug: Optional[str] = None
) -> TransitionSystem:
    """The complete German protocol (optionally with a seeded bug)."""
    return _build(n_clients, _client_sew_inv_reference, "german", symmetry, bug)


def build_german_skeleton(
    n_clients: int = 2, symmetry: bool = True
) -> Tuple[TransitionSystem, List[Hole]]:
    """The German protocol with the SE_W+Inv race blanked out."""
    response, next_state = sew_inv_holes()

    def sew_inv_handler(view, proc, ctx, message):
        ctx.resolve(response).fn(view, proc)
        view.become(
            proc, view.local(proc).update(st=ctx.resolve(next_state).payload)
        )

    system = _build(n_clients, sew_inv_handler, "german-skeleton", symmetry)
    return system, [response, next_state]
