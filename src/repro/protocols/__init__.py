"""Case-study protocols.

* :mod:`repro.protocols.toy` — the worked example of the paper's Figure 2.
* :mod:`repro.protocols.msi` — the directory-based MSI coherence protocol of
  the paper's evaluation (Figure 3 / Table I).
* :mod:`repro.protocols.mesi` — MESI (the silent E->M upgrade).
* :mod:`repro.protocols.moesi` — MOESI (dirty sharing via the Owned state).
* :mod:`repro.protocols.german` — the German directory protocol with
  explicit channels and data values (the classic Murphi benchmark).
* :mod:`repro.protocols.vi` — a minimal VI coherence protocol.
* :mod:`repro.protocols.mutex` — a token-passing mutual exclusion protocol.
* :mod:`repro.protocols.catalog` — the name -> entry registry (with hole
  counts and replica ranges) every consumer resolves these through.
"""
