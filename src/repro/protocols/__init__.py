"""Case-study protocols.

* :mod:`repro.protocols.toy` — the worked example of the paper's Figure 2.
* :mod:`repro.protocols.msi` — the directory-based MSI coherence protocol of
  the paper's evaluation (Figure 3 / Table I).
* :mod:`repro.protocols.vi` — a minimal VI coherence protocol.
* :mod:`repro.protocols.mutex` — a token-passing mutual exclusion protocol.
"""
