"""A VI (Valid/Invalid) migratory coherence protocol, built with the DSL.

The simplest interesting coherence protocol: a single token of validity
migrates between clients through a directory.  Because the network is
unordered, the directory serialises hand-offs through two transient states
(``BUSY_GRANT``: data sent, waiting for the receiver's acknowledgement —
the same serialisation idea as the MSI case study's ``IM_A``; and
``BUSY_RECALL``: recall sent to the current owner, waiting for the data to
come back).

Client states: ``I`` (invalid), ``IV_D`` (fetch outstanding), ``V`` (valid).
Messages: ``Get`` (client->dir), ``Data`` (dir->client), ``GotIt``
(client->dir ack), ``Recall`` (dir->owner), ``Back`` (owner->dir).

Holeable rules (used by the VI synthesis example):

* client ``IV_D + Data`` — response in {none, send_gotit, send_back},
  next state in {I, IV_D, V};
* dir ``BUSY_GRANT + GotIt`` — response in {none, send_data, send_recall},
  next state in {FREE, BUSY_GRANT, OWNED, BUSY_RECALL}.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.action import Action
from repro.core.hole import Hole
from repro.dsl.builder import GLOBAL, ControllerSpec, ProtocolBuilder, StateView
from repro.dsl.fields import EnumField, IdField, Schema
from repro.mc.properties import DeadlockPolicy
from repro.mc.state import Record
from repro.mc.system import TransitionSystem

# client states
I, IV_D, V = "I", "IV_D", "V"
# directory states
FREE, BUSY_GRANT, OWNED, BUSY_RECALL = "FREE", "BUSY_GRANT", "OWNED", "BUSY_RECALL"
# messages
GET, DATA, GOTIT, RECALL, BACK = "Get", "Data", "GotIt", "Recall", "Back"


def _initial_glob() -> Record:
    return Record(st=FREE, owner=-1, req=-1)


def _rename_glob(glob: Record, mapping: Tuple[int, ...]) -> Record:
    return Record(
        st=glob.st,
        owner=-1 if glob.owner < 0 else mapping[glob.owner],
        req=-1 if glob.req < 0 else mapping[glob.req],
    )


# -- client handlers -----------------------------------------------------------


def _client_use(view: StateView, proc: int, ctx, message) -> None:
    view.send(GET, proc, GLOBAL)
    view.become(proc, IV_D)


def _client_data_reference(view: StateView, proc: int, ctx, message) -> None:
    view.send(GOTIT, proc, GLOBAL)
    view.become(proc, V)


def _client_recall(view: StateView, proc: int, ctx, message) -> None:
    view.send(BACK, proc, GLOBAL)
    view.become(proc, I)


# -- directory handlers -----------------------------------------------------------


def _dir_get(view: StateView, proc: int, ctx, message) -> None:
    glob = view.glob
    if glob.st == FREE:
        view.send(DATA, GLOBAL, message.src)
        view.glob = glob.update(st=BUSY_GRANT, req=message.src)
    else:  # OWNED
        view.send(RECALL, GLOBAL, glob.owner)
        view.glob = glob.update(st=BUSY_RECALL, req=message.src)


def _dir_gotit_reference(view: StateView, proc: int, ctx, message) -> None:
    view.glob = view.glob.update(st=OWNED, owner=view.glob.req, req=-1)


def _dir_back(view: StateView, proc: int, ctx, message) -> None:
    view.send(DATA, GLOBAL, view.glob.req)
    view.glob = view.glob.update(st=BUSY_GRANT, owner=-1)


# -- hole-driven handlers ------------------------------------------------------------


def client_data_holes() -> Tuple[Hole, Hole]:
    response = Hole(
        "vi.client.IV_D+Data.response",
        [
            Action("none", fn=lambda view, proc: None),
            Action("send_gotit", fn=lambda view, proc: view.send(GOTIT, proc, GLOBAL)),
            Action("send_back", fn=lambda view, proc: view.send(BACK, proc, GLOBAL)),
        ],
    )
    next_state = Hole(
        "vi.client.IV_D+Data.next",
        [Action(f"goto_{s}", payload=s) for s in (I, IV_D, V)],
    )
    return response, next_state


def dir_gotit_holes() -> Tuple[Hole, Hole]:
    def send_data(view: StateView, proc: int) -> None:
        if view.glob.req >= 0:
            view.send(DATA, GLOBAL, view.glob.req)

    def send_recall(view: StateView, proc: int) -> None:
        if view.glob.owner >= 0:
            view.send(RECALL, GLOBAL, view.glob.owner)

    response = Hole(
        "vi.dir.BUSY_GRANT+GotIt.response",
        [
            Action("none", fn=lambda view, proc: None),
            Action("send_data", fn=send_data),
            Action("send_recall", fn=send_recall),
        ],
    )
    next_state = Hole(
        "vi.dir.BUSY_GRANT+GotIt.next",
        [
            Action(f"goto_{s}", payload=s)
            for s in (FREE, BUSY_GRANT, OWNED, BUSY_RECALL)
        ],
    )
    return response, next_state


#: reference action names for each holeable rule
REFERENCE_ASSIGNMENT: Dict[str, str] = {
    "vi.client.IV_D+Data.response": "send_gotit",
    "vi.client.IV_D+Data.next": "goto_V",
    "vi.dir.BUSY_GRANT+GotIt.response": "none",
    "vi.dir.BUSY_GRANT+GotIt.next": "goto_OWNED",
}


# -- properties ----------------------------------------------------------------------


def _single_valid(state) -> bool:
    procs, _glob, _net = state
    return procs.count(V) <= 1


def _owner_consistent(state) -> bool:
    _procs, glob, _net = state
    if glob.st == OWNED and glob.owner < 0:
        return False
    if glob.st in (BUSY_GRANT, BUSY_RECALL) and glob.req < 0:
        return False
    return True


def _quiescent(state) -> bool:
    procs, glob, net = state
    if len(net):
        return False
    return glob.st in (FREE, OWNED) and all(p in (I, V) for p in procs)


def _build(
    n_clients: int,
    client_data_handler,
    dir_gotit_handler,
    name: str,
    symmetry: bool = True,
) -> TransitionSystem:
    client = ControllerSpec("client")
    client.on(I, "use", _client_use, spontaneous=True)
    client.on(IV_D, DATA, client_data_handler)
    client.on(V, RECALL, _client_recall)

    directory = ControllerSpec("dir", replicated=False)
    directory.on(lambda st: st.st in (FREE, OWNED), GET, _dir_get)
    directory.on(lambda st: st.st == BUSY_GRANT, GOTIT, dir_gotit_handler)
    directory.on(lambda st: st.st == BUSY_RECALL, BACK, _dir_back)

    builder = ProtocolBuilder(
        name, n_clients, initial_local=I, initial_global=_initial_glob(),
        symmetry=symmetry,
    )
    builder.add_controller(client)
    builder.add_controller(directory)
    builder.set_global_rename(_rename_glob)
    # Typed global layout for the packed codec (agrees with _rename_glob).
    builder.set_global_schema(
        Schema(
            st=EnumField(FREE, BUSY_GRANT, OWNED, BUSY_RECALL),
            owner=IdField(n_clients, allow_none=True, sentinel=-1),
            req=IdField(n_clients, allow_none=True, sentinel=-1),
        )
    )
    builder.add_invariant("single-valid", _single_valid)
    builder.add_invariant("dir-consistent", _owner_consistent)
    # Finite interconnect capacity: keeps every synthesis candidate's state
    # space finite (a faulty completion could otherwise re-request forever).
    bound = 2 * n_clients + 2
    builder.add_invariant("network-bounded", lambda s, _b=bound: len(s[2]) <= _b)
    builder.add_coverage("some-client-valid", lambda s: s[0].count(V) >= 1)
    if n_clients >= 2:
        # A recall needs a competing client; unsatisfiable with one client.
        builder.add_coverage("token-migrates", lambda s: s[1].st == BUSY_RECALL)
    builder.set_deadlock_policy(DeadlockPolicy.fail(quiescent=_quiescent))
    return builder.build()


def build_vi_system(n_clients: int = 2, symmetry: bool = True) -> TransitionSystem:
    """The complete VI protocol."""
    return _build(
        n_clients, _client_data_reference, _dir_gotit_reference, "vi", symmetry
    )


def build_vi_skeleton(
    n_clients: int = 2,
    hole_client: bool = True,
    hole_dir: bool = True,
    symmetry: bool = True,
) -> Tuple[TransitionSystem, List[Hole]]:
    """The VI protocol with chosen rules blanked out for synthesis."""
    holes: List[Hole] = []

    client_handler = _client_data_reference
    if hole_client:
        response, next_state = client_data_holes()
        holes.extend([response, next_state])

        def client_handler(view, proc, ctx, message):  # noqa: F811
            ctx.resolve(response).fn(view, proc)
            view.become(proc, ctx.resolve(next_state).payload)

    dir_handler = _dir_gotit_reference
    if hole_dir:
        dir_response, dir_next = dir_gotit_holes()
        holes.extend([dir_response, dir_next])

        def dir_handler(view, proc, ctx, message):  # noqa: F811
            ctx.resolve(dir_response).fn(view, proc)
            target = ctx.resolve(dir_next).payload
            updates = {"st": target}
            if target == OWNED:
                updates["owner"] = view.glob.req
                updates["req"] = -1
            view.glob = view.glob.update(**updates)

    system = _build(n_clients, client_handler, dir_handler, "vi-skeleton", symmetry)
    return system, holes
