"""Central-server mutual exclusion, built with the DSL.

Clients request a lock from a server; the server grants it to one client at
a time.  Small enough to read in one sitting, which makes it the quickstart
example for hole synthesis: we blank out the client's "grant received" rule
and let the engine rediscover that the correct completion is "enter the
critical section, send nothing".

Client states: ``T`` (thinking), ``W`` (waiting), ``C`` (critical).
Messages: ``Req`` (client->server), ``Grant`` (server->client),
``Rel`` (client->server).

Properties: at most one client in ``C`` (mutual exclusion); the server's
holder bookkeeping matches reality; some client eventually enters ``C``
(coverage — without it "never enter the critical section" would verify).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.action import Action
from repro.core.hole import Hole
from repro.dsl.builder import GLOBAL, ControllerSpec, ProtocolBuilder, StateView
from repro.dsl.fields import IdField, Schema
from repro.mc.properties import DeadlockPolicy
from repro.mc.state import Record
from repro.mc.system import TransitionSystem

T, W, C = "T", "W", "C"
REQ, GRANT, REL = "Req", "Grant", "Rel"


def _initial_glob() -> Record:
    return Record(holder=-1)


def _rename_glob(glob: Record, mapping: Tuple[int, ...]) -> Record:
    return Record(holder=-1 if glob.holder < 0 else mapping[glob.holder])


# -- handlers -------------------------------------------------------------------


def _client_want(view: StateView, proc: int, ctx, message) -> None:
    view.send(REQ, proc, GLOBAL)
    view.become(proc, W)


def _client_grant_reference(view: StateView, proc: int, ctx, message) -> None:
    view.become(proc, C)


def _client_done(view: StateView, proc: int, ctx, message) -> None:
    view.send(REL, proc, GLOBAL)
    view.become(proc, T)


def _server_req(view: StateView, proc: int, ctx, message) -> None:
    view.send(GRANT, GLOBAL, message.src)
    view.glob = view.glob.update(holder=message.src)


def _server_rel(view: StateView, proc: int, ctx, message) -> None:
    view.glob = view.glob.update(holder=-1)


# -- holes -----------------------------------------------------------------------


def client_grant_holes() -> Tuple[Hole, Hole]:
    response = Hole(
        "mutex.client.W+Grant.response",
        [
            Action("none", fn=lambda view, proc: None),
            Action("send_req", fn=lambda view, proc: view.send(REQ, proc, GLOBAL)),
            Action("send_rel", fn=lambda view, proc: view.send(REL, proc, GLOBAL)),
        ],
    )
    next_state = Hole(
        "mutex.client.W+Grant.next",
        [Action(f"goto_{s}", payload=s) for s in (T, W, C)],
    )
    return response, next_state


REFERENCE_ASSIGNMENT: Dict[str, str] = {
    "mutex.client.W+Grant.response": "none",
    "mutex.client.W+Grant.next": "goto_C",
}


# -- properties -------------------------------------------------------------------


def _mutual_exclusion(state) -> bool:
    return state[0].count(C) <= 1


def _holder_consistent(state) -> bool:
    procs, glob, _net = state
    for index, local in enumerate(procs):
        if local == C and glob.holder != index:
            return False
    return True


def _build(n_clients: int, grant_handler, name: str,
           symmetry: bool = True) -> TransitionSystem:
    client = ControllerSpec("client")
    client.on(T, "want", _client_want, spontaneous=True)
    client.on(W, GRANT, grant_handler)
    client.on(C, "done", _client_done, spontaneous=True)

    server = ControllerSpec("server", replicated=False)
    server.on(lambda g: g.holder < 0, REQ, _server_req)
    server.on(lambda g: g.holder >= 0, REL, _server_rel)

    builder = ProtocolBuilder(
        name, n_clients, initial_local=T, initial_global=_initial_glob(),
        symmetry=symmetry,
    )
    builder.add_controller(client)
    builder.add_controller(server)
    builder.set_global_rename(_rename_glob)
    # Typed global layout for the packed codec (agrees with _rename_glob).
    builder.set_global_schema(
        Schema(holder=IdField(n_clients, allow_none=True, sentinel=-1))
    )
    builder.add_invariant("mutual-exclusion", _mutual_exclusion)
    builder.add_invariant("holder-consistent", _holder_consistent)
    # Finite interconnect capacity (see the VI protocol for rationale).
    bound = 2 * n_clients + 2
    builder.add_invariant("network-bounded", lambda s, _b=bound: len(s[2]) <= _b)
    builder.add_coverage("some-client-critical", lambda s: s[0].count(C) >= 1)
    # Clients in T can always issue requests, so no reachable state is
    # terminal; keep the default fail policy as a tripwire.
    builder.set_deadlock_policy(DeadlockPolicy.fail())
    return builder.build()


def build_mutex_system(n_clients: int = 2, symmetry: bool = True) -> TransitionSystem:
    """The complete mutual-exclusion protocol."""
    return _build(n_clients, _client_grant_reference, "mutex", symmetry)


def build_mutex_skeleton(
    n_clients: int = 2, symmetry: bool = True
) -> Tuple[TransitionSystem, List[Hole]]:
    """The protocol with the client's W+Grant rule blanked out."""
    response, next_state = client_grant_holes()

    def grant_handler(view, proc, ctx, message):
        ctx.resolve(response).fn(view, proc)
        view.become(proc, ctx.resolve(next_state).payload)

    system = _build(n_clients, grant_handler, "mutex-skeleton", symmetry)
    return system, [response, next_state]
