"""Correctness specification of the MSI case study.

* ``swmr`` — the Single-Writer-Multiple-Reader invariant (the key safety
  property named in the paper): never a writer together with another
  reader or writer.
* ``no-unexpected-message`` — every in-flight message must be acceptable to
  its destination's current state (or stallable, like GetS/GetM at a busy
  directory).  This is the explicit-state analogue of a SLICC table's
  "unhandled event" error and makes faulty candidates fail with short
  traces.
* ``dir-bookkeeping`` — a directory claiming M must know an owner; a
  directory claiming S must have sharers.
* Stable-state coverage — "all stable states must be visited at least
  once": the property the paper added after discovering that without it the
  synthesiser produces correct-but-useless protocols (e.g. caches that
  immediately drop fetched data).
"""

from __future__ import annotations

from typing import List

from repro.mc.properties import CoverageProperty, Invariant
from repro.protocols.msi import defs


def _swmr(state) -> bool:
    caches = state[0]
    writers = sum(1 for c in caches if c in defs.CACHE_WRITABLE)
    readers = sum(1 for c in caches if c in defs.CACHE_READABLE)
    if writers > 1:
        return False
    # A writer is also counted as a reader; SWMR allows exactly it.
    return not (writers == 1 and readers > 1)


def _no_unexpected_message(state) -> bool:
    caches, dirst, _owner, _sharers, _req, _acks, net = state
    for mtype, cache in net.distinct():
        expected_cache_states = defs.CACHE_EXPECTS.get(mtype)
        if expected_cache_states is not None:
            if caches[cache] not in expected_cache_states:
                return False
            continue
        expected_dir_states = defs.DIR_EXPECTS.get(mtype)
        if expected_dir_states is not None and dirst not in expected_dir_states:
            return False
    return True


#: what a cache waiting in each transient state is entitled to wait for:
#: either its own request/writeback is still queued, or the response (or a
#: crossing invalidation) is in flight, or the directory is busy serving it.
_WAIT_EXPECTATIONS = {
    defs.C_IS_D: (defs.GETS, defs.DATA, defs.INV),
    # IS_D_I usually waits for in-flight data to drop, but an invalidation
    # can also land while the GetS is still queued (e.g. after a silent
    # S-eviction made the directory's sharer entry stale), so the queued
    # request is an acceptable reason to wait too.
    defs.C_IS_D_I: (defs.GETS, defs.DATA),
    defs.C_IM_D: (defs.GETM, defs.DATA, defs.INV),
    defs.C_SM_D: (defs.GETM, defs.DATA, defs.INV),
    defs.C_MI_A: (defs.PUTM, defs.PUTACK, defs.INV),
    defs.C_II_A: (defs.PUTM, defs.PUTACK),
}


def _no_orphaned_wait(state) -> bool:
    """Every waiting cache has a live reason to wait.

    Global deadlock detection cannot flag one cache stuck forever while
    other caches keep issuing requests (the system as a whole stays live).
    This safety invariant closes that hole: a cache in a transient state
    with no matching message in flight and no pending service at the
    directory will never make progress — the explicit-state analogue of
    the liveness properties the paper cites from McMillan & Schwalbe.
    """
    caches, dirst, _owner, _sharers, req, _acks, net = state
    for index, cache_state in enumerate(caches):
        expected = _WAIT_EXPECTATIONS.get(cache_state)
        if expected is None:
            continue
        if req == index and dirst not in defs.DIR_STABLE:
            continue  # the directory is mid-transaction on this cache's behalf
        if any((mtype, index) in net for mtype in expected):
            continue
        return False
    return True


def network_bound(n_caches: int) -> int:
    """Finite interconnect capacity.

    The reference protocol never has more than ``n_caches + 1`` messages in
    flight; ``2n + 2`` leaves room for valid-but-different completions while
    still making *every* candidate's state space finite.  Without a bound, a
    faulty candidate that drops data and re-requests forever would make the
    explicit-state exploration diverge — the same reason Murphi models use
    bounded channels.
    """
    return 2 * n_caches + 2


def _dir_bookkeeping(state) -> bool:
    _caches, dirst, owner, sharers, _req, _acks, _net = state
    if dirst == defs.D_M and owner < 0:
        return False
    if dirst == defs.D_S and not sharers:
        return False
    return True


def msi_invariants(n_caches: int = 0) -> List[Invariant]:
    invariants = [
        Invariant("swmr", _swmr),
        Invariant("no-unexpected-message", _no_unexpected_message),
        Invariant("dir-bookkeeping", _dir_bookkeeping),
        Invariant("no-orphaned-wait", _no_orphaned_wait),
    ]
    if n_caches > 0:
        bound = network_bound(n_caches)
        invariants.append(
            Invariant("network-bounded", lambda s, _b=bound: len(s[6]) <= _b)
        )
    return invariants


def msi_quiescent(state) -> bool:
    """States allowed to have no outgoing transitions.

    A state is quiescent when the network is drained, the directory is
    stable, and every cache is stable — e.g. one cache holds M and the
    others are I: every issued request has been fully served.  A terminal
    state that is *not* quiescent (say, a cache parked in IS_D waiting for
    data that never comes) is a protocol deadlock.
    """
    caches, dirst, _owner, _sharers, _req, _acks, net = state
    if net:
        return False
    if dirst not in defs.DIR_STABLE:
        return False
    return all(c in defs.CACHE_STABLE for c in caches)


def msi_coverage(include: bool = True) -> List[CoverageProperty]:
    """The stable-state coverage properties (omit to reproduce the paper's
    observation that solution counts explode without them)."""
    if not include:
        return []
    return [
        CoverageProperty("some-cache-reaches-S", lambda s: defs.C_S in s[0]),
        CoverageProperty("some-cache-reaches-M", lambda s: defs.C_M in s[0]),
        CoverageProperty("dir-reaches-S", lambda s: s[1] == defs.D_S),
        CoverageProperty("dir-reaches-M", lambda s: s[1] == defs.D_M),
    ]
