"""The MSI directory controller.

Stable-state request handling is designer-provided (including the data-path
conditionals); the four transient completions are the synthesis targets.
The directory stalls GetS/GetM while in a transient state simply by having
no rule consume them there — on an unordered network the requests wait in
the message bag, exactly the serialisation the paper describes for its
Invalid-to-Modified (here ``IM_A``) transient.

Ack counting: a transient entered expecting N invalidation acks decrements
``acks`` per InvAck and applies its completion actions when the count hits
zero; the completion is what skeletons replace with holes (holes are only
resolved on the completing ack, so lazy discovery sees them exactly when
the interesting decision is due).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.protocols.msi import defs
from repro.protocols.msi.actions import (
    DirHoles,
    apply_dir_next,
    dir_next_domain,
    dir_response_domain,
    dir_track_domain,
)
from repro.protocols.msi.defs import View

Handler = Callable[[View, int, object], None]

#: the (state, event) keys of directory rules eligible for holes, with the
#: reference (response, next_state, track) action names.
REFERENCE_DIR_COMPLETIONS: Dict[Tuple[int, str], Tuple[str, str, str]] = {
    (defs.D_SM_A, defs.INVACK): ("send_data", "goto_IM_A", "owner_is_req"),
    (defs.D_MM_A, defs.INVACK): ("send_data", "goto_IM_A", "owner_is_req"),
    (defs.D_MS_A, defs.INVACK): ("send_data", "goto_S", "add_req_sharer"),
    (defs.D_IM_A, defs.DATAACK): ("none", "goto_M", "none"),
}

#: rules that count invalidation acks before completing
ACK_COUNTING: frozenset = frozenset(
    {(defs.D_SM_A, defs.INVACK), (defs.D_MM_A, defs.INVACK), (defs.D_MS_A, defs.INVACK)}
)

DIR_TABLE_ORDER: Tuple[Tuple[int, str], ...] = (
    (defs.D_I, defs.GETS),
    (defs.D_I, defs.GETM),
    (defs.D_S, defs.GETS),
    (defs.D_S, defs.GETM),
    (defs.D_M, defs.GETS),
    (defs.D_M, defs.GETM),
    (defs.D_IM_A, defs.DATAACK),
    (defs.D_MM_A, defs.INVACK),
    (defs.D_SM_A, defs.INVACK),
    (defs.D_MS_A, defs.INVACK),
)

#: eviction extension: writebacks are accepted in the stable states (and
#: stall, like requests, while the directory is in a transient).
EVICTION_DIR_TABLE_ORDER: Tuple[Tuple[int, str], ...] = (
    (defs.D_I, defs.PUTM),
    (defs.D_S, defs.PUTM),
    (defs.D_M, defs.PUTM),
)

_RESPONSES = {a.name: a for a in dir_response_domain()}
_TRACKS = {a.name: a for a in dir_track_domain()}
_NEXTS = {a.name: a for a in dir_next_domain()}


def _apply_triple(view: View, cache: int, response_name: str, next_name: str,
                  track_name: str) -> None:
    """Apply a (response, track, next-state) completion in canonical order."""
    _RESPONSES[response_name].fn(view, cache)
    _TRACKS[track_name].fn(view, cache)
    apply_dir_next(view, _NEXTS[next_name].payload)


def _gets_in_i(view: View, cache: int, ctx: object) -> None:
    view.req = cache
    _apply_triple(view, cache, "send_data", "goto_S", "add_req_sharer")


def _getm_in_i(view: View, cache: int, ctx: object) -> None:
    view.req = cache
    _apply_triple(view, cache, "send_data", "goto_IM_A", "owner_is_req")


def _gets_in_s(view: View, cache: int, ctx: object) -> None:
    view.req = cache
    _apply_triple(view, cache, "send_data", "goto_S", "add_req_sharer")


def _getm_in_s(view: View, cache: int, ctx: object) -> None:
    view.req = cache
    targets = view.sharers - {cache}
    if targets:
        _apply_triple(view, cache, "send_inv_sharers", "goto_SM_A", "none")
    else:
        # The requestor is the only sharer (or sharers raced away): grant
        # directly, but still serialise through IM_A until it acks the data.
        _apply_triple(view, cache, "send_data", "goto_IM_A", "owner_is_req")


def _gets_in_m(view: View, cache: int, ctx: object) -> None:
    view.req = cache
    _apply_triple(view, cache, "send_inv_owner", "goto_MS_A", "none")


def _getm_in_m(view: View, cache: int, ctx: object) -> None:
    view.req = cache
    _apply_triple(view, cache, "send_inv_owner", "goto_MM_A", "none")


def _putm(view: View, cache: int, ctx: object) -> None:
    """Accept a writeback.

    From the current owner (only possible in M) the line returns to the
    directory: ack and go Invalid.  From anybody else the writeback is
    stale — the evictor already lost ownership to a crossing invalidation —
    and is acked without a state change (the evictor waits in II_A).
    """
    view.send(defs.PUTACK, cache)
    if view.dirst == defs.D_M and view.owner == cache:
        view.owner = -1
        apply_dir_next(view, defs.D_I)


def make_reference_completion(
    key: Tuple[int, str],
    response_name: str,
    next_name: str,
    track_name: str,
) -> Handler:
    """Build a transient handler with fixed actions (the complete protocol)."""
    counts_acks = key in ACK_COUNTING

    def handler(view: View, cache: int, ctx: object) -> None:
        if counts_acks:
            view.acks -= 1
            if view.acks > 0:
                return
        _apply_triple(view, cache, response_name, next_name, track_name)

    return handler


def make_holed_completion(key: Tuple[int, str], holes: DirHoles) -> Handler:
    """Build a transient handler that resolves its completion from holes."""
    counts_acks = key in ACK_COUNTING

    def handler(view: View, cache: int, ctx) -> None:
        if counts_acks:
            view.acks -= 1
            if view.acks > 0:
                return
        response = ctx.resolve(holes.response)
        response.fn(view, cache)
        track = ctx.resolve(holes.track)
        track.fn(view, cache)
        next_state = ctx.resolve(holes.next_state)
        apply_dir_next(view, next_state.payload)

    return handler


def reference_dir_table(evictions: bool = False) -> Dict[Tuple[int, str], Handler]:
    """The complete (hole-free) directory controller."""
    table: Dict[Tuple[int, str], Handler] = {
        (defs.D_I, defs.GETS): _gets_in_i,
        (defs.D_I, defs.GETM): _getm_in_i,
        (defs.D_S, defs.GETS): _gets_in_s,
        (defs.D_S, defs.GETM): _getm_in_s,
        (defs.D_M, defs.GETS): _gets_in_m,
        (defs.D_M, defs.GETM): _getm_in_m,
    }
    for key, names in REFERENCE_DIR_COMPLETIONS.items():
        table[key] = make_reference_completion(key, *names)
    if evictions:
        for key in EVICTION_DIR_TABLE_ORDER:
            table[key] = _putm
    return table
