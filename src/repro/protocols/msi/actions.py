"""The designer's action library for MSI hole synthesis.

The paper sizes the per-hole domains as: "response" (3 for cache controller,
5 for directory controller), "next state" (7 for cache, 7 for directory) and
"track" (3 for directory).  A directory transition rule is a sequence of
three holes (response, next-state, track: 5*7*3 = 105 combinations); a cache
rule is two holes (response, next-state: 3*7 = 21).  These domain sizes make
the Table I candidate spaces come out exactly: MSI-small = 105^2 * 21 =
231,525 and MSI-large = 105^2 * 21^3 = 102,102,525.

Action application order within a rule: response (reads pre-update
bookkeeping), then track, then next-state.  Response and track actions are
defensive no-ops when their subject is absent (no owner, no requestor): the
synthesiser will try them in contexts where they are meaningless, and a
no-op simply produces a (probably wrong) candidate instead of crashing.
"""

from __future__ import annotations

from typing import List

from repro.core.action import Action
from repro.core.hole import Hole
from repro.protocols.msi import defs
from repro.protocols.msi.defs import View

# -- cache response actions (3) ------------------------------------------------


def _cache_none(view: View, cache: int) -> None:
    """Do not send anything."""


def _cache_send_invack(view: View, cache: int) -> None:
    """Acknowledge an invalidation to the directory."""
    view.send(defs.INVACK, cache)


def _cache_send_dataack(view: View, cache: int) -> None:
    """Acknowledge receipt of data to the directory (completes dir IM_A)."""
    view.send(defs.DATAACK, cache)


def _cache_send_putm(view: View, cache: int) -> None:
    """Issue a writeback of the modified line (eviction extension)."""
    view.send(defs.PUTM, cache)


def cache_response_domain(extended: bool = False) -> List[Action]:
    """The base domain has the paper's 3 actions; ``extended=True`` adds
    the writeback for eviction-variant skeletons."""
    domain = [
        Action("none", fn=_cache_none),
        Action("send_invack", fn=_cache_send_invack),
        Action("send_dataack", fn=_cache_send_dataack),
    ]
    if extended:
        domain.append(Action("send_putm", fn=_cache_send_putm))
    return domain


# -- cache next-state actions (7) -----------------------------------------------


def cache_next_domain(extended: bool = False) -> List[Action]:
    """One ``goto`` per cache state; the payload is the state code.

    The default domain covers the 7 eviction-free states (preserving the
    paper's 3 x 7 cache-rule arithmetic); ``extended=True`` adds the
    eviction transients MI_A and II_A for eviction-variant skeletons.
    """
    limit = len(defs.CACHE_STATE_NAMES) if extended else defs.BASE_CACHE_STATES
    return [
        Action(f"goto_{name}", payload=code)
        for code, name in enumerate(defs.CACHE_STATE_NAMES[:limit])
    ]


def apply_cache_next(view: View, cache: int, code: int) -> None:
    view.caches[cache] = code


# -- directory response actions (5) ----------------------------------------------


def _dir_none(view: View, cache: int) -> None:
    """Do not send anything."""


def _dir_send_data(view: View, cache: int) -> None:
    """Send data to the pending requestor."""
    if view.req >= 0:
        view.send(defs.DATA, view.req)


def _dir_send_inv_sharers(view: View, cache: int) -> None:
    """Invalidate every sharer except the requestor; expect that many acks."""
    targets = view.sharers - ({view.req} if view.req >= 0 else set())
    for target in sorted(targets):
        view.send(defs.INV, target)
    view.acks = len(targets)


def _dir_send_inv_owner(view: View, cache: int) -> None:
    """Invalidate the current owner; expect one ack."""
    if view.owner >= 0:
        view.send(defs.INV, view.owner)
        view.acks = 1


def _dir_send_data_sharers(view: View, cache: int) -> None:
    """Broadcast data to all sharers (a plausible but wrong decoy)."""
    for target in sorted(view.sharers):
        view.send(defs.DATA, target)


def dir_response_domain() -> List[Action]:
    return [
        Action("none", fn=_dir_none),
        Action("send_data", fn=_dir_send_data),
        Action("send_inv_sharers", fn=_dir_send_inv_sharers),
        Action("send_inv_owner", fn=_dir_send_inv_owner),
        Action("send_data_sharers", fn=_dir_send_data_sharers),
    ]


# -- directory track actions (3) ---------------------------------------------------


def _track_none(view: View, cache: int) -> None:
    """Keep ownership bookkeeping unchanged."""


def _track_owner_is_req(view: View, cache: int) -> None:
    """Transfer ownership to the requestor; nobody shares any more."""
    if view.req >= 0:
        view.owner = view.req
        view.sharers = frozenset()


def _track_add_req_sharer(view: View, cache: int) -> None:
    """Add the requestor to the sharers; the line is no longer owned."""
    if view.req >= 0:
        view.sharers = view.sharers | {view.req}
        view.owner = -1


def dir_track_domain() -> List[Action]:
    return [
        Action("none", fn=_track_none),
        Action("owner_is_req", fn=_track_owner_is_req),
        Action("add_req_sharer", fn=_track_add_req_sharer),
    ]


# -- directory next-state actions (7) -------------------------------------------------


def dir_next_domain() -> List[Action]:
    return [
        Action(f"goto_{name}", payload=code)
        for code, name in enumerate(defs.DIR_STATE_NAMES)
    ]


def apply_dir_next(view: View, code: int) -> None:
    """Move the directory; entering a stable state clears pending-request
    bookkeeping (req/acks), which keeps the state space canonical."""
    view.dirst = code
    if code in defs.DIR_STABLE:
        view.req = -1
        view.acks = 0


# -- hole construction helpers ----------------------------------------------------------


class CacheHoles:
    """The (response, next-state) hole pair of one cache transition rule."""

    __slots__ = ("response", "next_state")

    def __init__(self, rule_name: str, extended: bool = False) -> None:
        self.response = Hole(
            f"cache.{rule_name}.response", cache_response_domain(extended)
        )
        self.next_state = Hole(
            f"cache.{rule_name}.next", cache_next_domain(extended)
        )

    @property
    def holes(self) -> List[Hole]:
        return [self.response, self.next_state]


class DirHoles:
    """The (response, next-state, track) hole triple of one directory rule."""

    __slots__ = ("response", "next_state", "track")

    def __init__(self, rule_name: str) -> None:
        self.response = Hole(f"dir.{rule_name}.response", dir_response_domain())
        self.next_state = Hole(f"dir.{rule_name}.next", dir_next_domain())
        self.track = Hole(f"dir.{rule_name}.track", dir_track_domain())

    @property
    def holes(self) -> List[Hole]:
        return [self.response, self.next_state, self.track]
