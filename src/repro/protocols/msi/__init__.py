"""Directory-based MSI cache coherence (the paper's case study, Fig 3).

The protocol keeps one copy of the state machine per cache line (we model a
single line, as is standard); each cache controller sends GetS/GetM requests
to a central directory over an *unordered* interconnect, which is what
forces the transient states this case study synthesises.

Module map:

* :mod:`repro.protocols.msi.defs` — state codes, message types, the mutable
  state view, and the permutation function for symmetry reduction.
* :mod:`repro.protocols.msi.actions` — the designer's action library
  (response / next-state / track), sized exactly as in the paper
  (5 x 7 x 3 per directory rule, 3 x 7 per cache rule).
* :mod:`repro.protocols.msi.cache` / :mod:`~repro.protocols.msi.directory`
  — reference (complete) controller tables.
* :mod:`repro.protocols.msi.system` — assembles a
  :class:`~repro.mc.system.TransitionSystem` for N caches.
* :mod:`repro.protocols.msi.skeleton` — skeletons with holes:
  ``msi_tiny`` (2 holes), ``msi_small`` (8 holes = 2 directory + 1 cache
  rules), ``msi_large`` (12 holes = 2 directory + 3 cache rules).
* :mod:`repro.protocols.msi.properties` — SWMR, unexpected-message safety,
  stable-state coverage.
"""

from repro.protocols.msi.skeleton import (
    SkeletonSpec,
    msi_large,
    msi_read_tiny,
    msi_skeleton,
    msi_small,
    msi_tiny,
)
from repro.protocols.msi.system import build_msi_system, reference_solution_assignment

__all__ = [
    "SkeletonSpec",
    "build_msi_system",
    "msi_large",
    "msi_read_tiny",
    "msi_skeleton",
    "msi_small",
    "msi_tiny",
    "reference_solution_assignment",
]
