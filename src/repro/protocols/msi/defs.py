"""Shared definitions for the MSI case study.

State tuple layout (chosen for hashing speed — the model checker touches
millions of these)::

    (caches, dirst, owner, sharers, req, acks, net)

* ``caches``: tuple of per-cache state codes,
* ``dirst``: directory state code,
* ``owner``: owning cache index or -1,
* ``sharers``: frozenset of cache indices,
* ``req``: the pending requestor (directory bookkeeping) or -1,
* ``acks``: outstanding invalidation acknowledgements,
* ``net``: :class:`~repro.mc.multiset.Multiset` of ``(msg_type, cache)``
  messages — the unordered interconnect.  ``cache`` is the requester for
  GetS/GetM, the destination for Data/Inv, and the sender for
  InvAck/DataAck; a single index disambiguates every message we need.

Protocol summary (no evictions, matching Figure 3's stable states):

* Cache: ``I --Load--> IS_D --Data--> S``, ``I --Store--> IM_D --Data-->
  M`` (acking receipt to the directory), ``S --Store--> SM_D``; ``Inv``
  received in S/M is acknowledged to the directory; ``Inv`` racing ahead of
  ``Data`` in IS_D parks the cache in the extra transient ``IS_D_I``
  (ack now, drop the stale data later); ``Inv`` in SM_D demotes the upgrade
  to a plain ``IM_D`` fetch.
* Directory: stable I/S/M; ``IM_A`` stalls all requests until the new owner
  acknowledges receipt of Data (the transient the paper's Section III
  describes); ``SM_A``/``MM_A``/``MS_A`` collect invalidation acks for
  GetM-from-S, GetM-from-M and GetS-from-M respectively.

Substitution note (DESIGN.md): the paper's figure shows Inv-Acks flowing to
the *requestor*; we collect them at the directory, which keeps the cache
controller at 7 states and puts the ack-counting bookkeeping where the
paper's own worked transient (``IM_A``) already lives.
"""

from __future__ import annotations

from typing import FrozenSet, Tuple

from repro.mc.multiset import Multiset

# -- cache controller states -------------------------------------------------

# The first seven states are the eviction-free protocol of the paper's
# case study (its Figure 3 omits evictions); MI_A and II_A extend it with
# M-eviction transients (writeback outstanding / writeback raced with an
# invalidation).  Keeping them *after* the base states preserves the base
# protocol's 7-state next-state action domain (the Table I arithmetic).
C_I, C_S, C_M, C_IS_D, C_IM_D, C_SM_D, C_IS_D_I, C_MI_A, C_II_A = range(9)

CACHE_STATE_NAMES: Tuple[str, ...] = (
    "I", "S", "M", "IS_D", "IM_D", "SM_D", "IS_D_I", "MI_A", "II_A",
)

#: number of cache states in the eviction-free base protocol
BASE_CACHE_STATES = 7

#: cache states in which the line is readable / writable (for SWMR)
CACHE_READABLE = frozenset({C_S, C_M})
CACHE_WRITABLE = frozenset({C_M})
CACHE_STABLE = frozenset({C_I, C_S, C_M})

# -- directory controller states ----------------------------------------------

D_I, D_S, D_M, D_IM_A, D_SM_A, D_MS_A, D_MM_A = range(7)

DIR_STATE_NAMES: Tuple[str, ...] = ("I", "S", "M", "IM_A", "SM_A", "MS_A", "MM_A")

DIR_STABLE = frozenset({D_I, D_S, D_M})

# -- message types -------------------------------------------------------------

GETS = "GetS"
GETM = "GetM"
DATA = "Data"
INV = "Inv"
INVACK = "InvAck"
DATAACK = "DataAck"
# eviction extension
PUTM = "PutM"
PUTACK = "PutAck"

#: which cache states may receive each cache-bound message (used by the
#: "no unexpected message" safety property)
CACHE_EXPECTS = {
    DATA: frozenset({C_IS_D, C_IM_D, C_SM_D, C_IS_D_I}),
    # An invalidation is acceptable (and acknowledged) in *every* cache
    # state: stale invalidations are possible under candidate completions
    # that drop data early, and the robust-protocol convention is to ack
    # them wherever they land.  Data, by contrast, is only ever expected
    # while a fetch is outstanding — that is the real error detector.
    INV: frozenset(
        {C_I, C_S, C_M, C_IS_D, C_IM_D, C_SM_D, C_IS_D_I, C_MI_A, C_II_A}
    ),
    # A writeback acknowledgement is only expected while one is outstanding.
    PUTACK: frozenset({C_MI_A, C_II_A}),
}

#: which directory states may receive each directory-bound message;
#: GetS/GetM are stallable everywhere and so never "unexpected".
DIR_EXPECTS = {
    INVACK: frozenset({D_SM_A, D_MS_A, D_MM_A}),
    DATAACK: frozenset({D_IM_A}),
}

State = Tuple[Tuple[int, ...], int, int, FrozenSet[int], int, int, Multiset]


def initial_state(n_caches: int) -> State:
    """All caches and the directory invalid; empty network."""
    return (
        (C_I,) * n_caches,
        D_I,
        -1,
        frozenset(),
        -1,
        0,
        Multiset(),
    )


class View:
    """A mutable scratch copy of one state, used inside a rule firing.

    Rule handlers mutate the view and the rule wrapper freezes it back into
    a state tuple.  ``caches`` is a list; everything else plain attributes.
    """

    __slots__ = ("caches", "dirst", "owner", "sharers", "req", "acks", "net")

    def __init__(self, state: State) -> None:
        caches, dirst, owner, sharers, req, acks, net = state
        self.caches = list(caches)
        self.dirst = dirst
        self.owner = owner
        self.sharers = sharers
        self.req = req
        self.acks = acks
        self.net = net

    def send(self, mtype: str, cache: int) -> None:
        self.net = self.net.add((mtype, cache))

    def consume(self, mtype: str, cache: int) -> None:
        self.net = self.net.remove((mtype, cache))

    def freeze(self) -> State:
        return (
            tuple(self.caches),
            self.dirst,
            self.owner,
            self.sharers,
            self.req,
            self.acks,
            self.net,
        )


def permute_state(state: State, mapping: Tuple[int, ...]) -> State:
    """Rename cache indices throughout a state (scalarset symmetry)."""
    caches, dirst, owner, sharers, req, acks, net = state
    new_caches = list(caches)
    for old_index, cache_state in enumerate(caches):
        new_caches[mapping[old_index]] = cache_state
    return (
        tuple(new_caches),
        dirst,
        -1 if owner < 0 else mapping[owner],
        frozenset(mapping[s] for s in sharers),
        -1 if req < 0 else mapping[req],
        acks,
        net.map(lambda msg: (msg[0], mapping[msg[1]])),
    )


def replica_keys(state: State) -> Tuple[Tuple, ...]:
    """One orderable key per cache, for the sorted-replica fast path.

    Each key captures everything the state says about cache ``i`` —
    its controller state, whether it owns the line / shares it / is the
    pending requestor, and the multiset of messages addressed to it — in a
    form invariant under renaming of the *other* caches, which is the
    contract :class:`~repro.mc.symmetry.Permuter` requires.  Negative
    message indices deliberately Python-index the bucket list exactly like
    ``mapping[msg[1]]`` does in :func:`permute_state`, so the two stay
    consistent even for out-of-range candidates.
    """
    caches, dirst, owner, sharers, req, acks, net = state
    messages: Tuple[list, ...] = tuple([] for _ in caches)
    for (mtype, cache), count in net.items():
        messages[cache].append((mtype, count))
    return tuple(
        (
            caches[i],
            i == owner,
            i in sharers,
            i == req,
            tuple(sorted(messages[i])),
        )
        for i in range(len(caches))
    )


def packed_spec(n_caches: int, symmetry: bool = True):
    """A :class:`~repro.mc.packed.PackedSpec` for the MSI state layout.

    MESI and MOESI share the exact 7-tuple layout (their extra controller
    states are just more interned atoms), so all three hand-written
    protocols use this one discovery spec.  The per-slot rename closures
    are the *same expressions* as :func:`permute_state` — including the
    collapse of every negative owner/req to ``-1`` and the deliberate
    Python-indexing of out-of-range message indices — so the packed remap
    is exact against the object permuter by construction.
    """
    from repro.mc import packed as pk

    def make_codec() -> "pk.StateCodec":
        def id_rename(value: int, mapping: Tuple[int, ...]) -> int:
            return -1 if value < 0 else mapping[value]

        def sharers_rename(value, mapping):
            return frozenset(mapping[s] for s in value)

        def net_rename(net, mapping):
            return net.map(lambda msg: (msg[0], mapping[msg[1]]))

        layout = [
            pk.Block(pk.AtomSlot(), n_caches),              # caches
            pk.Scalar(pk.AtomSlot()),                       # dirst
            pk.Scalar(pk.AtomSlot(rename=id_rename)),       # owner
            pk.Scalar(pk.AtomSlot(rename=sharers_rename)),  # sharers
            pk.Scalar(pk.AtomSlot(rename=id_rename)),       # req
            pk.Scalar(pk.AtomSlot()),                       # acks
            pk.Scalar(pk.AtomSlot(rename=net_rename)),      # net
        ]

        def extract(state: State) -> Tuple:
            caches, dirst, owner, sharers, req, acks, net = state
            return tuple(caches) + (dirst, owner, sharers, req, acks, net)

        def build(values: Tuple) -> State:
            return (values[:n_caches],) + tuple(values[n_caches:])

        mappings = (
            pk.permutation_mappings(n_caches)
            if symmetry and n_caches > 1
            else pk.identity_mappings(n_caches)
        )
        return pk.StateCodec(layout, extract, build, mappings)

    return pk.PackedSpec(make_codec)


def format_state(state: State) -> str:
    """Human-readable one-liner for traces and debugging."""
    caches, dirst, owner, sharers, req, acks, net = state
    cache_text = ",".join(CACHE_STATE_NAMES[c] for c in caches)
    msgs = ",".join(f"{m}->{c}" for (m, c) in sorted(net)) or "-"
    return (
        f"caches[{cache_text}] dir={DIR_STATE_NAMES[dirst]} owner={owner} "
        f"sharers={sorted(sharers)} req={req} acks={acks} net[{msgs}]"
    )
