"""The MSI cache controller.

Two kinds of table entries:

* *Stable* entries (spontaneous Load/Store events and Inv received in the
  stable states S/M) — always designer-provided.  The paper's case study
  assumes "the designer can complete the protocol's stable states and the
  transition rules leading from stable states to transient states".
* *Transient* entries — the synthesis targets.  Each is a (response,
  next-state) action pair; the reference completion below is the known-good
  protocol, and skeletons replace chosen entries with hole resolutions.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.protocols.msi import defs
from repro.protocols.msi.actions import (
    CacheHoles,
    apply_cache_next,
    cache_next_domain,
    cache_response_domain,
)
from repro.protocols.msi.defs import View

LOAD = "Load"
STORE = "Store"
EVICT = "Evict"

#: handler signature: (view, cache_index, execution_context) -> None
Handler = Callable[[View, int, object], None]

#: the (state, event) keys of cache transition rules eligible for holes,
#: with the reference (response, next_state) action names.
REFERENCE_CACHE_COMPLETIONS: Dict[Tuple[int, str], Tuple[str, str]] = {
    (defs.C_IS_D, defs.DATA): ("none", "goto_S"),
    (defs.C_IS_D, defs.INV): ("send_invack", "goto_IS_D_I"),
    (defs.C_IS_D_I, defs.DATA): ("none", "goto_I"),
    (defs.C_IM_D, defs.DATA): ("send_dataack", "goto_M"),
    # A stale invalidation while fetching-for-store: ack and keep waiting.
    # Unreachable in the reference protocol, but candidate completions that
    # drop data early make it reachable (the directory may still list the
    # cache as a sharer).
    (defs.C_IM_D, defs.INV): ("send_invack", "goto_IM_D"),
    (defs.C_SM_D, defs.DATA): ("send_dataack", "goto_M"),
    (defs.C_SM_D, defs.INV): ("send_invack", "goto_IM_D"),
    # Same stale-invalidation situation while waiting to drop stale data.
    (defs.C_IS_D_I, defs.INV): ("send_invack", "goto_IS_D_I"),
}

#: additional holeable transients of the eviction extension: the writeback
#: handshake and its race with a crossing invalidation.
EVICTION_CACHE_COMPLETIONS: Dict[Tuple[int, str], Tuple[str, str]] = {
    (defs.C_MI_A, defs.PUTACK): ("none", "goto_I"),
    (defs.C_MI_A, defs.INV): ("send_invack", "goto_II_A"),
    (defs.C_II_A, defs.PUTACK): ("none", "goto_I"),
}

#: deterministic rule ordering (spontaneous events first, then receives);
#: hole discovery order follows this.
CACHE_TABLE_ORDER: Tuple[Tuple[int, str], ...] = (
    (defs.C_I, LOAD),
    (defs.C_I, STORE),
    (defs.C_S, STORE),
    (defs.C_S, defs.INV),
    (defs.C_M, defs.INV),
    (defs.C_I, defs.INV),
    (defs.C_IM_D, defs.DATA),
    (defs.C_IM_D, defs.INV),
    (defs.C_SM_D, defs.DATA),
    (defs.C_SM_D, defs.INV),
    (defs.C_IS_D, defs.DATA),
    (defs.C_IS_D, defs.INV),
    (defs.C_IS_D_I, defs.DATA),
    (defs.C_IS_D_I, defs.INV),
)

#: rule ordering of the eviction extension (appended after the base rules)
EVICTION_TABLE_ORDER: Tuple[Tuple[int, str], ...] = (
    (defs.C_M, EVICT),
    (defs.C_S, EVICT),
    (defs.C_MI_A, defs.PUTACK),
    (defs.C_MI_A, defs.INV),
    (defs.C_II_A, defs.PUTACK),
)


def _load_from_i(view: View, cache: int, ctx: object) -> None:
    view.send(defs.GETS, cache)
    view.caches[cache] = defs.C_IS_D


def _store_from_i(view: View, cache: int, ctx: object) -> None:
    view.send(defs.GETM, cache)
    view.caches[cache] = defs.C_IM_D


def _store_from_s(view: View, cache: int, ctx: object) -> None:
    view.send(defs.GETM, cache)
    view.caches[cache] = defs.C_SM_D


def _inv_in_s(view: View, cache: int, ctx: object) -> None:
    view.send(defs.INVACK, cache)
    view.caches[cache] = defs.C_I


def _inv_in_i(view: View, cache: int, ctx: object) -> None:
    """Acknowledge a stale invalidation.

    Unreachable in the reference protocol (the directory only invalidates
    actual sharers/owners), but candidate completions that drop data while
    the directory still lists the cache as a sharer make this reachable —
    the standard protocol response is to ack and stay invalid.
    """
    view.send(defs.INVACK, cache)


def _inv_in_m(view: View, cache: int, ctx: object) -> None:
    view.send(defs.INVACK, cache)
    view.caches[cache] = defs.C_I


def _evict_modified(view: View, cache: int, ctx: object) -> None:
    """Evict a modified line: issue the writeback, await the ack."""
    view.send(defs.PUTM, cache)
    view.caches[cache] = defs.C_MI_A


def _evict_shared(view: View, cache: int, ctx: object) -> None:
    """Silently drop a shared line; the directory's sharer entry goes stale
    and a later invalidation is acknowledged from I."""
    view.caches[cache] = defs.C_I


def make_reference_completion(response_name: str, next_name: str) -> Handler:
    """Build a transient handler from fixed action names (the complete protocol)."""
    # Look actions up in the extended domains (a superset by name), so the
    # same constructor serves base and eviction-variant tables.
    response = {a.name: a for a in cache_response_domain(extended=True)}[response_name]
    next_state = {a.name: a for a in cache_next_domain(extended=True)}[next_name]

    def handler(view: View, cache: int, ctx: object) -> None:
        response.fn(view, cache)
        apply_cache_next(view, cache, next_state.payload)

    return handler


def make_holed_completion(holes: CacheHoles) -> Handler:
    """Build a transient handler that resolves its actions from holes."""

    def handler(view: View, cache: int, ctx) -> None:
        response = ctx.resolve(holes.response)
        response.fn(view, cache)
        next_state = ctx.resolve(holes.next_state)
        apply_cache_next(view, cache, next_state.payload)

    return handler


def reference_cache_table(evictions: bool = False) -> Dict[Tuple[int, str], Handler]:
    """The complete (hole-free) cache controller."""
    table: Dict[Tuple[int, str], Handler] = {
        (defs.C_I, LOAD): _load_from_i,
        (defs.C_I, STORE): _store_from_i,
        (defs.C_S, STORE): _store_from_s,
        (defs.C_S, defs.INV): _inv_in_s,
        (defs.C_M, defs.INV): _inv_in_m,
        (defs.C_I, defs.INV): _inv_in_i,
    }
    for key, (response_name, next_name) in REFERENCE_CACHE_COMPLETIONS.items():
        table[key] = make_reference_completion(response_name, next_name)
    if evictions:
        table[(defs.C_M, EVICT)] = _evict_modified
        table[(defs.C_S, EVICT)] = _evict_shared
        for key, (response_name, next_name) in EVICTION_CACHE_COMPLETIONS.items():
            table[key] = make_reference_completion(response_name, next_name)
    return table
