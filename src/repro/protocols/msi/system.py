"""Assembly of the MSI transition system for N caches.

Rules are generated from the controller tables: one rule per (cache index,
table entry) for the cache controller, one per (sender index, table entry)
for the directory.  Rule order is deterministic (it fixes hole discovery
order).  Symmetry reduction canonicalises over all cache-index permutations.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.mc.properties import DeadlockPolicy
from repro.mc.rule import Rule
from repro.mc.symmetry import Permuter, ScalarSet
from repro.mc.system import TransitionSystem
from repro.protocols.msi import defs
from repro.protocols.msi.cache import (
    CACHE_TABLE_ORDER,
    EVICT,
    EVICTION_CACHE_COMPLETIONS,
    EVICTION_TABLE_ORDER,
    LOAD,
    REFERENCE_CACHE_COMPLETIONS,
    STORE,
    reference_cache_table,
)
from repro.protocols.msi.directory import (
    DIR_TABLE_ORDER,
    EVICTION_DIR_TABLE_ORDER,
    REFERENCE_DIR_COMPLETIONS,
    reference_dir_table,
)
from repro.protocols.msi.properties import msi_coverage, msi_invariants, msi_quiescent

Handler = Callable[[defs.View, int, object], None]
Table = Dict[Tuple[int, str], Handler]

_SPONTANEOUS = frozenset({LOAD, STORE, EVICT})


def _cache_rule(c: int, state_code: int, event: str, handler: Handler) -> Rule:
    state_name = defs.CACHE_STATE_NAMES[state_code]
    if event in _SPONTANEOUS:
        def guard(state, _c=c, _code=state_code):
            return state[0][_c] == _code
    else:
        def guard(state, _c=c, _code=state_code, _ev=event):
            return state[0][_c] == _code and (_ev, _c) in state[6]

    def apply(state, ctx, _c=c, _ev=event, _handler=handler):
        view = defs.View(state)
        if _ev not in _SPONTANEOUS:
            view.consume(_ev, _c)
        _handler(view, _c, ctx)
        return [view.freeze()]

    return Rule(f"cache{c}:{state_name}+{event}", guard, apply, params={"c": c})


def _dir_rule(c: int, state_code: int, event: str, handler: Handler) -> Rule:
    state_name = defs.DIR_STATE_NAMES[state_code]

    def guard(state, _c=c, _code=state_code, _ev=event):
        return state[1] == _code and (_ev, _c) in state[6]

    def apply(state, ctx, _c=c, _ev=event, _handler=handler):
        view = defs.View(state)
        view.consume(_ev, _c)
        _handler(view, _c, ctx)
        return [view.freeze()]

    return Rule(f"dir:{state_name}+{event}[c={c}]", guard, apply, params={"c": c})


def build_msi_system(
    n_caches: int = 2,
    cache_table: Optional[Table] = None,
    dir_table: Optional[Table] = None,
    name: str = "msi",
    symmetry: bool = True,
    coverage: bool = True,
    evictions: bool = False,
) -> TransitionSystem:
    """Build the MSI transition system.

    With the default (reference) tables the system is the complete protocol;
    skeletons pass tables in which chosen transient entries resolve holes.
    ``evictions=True`` enables the M-eviction/writeback extension (the
    paper's Figure 3 omits evictions; see DESIGN.md).
    """
    if n_caches < 1:
        raise ValueError("n_caches must be >= 1")
    if cache_table is None:
        cache_table = reference_cache_table(evictions)
    if dir_table is None:
        dir_table = reference_dir_table(evictions)

    cache_order = CACHE_TABLE_ORDER + (EVICTION_TABLE_ORDER if evictions else ())
    dir_order = DIR_TABLE_ORDER + (EVICTION_DIR_TABLE_ORDER if evictions else ())
    rules = []
    for c in range(n_caches):
        for key in cache_order:
            if key in cache_table:
                rules.append(_cache_rule(c, key[0], key[1], cache_table[key]))
    for key in dir_order:
        if key in dir_table:
            for c in range(n_caches):
                rules.append(_dir_rule(c, key[0], key[1], dir_table[key]))

    canonicalize = None
    if symmetry and n_caches > 1:
        permuter = Permuter.for_single(
            ScalarSet("cache", n_caches),
            defs.permute_state,
            replica_keys=defs.replica_keys,
        )
        canonicalize = permuter.make_canonicalizer()

    return TransitionSystem(
        name=f"{name}-{n_caches}c",
        initial_states=[defs.initial_state(n_caches)],
        rules=rules,
        invariants=msi_invariants(n_caches),
        coverage=msi_coverage(coverage),
        deadlock=DeadlockPolicy.fail(quiescent=msi_quiescent),
        canonicalize=canonicalize,
        packed_spec=defs.packed_spec(n_caches, symmetry=symmetry),
    )


def reference_solution_assignment() -> Dict[str, str]:
    """Hole name -> action name of the reference completion for every
    holeable rule (restricted to a skeleton's holes, this is the known-good
    solution the synthesiser must rediscover)."""
    assignment: Dict[str, str] = {}
    cache_completions = dict(REFERENCE_CACHE_COMPLETIONS)
    cache_completions.update(EVICTION_CACHE_COMPLETIONS)
    for (state_code, event), names in cache_completions.items():
        rule = f"{defs.CACHE_STATE_NAMES[state_code]}+{event}"
        assignment[f"cache.{rule}.response"] = names[0]
        assignment[f"cache.{rule}.next"] = names[1]
    for (state_code, event), names in REFERENCE_DIR_COMPLETIONS.items():
        rule = f"{defs.DIR_STATE_NAMES[state_code]}+{event}"
        assignment[f"dir.{rule}.response"] = names[0]
        assignment[f"dir.{rule}.next"] = names[1]
        assignment[f"dir.{rule}.track"] = names[2]
    return assignment
