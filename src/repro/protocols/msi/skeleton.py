"""MSI skeletons: the protocol with chosen transient rules left as holes.

The paper's two problem sizes:

* **MSI-small** — 8 holes = 2 directory + 1 cache transition rules
  (naive candidate space 105 * 105 * 21 = 231,525);
* **MSI-large** — 12 holes = 2 directory + 3 cache transition rules
  (naive space 105^2 * 21^3 = 102,102,525).

We additionally define **MSI-tiny** (1 cache rule = 2 holes, space 21) for
fast tests, and :func:`msi_skeleton` accepts any subset of the holeable
rules for custom experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.hole import Hole
from repro.errors import SynthesisError
from repro.mc.system import TransitionSystem
from repro.protocols.msi import defs
from repro.protocols.msi.actions import CacheHoles, DirHoles
from repro.protocols.msi.cache import (
    EVICTION_CACHE_COMPLETIONS,
    REFERENCE_CACHE_COMPLETIONS,
    make_holed_completion as make_holed_cache,
    reference_cache_table,
)
from repro.protocols.msi.directory import (
    REFERENCE_DIR_COMPLETIONS,
    make_holed_completion as make_holed_dir,
    reference_dir_table,
)
from repro.protocols.msi.system import build_msi_system, reference_solution_assignment


@dataclass
class SkeletonSpec:
    """A skeleton description: which transient rules are blanked out."""

    name: str
    cache_rules: Tuple[Tuple[int, str], ...] = ()
    dir_rules: Tuple[Tuple[int, str], ...] = ()
    n_caches: int = 2
    symmetry: bool = True
    coverage: bool = True
    evictions: bool = False

    @property
    def hole_count(self) -> int:
        return 2 * len(self.cache_rules) + 3 * len(self.dir_rules)


@dataclass
class Skeleton:
    """A built skeleton: the system plus its hole objects."""

    spec: SkeletonSpec
    system: TransitionSystem
    holes: List[Hole] = field(default_factory=list)

    @property
    def hole_count(self) -> int:
        return len(self.holes)

    def reference_assignment(self) -> Dict[str, str]:
        """Hole name -> reference action name (the known-good completion)."""
        full = reference_solution_assignment()
        return {hole.name: full[hole.name] for hole in self.holes}

    def reference_digits(self, holes_in_discovery_order: List[Hole]) -> Tuple[int, ...]:
        """The reference solution as action indices over the given hole order."""
        assignment = self.reference_assignment()
        return tuple(
            hole.index_of(assignment[hole.name]) for hole in holes_in_discovery_order
        )


def _cache_rule_label(key: Tuple[int, str]) -> str:
    return f"{defs.CACHE_STATE_NAMES[key[0]]}+{key[1]}"


def _dir_rule_label(key: Tuple[int, str]) -> str:
    return f"{defs.DIR_STATE_NAMES[key[0]]}+{key[1]}"


def msi_skeleton(spec: SkeletonSpec) -> Skeleton:
    """Build the skeleton system for a spec."""
    cache_table = reference_cache_table(spec.evictions)
    dir_table = reference_dir_table(spec.evictions)
    holes: List[Hole] = []

    holeable_cache = dict(REFERENCE_CACHE_COMPLETIONS)
    if spec.evictions:
        holeable_cache.update(EVICTION_CACHE_COMPLETIONS)
    for key in spec.cache_rules:
        if key not in holeable_cache:
            raise SynthesisError(f"cache rule {key} is not holeable")
        hole_group = CacheHoles(_cache_rule_label(key), extended=spec.evictions)
        cache_table[key] = make_holed_cache(hole_group)
        holes.extend(hole_group.holes)

    for key in spec.dir_rules:
        if key not in REFERENCE_DIR_COMPLETIONS:
            raise SynthesisError(f"directory rule {key} is not holeable")
        hole_group = DirHoles(_dir_rule_label(key))
        dir_table[key] = make_holed_dir(key, hole_group)
        holes.extend(hole_group.holes)

    system = build_msi_system(
        n_caches=spec.n_caches,
        cache_table=cache_table,
        dir_table=dir_table,
        name=spec.name,
        symmetry=spec.symmetry,
        coverage=spec.coverage,
        evictions=spec.evictions,
    )
    return Skeleton(spec=spec, system=system, holes=holes)


def msi_tiny(n_caches: int = 2, coverage: bool = True) -> Skeleton:
    """1 cache rule = 2 holes (candidate space 21): IM_D+Data."""
    return msi_skeleton(
        SkeletonSpec(
            name="msi-tiny",
            cache_rules=((defs.C_IM_D, defs.DATA),),
            n_caches=n_caches,
            coverage=coverage,
        )
    )


def msi_read_tiny(n_caches: int = 2, coverage: bool = True) -> Skeleton:
    """1 cache rule = 2 holes on the *read* path: IS_D+Data.

    This skeleton reproduces the paper's motivation for the stable-state
    coverage property: without it, the completion (none, goto_I) — "receive
    the response but immediately transition straight back to Invalid" —
    verifies as a correct protocol that "effectively renders the cache
    useless" (Section III).  With coverage, only completions that actually
    reach S survive.
    """
    return msi_skeleton(
        SkeletonSpec(
            name="msi-read-tiny",
            cache_rules=((defs.C_IS_D, defs.DATA),),
            n_caches=n_caches,
            coverage=coverage,
        )
    )


def msi_evict(n_caches: int = 2, coverage: bool = True) -> Skeleton:
    """Eviction extension: synthesise the writeback-race transients.

    Holes the three eviction transients (MI_A+PutAck, MI_A+Inv,
    II_A+PutAck) of the eviction-enabled protocol — the crossing of a
    writeback with an invalidation is a textbook "non-trivial corner case"
    of the kind the paper argues synthesis is most valuable for.  The hole
    domains are the extended ones (4 responses x 9 next states).
    """
    return msi_skeleton(
        SkeletonSpec(
            name="msi-evict",
            cache_rules=(
                (defs.C_MI_A, defs.PUTACK),
                (defs.C_MI_A, defs.INV),
                (defs.C_II_A, defs.PUTACK),
            ),
            n_caches=n_caches,
            coverage=coverage,
            evictions=True,
        )
    )


def msi_small(n_caches: int = 2, coverage: bool = True) -> Skeleton:
    """8 holes = 2 directory + 1 cache rules (space 231,525), as in Table I.

    The holed rules are the write-path transients the paper's Section III
    narrates: the directory's serialisation transient (IM_A waiting for the
    data acknowledgement), the ownership-transfer transient (MM_A), and the
    cache's data-arrival rule for its outstanding store (IM_D).
    """
    return msi_skeleton(
        SkeletonSpec(
            name="msi-small",
            cache_rules=((defs.C_IM_D, defs.DATA),),
            dir_rules=(
                (defs.D_IM_A, defs.DATAACK),
                (defs.D_MM_A, defs.INVACK),
            ),
            n_caches=n_caches,
            coverage=coverage,
        )
    )


def msi_large(n_caches: int = 2, coverage: bool = True) -> Skeleton:
    """12 holes = 2 directory + 3 cache rules (space 102,102,525), Table I.

    Adds the shared-upgrade races to MSI-small: the cache's SM_D data
    arrival and the SM_D invalidation race (losing the upgrade race demotes
    the request to a plain fetch).
    """
    return msi_skeleton(
        SkeletonSpec(
            name="msi-large",
            cache_rules=(
                (defs.C_IM_D, defs.DATA),
                (defs.C_SM_D, defs.DATA),
                (defs.C_SM_D, defs.INV),
            ),
            dir_rules=(
                (defs.D_IM_A, defs.DATAACK),
                (defs.D_MM_A, defs.INVACK),
            ),
            n_caches=n_caches,
            coverage=coverage,
        )
    )
