"""The worked example of the paper's Figure 2.

A linear chain of decision states; at each, a hole picks the action that
determines the next state.  The action ranges are ``[A, B]`` with hole 1
additionally offering ``C`` — so naive enumeration evaluates
``3 * 2 * 2 * 2 = 24`` candidates while the pruning procedure needs
exactly 10 model-checker runs (runs 1-10 of Figure 2).

The transition structure encodes Figure 2's run table:

* hole 1 (at ``s0``): ``A`` -> error, ``B`` -> ``s2``, ``C`` -> error;
* hole 2 (at ``s2``): ``A`` -> ``s3``, ``B`` -> error;
* hole 3 (at ``s3``): ``A`` -> error, ``B`` -> ``s4``;
* hole 4 (at ``s4``): ``A`` -> error, ``B`` -> ``ok``.

``ok`` is quiescent; reaching ``err`` violates the safety invariant.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.action import Action
from repro.core.hole import Hole
from repro.mc.properties import DeadlockPolicy, Invariant
from repro.mc.rule import Rule
from repro.mc.system import TransitionSystem

#: next-state table: TRANSITIONS[state][action_name] -> next state
TRANSITIONS: Dict[str, Dict[str, str]] = {
    "s0": {"A": "err", "B": "s2", "C": "err"},
    "s2": {"A": "s3", "B": "err"},
    "s3": {"A": "err", "B": "s4"},
    "s4": {"A": "err", "B": "ok"},
}

#: discovery order of the decision states (hole 1 first)
DECISION_STATES: Tuple[str, ...] = ("s0", "s2", "s3", "s4")


def build_figure2_holes() -> List[Hole]:
    """The four holes with the action domains of Figure 2."""
    act_a = Action("A", payload="A")
    act_b = Action("B", payload="B")
    act_c = Action("C", payload="C")
    return [
        Hole("hole1", [act_a, act_b, act_c]),
        Hole("hole2", [act_a, act_b]),
        Hole("hole3", [act_a, act_b]),
        Hole("hole4", [act_a, act_b]),
    ]


def build_figure2_skeleton_with_holes() -> Tuple[TransitionSystem, List[Hole]]:
    """The Figure 2 toy skeleton plus the hole objects embedded in it."""
    holes = build_figure2_holes()
    hole_for = dict(zip(DECISION_STATES, holes))

    def make_rule(state_name: str) -> Rule:
        hole = hole_for[state_name]

        def apply(state: str, ctx, _name: str = state_name, _hole: Hole = hole):
            chosen = ctx.resolve(_hole)
            return [TRANSITIONS[_name][chosen.payload]]

        return Rule(
            name=f"step_{state_name}",
            guard=lambda state, _name=state_name: state == _name,
            apply=apply,
        )

    from repro.mc.packed import PackedSpec, trivial_codec

    system = TransitionSystem(
        name="figure2-toy",
        initial_states=["s0"],
        rules=[make_rule(name) for name in DECISION_STATES],
        invariants=[Invariant("no-error", lambda state: state != "err")],
        deadlock=DeadlockPolicy.fail(quiescent=lambda state: state == "ok"),
        # No symmetry: whole-state interning still gives packed mode the
        # slab dedup and the firing memo.
        packed_spec=PackedSpec(trivial_codec),
    )
    return system, holes


def build_figure2_skeleton() -> TransitionSystem:
    """The Figure 2 toy skeleton, ready for a synthesis engine."""
    return build_figure2_skeleton_with_holes()[0]


def build_figure2_solution() -> Dict[str, str]:
    """The unique correct assignment (run 10 of Figure 2)."""
    return {"hole1": "B", "hole2": "A", "hole3": "B", "hole4": "B"}
