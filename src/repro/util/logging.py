"""Library logging setup.

The library logs under the ``repro`` namespace and never configures the root
logger; applications opt in with :func:`enable_verbose_logging`.
"""

from __future__ import annotations

import logging


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under ``repro``."""
    if name.startswith("repro"):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")


#: marker attribute identifying the handler this module attached — an
#: isinstance check is not enough (FileHandler subclasses StreamHandler,
#: and an application's own stderr handler is not ours to count)
_HANDLER_TAG = "_repro_verbose_handler"


def enable_verbose_logging(level: int = logging.INFO) -> logging.Handler:
    """Attach (or re-tune) the library's stderr handler.

    Idempotent under re-entry, including with a *different* ``level``:
    exactly one handler is ever attached, and a later call moves both the
    logger and the existing handler to the new level instead of stacking
    a second handler.  Handlers attached by the application are neither
    counted as ours nor touched.  Returns the library handler.
    """
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    for handler in logger.handlers:
        if getattr(handler, _HANDLER_TAG, False):
            handler.setLevel(level)
            return handler
    handler = logging.StreamHandler()
    handler.setLevel(level)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
    )
    setattr(handler, _HANDLER_TAG, True)
    logger.addHandler(handler)
    return handler
