"""Library logging setup.

The library logs under the ``repro`` namespace and never configures the root
logger; applications opt in with :func:`enable_verbose_logging`.
"""

from __future__ import annotations

import logging


def get_logger(name: str) -> logging.Logger:
    """Return a logger namespaced under ``repro``."""
    if name.startswith("repro"):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")


def enable_verbose_logging(level: int = logging.INFO) -> None:
    """Attach a stderr handler to the library logger (idempotent)."""
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
