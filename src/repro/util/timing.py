"""Wall-clock measurement helper used by engines and benchmarks."""

from __future__ import annotations

import time


class Stopwatch:
    """A restartable wall-clock stopwatch.

    >>> watch = Stopwatch.started()
    >>> watch.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float = 0.0
        self._accumulated: float = 0.0
        self._running = False

    @classmethod
    def started(cls) -> "Stopwatch":
        """A new stopwatch, already running."""
        watch = cls()
        watch.start()
        return watch

    def start(self) -> None:
        """Start (or restart) timing from now."""
        if self._running:
            raise RuntimeError("stopwatch already running")
        self._start = time.perf_counter()
        self._running = True

    def stop(self) -> float:
        """Stop timing and freeze the elapsed value."""
        if not self._running:
            raise RuntimeError("stopwatch not running")
        self._accumulated += time.perf_counter() - self._start
        self._running = False
        return self._accumulated

    @property
    def elapsed(self) -> float:
        """Seconds measured so far (live while running)."""
        if self._running:
            return self._accumulated + (time.perf_counter() - self._start)
        return self._accumulated

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
