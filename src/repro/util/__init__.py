"""Small generic utilities shared across the library."""

from repro.util.itertools2 import (
    MixedRadixCounter,
    mixed_radix_decode,
    mixed_radix_encode,
    product_size,
    split_ranges,
)
from repro.util.timing import Stopwatch

__all__ = [
    "MixedRadixCounter",
    "Stopwatch",
    "mixed_radix_decode",
    "mixed_radix_encode",
    "product_size",
    "split_ranges",
]
