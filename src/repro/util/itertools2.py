"""Mixed-radix counting helpers used by the candidate enumerator.

A candidate configuration assigns one action index to each discovered hole.
Enumerating all configurations is counting in a mixed-radix number system
where digit ``i`` has radix ``len(domain of hole i)``.  The first-discovered
hole is the *most significant* digit, matching the order of the worked
example in Figure 2 of the paper (``<1@A, 2@A>`` precedes ``<1@B, 2@A>``).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple


def product_size(radices: Sequence[int]) -> int:
    """Return the number of values representable with the given radices.

    An empty radix list yields 1 (the single empty assignment).
    """
    size = 1
    for radix in radices:
        if radix <= 0:
            raise ValueError(f"radices must be positive, got {radix}")
        size *= radix
    return size


def mixed_radix_decode(index: int, radices: Sequence[int]) -> Tuple[int, ...]:
    """Decode ``index`` into digits, most significant digit first."""
    if index < 0:
        raise ValueError("index must be non-negative")
    digits = [0] * len(radices)
    remaining = index
    for position in range(len(radices) - 1, -1, -1):
        radix = radices[position]
        digits[position] = remaining % radix
        remaining //= radix
    if remaining:
        raise ValueError(f"index {index} out of range for radices {list(radices)}")
    return tuple(digits)


def mixed_radix_encode(digits: Sequence[int], radices: Sequence[int]) -> int:
    """Inverse of :func:`mixed_radix_decode`."""
    if len(digits) != len(radices):
        raise ValueError("digits and radices must have equal length")
    index = 0
    for digit, radix in zip(digits, radices):
        if not 0 <= digit < radix:
            raise ValueError(f"digit {digit} out of range for radix {radix}")
        index = index * radix + digit
    return index


class MixedRadixCounter:
    """Stateful counter over a mixed-radix digit vector.

    Unlike :func:`itertools.product`, the counter exposes ``skip_suffix``:
    given a digit position, it advances directly past all values sharing the
    current digits up to and including that position.  The synthesis
    enumerator uses this to skip entire pruned subtrees without visiting
    each candidate individually (see DESIGN.md, substitution 1).
    """

    def __init__(self, radices: Sequence[int]) -> None:
        for radix in radices:
            if radix <= 0:
                raise ValueError(f"radices must be positive, got {radix}")
        self._radices: List[int] = list(radices)
        self._digits: List[int] = [0] * len(radices)
        self._exhausted = not radices and False  # empty vector yields one value
        self._yielded_empty = False

    @property
    def radices(self) -> Tuple[int, ...]:
        return tuple(self._radices)

    @property
    def digits(self) -> Tuple[int, ...]:
        return tuple(self._digits)

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    def advance(self) -> None:
        """Advance to the next value (least significant digit first)."""
        self._increment_from(len(self._radices) - 1)

    def skip_suffix(self, position: int) -> None:
        """Skip all values sharing the current digits[0..position] prefix.

        Equivalent to zeroing every digit after ``position`` and then adding
        one at ``position``.
        """
        if not 0 <= position < len(self._radices):
            raise IndexError(f"position {position} out of range")
        for trailing in range(position + 1, len(self._radices)):
            self._digits[trailing] = 0
        self._increment_from(position)

    def _increment_from(self, position: int) -> None:
        if not self._radices:
            self._exhausted = True
            return
        cursor = position
        while cursor >= 0:
            self._digits[cursor] += 1
            if self._digits[cursor] < self._radices[cursor]:
                return
            self._digits[cursor] = 0
            cursor -= 1
        self._exhausted = True

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        if not self._radices:
            if not self._yielded_empty:
                self._yielded_empty = True
                yield ()
            return
        while not self._exhausted:
            yield self.digits
            self.advance()


def split_ranges(total: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into ``parts`` contiguous half-open ranges.

    Used by parallel synthesis to hand each worker thread a slice of the
    candidate index space.  Earlier ranges are at most one element larger.
    Empty ranges are omitted.
    """
    if parts <= 0:
        raise ValueError("parts must be positive")
    if total < 0:
        raise ValueError("total must be non-negative")
    base, extra = divmod(total, parts)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for part in range(parts):
        size = base + (1 if part < extra else 0)
        if size:
            ranges.append((start, start + size))
        start += size
    return ranges
