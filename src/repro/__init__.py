"""repro — a Python reproduction of VerC3 (Elver et al., DATE 2018).

VerC3 is a library for *explicit state synthesis of concurrent systems*:
given a protocol skeleton with holes and a correctness specification, it
enumerates candidate completions, model checks each with an embedded
explicit-state checker, and prunes candidates inferred to fail from
previously recorded failure patterns.

Public API tour:

* :mod:`repro.api` — the stable facade: :func:`~repro.api.verify`,
  :func:`~repro.api.synthesize`, :func:`~repro.api.open_store`.
* :mod:`repro.mc` — Murphi-like modelling + BFS model checker + symmetry.
* :mod:`repro.core` — holes, actions, candidate pruning, synthesis engines.
* :mod:`repro.dsl` — declarative protocol-building helpers.
* :mod:`repro.protocols` — case studies (directory MSI, VI, mutex, the
  paper's Figure 2 toy).
* :mod:`repro.analysis` — solution grouping and Table I rendering.

Quickstart (the stable facade, :mod:`repro.api`)::

    from repro import synthesize, verify

    print(verify("msi").summary())
    report = synthesize("msi-small", store="runs/msi-store")
    print(report.summary())

or, one layer down::

    from repro.core import SynthesisEngine, SynthesisConfig
    from repro.protocols.toy import build_figure2_skeleton

    report = SynthesisEngine(build_figure2_skeleton()).run()
    print(report.summary())
"""

from repro.api import open_store, synthesize, verify
from repro.core import (
    Action,
    Hole,
    ParallelSynthesisEngine,
    SynthesisConfig,
    SynthesisEngine,
    SynthesisReport,
    WILDCARD,
)
from repro.mc import (
    BfsExplorer,
    CoverageProperty,
    DeadlockPolicy,
    DfsExplorer,
    ExplorationKernel,
    ExplorationLimits,
    Invariant,
    Multiset,
    Rule,
    ScalarSet,
    TransitionSystem,
    Verdict,
    make_explorer,
    ruleset,
)

__version__ = "0.1.0"

__all__ = [
    "Action",
    "BfsExplorer",
    "CoverageProperty",
    "DeadlockPolicy",
    "DfsExplorer",
    "ExplorationKernel",
    "ExplorationLimits",
    "Hole",
    "Invariant",
    "Multiset",
    "ParallelSynthesisEngine",
    "Rule",
    "ScalarSet",
    "SynthesisConfig",
    "SynthesisEngine",
    "SynthesisReport",
    "TransitionSystem",
    "Verdict",
    "WILDCARD",
    "__version__",
    "make_explorer",
    "open_store",
    "ruleset",
    "synthesize",
    "verify",
]
