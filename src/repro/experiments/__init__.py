"""Declarative experiment matrices over the protocol catalog.

The paper's evaluation — and this repository's reproduction of it — is a
pile of *configurations*: protocol x replica count x backend x flag
toggles.  This package makes running any such configuration grid a
one-command, resumable operation:

* :mod:`repro.experiments.spec` — the declarative matrix format
  (``axes`` product + ``include``/``exclude``), expansion, validation;
* :mod:`repro.experiments.runner` — cell execution with per-cell
  timeouts, a kill-safe JSON journal (re-running skips completed cells),
  and ``results.json`` / ``report.md`` outputs;
* :mod:`repro.experiments.presets` — built-in matrices: ``table1``
  (reproduces ``table1_output.txt``) and ``smoke`` (the CI step).

CLI entry point: ``python -m repro matrix`` (see ``docs/experiments.md``).
"""

from repro.experiments.presets import PRESETS, load_preset, preset_names
from repro.experiments.runner import MatrixResult, MatrixRunner, run_cell
from repro.experiments.spec import (
    CellSpec,
    MatrixSpec,
    expand_matrix,
    make_cell,
)

__all__ = [
    "CellSpec",
    "MatrixResult",
    "MatrixRunner",
    "MatrixSpec",
    "PRESETS",
    "expand_matrix",
    "load_preset",
    "make_cell",
    "preset_names",
    "run_cell",
]
