"""Built-in matrix presets (``python -m repro matrix --preset <name>``).

* ``table1`` — reproduces the repository's Table I
  (``table1_output.txt``): the MSI-tiny naive/pruning pair, MSI-small
  under all three backends, and the sample-extrapolated MSI-small naive
  baseline.  An include-only matrix — the paper's table is irregular.
* ``smoke`` — a few minutes of tiny cells: every complete protocol
  verified at 2 replicas and every fast skeleton synthesised
  sequentially.  This is the CI matrix-smoke step.
* ``fuzz`` — generated protocols through the journaled runner: building
  the preset registers a handful of seeded fuzz skeletons in the runtime
  catalog (:func:`register_fuzz_skeletons`) and synthesises each one
  under the packed/object kernels.  The differential lattice itself
  lives in ``python -m repro fuzz``; this preset is the matrix-side
  bridge, giving generated specs the same resumable journal, report, and
  timeout machinery as the hand-written workloads.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import ExperimentError
from repro.experiments.spec import MatrixSpec


def table1_preset() -> MatrixSpec:
    """The Table I reproduction as a declarative matrix."""
    return MatrixSpec.from_dict(
        {
            "name": "table1",
            "defaults": {"mode": "synth", "replicas": 2},
            "include": [
                {
                    "id": "tiny-naive",
                    "label": "MSI-tiny 1 thread, no pruning",
                    "target": "msi-tiny",
                    "pruning": False,
                },
                {
                    "id": "tiny-pruned",
                    "label": "MSI-tiny 1 thread, pruning",
                    "target": "msi-tiny",
                },
                {
                    "id": "small-seq",
                    "label": "MSI-small 1 thread, pruning",
                    "target": "msi-small",
                },
                {
                    "id": "small-threads",
                    "label": "MSI-small 4 threads, pruning (algorithmic repro)",
                    "target": "msi-small",
                    "backend": "threads",
                    "workers": 4,
                },
                {
                    "id": "small-processes",
                    "label": "MSI-small 4 processes, pruning",
                    "target": "msi-small",
                    "backend": "processes",
                    "workers": 4,
                },
                {
                    "id": "small-naive-estimated",
                    "label": "MSI-small 1 thread, no pruning",
                    "target": "msi-small",
                    "estimate_naive_from": "small-seq",
                },
            ],
        }
    )


def smoke_preset() -> MatrixSpec:
    """Tiny cells only: the CI smoke matrix (sequential synthesis +
    every protocol verified).  The synthesis axis covers each protocol
    family once, including the new MOESI and German workloads."""
    return MatrixSpec.from_dict(
        {
            "name": "smoke",
            "defaults": {
                "mode": "synth",
                "replicas": 2,
                "backend": "sequential",
                "timeout_seconds": 300,
            },
            "axes": {
                "target": [
                    "figure2",
                    "mutex",
                    "vi",
                    "msi-tiny",
                    "mesi",
                    "moesi-small",
                    "german-small",
                ],
            },
            "include": [
                {"mode": "verify", "target": name, "timeout_seconds": 120}
                for name in ("mutex", "vi", "msi", "mesi", "moesi", "german")
            ]
            + [
                # partial-order reduction smoke: one verify and one synth
                # cell per mode so the reduced kernel path runs in CI
                {"mode": "verify", "target": "moesi", "por": True,
                 "timeout_seconds": 120},
                {"target": "german-small", "por": True,
                 "timeout_seconds": 300},
                # family-based synthesis smoke: one cell so the family
                # scheduler's quotient/split path runs in CI
                {"target": "msi-tiny", "family": True,
                 "timeout_seconds": 300},
            ],
        }
    )


#: generator seeds the ``fuzz`` preset sweeps (small and fixed so the
#: preset stays a few minutes of cells and journals are comparable
#: across machines)
FUZZ_PRESET_SEEDS: Tuple[int, ...] = (0, 1, 2, 3, 4, 5)


def register_fuzz_skeletons(seeds: Tuple[int, ...] = FUZZ_PRESET_SEEDS):
    """Register generated fuzz skeletons in the runtime catalog.

    Each seed becomes a :class:`~repro.protocols.catalog.SkeletonEntry`
    named ``fuzz-s<seed>`` whose builder regenerates the spec (rebased to
    the requested replica count) and compiles it through the ordinary
    builder path — deterministic, so matrix journal resume works.
    Returns the registered names.  Idempotent; re-registration replaces.
    """
    # Imported here so the experiments layer only pays for the fuzz
    # package when this preset is actually used.
    from repro.fuzz import build_skeleton_from_spec, generate_spec
    from repro.protocols.catalog import SkeletonEntry, register_skeleton

    names = []
    for seed in seeds:
        spec = generate_spec(seed)

        def build(replicas: int, _seed: int = seed):
            built = generate_spec(_seed)
            if replicas != built.n_procs:
                built = built.with_(n_procs=replicas)
            return build_skeleton_from_spec(built)

        register_skeleton(SkeletonEntry(
            name=spec.name,
            build=build,
            holes=len(spec.hole_names()),
            replicas=(2, 4),
            summary=f"generated grant-service protocol (fuzz seed {seed})",
        ))
        names.append(spec.name)
    return names


def fuzz_preset() -> MatrixSpec:
    """Generated fuzz skeletons through the journaled matrix runner."""
    names = register_fuzz_skeletons()
    return MatrixSpec.from_dict(
        {
            "name": "fuzz",
            "defaults": {
                "mode": "synth",
                "replicas": 2,
                "backend": "sequential",
            },
            # Each generated skeleton under both kernels: the packed
            # column must match the object column row for row in the
            # report — the matrix-level echo of the differential oracle.
            "axes": {
                "target": names,
                "packed": [True, False],
            },
        }
    )


PRESETS: Dict[str, Callable[[], MatrixSpec]] = {
    "table1": table1_preset,
    "smoke": smoke_preset,
    "fuzz": fuzz_preset,
}


def preset_names() -> Tuple[str, ...]:
    """Sorted names of the built-in presets."""
    return tuple(sorted(PRESETS))


def load_preset(name: str) -> MatrixSpec:
    """Build a preset's spec; raises with the available names if unknown."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown preset {name!r}; available: {', '.join(preset_names())}"
        ) from None
    return factory()
