"""Built-in matrix presets (``python -m repro matrix --preset <name>``).

* ``table1`` — reproduces the repository's Table I
  (``table1_output.txt``): the MSI-tiny naive/pruning pair, MSI-small
  under all three backends, and the sample-extrapolated MSI-small naive
  baseline.  An include-only matrix — the paper's table is irregular.
* ``smoke`` — a few minutes of tiny cells: every complete protocol
  verified at 2 replicas and every fast skeleton synthesised
  sequentially.  This is the CI matrix-smoke step.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import ExperimentError
from repro.experiments.spec import MatrixSpec


def table1_preset() -> MatrixSpec:
    """The Table I reproduction as a declarative matrix."""
    return MatrixSpec.from_dict(
        {
            "name": "table1",
            "defaults": {"mode": "synth", "replicas": 2},
            "include": [
                {
                    "id": "tiny-naive",
                    "label": "MSI-tiny 1 thread, no pruning",
                    "target": "msi-tiny",
                    "pruning": False,
                },
                {
                    "id": "tiny-pruned",
                    "label": "MSI-tiny 1 thread, pruning",
                    "target": "msi-tiny",
                },
                {
                    "id": "small-seq",
                    "label": "MSI-small 1 thread, pruning",
                    "target": "msi-small",
                },
                {
                    "id": "small-threads",
                    "label": "MSI-small 4 threads, pruning (algorithmic repro)",
                    "target": "msi-small",
                    "backend": "threads",
                    "workers": 4,
                },
                {
                    "id": "small-processes",
                    "label": "MSI-small 4 processes, pruning",
                    "target": "msi-small",
                    "backend": "processes",
                    "workers": 4,
                },
                {
                    "id": "small-naive-estimated",
                    "label": "MSI-small 1 thread, no pruning",
                    "target": "msi-small",
                    "estimate_naive_from": "small-seq",
                },
            ],
        }
    )


def smoke_preset() -> MatrixSpec:
    """Tiny cells only: the CI smoke matrix (sequential synthesis +
    every protocol verified).  The synthesis axis covers each protocol
    family once, including the new MOESI and German workloads."""
    return MatrixSpec.from_dict(
        {
            "name": "smoke",
            "defaults": {
                "mode": "synth",
                "replicas": 2,
                "backend": "sequential",
                "timeout_seconds": 300,
            },
            "axes": {
                "target": [
                    "figure2",
                    "mutex",
                    "vi",
                    "msi-tiny",
                    "mesi",
                    "moesi-small",
                    "german-small",
                ],
            },
            "include": [
                {"mode": "verify", "target": name, "timeout_seconds": 120}
                for name in ("mutex", "vi", "msi", "mesi", "moesi", "german")
            ]
            + [
                # partial-order reduction smoke: one verify and one synth
                # cell per mode so the reduced kernel path runs in CI
                {"mode": "verify", "target": "moesi", "por": True,
                 "timeout_seconds": 120},
                {"target": "german-small", "por": True,
                 "timeout_seconds": 300},
            ],
        }
    )


PRESETS: Dict[str, Callable[[], MatrixSpec]] = {
    "table1": table1_preset,
    "smoke": smoke_preset,
}


def preset_names() -> Tuple[str, ...]:
    """Sorted names of the built-in presets."""
    return tuple(sorted(PRESETS))


def load_preset(name: str) -> MatrixSpec:
    """Build a preset's spec; raises with the available names if unknown."""
    try:
        factory = PRESETS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown preset {name!r}; available: {', '.join(preset_names())}"
        ) from None
    return factory()
