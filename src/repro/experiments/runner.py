"""Execute an experiment matrix: run cells, journal, aggregate, render.

The runner turns an expanded :class:`~repro.experiments.spec.MatrixSpec`
into three artifacts under an output directory:

* ``journal.jsonl`` — one line per *completed* cell, appended and flushed
  as soon as the cell finishes.  Re-invoking the same matrix against the
  same directory skips every journaled cell (kill-safe resumption); pass
  ``fresh=True`` to discard the journal and start over.
* ``results.json`` — the aggregated machine-readable result set.
* ``report.md`` — a human-readable markdown table of all cells.

Cells run in declaration order.  A cell with ``timeout_seconds`` runs in
a separate process and is terminated (status ``timeout``) when the budget
expires; other cells run in-process.  A cell that raises records status
``error`` and the matrix carries on — cells are independent experiments.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.analysis.stats import estimate_naive_seconds, sample_candidate_cost
from repro.analysis.tables import format_table
from repro.core import SynthesisConfig, SynthesisEngine
from repro.core.parallel import ParallelSynthesisEngine
from repro.dist import DistributedSynthesisEngine, SystemSpec
from repro.errors import ExperimentError
from repro.experiments.spec import CellSpec, MatrixSpec, expand_matrix, make_cell
from repro.mc.kernel import ExplorationLimits, make_explorer
from repro.obs import NULL_TELEMETRY
from repro.protocols.catalog import build_protocol, build_skeleton_with_holes

JOURNAL_NAME = "journal.jsonl"
RESULTS_NAME = "results.json"
REPORT_NAME = "report.md"

#: journaled statuses a re-run retries instead of resuming: these are
#: infrastructure failures (crash, budget expiry), not protocol verdicts —
#: a "no-solutions" or failed-verify row is a *result* and stays cached.
RETRY_STATUSES = frozenset({"error", "timeout"})


@dataclass
class _SkeletonSample:
    """Adapter giving :func:`sample_candidate_cost` its expected surface."""

    system: Any
    holes: List[Any]


def _synthesis_config(cell: CellSpec) -> SynthesisConfig:
    return SynthesisConfig(
        pruning=cell.pruning,
        generalise_conflicts=cell.generalise,
        prefix_reuse=cell.prefix_reuse,
        partial_order=cell.por,
        packed=cell.packed,
        family=cell.family,
        solution_limit=cell.solution_limit,
        max_evaluations=cell.max_evaluations,
        explorer=cell.explorer,
        store_path=cell.store,
    )


def _run_synth_cell(cell: CellSpec, telemetry=None) -> Dict[str, Any]:
    config = _synthesis_config(cell)
    if cell.backend == "processes":
        report = DistributedSynthesisEngine(
            SystemSpec(cell.target, cell.replicas), config,
            workers=cell.workers, telemetry=telemetry,
        ).run()
    elif cell.backend == "threads":
        system, _holes = build_skeleton_with_holes(cell.target, cell.replicas)
        report = ParallelSynthesisEngine(
            system, config, threads=cell.workers, telemetry=telemetry
        ).run()
    else:
        system, _holes = build_skeleton_with_holes(cell.target, cell.replicas)
        report = SynthesisEngine(system, config, telemetry=telemetry).run()
    solutions = sorted(solution.assignment for solution in report.solutions)
    return {
        "kind": "synth",
        "system": report.system_name,
        "holes": report.hole_count,
        "candidates": report.candidate_space,
        "naive_candidates": report.naive_candidate_space,
        "patterns": report.failure_patterns if report.pruning else None,
        "evaluated": report.evaluated,
        "solutions": len(report.solutions),
        "solution_set": [list(map(list, assignment)) for assignment in solutions],
        "seconds": round(report.elapsed_seconds, 4),
        "peak_states": report.peak_states,
        "family_checked": report.family_checked if report.family else None,
        "family_avoided": (
            report.family_candidates_avoided if report.family else None
        ),
        "store_hits": report.store_hits if report.store_enabled else None,
        "model_checks": report.model_checks if report.store_enabled else None,
        "ok": bool(report.solutions),
        "status": "ok" if report.solutions else "no-solutions",
    }


def _run_verify_cell(cell: CellSpec, telemetry=None) -> Dict[str, Any]:
    system = build_protocol(
        cell.target,
        cell.replicas,
        evictions=cell.evictions,
        symmetry=cell.symmetry,
    )
    limits = ExplorationLimits(max_states=cell.max_states)
    kernel_telemetry = (
        telemetry if telemetry is not None and telemetry.enabled else None
    )
    start = time.perf_counter()
    result = make_explorer(
        cell.explorer, system, limits=limits, partial_order=cell.por,
        packed=cell.packed, telemetry=kernel_telemetry,
    ).run()
    elapsed = time.perf_counter() - start
    return {
        "kind": "verify",
        "system": system.name,
        "verdict": result.verdict.value,
        "states": result.stats.states_visited,
        "seconds": round(elapsed, 4),
        "peak_states": result.stats.states_visited,
        "ok": result.is_success,
        "status": "ok" if result.is_success else f"verdict-{result.verdict.value}",
    }


def _run_estimate_cell(
    cell: CellSpec, prior_rows: Dict[str, Dict[str, Any]]
) -> Dict[str, Any]:
    base = prior_rows.get(cell.estimate_naive_from)
    if base is None:
        raise ExperimentError(
            f"cell {cell.id!r}: base cell {cell.estimate_naive_from!r} has "
            f"not completed (order it before the estimate cell)"
        )
    if base.get("kind") != "synth":
        raise ExperimentError(
            f"cell {cell.id!r}: base cell {cell.estimate_naive_from!r} is "
            f"not a synthesis cell"
        )
    system, holes = build_skeleton_with_holes(cell.target, cell.replicas)
    sample = sample_candidate_cost(
        _SkeletonSample(system, holes), samples=cell.estimate_samples
    )
    naive_candidates = base["naive_candidates"]
    seconds = estimate_naive_seconds(naive_candidates, 1, sample["mean_seconds"])
    return {
        "kind": "synth",
        "system": base["system"],
        "holes": base["holes"],
        "candidates": naive_candidates,
        "naive_candidates": naive_candidates,
        "patterns": None,
        "evaluated": naive_candidates,
        "solutions": base["solutions"],
        "solution_set": base.get("solution_set", []),
        "seconds": round(seconds, 4),
        "estimated": True,
        "sampled_mean_seconds": round(sample["mean_seconds"], 6),
        "ok": True,
        "status": "ok",
    }


def run_cell(
    cell: CellSpec,
    prior_rows: Optional[Dict[str, Dict[str, Any]]] = None,
    telemetry=None,
) -> Dict[str, Any]:
    """Execute one cell in-process and return its result row.

    ``telemetry`` is the matrix runner's bundle; cells executed in this
    process trace into it (engines do not own or close it).  Estimate
    cells only sample, so they run untraced.
    """
    if cell.estimate_naive_from:
        return _run_estimate_cell(cell, prior_rows or {})
    if cell.mode == "verify":
        return _run_verify_cell(cell, telemetry=telemetry)
    return _run_synth_cell(cell, telemetry=telemetry)


def _isolated_entry(cell_values: Dict[str, Any], queue) -> None:
    """Child-process entry point for timeout-isolated cells."""
    if hasattr(os, "setpgid"):
        # Become a process-group leader so a timeout kill reaps *everything*
        # this cell spawns (the processes backend forks daemon workers that
        # would otherwise survive a plain terminate() and keep burning CPU).
        try:
            os.setpgid(0, 0)
        except OSError:
            pass
    try:
        row = run_cell(make_cell(cell_values))
    except Exception as exc:  # noqa: BLE001 - report, don't hang the pipe
        queue.put(
            {
                "kind": cell_values.get("mode", "synth"),
                "ok": False,
                "status": "error",
                "error": str(exc),
            }
        )
        return
    queue.put(row)


def _run_cell_isolated(cell: CellSpec) -> Dict[str, Any]:
    """Run a cell in a child process, abandoning it on timeout.

    The result is drained from the queue *before* joining: a large row
    (e.g. a big ``solution_set``) can exceed the pipe buffer, and the
    child's queue feeder blocks until someone reads it — joining first
    would deadlock and misreport a successful cell as a timeout.
    """
    import queue as queue_module

    available = multiprocessing.get_all_start_methods()
    method = os.environ.get("REPRO_DIST_START_METHOD") or (
        "fork" if "fork" in available else "spawn"
    )
    ctx = multiprocessing.get_context(method)
    queue = ctx.Queue()
    process = ctx.Process(target=_isolated_entry, args=(cell.to_dict(), queue))
    started = time.monotonic()
    process.start()
    deadline = started + cell.timeout_seconds
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            _kill_cell_process(process)
            return {
                "kind": cell.mode,
                "ok": False,
                "status": "timeout",
                "timeout_seconds": cell.timeout_seconds,
                "seconds": round(time.monotonic() - started, 4),
            }
        try:
            row = queue.get(timeout=min(0.2, remaining))
        except queue_module.Empty:
            if not process.is_alive():
                # The child exited; give a just-flushed row one last chance.
                try:
                    row = queue.get(timeout=1.0)
                except queue_module.Empty:
                    process.join()
                    return {
                        "kind": cell.mode,
                        "ok": False,
                        "status": "error",
                        "error": (
                            f"cell process exited with code {process.exitcode}"
                        ),
                        "seconds": round(time.monotonic() - started, 4),
                    }
                process.join()
                return row
            continue
        process.join()
        return row


def _kill_cell_process(process) -> None:
    """Kill a timed-out cell child and everything it spawned.

    The child made itself a process-group leader, so killing the group
    reaps the dist backend's daemon workers too; fall back to a plain
    terminate where process groups are unavailable or already gone.
    """
    killed = False
    if hasattr(os, "killpg") and process.pid is not None:
        import signal

        try:
            os.killpg(process.pid, signal.SIGKILL)
            killed = True
        except (ProcessLookupError, PermissionError, OSError):
            pass
    if not killed:
        process.terminate()
    process.join()


@dataclass
class MatrixResult:
    """Aggregate outcome of one :meth:`MatrixRunner.run`."""

    name: str
    rows: List[Dict[str, Any]]
    executed: int = 0
    resumed: int = 0
    out_dir: Optional[str] = None

    @property
    def failed(self) -> List[Dict[str, Any]]:
        return [row for row in self.rows if not row.get("ok")]

    def table_text(self) -> str:
        """Aligned text table; Table-I columns when all cells synthesise."""
        if self.rows and all(row.get("kind") == "synth" for row in self.rows):
            return format_table([_table1_row(row) for row in self.rows])
        return _generic_table(self.rows)

    def summary(self) -> str:
        parts = [
            f"matrix {self.name}: {len(self.rows)} cell(s)",
            f"{self.executed} executed",
            f"{self.resumed} resumed from journal",
        ]
        if self.failed:
            parts.append(f"{len(self.failed)} FAILED")
        return ", ".join(parts)


def _table1_row(row: Dict[str, Any]) -> Dict[str, Any]:
    label = row.get("label") or row.get("cell", "?")
    if row.get("estimated"):
        label = f"{label} (estimated)"
    return {
        "Configuration": label,
        "Holes": row.get("holes"),
        "Candidates": row.get("candidates"),
        "Pruning Patterns": row.get("patterns"),
        "Evaluated": row.get("evaluated"),
        "Solutions": row.get("solutions"),
        "Exec. Time": row.get("seconds"),
    }


def _generic_table(rows: List[Dict[str, Any]]) -> str:
    def metric(row: Dict[str, Any]) -> str:
        if row.get("kind") == "verify":
            return f"{row.get('states', '?')} states"
        if row.get("kind") == "synth":
            return f"{row.get('evaluated', '?')} evaluated"
        return "-"

    table_rows = [
        {
            "Cell": row.get("cell", "?"),
            "Kind": row.get("kind", "?"),
            "Status": row.get("status", "?"),
            "Result": metric(row),
            "Solutions": row.get("solutions"),
            "Exec. Time": row.get("seconds", 0.0),
        }
        for row in rows
    ]
    columns = ("Cell", "Kind", "Status", "Result", "Solutions", "Exec. Time")
    return format_table(table_rows, columns=columns)


def _markdown_report(result: MatrixResult) -> str:
    lines = [
        f"# Matrix report: {result.name}",
        "",
        result.summary(),
        "",
        "| Cell | Kind | Status | Solutions | Evaluated/States "
        "| Peak states | Seconds |",
        "|---|---|---|---|---|---|---|",
    ]
    for row in result.rows:
        work = row.get("evaluated", row.get("states", ""))
        lines.append(
            f"| {row.get('cell', '?')} | {row.get('kind', '?')} "
            f"| {row.get('status', '?')} | {row.get('solutions', '')} "
            f"| {work} | {row.get('peak_states', '')} "
            f"| {row.get('seconds', '')} |"
        )
    lines += ["", "```text", result.table_text(), "```", ""]
    return "\n".join(lines)


class MatrixRunner:
    """Drive a matrix spec to completion with journaled resumption."""

    def __init__(
        self,
        spec: MatrixSpec,
        out_dir,
        fresh: bool = False,
        log: Optional[Callable[[str], None]] = None,
        force_por: Optional[bool] = None,
        force_packed: Optional[bool] = None,
        telemetry=None,
    ) -> None:
        self.spec = spec
        #: the matrix's telemetry bundle; in-process cells trace into it,
        #: timeout-isolated cells run untraced (the bundle holds open file
        #: handles and thread-local state that cannot cross a fork/spawn).
        #: The caller owns (and closes) the bundle.
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.cells = expand_matrix(spec)
        if force_por is not None:
            # Applied *after* expansion so cell ids (the journal keys)
            # stay exactly as the spec derives them — overriding the
            # defaults instead would re-derive ids and collide with cells
            # that set `por` explicitly.  The CLI documents that a mode
            # override wants --fresh or a separate --out.
            self.cells = [
                dataclasses.replace(cell, por=force_por)
                for cell in self.cells
            ]
        if force_packed is not None:
            # Same post-expansion rule as force_por, for the same reason.
            self.cells = [
                dataclasses.replace(cell, packed=force_packed)
                for cell in self.cells
            ]
        self.out_dir = Path(out_dir)
        self.fresh = fresh
        self._log = log or (lambda message: None)

    @property
    def journal_path(self) -> Path:
        return self.out_dir / JOURNAL_NAME

    def _load_journal(self) -> Dict[str, Dict[str, Any]]:
        """Completed cell-id -> row from a prior (possibly killed) run."""
        if self.fresh and self.journal_path.exists():
            self.journal_path.unlink()
        if not self.journal_path.exists():
            return {}
        completed: Dict[str, Dict[str, Any]] = {}
        with open(self.journal_path) as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    # A torn final line from a killed run: ignore it — the
                    # cell will simply re-run.
                    self._log(f"journal: ignoring torn line {number}")
                    continue
                if "matrix" in entry:
                    if entry["matrix"] != self.spec.name:
                        raise ExperimentError(
                            f"{self.journal_path} belongs to matrix "
                            f"{entry['matrix']!r}, not {self.spec.name!r}; "
                            f"use --fresh or another --out directory"
                        )
                    continue
                if "cell" in entry and "row" in entry:
                    if entry["row"].get("status") in RETRY_STATUSES:
                        # Infrastructure failures are retried, not resumed;
                        # drop any stale failure journaled earlier.
                        completed.pop(entry["cell"], None)
                        continue
                    completed[entry["cell"]] = entry["row"]
        return completed

    def _append_journal(self, handle, entry: Dict[str, Any]) -> None:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def run(self) -> MatrixResult:
        """Run every cell not already journaled; write results + report."""
        self.out_dir.mkdir(parents=True, exist_ok=True)
        completed = self._load_journal()
        write_header = not self.journal_path.exists()
        result = MatrixResult(name=self.spec.name, rows=[], out_dir=str(self.out_dir))
        rows_by_id: Dict[str, Dict[str, Any]] = {}
        tele = self.telemetry
        tick = (
            tele.progress.tick
            if tele.enabled and tele.progress is not None
            else None
        )
        with open(self.journal_path, "a") as journal:
            if write_header:
                self._append_journal(journal, {"matrix": self.spec.name})
            for index, cell in enumerate(self.cells, start=1):
                if cell.id in completed:
                    row = completed[cell.id]
                    result.resumed += 1
                    self._log(
                        f"[{index}/{len(self.cells)}] {cell.id}: "
                        f"resumed from journal"
                    )
                else:
                    self._log(f"[{index}/{len(self.cells)}] {cell.id}: running ...")
                    started = time.perf_counter()
                    with tele.span(
                        "cell", cell=cell.id, kind=cell.mode, index=index
                    ) as span:
                        try:
                            if cell.estimate_naive_from:
                                row = _run_estimate_cell(cell, rows_by_id)
                            elif cell.timeout_seconds is not None:
                                row = _run_cell_isolated(cell)
                            elif tele.enabled:
                                row = run_cell(cell, telemetry=tele)
                            else:
                                row = run_cell(cell)
                        except Exception as exc:  # noqa: BLE001 - cell isolation
                            row = {
                                "kind": cell.mode,
                                "ok": False,
                                "status": "error",
                                "error": str(exc),
                                "seconds": round(
                                    time.perf_counter() - started, 4
                                ),
                            }
                        span.set(
                            status=row.get("status"),
                            seconds=row.get("seconds"),
                            peak_states=row.get("peak_states"),
                        )
                    result.executed += 1
                    row = dict(row)
                    row["cell"] = cell.id
                    row["label"] = cell.display_label
                    self._append_journal(journal, {"cell": cell.id, "row": row})
                    self._log(
                        f"[{index}/{len(self.cells)}] {cell.id}: "
                        f"{row.get('status', '?')} ({row.get('seconds', '?')}s)"
                    )
                rows_by_id[cell.id] = row
                result.rows.append(row)
                if tick is not None:
                    tick(
                        cells=index,
                        total=len(self.cells),
                        executed=result.executed,
                        resumed=result.resumed,
                        failed=len(result.failed),
                    )
        self._write_outputs(result)
        return result

    def _write_outputs(self, result: MatrixResult) -> None:
        with open(self.out_dir / RESULTS_NAME, "w") as handle:
            json.dump(
                {
                    "matrix": self.spec.name,
                    "cells": result.rows,
                    "executed": result.executed,
                    "resumed": result.resumed,
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        with open(self.out_dir / REPORT_NAME, "w") as handle:
            handle.write(_markdown_report(result))
