"""Declarative experiment-matrix specifications.

A :class:`MatrixSpec` describes a set of runs ("cells") over the protocol
catalog without writing a driver script:

* ``axes`` — field name -> list of values; the cartesian product of all
  axes (applied on top of ``defaults``) generates the regular part of the
  matrix, GitHub-Actions style;
* ``exclude`` — dicts of field values; any product cell matching *all*
  fields of an exclude entry is dropped;
* ``include`` — explicit extra cells (each a dict of field overrides on
  top of ``defaults``), for the irregular rows a product cannot express
  (the Table 1 preset is include-only).

:func:`expand_matrix` turns a spec into an ordered list of validated
:class:`CellSpec` values with stable, unique ids — the unit of journaling
and resumption in :mod:`repro.experiments.runner`.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Any, Dict, List, Optional

from repro.errors import ExperimentError
from repro.mc.kernel import EXPLORER_STRATEGIES
from repro.protocols.catalog import PROTOCOL_CATALOG, SKELETON_CATALOG

MODES = ("synth", "verify")
BACKENDS = ("sequential", "threads", "processes")


@dataclass(frozen=True)
class CellSpec:
    """One fully-specified run of the matrix.

    ``mode="synth"`` cells run hole synthesis on a catalog skeleton
    (``target`` is a :data:`~repro.protocols.catalog.SKELETON_CATALOG`
    name); ``mode="verify"`` cells model check a complete protocol
    (``target`` is a :data:`~repro.protocols.catalog.PROTOCOL_CATALOG`
    name).

    A cell with ``estimate_naive_from`` set does not run at all: it
    extrapolates the naive-baseline cost of the referenced (earlier,
    pruned) cell from a random sample of candidate checks — the paper's
    substitution for infeasible naive baselines.

    ``timeout_seconds`` runs the cell in a separate process and abandons
    it after the budget; without a timeout the cell runs in-process.
    """

    id: str
    target: str
    label: str = ""
    mode: str = "synth"
    replicas: int = 2
    backend: str = "sequential"
    workers: int = 1
    explorer: str = "bfs"
    pruning: bool = True
    generalise: bool = True
    prefix_reuse: bool = True
    por: bool = False
    packed: bool = True
    family: bool = False
    evictions: bool = False
    symmetry: bool = True
    solution_limit: Optional[int] = None
    max_evaluations: Optional[int] = None
    max_states: Optional[int] = None
    store: Optional[str] = None  #: verdict-store directory (synth cells)
    timeout_seconds: Optional[float] = None
    estimate_naive_from: Optional[str] = None
    estimate_samples: int = 25

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able field dict (used for process isolation and journals)."""
        return {f.name: getattr(self, f.name) for f in dataclass_fields(self)}

    @property
    def display_label(self) -> str:
        return self.label or self.id


_CELL_FIELDS = {f.name for f in dataclass_fields(CellSpec)}
_FLAG_TAGS = (
    ("pruning", False, "naive"),
    ("generalise", False, "nogen"),
    ("prefix_reuse", False, "noreuse"),
    ("por", True, "por"),
    ("packed", False, "nopacked"),
    ("family", True, "family"),
    ("evictions", True, "evict"),
    ("symmetry", False, "nosym"),
)


def derive_cell_id(values: Dict[str, Any]) -> str:
    """A stable, readable id from a cell's distinguishing fields."""
    parts = [
        values.get("mode", "synth"),
        str(values.get("target", "?")),
        f"r{values.get('replicas', 2)}",
        str(values.get("backend", "sequential")),
    ]
    if values.get("workers", 1) != 1:
        parts.append(f"w{values['workers']}")
    if values.get("explorer", "bfs") != "bfs":
        parts.append(str(values["explorer"]))
    for name, tagged_value, tag in _FLAG_TAGS:
        if values.get(name, not tagged_value) == tagged_value:
            parts.append(tag)
    if values.get("estimate_naive_from"):
        parts.append("estimated")
    return ":".join(parts)


def make_cell(values: Dict[str, Any]) -> CellSpec:
    """Validate one cell dict and freeze it into a :class:`CellSpec`."""
    unknown = set(values) - _CELL_FIELDS
    if unknown:
        raise ExperimentError(
            f"unknown cell field(s) {sorted(unknown)}; "
            f"valid fields: {sorted(_CELL_FIELDS)}"
        )
    values = dict(values)
    values.setdefault("id", derive_cell_id(values))
    try:
        cell = CellSpec(**values)
    except TypeError as exc:
        raise ExperimentError(f"invalid cell {values!r}: {exc}") from None

    if cell.mode not in MODES:
        raise ExperimentError(f"cell {cell.id!r}: unknown mode {cell.mode!r}")
    if cell.backend not in BACKENDS:
        raise ExperimentError(f"cell {cell.id!r}: unknown backend {cell.backend!r}")
    if cell.explorer not in EXPLORER_STRATEGIES:
        raise ExperimentError(f"cell {cell.id!r}: unknown explorer {cell.explorer!r}")
    if not isinstance(cell.replicas, int) or cell.replicas < 1:
        raise ExperimentError(f"cell {cell.id!r}: replicas must be an int >= 1")
    if not isinstance(cell.workers, int) or cell.workers < 1:
        raise ExperimentError(f"cell {cell.id!r}: workers must be an int >= 1")
    if cell.mode == "verify":
        if cell.target not in PROTOCOL_CATALOG:
            raise ExperimentError(
                f"cell {cell.id!r}: unknown protocol {cell.target!r}; "
                f"available: {', '.join(sorted(PROTOCOL_CATALOG))}"
            )
        if cell.estimate_naive_from:
            raise ExperimentError(
                f"cell {cell.id!r}: estimate_naive_from requires mode='synth'"
            )
    else:
        if cell.target not in SKELETON_CATALOG:
            raise ExperimentError(
                f"cell {cell.id!r}: unknown skeleton {cell.target!r}; "
                f"available: {', '.join(sorted(SKELETON_CATALOG))}"
            )
    for flag in ("pruning", "generalise", "prefix_reuse", "por", "packed",
                 "family", "evictions", "symmetry"):
        if not isinstance(getattr(cell, flag), bool):
            raise ExperimentError(
                f"cell {cell.id!r}: {flag} must be a bool, "
                f"got {getattr(cell, flag)!r}"
            )
    if not isinstance(cell.estimate_samples, int) or cell.estimate_samples < 1:
        raise ExperimentError(
            f"cell {cell.id!r}: estimate_samples must be an int >= 1"
        )
    if cell.timeout_seconds is not None and (
        not isinstance(cell.timeout_seconds, (int, float))
        or cell.timeout_seconds <= 0
    ):
        raise ExperimentError(
            f"cell {cell.id!r}: timeout_seconds must be a positive number"
        )
    return cell


@dataclass
class MatrixSpec:
    """A named, declarative matrix of cells (see the module docstring)."""

    name: str
    defaults: Dict[str, Any] = field(default_factory=dict)
    axes: Dict[str, List[Any]] = field(default_factory=dict)
    include: List[Dict[str, Any]] = field(default_factory=list)
    exclude: List[Dict[str, Any]] = field(default_factory=list)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MatrixSpec":
        """Parse and shallowly validate a JSON-shaped spec dict."""
        if not isinstance(data, dict):
            raise ExperimentError("matrix spec must be a JSON object")
        unknown = set(data) - {"name", "defaults", "axes", "include", "exclude"}
        if unknown:
            raise ExperimentError(f"unknown matrix spec key(s) {sorted(unknown)}")
        name = data.get("name")
        if not name or not isinstance(name, str):
            raise ExperimentError("matrix spec needs a non-empty string 'name'")
        defaults = data.get("defaults", {})
        if not isinstance(defaults, dict):
            raise ExperimentError("'defaults' must be an object")
        axes = data.get("axes", {})
        if not isinstance(axes, dict):
            raise ExperimentError("'axes' must be an object of field -> list")
        for key in ("include", "exclude"):
            entries = data.get(key, [])
            if not isinstance(entries, list) or not all(
                isinstance(entry, dict) for entry in entries
            ):
                raise ExperimentError(f"'{key}' must be a list of objects")
        for axis, values in axes.items():
            if axis not in _CELL_FIELDS:
                raise ExperimentError(f"unknown axis {axis!r}")
            if not isinstance(values, list) or not values:
                raise ExperimentError(f"axis {axis!r} must be a non-empty list")
        for entry in data.get("exclude", []):
            unknown = set(entry) - _CELL_FIELDS
            if unknown:
                raise ExperimentError(
                    f"exclude entry references unknown field(s) {sorted(unknown)}"
                )
        return cls(
            name=name,
            defaults=dict(defaults),
            axes={axis: list(values) for axis, values in axes.items()},
            include=[dict(cell) for cell in data.get("include", [])],
            exclude=[dict(cell) for cell in data.get("exclude", [])],
        )

    @classmethod
    def from_json_file(cls, path) -> "MatrixSpec":
        """Load a spec from a JSON file (the CLI's ``--spec`` input)."""
        try:
            with open(path) as handle:
                data = json.load(handle)
        except OSError as exc:
            raise ExperimentError(f"cannot read spec {path}: {exc}") from None
        except ValueError as exc:
            raise ExperimentError(f"{path}: not valid JSON: {exc}") from None
        return cls.from_dict(data)


def _excluded(cell: CellSpec, exclude: List[Dict[str, Any]]) -> bool:
    # Match against the cell's *effective* field values, so an exclude may
    # reference a field the spec never set explicitly (e.g. the default
    # backend).
    effective = cell.to_dict()
    return any(
        all(effective.get(key) == wanted for key, wanted in entry.items())
        for entry in exclude
    )


def expand_matrix(spec: MatrixSpec) -> List[CellSpec]:
    """Expand a spec into its ordered, validated list of cells.

    Product cells come first (axes in declaration order, values in listed
    order); ``exclude`` filters the product (never the explicit
    ``include`` cells, GitHub-Actions style); ids must be unique across
    the whole expansion.
    """
    cells: List[CellSpec] = []
    if spec.axes:
        axis_names = list(spec.axes)
        for combo in itertools.product(*(spec.axes[axis] for axis in axis_names)):
            values = dict(spec.defaults)
            values.update(dict(zip(axis_names, combo)))
            cell = make_cell(values)
            if _excluded(cell, spec.exclude):
                continue
            cells.append(cell)
    for extra in spec.include:
        values = dict(spec.defaults)
        values.update(extra)
        cells.append(make_cell(values))
    if not cells:
        raise ExperimentError(f"matrix {spec.name!r} expands to zero cells")
    seen: Dict[str, int] = {}
    for index, cell in enumerate(cells):
        if cell.id in seen:
            raise ExperimentError(
                f"matrix {spec.name!r}: duplicate cell id {cell.id!r} "
                f"(cells {seen[cell.id]} and {index}); give one an explicit 'id'"
            )
        seen[cell.id] = index
    known = {cell.id for cell in cells}
    for cell in cells:
        if cell.estimate_naive_from and cell.estimate_naive_from not in known:
            raise ExperimentError(
                f"cell {cell.id!r}: estimate_naive_from references unknown "
                f"cell {cell.estimate_naive_from!r}"
            )
    return cells
