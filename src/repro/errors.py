"""Exception hierarchy for the VerC3 reproduction.

All library-specific exceptions derive from :class:`ReproError` so that
callers can catch everything coming out of this package with a single
``except`` clause.  :class:`WildcardEncountered` is special: it is *control
flow*, raised by the execution context when a rule body resolves a hole whose
current assignment is the wildcard action; the model checker catches it to
abort that execution branch (see the paper, Section II, "Candidate Pruning").
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ModelError(ReproError):
    """A transition system definition is malformed or misused."""


class SynthesisError(ReproError):
    """The synthesis engine was configured or driven incorrectly."""


class HoleDomainError(SynthesisError):
    """A hole was declared with an invalid or empty action domain."""


class CandidateError(SynthesisError):
    """A candidate vector operation was invalid (bad index, bad action)."""


class CliError(ReproError):
    """Invalid command-line usage the argparse layer cannot express
    (cross-flag conflicts, out-of-range numeric flags); the CLI prints
    the message and exits with status 2, like argparse errors."""


class ExperimentError(ReproError):
    """An experiment-matrix spec or journal is malformed or inconsistent."""


class WildcardEncountered(ReproError):
    """Raised when a rule body resolves a hole assigned the wildcard action.

    This is not an error condition: the embedded model checker catches it to
    cut the current execution branch, exactly as the paper's model checker
    "abort[s] execution on that execution branch" when a wildcard is hit.
    Rule bodies must not swallow this exception.
    """

    def __init__(self, hole_name: str) -> None:
        super().__init__(f"wildcard encountered while resolving hole {hole_name!r}")
        self.hole_name = hole_name
