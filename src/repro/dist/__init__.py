"""Process-parallel distributed synthesis (the ``processes`` backend).

The thread backend (:mod:`repro.core.parallel`) reproduces the paper's
parallel *algorithm* but is GIL-bound in CPython; this package delivers the
actual wall-clock speedups by sharding candidate evaluation across worker
*processes*:

* :mod:`repro.dist.coordinator` — shard-aligned batch planning, the
  shared work-stealing task queue, pattern broadcast, deterministic
  result aggregation;
* :mod:`repro.dist.worker` — per-process evaluation loop sharing the
  sequential engine's verdict path (and, when a verdict store is
  configured, recording/replaying verdicts through it);
* :mod:`repro.dist.messages` — the compact picklable wire protocol;
* :mod:`repro.dist.wire` — packed wire forms (digit tuples + integer
  counters) for candidate/verdict traffic.

Quickstart::

    from repro.dist import DistributedSynthesisEngine, SystemSpec

    report = DistributedSynthesisEngine(SystemSpec("msi-small"), workers=4).run()
"""

from repro.dist.coordinator import (
    DistributedSynthesisEngine,
    plan_batches,
    plan_shard_batches,
)
from repro.dist.messages import SystemSpec

__all__ = [
    "DistributedSynthesisEngine",
    "SystemSpec",
    "plan_batches",
    "plan_shard_batches",
]
