"""Wire types of the distributed synthesis protocol.

The coordinator (:mod:`repro.dist.coordinator`) and the worker processes
(:mod:`repro.dist.worker`) exchange only compact, picklable values:

* **system specs** — a :class:`SystemSpec` names a skeleton in the protocol
  catalog; workers *rebuild* the transition system locally because rule
  bodies are closures and cannot cross a process boundary;
* **hole specs** — a :class:`HoleSpec` is (name, ordered action names);
  hole *objects* are identity-compared and process-local, so positions are
  correlated across processes by name (see
  :class:`~repro.dist.worker.WorkerHoleRegistry`);
* **pattern digits** — pruning patterns travel as their constraint tuples
  ``((position, action_index), ...)``;
* **verdict counters and solutions** — per-batch deltas the coordinator
  merges into the authoritative :class:`~repro.core.engine.SynthesisCore`.

Message flow, per enumeration pass::

    coordinator                          worker (xN)
    -----------                          -----------
    control:  PassStart(holes, tables) ->  reset pass-local core
    shared:   BatchTask(range)         ->  any idle worker steals it
                                      <-   BatchResult(deltas)
    control:  PatternUpdate(deltas)    ->  fold into pass tables
    ... until the pass's batches drain; new holes merge at the pass
    boundary, new patterns merge (and rebroadcast) at batch boundaries.

Work stealing: :class:`BatchTask` messages go on **one shared queue** all
workers pull from, so a worker that drew cheap (heavily pruned) ranges
immediately picks up the next pending batch instead of idling behind a
fixed per-worker plan.  Per-worker FIFO *control* queues carry the
ordered messages (:class:`PassStart`, :class:`PatternUpdate`,
:class:`Shutdown`); a worker that steals a task from a newer pass first
drains its control queue until its pass catches up with the task's
``pass_index``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.hole import Hole
from repro.core.action import Action
from repro.core.family import WireFamily
from repro.dist.wire import WireSolution
from repro.mc.system import TransitionSystem
from repro.protocols.catalog import build_skeleton

#: A pruning pattern on the wire: its sorted (position, action) constraints.
Constraints = Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class SystemSpec:
    """A rebuildable reference to a skeleton.

    Either a catalog name + replica count (the default), or — when
    ``fuzz_payload`` is set — a serialised fuzz protocol spec
    (:func:`repro.fuzz.spec.spec_payload` output) that workers rebuild
    without touching the catalog.  Payloads exist so generated protocols
    can cross the process boundary: they are plain JSON strings, which
    pickle trivially, while built systems (closures) do not.
    """

    name: str
    replicas: int = 2
    fuzz_payload: Optional[str] = None

    def build(self) -> TransitionSystem:
        """Rebuild the referenced system locally."""
        if self.fuzz_payload is not None:
            # Imported lazily: the fuzz package is optional equipment for
            # the distributed layer, not a dependency of it.
            from repro.fuzz.spec import build_system_from_payload

            return build_system_from_payload(self.fuzz_payload)
        return build_skeleton(self.name, self.replicas)


@dataclass(frozen=True)
class HoleSpec:
    """A hole as (name, ordered action names) — enough to correlate
    positions across processes and to render solution assignments."""

    name: str
    actions: Tuple[str, ...]

    @classmethod
    def from_hole(cls, hole: Hole) -> "HoleSpec":
        """The wire spec of a local hole object."""
        return cls(hole.name, tuple(action.name for action in hole.domain))

    def placeholder(self) -> Hole:
        """A stand-in Hole carrying the right name/arity/action names.

        Placeholders live in registries that never resolve them against a
        rule body (the coordinator's, and reserved-but-not-yet-encountered
        slots in a worker's), so the actions carry no callables.
        """
        return Hole(self.name, tuple(Action(name) for name in self.actions))

    @property
    def arity(self) -> int:
        """Number of candidate actions."""
        return len(self.actions)


@dataclass(frozen=True)
class PassStart:
    """Reset a worker for one enumeration pass.

    Carries the canonical hole order (the pass enumerates over the prefix
    ``hole_specs``, first-discovered hole most significant) and a full
    snapshot of both pattern tables.  ``explorer`` names the frontier
    strategy the coordinator model checks with; the worker's own config
    (shipped at process spawn) must agree — the field exists as a
    cross-process consistency tripwire, since a worker silently checking
    candidates with a different strategy than the coordinator's initial
    run would still merge cleanly but report misleading labels.
    """

    pass_index: int
    first_new: int
    hole_specs: Tuple[HoleSpec, ...]
    fail_patterns: Tuple[Constraints, ...]
    success_patterns: Tuple[Constraints, ...]
    explorer: str = "bfs"
    #: whether the coordinator model checks with partial-order reduction;
    #: like ``explorer`` this is a cross-process consistency tripwire —
    #: POR changes rule firing order and therefore hole discovery order,
    #: so a worker running the other mode would corrupt position
    #: correlation
    partial_order: bool = False
    #: whether the coordinator model checks on the packed-state kernel.
    #: Packed mode is verdict- and order-exact, but solution fingerprints
    #: and prefix checkpoints are mode-specific, so workers refuse to run
    #: the other mode rather than silently mixing them.
    packed: bool = True
    #: whether this pass runs family-based synthesis.  Another tripwire:
    #: a worker walking candidate indices while the coordinator planned
    #: family shards (or vice versa) would misread every BatchTask range.
    family: bool = False
    #: the pass's pre-split family shards (wire form, see
    #: :func:`repro.core.family.plan_family_shards`); batch start/end
    #: index into this tuple instead of the candidate index space.
    #: Empty unless ``family`` is set.
    family_shards: Tuple[WireFamily, ...] = ()


@dataclass(frozen=True)
class BatchTask:
    """One contiguous slice of the pass's candidate index space.

    ``fail_delta``/``success_delta`` are the patterns the coordinator
    accepted since it last wrote to this worker — the cross-worker pruning
    exchange.  ``eval_budget`` caps model-checker runs within the batch
    (global ``max_evaluations`` minus runs already merged).
    """

    batch_id: int
    start: int
    end: int
    fail_delta: Tuple[Constraints, ...] = ()
    success_delta: Tuple[Constraints, ...] = ()
    eval_budget: Optional[int] = None
    #: which pass this task belongs to.  Tasks ride the shared queue, so a
    #: worker may steal one before reading its own PassStart; it blocks on
    #: its control queue until its pass catches up with this index.
    pass_index: int = 0


@dataclass(frozen=True)
class PatternUpdate:
    """Mid-pass pruning-pattern broadcast on the control queues.

    With a shared task queue the coordinator no longer knows which worker
    will run the next batch, so pattern deltas cannot ride the tasks
    per-recipient; instead every accepted pattern is broadcast to all
    workers as soon as the producing batch merges.  Stale updates (from a
    pass the worker already left) are ignored.
    """

    pass_index: int
    fail_delta: Tuple[Constraints, ...] = ()
    success_delta: Tuple[Constraints, ...] = ()


@dataclass
class BatchResult:
    """Everything one batch produced, as mergeable deltas."""

    worker_id: int
    batch_id: int
    start: int
    end: int
    covered: int = 0
    evaluated: int = 0
    deduplicated: int = 0
    #: tag -> candidates skipped (analytically or at a leaf) in this batch
    skipped: Dict[str, int] = field(default_factory=dict)
    verdict_counts: Dict[str, int] = field(default_factory=dict)
    new_fail_patterns: Tuple[Constraints, ...] = ()
    new_success_patterns: Tuple[Constraints, ...] = ()
    #: holes first encountered in this batch, in local discovery order
    new_holes: Tuple[HoleSpec, ...] = ()
    #: solutions in packed wire form (digit tuples + counters, no name
    #: pairs — the coordinator rebuilds assignments from its pass hole
    #: snapshot); run_index is 1-based *within this batch* (rebased on
    #: merge)
    solutions: Tuple[WireSolution, ...] = ()
    #: prefix-cache deltas (hits, checkpoint builds, states reused) — the
    #: worker's cache outlives batches and passes, so these are per-batch
    #: differences of its counters, mergeable like every other field here
    prefix_cache_hits: int = 0
    prefix_cache_builds: int = 0
    prefix_states_reused: int = 0
    #: partial-order reduction deltas: firings deferred / reduced states
    por_rules_skipped: int = 0
    ample_states: int = 0
    #: largest single-run visited-state count seen by this worker so far
    #: (merged by max on the coordinator — a high-water mark, not a delta)
    peak_states: int = 0
    #: family-mode deltas: quotients checked, ambiguous splits, and
    #: per-candidate checks avoided in this batch; the split depth is a
    #: high-water mark like ``peak_states`` (all 0 in 1-by-1 passes)
    family_checked: int = 0
    family_splits: int = 0
    family_max_split_depth: int = 0
    family_candidates_avoided: int = 0
    #: per-batch metrics-registry delta (``repro.obs.metrics.diff_snapshots``
    #: output; empty dict when the worker runs without telemetry) — the
    #: coordinator folds it into its own registry, so aggregated metrics
    #: match a single-process run
    metrics: Dict[str, dict] = field(default_factory=dict)
    #: verdict-store deltas: evaluations replayed from / runs appended to
    #: the worker's store during this batch (0 when no store is attached)
    store_hits: int = 0
    store_writes: int = 0
    budget_exhausted: bool = False
    inherent_failure: bool = False
    inherent_failure_message: str = ""


@dataclass(frozen=True)
class Shutdown:
    """Terminate the worker loop."""


@dataclass
class WorkerCrash:
    """A worker's last words: the formatted traceback of a fatal error."""

    worker_id: int
    traceback_text: str
