"""Worker side of distributed synthesis.

A worker process rebuilds the skeleton from its :class:`SystemSpec`, then
serves one :class:`BatchTask` at a time: walk the assigned candidate-index
range with the same subtree-skipping enumerator and the same
:meth:`~repro.core.engine.SynthesisCore.process_candidate` verdict path as
the sequential engine, against a pass-local :class:`SynthesisCore` seeded
from the coordinator's pattern snapshot.  Whatever the batch produced —
new pruning patterns, new holes, solutions, counters — is shipped back as
a compact delta (:class:`BatchResult`).

Hole identity across processes
------------------------------

Hole objects are compared by identity and discovered lazily during model
checking, so a worker's locally rebuilt hole objects are *different
objects* from the coordinator's.  :class:`WorkerHoleRegistry` bridges the
gap: canonical holes (broadcast as :class:`HoleSpec` name/arity pairs in
:class:`PassStart`) are *reserved* position-by-position as placeholders,
and the first time the model checker encounters the worker's real hole of
the same name it is bound to the reserved position.  Holes beyond the
canonical prefix append in local discovery order and are reported back;
the coordinator merges them in batch order at the pass boundary.
"""

from __future__ import annotations

import traceback
from dataclasses import replace
from typing import Optional, Sequence, Tuple

from repro.core.engine import (
    FAIL_TAG,
    SUCCESS_TAG,
    PrefixCache,
    SynthesisConfig,
    SynthesisCore,
    _FamilyPassCounters,
    _PassWalker,
    _StopSynthesis,
)
from repro.core.discovery import HoleRegistry
from repro.core.family import HoleFamily, WireFamily
from repro.core.hole import Hole
from repro.core.pruning import PruningPattern
from repro.dist.messages import (
    BatchResult,
    BatchTask,
    HoleSpec,
    PassStart,
    PatternUpdate,
    Shutdown,
    SystemSpec,
    WorkerCrash,
)
from repro.dist.wire import WireSolution
from repro.errors import SynthesisError
from repro.mc.system import TransitionSystem
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.obs.metrics import diff_snapshots
from repro.store import VerdictStore


class WorkerHoleRegistry(HoleRegistry):
    """A hole registry whose leading positions are reserved by name.

    Reserved positions hold placeholder holes until the model checker
    encounters the corresponding real (process-local) hole object, which
    is then bound to the reserved position by name.  Unreserved holes
    append after the canonical prefix, exactly like the base registry.
    """

    def __init__(self, specs: Sequence[HoleSpec] = ()) -> None:
        super().__init__()
        #: name -> the real (model-checker-encountered) hole bound to it;
        #: binding a *second* distinct real object to a name is the same
        #: modelling error the base registry rejects.
        self._bound: dict = {}
        for spec in specs:
            placeholder = spec.placeholder()
            position = len(self._holes)
            self._holes.append(placeholder)
            self._positions[placeholder] = position
            self._names[placeholder.name] = placeholder

    def position_of(self, hole: Hole, register: bool = True) -> Optional[int]:
        """Resolve a hole to its canonical position, binding by name."""
        position = self._positions.get(hole)  # lock-free fast path
        if position is not None:
            return position
        with self._lock:
            position = self._positions.get(hole)
            if position is not None:
                return position
            known = self._names.get(hole.name)
            if known is not None:
                if self._bound.get(hole.name) is not None:
                    raise SynthesisError(
                        f"two distinct holes share the name {hole.name!r}"
                    )
                if known.arity != hole.arity:
                    raise SynthesisError(
                        f"hole {hole.name!r} has arity {hole.arity} here but "
                        f"{known.arity} in the canonical registry — skeleton "
                        f"rebuild is not deterministic"
                    )
                position = self._positions[known]
                self._positions[hole] = position  # bind the real object
                self._bound[hole.name] = hole
                return position
            if not register:
                return None
            position = len(self._holes)
            self._holes.append(hole)
            self._positions[hole] = position
            self._names[hole.name] = hole
            self._bound[hole.name] = hole
            return position


class BatchRunner:
    """Pass- and batch-level synthesis logic, independent of any process.

    Tests drive this class inline; :func:`worker_main` wraps it in a queue
    loop.  The runner's config is neutered of *global* stop conditions
    (solution limit, evaluation cap) — those belong to the coordinator,
    which enforces them across workers; the per-batch ``eval_budget``
    bounds overshoot instead.
    """

    def __init__(self, system: TransitionSystem, config: SynthesisConfig,
                 worker_id: int = -1, telemetry=None) -> None:
        self.system = system
        self.worker_id = worker_id
        #: the worker's own telemetry bundle (per-worker trace sink; the
        #: coordinator aggregates metrics from the per-batch deltas)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._config = replace(config, solution_limit=None, max_evaluations=None)
        # Whether the verdict store participates is decided by the
        # *original* config (the coordinator resolves the same property on
        # its side), not the limit-stripped worker copy — otherwise a
        # limits-capped run would record on workers while the coordinator
        # stood its store down.  One store handle outlives passes; each
        # pass-local core borrows it rather than owning it.
        self._store: Optional[VerdictStore] = (
            VerdictStore(config.store_path) if config.store_active else None
        )
        if self._store is None:
            self._config = replace(self._config, store_path=None)
        self.core: Optional[SynthesisCore] = None
        #: index of the pass the runner is currently configured for; used
        #: to pair stolen tasks with their PassStart and to drop stale
        #: PatternUpdate messages
        self.pass_index = -1
        self._radices: Tuple[int, ...] = ()
        self._first_new = 0
        self._family = False
        self._family_shards: Tuple[WireFamily, ...] = ()
        # One prefix cache for the worker's lifetime: checkpoints stay
        # valid across passes (and their pass-local cores) because the
        # canonical hole order only appends and the rebuilt system — hole
        # objects included — is owned by this process throughout.
        self._prefix_cache: Optional[PrefixCache] = (
            PrefixCache(self._config.prefix_cache_capacity)
            if self._config.prefix_reuse_active
            else None
        )

    def start_pass(self, msg: PassStart) -> None:
        """Reset the pass-local core from the coordinator's snapshot."""
        if msg.explorer != self._config.explorer:
            raise SynthesisError(
                f"coordinator runs the {msg.explorer!r} explorer but this "
                f"worker was configured with {self._config.explorer!r}"
            )
        if msg.partial_order != self._config.partial_order_active:
            raise SynthesisError(
                f"coordinator model checks with partial_order="
                f"{msg.partial_order} but this worker resolves it to "
                f"{self._config.partial_order_active} — mixed reduction "
                f"modes would desynchronise hole discovery order"
            )
        if msg.packed != self._config.packed:
            raise SynthesisError(
                f"coordinator model checks with packed={msg.packed} but "
                f"this worker resolves it to {self._config.packed} — "
                f"mixed kernel modes would make solution fingerprints "
                f"and prefix checkpoints incomparable"
            )
        if msg.family != self._config.family_active:
            raise SynthesisError(
                f"coordinator plans the pass with family={msg.family} but "
                f"this worker resolves it to "
                f"{self._config.family_active} — batch ranges would index "
                f"the wrong space (family shards vs candidate indices)"
            )
        core = SynthesisCore(
            self.system,
            replace(self._config),
            registry=WorkerHoleRegistry(msg.hole_specs),
            prefix_cache=self._prefix_cache,
            telemetry=self.telemetry,
            store=self._store,
        )
        for constraints in msg.fail_patterns:
            core.fail_table.add(PruningPattern(constraints))
        for constraints in msg.success_patterns:
            core.success_table.add(PruningPattern(constraints))
        self.core = core
        self.pass_index = msg.pass_index
        self._radices = tuple(spec.arity for spec in msg.hole_specs)
        self._first_new = msg.first_new
        self._family = msg.family
        self._family_shards = msg.family_shards

    def apply_patterns(self, msg: PatternUpdate) -> None:
        """Fold a mid-pass pattern broadcast into the pass tables.

        Updates from a pass the runner already left (or has not reached)
        are dropped: the next PassStart snapshot carries those patterns.
        """
        core = self.core
        if core is None or msg.pass_index != self.pass_index:
            return
        for constraints in msg.fail_delta:
            core.fail_table.add(PruningPattern(constraints))
        for constraints in msg.success_delta:
            core.success_table.add(PruningPattern(constraints))

    def run_batch(self, task: BatchTask) -> BatchResult:
        """Walk one candidate range and return the mergeable deltas."""
        core = self.core
        if core is None:
            raise SynthesisError("BatchTask received before PassStart")
        for constraints in task.fail_delta:
            core.fail_table.add(PruningPattern(constraints))
        for constraints in task.success_delta:
            core.success_table.add(PruningPattern(constraints))

        fail_seen = core.fail_table.version
        success_seen = core.success_table.version
        holes_seen = len(core.registry)
        solutions_seen = len(core.solutions)
        evaluated_seen = core.evaluated
        deduplicated_seen = core.deduplicated
        verdicts_seen = dict(core.verdict_counts)
        prefix_seen = (
            core.prefix_cache.counters()
            if core.prefix_cache is not None
            else (0, 0, 0)
        )
        por_skipped_seen = core.por_rules_skipped
        ample_states_seen = core.ample_states
        store_hits_seen = core.store_hits
        store_writes_seen = core.store_writes
        family_checked_seen = core.family_checked
        family_splits_seen = core.family_splits
        family_avoided_seen = core.family_candidates_avoided
        if task.eval_budget is not None:
            core.config.max_evaluations = core.evaluated + task.eval_budget
        else:
            core.config.max_evaluations = None

        tele = self.telemetry
        metrics_before = (
            tele.metrics.snapshot()
            if tele.enabled and tele.metrics is not None
            else None
        )
        walker = (
            None
            if self._family
            else _PassWalker(core, self._radices, task.start, task.end)
        )
        family_counters = _FamilyPassCounters()
        budget_exhausted = False
        span = (
            tele.span("batch", batch=task.batch_id,
                      start=task.start, end=task.end)
            if tele.enabled
            else None
        )
        try:
            if span is not None:
                span.__enter__()
            if walker is None:
                self._walk_family_shards(task, family_counters)
            else:
                for digits in walker.enumerator:
                    core.process_candidate(walker, digits, self._first_new)
        except _StopSynthesis:
            budget_exhausted = core.stopped_early and not core.inherent_failure
            core.stopped_early = False
        finally:
            if span is not None:
                span.set(evaluated=core.evaluated - evaluated_seen)
                span.__exit__(None, None, None)
        metrics_delta = (
            diff_snapshots(metrics_before, tele.metrics.snapshot())
            if metrics_before is not None
            else {}
        )

        holes = core.registry.holes
        prefix_now = (
            core.prefix_cache.counters()
            if core.prefix_cache is not None
            else (0, 0, 0)
        )
        if walker is None:
            covered = family_counters.covered
            skipped = {
                FAIL_TAG: family_counters.pruned,
                SUCCESS_TAG: family_counters.skipped,
            }
        else:
            covered = walker.counters.covered
            skipped = dict(walker.counters.skipped)
        return BatchResult(
            worker_id=self.worker_id,
            batch_id=task.batch_id,
            start=task.start,
            end=task.end,
            covered=covered,
            evaluated=core.evaluated - evaluated_seen,
            deduplicated=core.deduplicated - deduplicated_seen,
            skipped=skipped,
            verdict_counts={
                verdict: count - verdicts_seen.get(verdict, 0)
                for verdict, count in core.verdict_counts.items()
                if count - verdicts_seen.get(verdict, 0)
            },
            new_fail_patterns=core.fail_table.constraints_since(fail_seen),
            new_success_patterns=core.success_table.constraints_since(success_seen),
            new_holes=tuple(
                HoleSpec.from_hole(hole) for hole in holes[holes_seen:]
            ),
            solutions=tuple(
                WireSolution.from_solution(
                    solution, run_index=solution.run_index - evaluated_seen
                )
                for solution in core.solutions[solutions_seen:]
            ),
            prefix_cache_hits=prefix_now[0] - prefix_seen[0],
            prefix_cache_builds=prefix_now[1] - prefix_seen[1],
            prefix_states_reused=prefix_now[2] - prefix_seen[2],
            por_rules_skipped=core.por_rules_skipped - por_skipped_seen,
            ample_states=core.ample_states - ample_states_seen,
            peak_states=core.peak_states,
            family_checked=core.family_checked - family_checked_seen,
            family_splits=core.family_splits - family_splits_seen,
            family_max_split_depth=core.family_max_split_depth,
            family_candidates_avoided=(
                core.family_candidates_avoided - family_avoided_seen
            ),
            metrics=metrics_delta,
            store_hits=core.store_hits - store_hits_seen,
            store_writes=core.store_writes - store_writes_seen,
            budget_exhausted=budget_exhausted,
            inherent_failure=core.inherent_failure,
            inherent_failure_message=core.inherent_failure_message,
        )


    def _walk_family_shards(
        self, task: BatchTask, counters: _FamilyPassCounters
    ) -> None:
        """Drain the batch's slice of the pass's family shards.

        Each shard runs as its own LIFO worklist (children never escape
        the batch, so checkpoints ride locally exactly as in the
        sequential scheduler); shards are processed in slice order to
        keep per-batch run indices deterministic.
        """
        core = self.core
        for wire in self._family_shards[task.start:task.end]:
            worklist = [(HoleFamily.from_wire(wire), None, 0)]
            while worklist:
                family, resume, depth = worklist.pop()
                children = core.process_family(family, resume, depth, counters)
                worklist.extend(reversed(children))

    def close(self) -> None:
        """Release the runner's lifetime resources (the verdict store)."""
        if self._store is not None:
            self._store.close()
            self._store = None


def worker_main(worker_id: int, spec: SystemSpec, config: SynthesisConfig,
                task_queue, control_queue, result_queue) -> None:
    """Process entry point: steal BatchTasks until Shutdown.

    ``task_queue`` is shared by all workers (the work-stealing pool);
    ``control_queue`` is this worker's private FIFO carrying the ordered
    messages — :class:`PassStart`, :class:`PatternUpdate`,
    :class:`Shutdown`.  A stolen task may belong to a pass whose
    PassStart this worker has not read yet, so before running it the
    worker drains its control queue (blocking) until its pass index
    catches up with the task's; the coordinator enqueues every PassStart
    before that pass's tasks, so the wait always terminates.  Pattern
    updates already queued are drained opportunistically so a freshly
    stolen batch prunes with the newest broadcast tables.

    When the shipped config enables telemetry the worker opens its own
    bundle — with a private trace sink at ``<trace_path>.worker-<id>``
    when a trace path is set, progress always off (N processes sharing
    one stderr is noise) — and its metrics travel home as per-batch
    snapshot deltas in :class:`BatchResult`.
    """
    import queue as queue_module

    telemetry = None
    runner = None
    try:
        if config.telemetry_active:
            telemetry = Telemetry.from_config(config, worker_id=worker_id)
        runner = BatchRunner(
            spec.build(), config, worker_id=worker_id, telemetry=telemetry
        )

        def handle_control(message) -> bool:
            """Apply one control message; True means Shutdown."""
            if isinstance(message, Shutdown):
                return True
            if isinstance(message, PassStart):
                runner.start_pass(message)
            elif isinstance(message, PatternUpdate):
                runner.apply_patterns(message)
            return False

        while True:
            task = task_queue.get()
            if isinstance(task, Shutdown):
                return
            while runner.pass_index < task.pass_index:
                if handle_control(control_queue.get()):
                    return
            while True:  # opportunistic drain: newest patterns, no block
                try:
                    message = control_queue.get_nowait()
                except queue_module.Empty:
                    break
                if handle_control(message):
                    return
            result_queue.put(runner.run_batch(task))
    except BaseException:
        result_queue.put(WorkerCrash(worker_id, traceback.format_exc()))
    finally:
        if runner is not None:
            runner.close()
        if telemetry is not None:
            telemetry.close()
