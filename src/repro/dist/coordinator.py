"""Coordinator side of distributed synthesis.

:class:`DistributedSynthesisEngine` is the process backend: it shards each
enumeration pass's candidate index space into batches, dispatches them to a
pool of worker processes, and merges the returned deltas into the
authoritative :class:`~repro.core.engine.SynthesisCore`.  Unlike the
thread backend (GIL-bound, algorithmic reproduction only), worker
processes model check truly concurrently, which is what recovers the
paper's multi-worker wall-clock speedups on multi-core hosts.

Design points:

* **Work stealing beats static splitting.**  Each pass is cut into
  roughly ``workers x batches_per_worker`` shard-aligned ranges
  (:func:`repro.core.family.plan_family_shards` is the shard unit in both
  1-by-1 and family mode) and the batches go on **one shared task queue**
  every worker pulls from; a worker that drew cheap (heavily pruned)
  ranges immediately steals the next pending batch instead of idling
  behind a fixed assignment (the thread backend's static split suffers
  exactly that).
* **Pattern exchange by broadcast.**  With a shared queue the coordinator
  cannot know which worker runs the next batch, so newly accepted pruning
  patterns are broadcast to every worker's control queue
  (:class:`~repro.dist.messages.PatternUpdate`) as soon as the producing
  batch merges, tracked by a global version watermark.  Every worker
  prunes with (slightly stale) global knowledge; evaluated-candidate
  counts therefore vary slightly run to run, exactly like the paper's
  855-vs-825 threads column — solutions do not.
* **Packed wire format.**  Candidate and verdict traffic is integer
  codes and hole-digit tuples (:mod:`repro.dist.wire`): tasks are index
  ranges, patterns are constraint tuples, solutions come home as
  :class:`~repro.dist.wire.WireSolution` digit tuples that the
  coordinator re-renders against its canonical hole snapshot.
* **Deterministic aggregation.**  Solutions and newly discovered holes
  are buffered per batch and merged in batch index order at the pass
  boundary, so the reported solution order and the canonical hole order
  are independent of batch *completion* order.  (Pattern-arrival timing
  can still, in principle, decide whether a discovery-bearing candidate
  is evaluated or pruned, so hole order is reproducible only as far as
  skeletons discover their holes robustly — the bundled ones do, which
  the backend-equivalence tests pin down.)
* **Coordinator owns stop conditions.**  Workers run with the solution
  limit and global evaluation cap stripped; the coordinator stops
  dispatching when a merged limit trips, drains in-flight batches, and
  truncates deterministically.  The solution limit is exact (excess
  solutions are dropped before the observer sees them);
  ``max_evaluations`` is a *safety net*, enforced coarsely — each
  in-flight batch is granted the budget remaining at dispatch time, so
  the cap can overshoot by what the ``workers x max_inflight`` in-flight
  batches evaluate before the first trip reaches the coordinator.
  Splitting the grant instead would either idle workers or silently skip
  parts of a batch's range, both worse trades for a safety net.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.core.engine import (
    FAIL_TAG,
    SUCCESS_TAG,
    SynthesisConfig,
    SynthesisCore,
    SynthesisObserver,
    _StopSynthesis,
    resolve_telemetry,
)
from repro.core.family import plan_family_shards
from repro.core.pruning import PruningPattern
from repro.core.report import SynthesisReport
from repro.dist.messages import (
    BatchResult,
    BatchTask,
    HoleSpec,
    PassStart,
    PatternUpdate,
    Shutdown,
    SystemSpec,
    WorkerCrash,
)
from repro.dist.worker import worker_main
from repro.errors import SynthesisError
from repro.obs import Telemetry
from repro.util.timing import Stopwatch

#: Safety net: a worker silent for this long with no live process is fatal.
_RESULT_POLL_SECONDS = 1.0


def plan_batches(
    total: int,
    workers: int,
    batches_per_worker: int = 4,
    min_batch_size: int = 16,
) -> List[Tuple[int, int]]:
    """Cut ``range(total)`` into contiguous dispatch batches.

    The heuristic balances two pressures: more batches mean better load
    balance and more frequent cross-worker pattern exchange; fewer batches
    mean less IPC and fewer matcher rebuilds.  ``workers x
    batches_per_worker`` batches of at least ``min_batch_size`` indices
    each is a good middle ground (pruned subtrees make index ranges cheap
    to cover, so the floor only matters for tiny passes).
    """
    if total <= 0:
        return []
    target = max(1, workers * batches_per_worker)
    size = max(min_batch_size, -(-total // target))
    return [(start, min(start + size, total)) for start in range(0, total, size)]


def plan_shard_batches(
    radices,
    workers: int,
    batches_per_worker: int = 4,
    min_batch_size: int = 16,
) -> List[Tuple[int, int]]:
    """Cut the candidate index space into *shard-aligned* dispatch batches.

    Family shards (:func:`repro.core.family.plan_family_shards`) are
    contiguous ascending blocks of the lexicographic candidate order, so
    projecting them onto index ranges and coalescing consecutive ranges
    up to the :func:`plan_batches` size floor yields batches with the
    same count/size guarantees whose boundaries also respect shard
    boundaries — the shard unit is then identical between 1-by-1 and
    family passes, and a future shard-granular scheduler can reuse the
    plan unchanged.
    """
    target = max(1, workers * batches_per_worker)
    shards = plan_family_shards(radices, target)
    total = sum(shard.size for shard in shards)
    if total <= 0:
        return []
    floor = max(min_batch_size, -(-total // target))
    batches: List[Tuple[int, int]] = []
    start = position = 0
    for shard in shards:
        position += shard.size
        if position - start >= floor:
            batches.append((start, position))
            start = position
    if position > start:
        batches.append((start, position))
    return batches


class DistributedSynthesisEngine:
    """Process-parallel synthesis driver (the ``processes`` backend).

    Args:
        spec: a :class:`SystemSpec` (or bare catalog name) identifying the
            skeleton.  A spec — not a built system — is required because
            worker processes rebuild the system locally; see
            :mod:`repro.protocols.catalog`.
        config: synthesis knobs, shared verbatim with workers (minus
            global stop conditions, which the coordinator enforces).
        workers: number of worker processes (defaults to 4, the paper's
            testbed width).
        observer: coordinator-side observer.  ``on_prune``/``on_run`` fire
            only for the initial run (per-candidate events happen inside
            workers); pass, pattern, and solution callbacks fire normally.
        batches_per_worker / min_batch_size: chunking heuristic, see
            :func:`plan_batches`.
        max_inflight: batches queued per worker before the first result
            returns (2 hides dispatch latency without hoarding work).
        start_method: multiprocessing start method; defaults to ``fork``
            where available (cheap on Linux) else ``spawn``.
    """

    def __init__(
        self,
        spec: Union[SystemSpec, str],
        config: Optional[SynthesisConfig] = None,
        workers: int = 4,
        observer: Optional[SynthesisObserver] = None,
        batches_per_worker: int = 4,
        min_batch_size: int = 16,
        max_inflight: int = 2,
        start_method: Optional[str] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if isinstance(spec, str):
            spec = SystemSpec(spec)
        if not isinstance(spec, SystemSpec):
            raise SynthesisError(
                "DistributedSynthesisEngine needs a SystemSpec (or catalog "
                "name), not a built TransitionSystem: worker processes must "
                "rebuild the system from its spec"
            )
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.spec = spec
        self.system = spec.build()
        self.config = config or SynthesisConfig()
        self.workers = workers
        self.batches_per_worker = batches_per_worker
        self.min_batch_size = min_batch_size
        self.max_inflight = max_inflight
        if start_method is None:
            start_method = os.environ.get("REPRO_DIST_START_METHOD")
        if start_method is None:
            available = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in available else "spawn"
        self._start_method = start_method
        # Workers derive their own telemetry from the shipped config
        # (per-worker sinks); this bundle is the coordinator's, and the
        # aggregation point for the metric deltas batches bring home.
        self.telemetry, self._owns_telemetry = resolve_telemetry(
            self.config, telemetry
        )
        self.core = SynthesisCore(
            self.system, self.config, observer, telemetry=self.telemetry
        )
        self._processes: List[multiprocessing.process.BaseProcess] = []
        self._tasks = None
        self._control_queues: List = []
        self._results = None

    # -- worker lifecycle ---------------------------------------------------

    def _ensure_workers(self) -> None:
        if self._processes:
            return
        ctx = multiprocessing.get_context(self._start_method)
        self._results = ctx.Queue()
        # One shared task queue (the work-stealing pool) plus a private
        # FIFO control queue per worker for the ordered messages
        # (PassStart, PatternUpdate, Shutdown).
        self._tasks = ctx.Queue()
        for worker_id in range(self.workers):
            control = ctx.Queue()
            process = ctx.Process(
                target=worker_main,
                args=(worker_id, self.spec, self.config, self._tasks,
                      control, self._results),
                name=f"repro-dist-{worker_id}",
                daemon=True,
            )
            process.start()
            self._control_queues.append(control)
            self._processes.append(process)

    def _shutdown_workers(self) -> None:
        # One Shutdown per worker on the shared queue stops workers
        # blocked stealing; one per control queue stops workers blocked
        # waiting for a pass to catch up.
        if self._tasks is not None:
            for _ in self._processes:
                try:
                    self._tasks.put(Shutdown())
                except (OSError, ValueError):
                    pass
        for control in self._control_queues:
            try:
                control.put(Shutdown())
            except (OSError, ValueError):
                pass
        for process in self._processes:
            process.join(timeout=5)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=1)
        if self._results is not None:
            self._results.cancel_join_thread()
        if self._tasks is not None:
            self._tasks.cancel_join_thread()
        for control in self._control_queues:
            control.cancel_join_thread()
        self._processes = []
        self._tasks = None
        self._control_queues = []
        self._results = None

    def _next_result(self, outstanding: int) -> Union[BatchResult, WorkerCrash]:
        """Next batch result, watching for hard-killed workers.

        With a shared task queue the coordinator no longer knows which
        worker holds which batch, so the safety net is collective: if any
        worker process is dead while batches are outstanding and several
        consecutive polls come back empty, the stolen batch is presumed
        lost with it.  Crashes with a traceback arrive as ordinary
        :class:`WorkerCrash` messages, not here.
        """
        empty_polls = 0
        while True:
            try:
                return self._results.get(timeout=_RESULT_POLL_SECONDS)
            except queue_module.Empty:
                dead = [
                    process.name
                    for process in self._processes
                    if not process.is_alive()
                ]
                if not dead or not outstanding:
                    continue
                empty_polls += 1
                # Give live workers a few grace polls: a dead *idle*
                # worker is harmless while the others chew a long batch.
                if empty_polls >= 3:
                    raise SynthesisError(
                        f"worker process(es) died mid-batch: "
                        f"{', '.join(dead)}"
                    ) from None

    # -- run ---------------------------------------------------------------

    def run(self) -> SynthesisReport:
        """Run the distributed synthesis and return the merged report."""
        core = self.core
        report = SynthesisReport(
            system_name=self.system.name,
            pruning=self.config.pruning,
            threads=self.workers,
            backend="processes",
            explorer=self.config.explorer,
        )
        watch = Stopwatch.started()
        tele = self.telemetry
        with tele.span(
            "synthesis", system=self.system.name, backend="processes",
            workers=self.workers,
        ) as span:
            try:
                core.run_initial()
                self._run_passes(report)
            except _StopSynthesis:
                pass
            finally:
                self._shutdown_workers()
            if tele.enabled:
                span.set(
                    evaluated=core.evaluated, solutions=len(core.solutions)
                )
        report.elapsed_seconds = watch.elapsed
        report = core.finalize_report(report)
        core.close_store()
        if self._owns_telemetry:
            tele.close()
        return report

    def _run_passes(self, report: SynthesisReport) -> None:
        core = self.core
        previous_count = 0
        while True:
            holes = core.registry.holes
            if len(holes) == previous_count:
                break
            if (
                self.config.max_passes is not None
                and report.passes >= self.config.max_passes
            ):
                core.stopped_early = True
                break
            first_new = previous_count
            previous_count = len(holes)
            report.passes += 1
            core.observer.on_pass_started(report.passes, holes)
            with self.telemetry.span(
                "pass", index=report.passes, holes=len(holes)
            ):
                self._run_pass(report, holes, first_new)

    def _run_pass(self, report: SynthesisReport, holes, first_new: int) -> None:
        core = self.core
        config = self.config
        radices = [hole.arity for hole in holes]
        family_mode = config.family_active
        if family_mode:
            # The shared worklist cannot cross process boundaries, so the
            # root family is pre-split into deterministic shards and each
            # batch covers a contiguous slice of the shard list (workers
            # run a local worklist per shard).  Shards are uneven in cost
            # by construction, which is exactly what work-stealing-style
            # batch dispatch is for — hence min_batch_size=1.
            shards = plan_family_shards(
                radices, max(1, self.workers * self.batches_per_worker)
            )
            total = len(shards)
            batches = plan_batches(
                total, self.workers, self.batches_per_worker, min_batch_size=1
            )
        else:
            shards = ()
            batches = plan_shard_batches(
                radices, self.workers, self.batches_per_worker,
                self.min_batch_size,
            )
        self._ensure_workers()

        pass_start = PassStart(
            pass_index=report.passes,
            first_new=first_new,
            hole_specs=tuple(HoleSpec.from_hole(hole) for hole in holes),
            fail_patterns=core.fail_table.constraints_since(),
            success_patterns=core.success_table.constraints_since(),
            explorer=config.explorer,
            partial_order=config.partial_order_active,
            packed=config.packed,
            family=family_mode,
            family_shards=tuple(shard.to_wire() for shard in shards),
        )
        # PassStart goes on the control queues *before* any task enters
        # the shared queue: each control queue is FIFO, so a worker that
        # steals a task from this pass is guaranteed to find the matching
        # PassStart when it blocks to catch up.
        for control in self._control_queues:
            control.put(pass_start)
        # One global pattern watermark (the broadcast reaches everyone).
        fail_seen = core.fail_table.version
        success_seen = core.success_table.version

        pending: Deque[Tuple[int, int]] = deque(batches)
        outstanding = 0
        next_batch_id = 0
        pass_base_evaluated = core.evaluated
        solutions_by_batch: Dict[int, Tuple] = {}
        holes_by_batch: Dict[int, Tuple[HoleSpec, ...]] = {}
        evaluated_by_batch: Dict[int, int] = {}
        stop_dispatch = False
        budget_tripped = False

        def merged_solution_count() -> int:
            buffered = sum(len(sols) for sols in solutions_by_batch.values())
            return len(core.solutions) + buffered

        def dispatch() -> None:
            nonlocal outstanding, next_batch_id
            if stop_dispatch or not pending:
                return
            start, end = pending.popleft()
            budget = None
            if config.max_evaluations is not None:
                budget = max(0, config.max_evaluations - core.evaluated)
            task = BatchTask(
                batch_id=next_batch_id,
                start=start,
                end=end,
                eval_budget=budget,
                pass_index=report.passes,
            )
            next_batch_id += 1
            self._tasks.put(task)
            outstanding += 1

        def broadcast_patterns() -> None:
            nonlocal fail_seen, success_seen
            fail_delta = core.fail_table.constraints_since(fail_seen)
            success_delta = core.success_table.constraints_since(success_seen)
            if not fail_delta and not success_delta:
                return
            fail_seen = core.fail_table.version
            success_seen = core.success_table.version
            update = PatternUpdate(
                pass_index=report.passes,
                fail_delta=fail_delta,
                success_delta=success_delta,
            )
            for control in self._control_queues:
                control.put(update)

        # Prime the shared queue with enough work to keep every worker's
        # pipeline full; one more batch enters per result merged.
        for _ in range(min(len(pending), self.workers * self.max_inflight)):
            dispatch()

        tele = self.telemetry
        instrumented = tele.enabled
        tick = (
            tele.progress.tick
            if instrumented and tele.progress is not None
            else None
        )
        wait_seconds = 0.0
        while outstanding:
            if instrumented:
                wait_begin = time.perf_counter()
                result = self._next_result(outstanding)
                wait_seconds += time.perf_counter() - wait_begin
            else:
                result = self._next_result(outstanding)
            outstanding -= 1
            if isinstance(result, WorkerCrash):
                raise SynthesisError(
                    f"distributed worker {result.worker_id} crashed:\n"
                    f"{result.traceback_text}"
                )
            self._merge_batch(report, result, holes)
            solutions_by_batch[result.start] = result.solutions
            holes_by_batch[result.start] = result.new_holes
            evaluated_by_batch[result.start] = result.evaluated
            if result.inherent_failure:
                core.inherent_failure = True
                core.inherent_failure_message = result.inherent_failure_message
                stop_dispatch = True
            if result.budget_exhausted:
                budget_tripped = True
                stop_dispatch = True
            if (
                config.max_evaluations is not None
                and core.evaluated >= config.max_evaluations
            ):
                budget_tripped = True
                stop_dispatch = True
            if (
                config.solution_limit is not None
                and merged_solution_count() >= config.solution_limit
            ):
                stop_dispatch = True
            if tick is not None:
                tick(
                    evaluated=core.evaluated,
                    solutions=merged_solution_count(),
                    patterns=len(core.fail_table),
                    peak_states=core.peak_states,
                )
            if not stop_dispatch:
                broadcast_patterns()
                dispatch()

        if instrumented and wait_seconds:
            # Coordinator idle time spent blocked on worker results this
            # pass — the distributed analogue of a kernel phase.
            tele.phase("wait_workers", wait_seconds, index=report.passes)

        self._merge_pass_end(
            holes,
            pass_base_evaluated,
            solutions_by_batch,
            holes_by_batch,
            evaluated_by_batch,
        )

        if core.inherent_failure:
            raise _StopSynthesis()
        if (
            config.solution_limit is not None
            and len(core.solutions) >= config.solution_limit
        ):
            del core.solutions[config.solution_limit:]
            core.stopped_early = True
            raise _StopSynthesis()
        if budget_tripped:
            core.stopped_early = True
            raise _StopSynthesis()
        if pending:
            # Dispatch stopped early but no terminal condition fired on
            # merge: treat as an early stop rather than silently undercover.
            core.stopped_early = True
            raise _StopSynthesis()

    # -- merging ------------------------------------------------------------

    def _merge_batch(self, report: SynthesisReport, result: BatchResult,
                     holes) -> None:
        core = self.core
        report.covered += result.covered
        report.pruned_failure += result.skipped.get(FAIL_TAG, 0)
        report.skipped_success += result.skipped.get(SUCCESS_TAG, 0)
        core.evaluated += result.evaluated
        core.deduplicated += result.deduplicated
        core.merged_prefix_counters[0] += result.prefix_cache_hits
        core.merged_prefix_counters[1] += result.prefix_cache_builds
        core.merged_prefix_counters[2] += result.prefix_states_reused
        core.por_rules_skipped += result.por_rules_skipped
        core.ample_states += result.ample_states
        if result.peak_states > core.peak_states:
            core.peak_states = result.peak_states
        core.store_hits += result.store_hits
        core.store_writes += result.store_writes
        core.family_checked += result.family_checked
        core.family_splits += result.family_splits
        core.family_candidates_avoided += result.family_candidates_avoided
        if result.family_max_split_depth > core.family_max_split_depth:
            core.family_max_split_depth = result.family_max_split_depth
        if (
            result.metrics
            and core.telemetry.enabled
            and core.telemetry.metrics is not None
        ):
            # Fold the worker's per-batch registry delta into the
            # coordinator's registry.  Counter/histogram merges commute,
            # gauges take the max, so the aggregate is independent of
            # batch completion order.
            core.telemetry.metrics.merge(result.metrics)
        for verdict, count in result.verdict_counts.items():
            core.verdict_counts[verdict] = (
                core.verdict_counts.get(verdict, 0) + count
            )
        for constraints in result.new_fail_patterns:
            pattern = PruningPattern(constraints)
            if core.fail_table.add(pattern):
                core.observer.on_pattern(pattern, holes)
        for constraints in result.new_success_patterns:
            core.success_table.add(PruningPattern(constraints))

    def _merge_pass_end(
        self,
        holes,
        pass_base_evaluated: int,
        solutions_by_batch: Dict[int, Tuple],
        holes_by_batch: Dict[int, Tuple[HoleSpec, ...]],
        evaluated_by_batch: Dict[int, int],
    ) -> None:
        """Fold buffered per-batch results in batch index order.

        Sorting by batch start index makes solution order, run indices,
        and the canonical hole order independent of completion order —
        the deterministic-aggregation half of the design.
        """
        core = self.core
        limit = self.config.solution_limit
        run_base = pass_base_evaluated
        for start in sorted(evaluated_by_batch):
            for wire in solutions_by_batch.get(start, ()):
                if limit is not None and len(core.solutions) >= limit:
                    break  # excess solutions are dropped, never observed
                # Inflate the wire form against the canonical pass hole
                # snapshot (digit positions match the worker's by
                # construction), rebasing the run index in the same step.
                rebased = wire.to_solution(
                    holes, run_index=run_base + wire.run_index
                )
                core.solutions.append(rebased)
                core.observer.on_solution(rebased, holes)
            run_base += evaluated_by_batch[start]
        for start in sorted(holes_by_batch):
            for spec in holes_by_batch[start]:
                # reserve() is idempotent per name, so holes reported by
                # several batches merge once, in batch index order.
                core.registry.reserve(spec.placeholder())

