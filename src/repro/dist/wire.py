"""Packed wire forms for candidate/verdict traffic.

Everything the coordinator and workers exchange per batch is reduced to
integers, strings, and tuples of them — no engine objects cross the
process boundary:

* pruning patterns already travel as ``((position, action_index), ...)``
  constraint tuples;
* family shards travel as option-subset tuples
  (:data:`repro.core.family.WireFamily`);
* solutions travel as :class:`WireSolution` — hole-digit tuples plus the
  scalar counters; the coordinator re-derives the human-readable
  assignment from its canonical hole snapshot at the pass boundary
  instead of shipping redundant name pairs with every solution.

Keeping the wire layer this flat is what lets the work-stealing shared
task queue stay cheap: a :class:`~repro.dist.messages.BatchTask` pickles
to a handful of small machine types regardless of protocol size.
"""

from __future__ import annotations

from typing import NamedTuple, Optional, Sequence, Tuple

from repro.core.hole import Hole
from repro.core.report import Solution


class WireSolution(NamedTuple):
    """A solution as pure machine types: digits + counters, no names.

    ``run_index`` stays 1-based within the producing batch (the
    coordinator rebases it while merging in batch order, exactly as it
    does for full :class:`~repro.core.report.Solution` objects).
    """

    digits: Tuple[int, ...]
    states_visited: int
    fingerprint: Optional[int]
    run_index: int
    executed_holes: Tuple[str, ...]

    @classmethod
    def from_solution(cls, solution: Solution, run_index: Optional[int] = None) -> "WireSolution":
        """Strip a solution down to its wire form."""
        return cls(
            digits=solution.digits,
            states_visited=solution.states_visited,
            fingerprint=solution.fingerprint,
            run_index=run_index if run_index is not None else solution.run_index,
            executed_holes=solution.executed_holes,
        )

    def to_solution(self, holes: Sequence[Hole], run_index: Optional[int] = None) -> Solution:
        """Rebuild the full solution against a canonical hole snapshot.

        The assignment's names come from ``holes`` — the coordinator's
        pass snapshot, whose order and action names match the worker's
        by construction (:class:`~repro.dist.worker.WorkerHoleRegistry`).
        """
        return Solution(
            digits=self.digits,
            assignment=tuple(
                (holes[pos].name, holes[pos].domain[action].name)
                for pos, action in enumerate(self.digits)
            ),
            states_visited=self.states_visited,
            fingerprint=self.fingerprint,
            run_index=run_index if run_index is not None else self.run_index,
            executed_holes=self.executed_holes,
        )
