"""Plain-text table rendering (Table I of the paper).

``render_table1_row`` converts a :class:`~repro.core.report.SynthesisReport`
into the paper's column set; ``format_table`` renders a list of such rows
with aligned columns, thousands separators, and ``N/A`` for missing values.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.report import SynthesisReport

TABLE1_COLUMNS = (
    "Configuration",
    "Holes",
    "Candidates",
    "Pruning Patterns",
    "Evaluated",
    "Solutions",
    "Exec. Time",
)


def render_table1_row(
    configuration: str,
    report: SynthesisReport,
    evaluated_override: Optional[int] = None,
    seconds_override: Optional[float] = None,
    estimated: bool = False,
) -> Dict[str, object]:
    """One Table I row; overrides support estimated naive baselines."""
    row = report.table_row(configuration)
    if evaluated_override is not None:
        row["Evaluated"] = evaluated_override
    if seconds_override is not None:
        row["Exec. Time"] = seconds_override
    if estimated:
        row["Configuration"] = f"{configuration} (estimated)"
    return row


def _format_cell(column: str, value: object) -> str:
    if value is None:
        return "N/A"
    if column == "Exec. Time":
        return f"{float(value):.1f}s"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(rows: Sequence[Dict[str, object]],
                 columns: Sequence[str] = TABLE1_COLUMNS) -> str:
    """Render rows as an aligned plain-text table."""
    rendered: List[List[str]] = [
        [_format_cell(column, row.get(column)) for column in columns]
        for row in rows
    ]
    widths = []
    for i, column in enumerate(columns):
        cell_widths = [len(line[i]) for line in rendered] or [0]
        widths.append(max(len(column), *cell_widths))
    lines = [
        "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns)),
        "  ".join("-" * widths[i] for i in range(len(columns))),
    ]
    for line in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(lines)
