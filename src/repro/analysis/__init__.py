"""Analysis of synthesis results: behavioural grouping and table rendering."""

from repro.analysis.grouping import SolutionGroup, group_solutions
from repro.analysis.stats import RunComparison, compare_reports
from repro.analysis.tables import format_table, render_table1_row

__all__ = [
    "RunComparison",
    "SolutionGroup",
    "compare_reports",
    "format_table",
    "group_solutions",
    "render_table1_row",
]
