"""Behavioural grouping of synthesised solutions.

The paper (Section III): "for correctly verified solutions of the protocol,
the model checker reports 5207, 6025 or 6332 visited states: even though up
to 12 distinct solutions can be generated (for MSI-large), we could group
them into 3 sets, where solutions within each set behave equivalently, yet
subtly different from the other sets."

Two solutions behave equivalently when they induce the same reachable state
graph.  We group by the order-independent fingerprint of the visited state
set when available (``SynthesisConfig(compute_fingerprints=True)``), falling
back to the visited-state *count* — exactly the signal the paper quotes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.report import Solution, SynthesisReport


@dataclass(frozen=True)
class SolutionGroup:
    """A set of behaviourally equivalent solutions."""

    key: Tuple
    states_visited: int
    solutions: Tuple[Solution, ...]

    @property
    def size(self) -> int:
        return len(self.solutions)


def group_solutions(solutions: Sequence[Solution]) -> List[SolutionGroup]:
    """Group solutions by behaviour (fingerprint, else state count).

    Groups are returned sorted by visited-state count then size, largest
    state spaces first (the paper lists its groups by state count).
    """
    buckets: Dict[Tuple, List[Solution]] = {}
    for solution in solutions:
        if solution.fingerprint is not None:
            key = ("fingerprint", solution.fingerprint)
        else:
            key = ("states", solution.states_visited)
        buckets.setdefault(key, []).append(solution)
    groups = [
        SolutionGroup(
            key=key,
            states_visited=members[0].states_visited,
            solutions=tuple(members),
        )
        for key, members in buckets.items()
    ]
    groups.sort(key=lambda g: (-g.states_visited, -g.size))
    return groups


def describe_groups(report: SynthesisReport) -> str:
    """Human-readable group summary, in the style of the paper's Section III."""
    groups = group_solutions(report.solutions)
    lines = [
        f"{len(report.solutions)} solutions in {len(groups)} behavioural group(s):"
    ]
    for index, group in enumerate(groups, start=1):
        lines.append(
            f"  group {index}: {group.size} solution(s), "
            f"{group.states_visited} visited states"
        )
        for solution in group.solutions:
            lines.append(f"    {report.format_solution(solution)}")
    return "\n".join(lines)
