"""Cross-run comparisons (speedups, reductions).

Computes the derived quantities the paper reports in Section III: the
percentage reduction in evaluated candidates and the effective speedup of
pruning over the naive enumeration, and the parallel speedup of the
multi-threaded engine.  :func:`pattern_economy` adds the metric the
conflict-generalisation extension moves: candidates pruned per recorded
failure pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.report import SynthesisReport


@dataclass(frozen=True)
class RunComparison:
    """Derived metrics comparing an optimised run against a baseline."""

    baseline_evaluated: int
    optimised_evaluated: int
    baseline_seconds: float
    optimised_seconds: float
    baseline_estimated: bool = False

    @property
    def evaluated_reduction(self) -> float:
        """Fraction of baseline evaluations avoided (paper: 99.6% / 99.8%)."""
        if self.baseline_evaluated == 0:
            return 0.0
        return 1.0 - self.optimised_evaluated / self.baseline_evaluated

    @property
    def speedup(self) -> float:
        """Wall-clock speedup (paper: 35.8x / 42.7x for pruning)."""
        if self.optimised_seconds <= 0:
            return float("inf")
        return self.baseline_seconds / self.optimised_seconds

    def summary(self) -> str:
        tag = " (baseline estimated)" if self.baseline_estimated else ""
        return (
            f"evaluated {self.baseline_evaluated:,} -> {self.optimised_evaluated:,} "
            f"({self.evaluated_reduction:.1%} reduction); "
            f"time {self.baseline_seconds:.2f}s -> {self.optimised_seconds:.2f}s "
            f"({self.speedup:.1f}x speedup){tag}"
        )


def compare_reports(
    baseline: SynthesisReport,
    optimised: SynthesisReport,
    baseline_seconds: Optional[float] = None,
    baseline_estimated: bool = False,
) -> RunComparison:
    """Compare two synthesis reports (e.g. naive vs pruning)."""
    return RunComparison(
        baseline_evaluated=baseline.evaluated,
        optimised_evaluated=optimised.evaluated,
        baseline_seconds=(
            baseline.elapsed_seconds if baseline_seconds is None else baseline_seconds
        ),
        optimised_seconds=optimised.elapsed_seconds,
        baseline_estimated=baseline_estimated,
    )


def pattern_economy(report: SynthesisReport) -> float:
    """Candidates pruned per recorded failure pattern.

    The yield of the pattern table: how much of the candidate space each
    failure "bought".  Full-width patterns (the paper's scheme) constrain
    every assigned hole, so a pattern mostly prunes its own near-duplicates;
    conflict-generalised patterns (``SynthesisConfig.generalise_conflicts``)
    constrain only the replayed failure conflict and cut whole subtrees,
    which raises this number while *lowering* the pattern count.  0.0 when
    no patterns were recorded (naive mode, or no failures).
    """
    if report.failure_patterns == 0:
        return 0.0
    return report.pruned_failure / report.failure_patterns


def estimate_naive_seconds(
    naive_candidates: int, sampled_runs: int, sampled_seconds: float
) -> float:
    """Extrapolate the naive wall-clock from a sample of candidate checks.

    Used when the naive baseline is infeasible to run in full (MSI-large's
    102M candidates; see DESIGN.md substitution 1).
    """
    if sampled_runs <= 0:
        raise ValueError("sampled_runs must be positive")
    return naive_candidates * (sampled_seconds / sampled_runs)


def sample_candidate_cost(skeleton, samples: int = 25, seed: int = 0) -> dict:
    """Estimate the mean cost of model checking one fully-assigned candidate.

    Draws uniform random assignments over the skeleton's holes and times a
    full verification of each; feed the mean into
    :func:`estimate_naive_seconds` to extrapolate an infeasible naive
    baseline.  ``skeleton`` needs ``.holes`` and ``.system`` attributes
    (e.g. :class:`repro.protocols.msi.skeleton.Skeleton`).
    """
    import random
    import time

    from repro.mc.bfs import BfsExplorer
    from repro.mc.context import FixedResolver

    if samples <= 0:
        raise ValueError("samples must be positive")
    rng = random.Random(seed)
    total = 0.0
    for _ in range(samples):
        assignment = {
            hole: hole.domain[rng.randrange(hole.arity)] for hole in skeleton.holes
        }
        start = time.perf_counter()
        BfsExplorer(skeleton.system, resolver=FixedResolver(assignment)).run()
        total += time.perf_counter() - start
    return {"samples": samples, "mean_seconds": total / samples}
