"""Replicated process arrays.

A :class:`ProcessArray` holds the local states of N symmetric processes and
knows how to rename indices under a scalarset permutation.  It is the
``procs`` component of DSL-built protocol states.
"""

from __future__ import annotations

from typing import Any, Iterator, Tuple


class ProcessArray:
    """An immutable array of per-process local states."""

    __slots__ = ("_states",)

    def __init__(self, states: Tuple[Any, ...]) -> None:
        self._states = tuple(states)

    @classmethod
    def uniform(cls, initial: Any, count: int) -> "ProcessArray":
        """An array of ``count`` copies of ``initial``."""
        if count < 1:
            raise ValueError("a process array needs at least one process")
        return cls((initial,) * count)

    def __getitem__(self, index: int) -> Any:
        return self._states[index]

    def set(self, index: int, value: Any) -> "ProcessArray":
        """A copy with position ``index`` replaced."""
        states = list(self._states)
        states[index] = value
        return ProcessArray(tuple(states))

    def renamed(self, mapping: Tuple[int, ...]) -> "ProcessArray":
        """A copy with process indices permuted by ``mapping``."""
        states = list(self._states)
        for old_index, value in enumerate(self._states):
            states[mapping[old_index]] = value
        return ProcessArray(tuple(states))

    def count(self, value: Any) -> int:
        """Number of processes whose local state equals ``value``."""
        return sum(1 for state in self._states if state == value)

    def __len__(self) -> int:
        return len(self._states)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._states)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProcessArray):
            return NotImplemented
        return self._states == other._states

    def __hash__(self) -> int:
        return hash(self._states)

    def __repr__(self) -> str:
        return f"ProcessArray({list(self._states)!r})"
