"""Typed messages and network channels.

:class:`UnorderedNetwork` is the interconnect model the paper's case study
assumes ("all networks may be unordered"): a bag of in-flight messages.
:class:`OrderedChannel` is a FIFO per (source, destination) pair — not used
by the paper, but indispensable for experimenting with how much of the
transient-state complexity is *caused* by unordered delivery (see the
ablation benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional, Tuple

from repro.mc.multiset import Multiset


@dataclass(frozen=True)
class Message:
    """An immutable network message."""

    mtype: str
    src: int
    dst: int
    payload: Any = None

    def renamed(self, mapping: Tuple[int, ...]) -> "Message":
        """Rename process indices (for symmetry reduction)."""
        return Message(
            self.mtype,
            mapping[self.src] if self.src >= 0 else self.src,
            mapping[self.dst] if self.dst >= 0 else self.dst,
            self.payload,
        )


class UnorderedNetwork:
    """An immutable bag of in-flight messages."""

    __slots__ = ("_bag",)

    def __init__(self, bag: Optional[Multiset] = None) -> None:
        self._bag = bag if bag is not None else Multiset()

    def send(self, message: Message) -> "UnorderedNetwork":
        return UnorderedNetwork(self._bag.add(message))

    def deliver(self, message: Message) -> "UnorderedNetwork":
        """Remove one copy of ``message`` (it is being consumed)."""
        return UnorderedNetwork(self._bag.remove(message))

    def deliverable(self, dst: int, mtype: Optional[str] = None) -> Iterator[Message]:
        """Messages currently deliverable to ``dst`` (optionally filtered)."""
        for message in self._bag.distinct():
            if message.dst != dst:
                continue
            if mtype is not None and message.mtype != mtype:
                continue
            yield message

    def renamed(self, mapping: Tuple[int, ...]) -> "UnorderedNetwork":
        return UnorderedNetwork(self._bag.map(lambda m: m.renamed(mapping)))

    def __len__(self) -> int:
        return len(self._bag)

    def __iter__(self) -> Iterator[Message]:
        return iter(self._bag)

    def __contains__(self, message: Message) -> bool:
        return message in self._bag

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnorderedNetwork):
            return NotImplemented
        return self._bag == other._bag

    def __hash__(self) -> int:
        return hash(self._bag)

    def __repr__(self) -> str:
        return f"UnorderedNetwork({list(self._bag)!r})"


class OrderedChannel:
    """An immutable FIFO of messages (point-to-point ordered delivery)."""

    __slots__ = ("_items",)

    def __init__(self, items: Tuple[Message, ...] = ()) -> None:
        self._items = tuple(items)

    def send(self, message: Message) -> "OrderedChannel":
        return OrderedChannel(self._items + (message,))

    @property
    def head(self) -> Optional[Message]:
        return self._items[0] if self._items else None

    def deliver_head(self) -> "OrderedChannel":
        if not self._items:
            raise IndexError("channel is empty")
        return OrderedChannel(self._items[1:])

    def renamed(self, mapping: Tuple[int, ...]) -> "OrderedChannel":
        return OrderedChannel(tuple(m.renamed(mapping) for m in self._items))

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Message]:
        return iter(self._items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OrderedChannel):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return hash(self._items)

    def __repr__(self) -> str:
        return f"OrderedChannel({list(self._items)!r})"
