"""A small declarative layer for writing protocols (Murphi-flavoured).

The MSI case study is hand-tuned for speed; this layer trades a little
performance for brevity and is what a downstream user would typically start
with.  See :mod:`repro.protocols.vi` and :mod:`repro.protocols.mutex` for
protocols written against it.

* :mod:`repro.dsl.network` — typed messages and unordered/ordered channels.
* :mod:`repro.dsl.process` — replicated process arrays over a scalarset.
* :mod:`repro.dsl.builder` — declarative controller tables with optional
  holes, compiled to :class:`~repro.mc.rule.Rule` lists.
"""

from repro.dsl.builder import ControllerSpec, ProtocolBuilder, Transition
from repro.dsl.network import Message, OrderedChannel, UnorderedNetwork
from repro.dsl.process import ProcessArray

__all__ = [
    "ControllerSpec",
    "Message",
    "OrderedChannel",
    "ProcessArray",
    "ProtocolBuilder",
    "Transition",
    "UnorderedNetwork",
]
