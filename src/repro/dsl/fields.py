"""Typed fields and validated record schemas.

Murphi declares state variables with explicit finite types (enums,
subranges, scalarset indices); typos and out-of-range writes are caught at
model-build time rather than surfacing as unreachable states.  This module
provides the same guard rails for DSL-built protocols:

>>> schema = Schema(
...     st=EnumField("FREE", "OWNED"),
...     owner=IdField(n_procs=3, allow_none=True),
...     acks=RangeField(0, 3),
... )
>>> state = schema.make(st="FREE", owner=None, acks=0)
>>> schema.update(state, st="OWNED", owner=2).owner
2
>>> schema.update(state, owner=7)
Traceback (most recent call last):
    ...
repro.errors.ModelError: field 'owner': 7 not in [0, 3) (or None)
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Tuple

from repro.errors import ModelError
from repro.mc.state import Record


class Field:
    """Base class: a named, validated slot of a record schema."""

    def validate(self, name: str, value: Any) -> None:
        raise NotImplementedError

    def rename(self, value: Any, mapping: Tuple[int, ...]) -> Any:
        """Rename process indices inside the value (symmetry); default: none."""
        return value


class EnumField(Field):
    """A finite set of symbolic values."""

    def __init__(self, *values: str) -> None:
        if not values:
            raise ModelError("EnumField needs at least one value")
        if len(set(values)) != len(values):
            raise ModelError("EnumField values must be distinct")
        self.values: FrozenSet[str] = frozenset(values)

    def validate(self, name: str, value: Any) -> None:
        if value not in self.values:
            raise ModelError(
                f"field {name!r}: {value!r} not one of {sorted(self.values)}"
            )


class RangeField(Field):
    """An integer subrange ``[low, high]`` (inclusive, like Murphi)."""

    def __init__(self, low: int, high: int) -> None:
        if low > high:
            raise ModelError("RangeField low must be <= high")
        self.low = low
        self.high = high

    def validate(self, name: str, value: Any) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise ModelError(f"field {name!r}: {value!r} is not an integer")
        if not self.low <= value <= self.high:
            raise ModelError(
                f"field {name!r}: {value} not in [{self.low}, {self.high}]"
            )


class IdField(Field):
    """A process index (scalarset member), optionally nullable.

    ``sentinel`` (default ``None``) is the value that models "no process"
    (e.g. no current owner); protocols using the Murphi-style ``-1``
    convention declare ``sentinel=-1``.  Under a permutation, non-sentinel
    values are renamed.
    """

    def __init__(
        self, n_procs: int, allow_none: bool = False, sentinel: Any = None
    ) -> None:
        if n_procs < 1:
            raise ModelError("IdField needs at least one process")
        self.n_procs = n_procs
        self.allow_none = allow_none
        self.sentinel = sentinel

    def validate(self, name: str, value: Any) -> None:
        if value == self.sentinel and type(value) is type(self.sentinel):
            if not self.allow_none:
                raise ModelError(f"field {name!r}: {value!r} not allowed")
            return
        if not isinstance(value, int) or isinstance(value, bool):
            raise ModelError(f"field {name!r}: {value!r} is not a process id")
        if not 0 <= value < self.n_procs:
            suffix = f" (or {self.sentinel})" if self.allow_none else ""
            raise ModelError(
                f"field {name!r}: {value} not in [0, {self.n_procs}){suffix}"
            )

    def rename(self, value: Any, mapping: Tuple[int, ...]) -> Any:
        return value if value == self.sentinel else mapping[value]


class IdSetField(Field):
    """A set of process indices (e.g. a sharer list)."""

    def __init__(self, n_procs: int) -> None:
        if n_procs < 1:
            raise ModelError("IdSetField needs at least one process")
        self.n_procs = n_procs

    def validate(self, name: str, value: Any) -> None:
        if not isinstance(value, frozenset):
            raise ModelError(f"field {name!r}: expected a frozenset, got {value!r}")
        for member in value:
            if not isinstance(member, int) or not 0 <= member < self.n_procs:
                raise ModelError(
                    f"field {name!r}: member {member!r} not in [0, {self.n_procs})"
                )

    def rename(self, value: FrozenSet[int], mapping: Tuple[int, ...]) -> FrozenSet[int]:
        return frozenset(mapping[member] for member in value)


class BoolField(Field):
    def validate(self, name: str, value: Any) -> None:
        if not isinstance(value, bool):
            raise ModelError(f"field {name!r}: {value!r} is not a bool")


class Schema:
    """A validated record layout: field name -> :class:`Field`.

    Produces plain :class:`~repro.mc.state.Record` values, so schema-built
    states interoperate with everything else in the library.
    """

    def __init__(self, **fields: Field) -> None:
        if not fields:
            raise ModelError("a schema needs at least one field")
        for name, field in fields.items():
            if not isinstance(field, Field):
                raise ModelError(f"field {name!r} is not a Field instance")
        self.fields: Dict[str, Field] = dict(fields)

    def make(self, **values: Any) -> Record:
        """Build a validated record; all fields are required."""
        missing = set(self.fields) - set(values)
        if missing:
            raise ModelError(f"missing fields: {sorted(missing)}")
        extra = set(values) - set(self.fields)
        if extra:
            raise ModelError(f"unknown fields: {sorted(extra)}")
        for name, value in values.items():
            self.fields[name].validate(name, value)
        return Record(**values)

    def update(self, record: Record, **changes: Any) -> Record:
        """Validated functional update."""
        for name, value in changes.items():
            field = self.fields.get(name)
            if field is None:
                raise ModelError(f"unknown fields: [{name!r}]")
            field.validate(name, value)
        return record.update(**changes)

    def rename(self, record: Record, mapping: Tuple[int, ...]) -> Record:
        """Rename all process indices in the record (for symmetry)."""
        renamed = {
            name: self.fields[name].rename(value, mapping)
            for name, value in record
        }
        return Record(**renamed)

    def check(self, record: Record) -> None:
        """Validate an existing record against the schema."""
        for name, value in record:
            field = self.fields.get(name)
            if field is None:
                raise ModelError(f"unknown fields: [{name!r}]")
            field.validate(name, value)
