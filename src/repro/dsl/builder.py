"""Declarative protocol construction.

A protocol is described as one or more *controllers*:

* a **replicated** controller runs one copy per process index (cache
  controllers, lock clients, ...); its transitions are expanded over every
  index and are symmetry-aware;
* a **global** controller runs a single copy (a directory, a lock server);
  by convention it has process id ``GLOBAL`` (-1).

Each controller is a table of :class:`Transition` entries keyed by
``(local_state, event)``.  An event is either ``spontaneous`` (always
offered when the local state matches — think "the CPU issues a store") or a
message type received from the network.  Handlers receive a mutable
:class:`StateView`, the process index, and the execution context through
which synthesis holes are resolved.

The builder compiles the controllers into a
:class:`~repro.mc.system.TransitionSystem` whose states are::

    (procs: ProcessArray, glob: Any, net: UnorderedNetwork)

with canonicalisation over all process permutations (opt-out available).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

from repro.dsl.network import Message, UnorderedNetwork
from repro.dsl.process import ProcessArray
from repro.errors import ModelError
from repro.mc.properties import CoverageProperty, DeadlockPolicy, Invariant
from repro.mc.rule import Rule
from repro.mc.symmetry import Permuter, ScalarSet
from repro.mc.system import TransitionSystem

#: process id of a global (non-replicated) controller
GLOBAL = -1

DslState = Tuple[ProcessArray, Any, UnorderedNetwork]


class StateView:
    """Mutable scratch copy of a DSL state, used inside one rule firing."""

    __slots__ = ("procs", "glob", "net")

    def __init__(self, state: DslState) -> None:
        procs, glob, net = state
        self.procs = list(procs)
        self.glob = glob
        self.net = net

    def local(self, index: int) -> Any:
        """The local state of process ``index``."""
        return self.procs[index]

    def become(self, index: int, new_state: Any) -> None:
        """Replace process ``index``'s local state."""
        self.procs[index] = new_state

    def send(self, mtype: str, src: int, dst: int, payload: Any = None) -> None:
        """Put a message in flight."""
        self.net = self.net.send(Message(mtype, src, dst, payload))

    def freeze(self) -> DslState:
        """Back to the immutable DSL state tuple."""
        return (ProcessArray(tuple(self.procs)), self.glob, self.net)


#: handler signature: (view, proc_index, execution_context, message_or_None).
#: ``proc_index`` is the controller instance executing the transition
#: (``GLOBAL`` for a global controller); for message events the consumed
#: message (with its ``src``) is passed as the fourth argument.
Handler = Callable[[StateView, int, Any, Optional[Message]], None]
#: optional payload/extra guard on a message transition
MessageGuard = Callable[[DslState, Message], bool]


@dataclass(frozen=True)
class Transition:
    """One controller table entry."""

    state: Any
    event: str
    handler: Handler
    spontaneous: bool = False
    message_guard: Optional[MessageGuard] = None


class ControllerSpec:
    """A named controller: a set of transitions over local states."""

    def __init__(self, name: str, replicated: bool = True) -> None:
        if not name:
            raise ModelError("controller name must be non-empty")
        self.name = name
        self.replicated = replicated
        self.transitions: List[Transition] = []
        self._keys: set = set()

    def on(
        self,
        state: Any,
        event: str,
        handler: Handler,
        spontaneous: bool = False,
        message_guard: Optional[MessageGuard] = None,
    ) -> "ControllerSpec":
        """Register a transition; returns self for chaining."""
        key = (state, event)
        if key in self._keys:
            raise ModelError(f"duplicate transition {key} in controller {self.name!r}")
        self._keys.add(key)
        self.transitions.append(
            Transition(state, event, handler, spontaneous, message_guard)
        )
        return self


class ProtocolBuilder:
    """Accumulates controllers and properties; compiles a TransitionSystem."""

    def __init__(
        self,
        name: str,
        n_procs: int,
        initial_local: Any,
        initial_global: Any = None,
        symmetry: bool = True,
    ) -> None:
        if n_procs < 1:
            raise ModelError("n_procs must be >= 1")
        self.name = name
        self.n_procs = n_procs
        self.initial_local = initial_local
        self.initial_global = initial_global
        self.symmetry = symmetry
        self._controllers: List[ControllerSpec] = []
        self._invariants: List[Invariant] = []
        self._coverage: List[CoverageProperty] = []
        self._deadlock: DeadlockPolicy = DeadlockPolicy.fail()
        self._global_rename: Optional[Callable[[Any, Tuple[int, ...]], Any]] = None
        self._global_schema: Any = None

    def add_controller(self, spec: ControllerSpec) -> "ProtocolBuilder":
        """Register a controller; returns self for chaining."""
        self._controllers.append(spec)
        return self

    def add_invariant(self, name: str, predicate) -> "ProtocolBuilder":
        """Add a named safety predicate; returns self."""
        self._invariants.append(Invariant(name, predicate))
        return self

    def add_coverage(self, name: str, predicate) -> "ProtocolBuilder":
        """Add a named coverage predicate; returns self."""
        self._coverage.append(CoverageProperty(name, predicate))
        return self

    def set_deadlock_policy(self, policy: DeadlockPolicy) -> "ProtocolBuilder":
        """Set the terminal-state policy; returns self."""
        self._deadlock = policy
        return self

    def set_global_rename(self, rename) -> "ProtocolBuilder":
        """How to rename process ids inside the global state (for symmetry).

        ``rename(glob, mapping) -> glob``.  Required when the global state
        references process indices and symmetry is enabled (unless a
        global schema is set, whose field renames then apply).
        """
        self._global_rename = rename
        return self

    def set_global_schema(self, schema) -> "ProtocolBuilder":
        """Declare the global state's :class:`~repro.dsl.fields.Schema`.

        The schema's typed fields (``IdField``/``IdSetField`` rename
        hooks) give every global location a known finite domain, which
        lets :meth:`build` compile a fully table-driven packed-state
        codec (:mod:`repro.mc.packed`) instead of treating the global
        record as one opaque atom.  When no explicit global rename was
        set, ``schema.rename`` also becomes the object-path rename, so
        both layers share one source of truth.
        """
        self._global_schema = schema
        return self

    # -- compilation -------------------------------------------------------

    def _initial_state(self) -> DslState:
        return (
            ProcessArray.uniform(self.initial_local, self.n_procs),
            self.initial_global,
            UnorderedNetwork(),
        )

    def _make_rule(self, spec: ControllerSpec, transition: Transition,
                   proc: int) -> Rule:
        label = f"{spec.name}{'' if proc == GLOBAL else proc}"
        rule_name = f"{label}:{transition.state}+{transition.event}"
        if proc != GLOBAL:
            rule_name = f"{rule_name}[p={proc}]"

        def local_of(state: DslState) -> Any:
            return state[1] if proc == GLOBAL else state[0][proc]

        if transition.spontaneous:
            def guard(state, _t=transition):
                return local_matches(local_of(state), _t.state)

            def apply(state, ctx, _t=transition):
                view = StateView(state)
                _t.handler(view, proc, ctx, None)
                return [view.freeze()]

            return Rule(rule_name, guard, apply, params={"p": proc})

        def guard(state, _t=transition):
            if not local_matches(local_of(state), _t.state):
                return False
            for message in state[2].deliverable(proc, _t.event):
                if _t.message_guard is None or _t.message_guard(state, message):
                    return True
            return False

        def apply(state, ctx, _t=transition):
            successors = []
            for message in state[2].deliverable(proc, _t.event):
                if _t.message_guard is not None and not _t.message_guard(state, message):
                    continue
                view = StateView(state)
                view.net = view.net.deliver(message)
                _t.handler(view, proc, ctx, message)
                successors.append(view.freeze())
            return successors

        return Rule(rule_name, guard, apply, params={"p": proc})

    def build(self) -> TransitionSystem:
        """Compile the controllers into a TransitionSystem."""
        if not self._controllers:
            raise ModelError("protocol has no controllers")
        rules: List[Rule] = []
        for spec in self._controllers:
            procs = range(self.n_procs) if spec.replicated else [GLOBAL]
            for transition in spec.transitions:
                for proc in procs:
                    rules.append(self._make_rule(spec, transition, proc))

        schema = self._global_schema
        global_rename = self._global_rename
        if global_rename is None and schema is not None:
            global_rename = schema.rename

        canonicalize = None
        if self.symmetry and self.n_procs > 1:
            rename = global_rename or (lambda glob, mapping: glob)

            def permute(state: DslState, mapping: Tuple[int, ...]) -> DslState:
                procs, glob, net = state
                return (
                    procs.renamed(mapping),
                    rename(glob, mapping),
                    net.renamed(mapping),
                )

            permuter = Permuter.for_single(
                ScalarSet("proc", self.n_procs), permute
            )
            # No replica_keys fast path here: the builder cannot know which
            # process indices a user's global state references, so only the
            # orbit cache is generic enough to apply.
            canonicalize = permuter.make_canonicalizer()

        return TransitionSystem(
            name=f"{self.name}-{self.n_procs}p",
            initial_states=[self._initial_state()],
            rules=rules,
            invariants=self._invariants,
            coverage=self._coverage,
            deadlock=self._deadlock,
            canonicalize=canonicalize,
            packed_spec=self._packed_spec(schema, global_rename),
        )

    def _packed_spec(self, schema, global_rename):
        """The packed-state codec spec for the compiled system.

        With a global schema the codec is fully table-driven (the typed
        fields declare every replica-indexed location); otherwise the
        global state is one interned atom renamed through the user's
        global rename — exact either way, since both reuse the very
        expressions the object permuter applies.
        """
        from repro.mc.packed import (
            PackedSpec,
            codec_for_opaque_global,
            codec_from_schema,
        )

        n_procs = self.n_procs
        symmetry = self.symmetry
        if schema is not None:
            return PackedSpec(
                lambda: codec_from_schema(schema, n_procs, symmetry=symmetry)
            )
        return PackedSpec(
            lambda: codec_for_opaque_global(
                n_procs, global_rename, symmetry=symmetry
            )
        )


def local_matches(local_state: Any, pattern: Any) -> bool:
    """Match a local state against a transition's state pattern.

    Plain equality, except that a pattern may be a callable predicate.
    """
    if callable(pattern):
        return bool(pattern(local_state))
    return local_state == pattern
