"""Random simulation of transition systems.

Not part of the paper's algorithm, but indispensable for a usable library:
random walks sanity-check a model (and its invariants) quickly before paying
for exhaustive exploration, and they power several of our tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Optional

from repro.mc.context import ExecutionContext
from repro.mc.system import TransitionSystem
from repro.mc.trace import Trace, TraceStep
from repro.errors import WildcardEncountered


@dataclass
class SimulationResult:
    """Outcome of one random walk."""

    trace: Trace
    violated_invariant: Optional[str]
    deadlocked: bool
    steps_taken: int


def simulate(
    system: TransitionSystem,
    max_steps: int = 100,
    seed: Optional[int] = None,
    resolver: Any = None,
) -> SimulationResult:
    """Perform one random walk from a random initial state.

    Stops at the step limit, at an invariant violation, or at a state with
    no enabled rules.  Wildcard-cut firings are treated as disabled.
    """
    rng = random.Random(seed)
    ctx = ExecutionContext(resolver)
    state = rng.choice(system.initial_states())
    steps: List[TraceStep] = [TraceStep(None, state)]

    violated = _check_invariants(system, state)
    if violated is not None:
        return SimulationResult(Trace(steps), violated, False, 0)

    for step_index in range(max_steps):
        choices = []
        for rule in system.rules:
            if not rule.guard(state):
                continue
            ctx.begin_firing()
            try:
                successors = rule.fire(state, ctx)
            except WildcardEncountered:
                continue
            for successor in successors:
                choices.append((rule.name, successor))
        if not choices:
            return SimulationResult(Trace(steps), None, True, step_index)
        rule_name, state = rng.choice(choices)
        steps.append(TraceStep(rule_name, state))
        violated = _check_invariants(system, state)
        if violated is not None:
            return SimulationResult(Trace(steps), violated, False, step_index + 1)

    return SimulationResult(Trace(steps), None, False, max_steps)


def _check_invariants(system: TransitionSystem, state: Any) -> Optional[str]:
    for invariant in system.invariants:
        if not invariant.holds(state):
            return invariant.name
    return None
