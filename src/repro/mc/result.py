"""Verification verdicts, failure kinds, and run statistics.

The paper's model checker returns one of three results: "success",
"failure", or "unknown" (Section II).  UNKNOWN arises when wildcard holes
were encountered but no failure was found — the candidate's behaviour beyond
the wildcard frontier is undetermined.  We add an explicit *failure kind* so
the synthesis layer can decide whether a failure yields a sound pruning
pattern (see :mod:`repro.core.pruning`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, FrozenSet, Optional, Tuple

from repro.mc.trace import Trace


class Verdict(enum.Enum):
    """Three-valued outcome of a model-checker run."""

    SUCCESS = "success"
    FAILURE = "failure"
    UNKNOWN = "unknown"


class FailureKind(enum.Enum):
    """Why a run failed.

    INVARIANT and DEADLOCK failures come with a minimal trace and are always
    sound pruning patterns.  COVERAGE failures (an "all stable states must be
    visited" style property was never satisfied) are only reported as
    failures when the exploration was complete and wildcard-free; otherwise
    the verdict is UNKNOWN.
    """

    INVARIANT = "invariant"
    DEADLOCK = "deadlock"
    COVERAGE = "coverage"


@dataclass(frozen=True)
class RunStats:
    """Statistics of one exploration.

    ``canon_cache_hits`` counts orbit-cache lookups served from the memo
    during *this* run; ``canon_cache_size`` is the cache's entry count at
    run end (the cache is shared across runs of one system, so the size is
    cumulative, and under the threads backend a run's hit delta can
    include concurrent runs' hits — diagnostics, not an exact measure).
    Both are 0 when the system canonicalises without a
    :class:`~repro.mc.symmetry.CachingCanonicalizer`.

    ``prefix_states_reused`` counts the states this run inherited from a
    prefix-exploration checkpoint instead of re-exploring (0 for cold
    runs; see :class:`~repro.mc.kernel.ExplorationCheckpoint`).  They are
    included in ``states_visited``, which therefore matches a from-scratch
    run of the same candidate.

    ``ample_states`` counts the states partial-order reduction expanded
    with a proper subset of their enabled rules, and
    ``por_rules_skipped`` the enabled rule firings those reduced
    expansions deferred (see :mod:`repro.mc.footprint`).  Both are 0 when
    POR is off or never found a reducible state.
    """

    states_visited: int = 0
    transitions_fired: int = 0
    rules_attempted: int = 0
    wildcard_cuts: int = 0
    max_depth: int = 0
    truncated: bool = False
    canon_cache_hits: int = 0
    canon_cache_size: int = 0
    prefix_states_reused: int = 0
    por_rules_skipped: int = 0
    ample_states: int = 0

    def merged_with(self, other: "RunStats") -> "RunStats":
        """Combine two runs' statistics (sums, maxima, or-flags)."""
        return RunStats(
            states_visited=self.states_visited + other.states_visited,
            transitions_fired=self.transitions_fired + other.transitions_fired,
            rules_attempted=self.rules_attempted + other.rules_attempted,
            wildcard_cuts=self.wildcard_cuts + other.wildcard_cuts,
            max_depth=max(self.max_depth, other.max_depth),
            truncated=self.truncated or other.truncated,
            canon_cache_hits=self.canon_cache_hits + other.canon_cache_hits,
            canon_cache_size=max(self.canon_cache_size, other.canon_cache_size),
            prefix_states_reused=self.prefix_states_reused
            + other.prefix_states_reused,
            por_rules_skipped=self.por_rules_skipped + other.por_rules_skipped,
            ample_states=self.ample_states + other.ample_states,
        )


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of one model-checker run.

    Attributes:
        verdict: SUCCESS, FAILURE, or UNKNOWN.
        failure_kind: populated iff verdict is FAILURE.
        message: human-readable explanation (property name, etc.).
        trace: minimal error trace for INVARIANT/DEADLOCK failures.
        stats: exploration statistics.
        wildcard_encountered: whether any wildcard cut occurred.
        executed_holes: all holes resolved (non-wildcard) during the run.
        failure_holes: holes relevant to the failure — for INVARIANT and
            DEADLOCK, those executed on the minimal error path (plus, for
            deadlocks, during firings attempted at the final state); for
            COVERAGE, every hole executed in the run.  Only populated when
            the explorer was asked to track hole paths; the refined pruning
            mode uses it.
        unmet_coverage: names of coverage properties never satisfied.
        cut_holes: ``(hole_name, depth)`` pairs, sorted by name, recording
            the shallowest depth at which each wildcard hole cut an
            execution branch during this run.  Empty on wildcard-free runs.
            Family-based synthesis uses the earliest (minimum-depth) cut to
            pick the hole an ambiguous family should split on.
        stored_pattern: the generalised failure pattern already computed
            for this run — either replayed from the verdict store or
            computed once when recording to it.  ``None`` means "not
            precomputed" (compute as usual); a tuple (possibly empty)
            short-circuits pattern generalisation so store hits never
            re-run counterexample replay.
    """

    verdict: Verdict
    failure_kind: Optional[FailureKind] = None
    message: str = ""
    trace: Optional[Trace] = None
    stats: RunStats = field(default_factory=RunStats)
    wildcard_encountered: bool = False
    executed_holes: FrozenSet[Any] = frozenset()
    failure_holes: Optional[FrozenSet[Any]] = None
    unmet_coverage: Tuple[str, ...] = ()
    cut_holes: Tuple[Tuple[str, int], ...] = ()
    stored_pattern: Optional[Tuple[Tuple[int, int], ...]] = None

    @property
    def is_success(self) -> bool:
        """Whether the verdict is SUCCESS."""
        return self.verdict is Verdict.SUCCESS

    @property
    def is_failure(self) -> bool:
        """Whether the verdict is FAILURE."""
        return self.verdict is Verdict.FAILURE

    @property
    def is_unknown(self) -> bool:
        """Whether the verdict is UNKNOWN."""
        return self.verdict is Verdict.UNKNOWN

    def summary(self) -> str:
        """One-line human-readable summary."""
        parts = [self.verdict.value]
        if self.failure_kind is not None:
            parts.append(self.failure_kind.value)
        if self.message:
            parts.append(self.message)
        parts.append(f"states={self.stats.states_visited}")
        if self.wildcard_encountered:
            parts.append("wildcards=yes")
        return " | ".join(parts)
