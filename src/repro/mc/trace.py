"""Error traces.

A trace is the sequence of states from an initial state to the state where
a property was violated, each step labelled with the rule that produced it.
Trace *shape* depends on how the exploration kernel was scheduled: under
the FIFO frontier strategy ("bfs", the synthesis default) traces are
minimal — no shorter sequence of transitions reaches the violation (paper,
Section II, footnote 1: minimality makes pruning effective, since a short
trace touches few holes and conflict generalisation replays exactly those).
Under the LIFO strategy ("dfs"), or through the inherited parent edges of a
prefix-resumed run, traces are valid but not necessarily depth-minimal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TraceStep:
    """One step of a trace: the rule fired and the state it produced.

    ``rule_name`` is ``None`` for the initial state.
    """

    rule_name: Optional[str]
    state: Any


class Trace:
    """An immutable sequence of :class:`TraceStep`, initial state first."""

    __slots__ = ("_steps",)

    def __init__(self, steps: Sequence[TraceStep]) -> None:
        if not steps:
            raise ValueError("a trace must contain at least the initial state")
        if steps[0].rule_name is not None:
            raise ValueError("the first trace step must be an initial state")
        self._steps: Tuple[TraceStep, ...] = tuple(steps)

    @property
    def steps(self) -> Tuple[TraceStep, ...]:
        """The trace steps, initial state first."""
        return self._steps

    @property
    def initial_state(self) -> Any:
        """The state the trace starts from."""
        return self._steps[0].state

    @property
    def final_state(self) -> Any:
        """The state the trace ends in (the violating one)."""
        return self._steps[-1].state

    @property
    def rule_names(self) -> List[str]:
        """Names of fired rules, in order (excludes the initial pseudo-step)."""
        return [step.rule_name for step in self._steps[1:]]

    def __len__(self) -> int:
        """Number of transitions (not states)."""
        return len(self._steps) - 1

    def __iter__(self) -> Iterator[TraceStep]:
        return iter(self._steps)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self._steps == other._steps

    def __hash__(self) -> int:
        return hash(self._steps)

    def format(self, state_formatter=repr) -> str:
        """Render the trace as numbered lines, one state per step."""
        lines = []
        for index, step in enumerate(self._steps):
            label = step.rule_name if step.rule_name is not None else "<initial>"
            lines.append(f"{index:3d}  {label}")
            lines.append(f"     {state_formatter(step.state)}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Trace(len={len(self)}, rules={self.rule_names})"
