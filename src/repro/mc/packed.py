"""Packed-state kernel support: fixed-layout codecs, slab interning, and
table-driven canonicalisation.

Every verdict this reproduction produces bottoms out in the same loop:
fire rules, canonicalise, deduplicate.  The object layer pays Python
overhead on each step — ``Record`` field walks, ``state_key`` recursive
serialisation, orbit search over full object graphs.  This module moves
the *hot* half of that loop onto small integer vectors while leaving the
object layer authoritative for rule-firing semantics, traces, and
counterexample replay:

* A :class:`StateCodec` encodes each state into a fixed-layout tuple of
  small ints ("codes"), one slot per state location.  Slots come from the
  schemas the DSL carries (:mod:`repro.dsl.fields` — ``IdField`` /
  ``IdSetField`` rename hooks say exactly which slots are replica-indexed)
  or, for hand-written protocols, from a discovery spec over their field
  tables (:func:`repro.protocols.msi.defs.packed_spec`).
* A :class:`PackedRuntime` interns encodings in a slab (encoding → dense
  index) and memoises, per interned state: the canonical orbit member,
  the enabled-rule set, rule-firing successors (a per-rule resolution
  trie, so synthesis candidates share work), invariant verdicts, coverage
  and deadlock classification.
* Canonicalisation is table-driven: per permutation, a precomputed
  index/value remap over the packed layout; the orbit minimum is a min
  over remapped code vectors with **no** object reconstruction.

Exactness contract (pinned by ``tests/mc/test_packed_codec.py``): for
every mapping ``m``, ``remap(encode(s), m) == encode(permute(s, m))``.
The remap-minimum is therefore a true orbit canonical form, and
``decode`` of any interned encoding is a real state object — which is how
traces and counterexample replay stay exact under packing.

Thread note: one runtime is shared by all kernels of a system (the thread
backend runs many concurrently).  Interning and trie insertion take a
lock on their miss paths; all other memo writes are idempotent
(deterministic recomputation) and rely on GIL-atomic dict/list ops.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ModelError, WildcardEncountered

#: slab capacity: a hard cap so a runaway system fails loudly instead of
#: swallowing memory; catalog workloads intern a few thousand states
MAX_SLAB_ENTRIES = 1 << 20


# -- slots --------------------------------------------------------------------
#
# A slot owns one position of the packed layout: it interns values to
# small int codes and (when the position is rename-sensitive) provides a
# per-permutation code remap table.  Tables are indexable by code —
# eagerly materialised lists for schema-declared finite domains, lazily
# filled dicts for open domains — so the canonicalisation loop is the
# same ``table[code]`` either way.


class _LazyTable(dict):
    """code -> renamed code, computed on first use.

    Misses intern through the owning slot, so the table stays total over
    whatever values the protocol actually reaches.  Racing fills compute
    the same deterministic value, so no lock is needed.
    """

    __slots__ = ("_slot", "_mapping")

    def __init__(self, slot: "AtomSlot", mapping: Tuple[int, ...]) -> None:
        super().__init__()
        self._slot = slot
        self._mapping = mapping

    def __missing__(self, code: int) -> int:
        slot = self._slot
        renamed = slot._rename(slot.decode(code), self._mapping)
        new_code = slot.encode(renamed)
        self[code] = new_code
        return new_code


class AtomSlot:
    """Interns arbitrary hashable values; optionally rename-sensitive.

    With ``rename(value, mapping)`` supplied, remap tables are lazy
    per-mapping dicts; without it the position is rename-invariant and
    the remap table is ``None`` (identity).
    """

    __slots__ = ("_codes", "_values", "_rename", "_tables", "_lock")

    def __init__(self, rename: Optional[Callable[[Any, Tuple[int, ...]], Any]] = None) -> None:
        self._codes: Dict[Any, int] = {}
        self._values: List[Any] = []
        self._rename = rename
        self._tables: Dict[Tuple[int, ...], _LazyTable] = {}
        self._lock = threading.Lock()

    def encode(self, value: Any) -> int:
        code = self._codes.get(value)
        if code is None:
            with self._lock:
                code = self._codes.get(value)
                if code is None:
                    code = len(self._values)
                    self._values.append(value)
                    self._codes[value] = code
        return code

    def decode(self, code: int) -> Any:
        return self._values[code]

    def table_for(self, mapping: Tuple[int, ...]) -> Optional[dict]:
        """The code remap table for one permutation (None = identity)."""
        if self._rename is None:
            return None
        table = self._tables.get(mapping)
        if table is None:
            with self._lock:
                table = self._tables.get(mapping)
                if table is None:
                    table = _LazyTable(self, mapping)
                    self._tables[mapping] = table
        return table


class IdSlot:
    """A process-id location with a schema-declared finite domain.

    Codes: ``0`` for the absent sentinel, ``v + 1`` for id ``v``.  The
    per-permutation tables are eager lists — the fully table-driven case
    the DSL's ``IdField.rename`` hook makes possible.
    """

    __slots__ = ("n", "sentinel", "allow_none", "_tables")

    def __init__(self, n: int, sentinel: Any = None, allow_none: bool = True) -> None:
        self.n = n
        self.sentinel = sentinel
        self.allow_none = allow_none
        self._tables: Dict[Tuple[int, ...], List[int]] = {}

    def encode(self, value: Any) -> int:
        if value == self.sentinel and self.allow_none:
            return 0
        if isinstance(value, int) and 0 <= value < self.n:
            return value + 1
        raise ModelError(
            f"packed IdSlot: {value!r} outside [0, {self.n}) "
            f"(sentinel {self.sentinel!r}); run with --no-packed to bypass"
        )

    def decode(self, code: int) -> Any:
        return self.sentinel if code == 0 else code - 1

    def table_for(self, mapping: Tuple[int, ...]) -> List[int]:
        table = self._tables.get(mapping)
        if table is None:
            table = [0] + [mapping[v] + 1 for v in range(self.n)]
            self._tables[mapping] = table
        return table


class IdSetSlot:
    """A set-of-process-ids location (``IdSetField``): frozenset -> bitmask.

    Tables are eager lists over all ``2**n`` masks; replica counts in this
    repo are tiny (guarded anyway).
    """

    __slots__ = ("n", "_tables")

    def __init__(self, n: int) -> None:
        if n > 16:
            raise ModelError("packed IdSetSlot supports at most 16 replicas")
        self.n = n
        self._tables: Dict[Tuple[int, ...], List[int]] = {}

    def encode(self, value: Any) -> int:
        mask = 0
        for member in value:
            if not isinstance(member, int) or not 0 <= member < self.n:
                raise ModelError(
                    f"packed IdSetSlot: member {member!r} outside [0, {self.n}); "
                    f"run with --no-packed to bypass"
                )
            mask |= 1 << member
        return mask

    def decode(self, code: int) -> frozenset:
        return frozenset(v for v in range(self.n) if (code >> v) & 1)

    def table_for(self, mapping: Tuple[int, ...]) -> List[int]:
        table = self._tables.get(mapping)
        if table is None:
            table = []
            for mask in range(1 << self.n):
                remapped = 0
                for v in range(self.n):
                    if (mask >> v) & 1:
                        remapped |= 1 << mapping[v]
                table.append(remapped)
            self._tables[mapping] = table
        return table


# -- layout -------------------------------------------------------------------


class Scalar:
    """One layout position served by one slot."""

    __slots__ = ("slot",)

    def __init__(self, slot: Any) -> None:
        self.slot = slot


class Block:
    """``n`` replica positions sharing one slot.

    Under a permutation the *positions* permute (``new[mapping[old]] =
    old[old]``, the :meth:`ProcessArray.renamed` / MSI ``caches``
    convention); per-value renames, if any, come from the shared slot.
    """

    __slots__ = ("slot", "n")

    def __init__(self, slot: Any, n: int) -> None:
        self.slot = slot
        self.n = n


def _invert(mapping: Tuple[int, ...]) -> Tuple[int, ...]:
    inverse = [0] * len(mapping)
    for old, new in enumerate(mapping):
        inverse[new] = old
    return tuple(inverse)


class StateCodec:
    """Fixed-layout encoder/decoder with table-driven canonicalisation.

    Args:
        layout: sequence of :class:`Scalar` / :class:`Block` entries.
        extract: ``state -> flat value tuple`` aligned with the layout's
            positions (blocks contribute ``n`` consecutive values).
        build: ``flat value tuple -> state`` (the inverse of extract).
        mappings: the permutation group (identity first) over which
            :meth:`canonical_codes` minimises; ``[identity]`` for systems
            without symmetry.
    """

    __slots__ = ("layout", "_extract", "_build", "mappings", "_slots", "_plans",
                 "width")

    def __init__(
        self,
        layout: Sequence[Any],
        extract: Callable[[Any], Tuple[Any, ...]],
        build: Callable[[Tuple[Any, ...]], Any],
        mappings: Sequence[Tuple[int, ...]],
    ) -> None:
        self.layout = tuple(layout)
        self._extract = extract
        self._build = build
        self.mappings = [tuple(m) for m in mappings]
        slots: List[Any] = []
        for entry in self.layout:
            if isinstance(entry, Block):
                slots.extend([entry.slot] * entry.n)
            else:
                slots.append(entry.slot)
        self._slots = tuple(slots)
        self.width = len(slots)
        #: per non-identity mapping: a remap plan — one ``(src, table)``
        #: pair per destination position (table None = copy verbatim)
        self._plans: List[Tuple[Tuple[int, Optional[Any]], ...]] = []
        for mapping in self.mappings[1:]:
            plan: List[Tuple[int, Optional[Any]]] = []
            base = 0
            inverse = _invert(mapping)
            for entry in self.layout:
                if isinstance(entry, Block):
                    table = entry.slot.table_for(mapping) if isinstance(
                        entry.slot, (IdSlot, IdSetSlot)
                    ) or getattr(entry.slot, "_rename", None) is not None else None
                    for j in range(entry.n):
                        plan.append((base + inverse[j], table))
                    base += entry.n
                else:
                    plan.append((base, entry.slot.table_for(mapping)))
                    base += 1
            self._plans.append(tuple(plan))

    def encode(self, state: Any) -> Tuple[int, ...]:
        values = self._extract(state)
        return tuple(
            slot.encode(value) for slot, value in zip(self._slots, values)
        )

    def decode(self, codes: Tuple[int, ...]) -> Any:
        return self._build(
            tuple(slot.decode(code) for slot, code in zip(self._slots, codes))
        )

    def canonical_codes(self, codes: Tuple[int, ...]) -> Tuple[int, ...]:
        """The lexicographic minimum of the orbit, via remap plans only."""
        best = codes
        for plan in self._plans:
            candidate = tuple(
                codes[src] if table is None else table[codes[src]]
                for src, table in plan
            )
            if candidate < best:
                best = candidate
        return best

    def remap(self, codes: Tuple[int, ...], mapping: Tuple[int, ...]) -> Tuple[int, ...]:
        """One permutation's image of a code vector (identity included)."""
        index = self.mappings.index(tuple(mapping))
        if index == 0:
            return codes
        plan = self._plans[index - 1]
        return tuple(
            codes[src] if table is None else table[codes[src]]
            for src, table in plan
        )


def identity_mappings(n: int) -> List[Tuple[int, ...]]:
    """The one-element trivial permutation group."""
    return [tuple(range(n))]


def permutation_mappings(n: int) -> List[Tuple[int, ...]]:
    """All permutations of ``range(n)``, identity first (sorted order)."""
    return sorted(itertools.permutations(range(n)))


class PackedSpec:
    """A system's packed-state capability: a codec plus a shared runtime.

    Built once per :class:`~repro.mc.system.TransitionSystem` by the DSL
    builder or a protocol module; ``with_canonicalizer`` copies share it,
    so one slab serves every run of the system (threads included).
    """

    __slots__ = ("codec_factory", "_codec", "_runtime", "_lock")

    def __init__(self, codec_factory: Callable[[], StateCodec]) -> None:
        self.codec_factory = codec_factory
        self._codec: Optional[StateCodec] = None
        self._runtime: Optional["PackedRuntime"] = None
        self._lock = threading.Lock()

    @property
    def codec(self) -> StateCodec:
        if self._codec is None:
            with self._lock:
                if self._codec is None:
                    self._codec = self.codec_factory()
        return self._codec

    def runtime(self, system: Any) -> "PackedRuntime":
        """The shared runtime (lazily built against ``system``'s rules)."""
        if self._runtime is None:
            codec = self.codec  # resolve outside the lock (it locks too)
            with self._lock:
                if self._runtime is None:
                    self._runtime = PackedRuntime(codec, system)
        return self._runtime


# -- firing-memo trie ---------------------------------------------------------


class _TrieNode:
    """An interior memo node: resolve ``hole``, follow the action edge.

    A node with no edge for the resolved action (or none at all — the
    wildcard terminal) sends the caller to the cold path / re-raises.
    """

    __slots__ = ("hole", "edges")

    def __init__(self, hole: Any) -> None:
        self.hole = hole
        self.edges: Dict[Any, Any] = {}


class _TrieLeaf:
    """A terminal memo node: the firing's successor slab ids (with
    multiplicity, in generation order)."""

    __slots__ = ("ids",)

    def __init__(self, ids: Tuple[int, ...]) -> None:
        self.ids = ids


class PackedRuntime:
    """Slab interner plus per-state memos for one transition system.

    All memos are keyed by the *raw* interned id — never by the canonical
    one — because rule firing, traces, and replay must see the exact state
    the exploration reached, not an orbit-equivalent substitute.
    """

    __slots__ = (
        "codec", "_rules", "_invariants", "_coverage", "_deadlock",
        "_index", "_codes", "_states", "_canon", "_enabled", "_inv",
        "_cov", "_dead", "_fire", "_lock", "_stride",
        "states_interned", "canon_scans", "fire_memo_hits",
        "fire_memo_misses", "decode_calls",
    )

    def __init__(self, codec: StateCodec, system: Any) -> None:
        self.codec = codec
        self._rules = tuple(system.rules)
        self._invariants = tuple(system.invariants)
        self._coverage = tuple(system.coverage)
        self._deadlock = system.deadlock
        self._stride = len(self._rules)
        self._index: Dict[Tuple[int, ...], int] = {}
        self._codes: List[Tuple[int, ...]] = []
        self._states: List[Any] = []
        self._canon: List[int] = []
        self._enabled: List[Optional[Tuple[int, Tuple[int, ...]]]] = []
        self._inv: List[Any] = []
        self._cov: List[Optional[frozenset]] = []
        self._dead: List[Optional[bool]] = []
        self._fire: Dict[int, Any] = {}
        self._lock = threading.Lock()
        self.states_interned = 0
        self.canon_scans = 0
        self.fire_memo_hits = 0
        self.fire_memo_misses = 0
        self.decode_calls = 0

    # -- interning ----------------------------------------------------------

    def _append(self, codes: Tuple[int, ...], state: Any) -> int:
        # caller holds the lock
        rid = len(self._codes)
        if rid >= MAX_SLAB_ENTRIES:
            raise ModelError(
                f"packed slab overflow (> {MAX_SLAB_ENTRIES} distinct states); "
                f"re-run with --no-packed"
            )
        self._codes.append(codes)
        self._states.append(state)
        self._canon.append(-1)
        self._enabled.append(None)
        self._inv.append(None)
        self._cov.append(None)
        self._dead.append(None)
        self._index[codes] = rid
        self.states_interned += 1
        return rid

    def intern(self, state: Any) -> int:
        """Encode and intern a state object; returns its slab id."""
        codes = self.codec.encode(state)
        rid = self._index.get(codes)
        if rid is None:
            with self._lock:
                rid = self._index.get(codes)
                if rid is None:
                    rid = self._append(codes, state)
        return rid

    def _intern_codes(self, codes: Tuple[int, ...]) -> int:
        rid = self._index.get(codes)
        if rid is None:
            with self._lock:
                rid = self._index.get(codes)
                if rid is None:
                    rid = self._append(codes, None)
        return rid

    def state_of(self, rid: int) -> Any:
        """The state object for a slab id (decoded lazily, then cached)."""
        state = self._states[rid]
        if state is None:
            state = self.codec.decode(self._codes[rid])
            self._states[rid] = state
            self.decode_calls += 1
        return state

    def codes_of(self, rid: int) -> Tuple[int, ...]:
        return self._codes[rid]

    def __len__(self) -> int:
        return len(self._codes)

    # -- memoised classification -------------------------------------------

    def canon_id(self, rid: int) -> int:
        """Slab id of the orbit representative (table-driven minimum)."""
        cid = self._canon[rid]
        if cid < 0:
            codes = self._codes[rid]
            canon_codes = self.codec.canonical_codes(codes)
            self.canon_scans += 1
            cid = rid if canon_codes == codes else self._intern_codes(canon_codes)
            self._canon[rid] = cid
        return cid

    def enabled_entry(self, rid: int) -> Tuple[int, Tuple[int, ...]]:
        """``(guard bitmask, ascending enabled rule indices)`` for a state."""
        entry = self._enabled[rid]
        if entry is None:
            state = self.state_of(rid)
            mask = 0
            indices: List[int] = []
            for index, rule in enumerate(self._rules):
                if rule.guard(state):
                    mask |= 1 << index
                    indices.append(index)
            entry = (mask, tuple(indices))
            self._enabled[rid] = entry
        return entry

    def invariant_violation(self, rid: int) -> Optional[str]:
        """Name of the first violated invariant, or None (memoised)."""
        verdict = self._inv[rid]
        if verdict is None:
            verdict = True
            state = self.state_of(rid)
            for invariant in self._invariants:
                if not invariant.holds(state):
                    verdict = invariant.name
                    break
            self._inv[rid] = verdict
        return None if verdict is True else verdict

    def coverage_names(self, rid: int) -> frozenset:
        """Names of every coverage property this state satisfies."""
        names = self._cov[rid]
        if names is None:
            state = self.state_of(rid)
            names = frozenset(
                prop.name for prop in self._coverage if prop.satisfied_by(state)
            )
            self._cov[rid] = names
        return names

    def is_deadlock(self, rid: int) -> bool:
        verdict = self._dead[rid]
        if verdict is None:
            verdict = self._deadlock.is_deadlock(self.state_of(rid))
            self._dead[rid] = verdict
        return verdict

    # -- firing memo --------------------------------------------------------

    def fire(self, rid: int, rule_index: int, ctx: Any) -> Tuple[int, ...]:
        """Successor slab ids of firing one rule, memoised per resolution path.

        The memo is a per-``(state, rule)`` trie over hole resolutions:
        interior nodes replay ``ctx.resolve`` (identical side effects —
        executed-hole tracking and wildcard propagation — to a real
        firing, because handler resolution order is deterministic), leaves
        hold successor ids.  Unseen resolution branches fall through to a
        real ``rule.fire`` whose resolution path is recorded and inserted.
        """
        key = rid * self._stride + rule_index
        node = self._fire.get(key)
        if node is not None:
            while node.__class__ is _TrieNode:
                action = ctx.resolve(node.hole)  # may raise WildcardEncountered
                node = node.edges.get(action)
                if node is None:
                    break
            if node is not None:
                self.fire_memo_hits += 1
                return node.ids
        self.fire_memo_misses += 1
        rule = self._rules[rule_index]
        state = self.state_of(rid)
        ctx.begin_recording()
        try:
            successors = rule.fire(state, ctx)
        except WildcardEncountered:
            self._insert(key, ctx.end_recording(), None)
            raise
        path = ctx.end_recording()
        ids = tuple(self.intern(successor) for successor in successors)
        self._insert(key, path, ids)
        return ids

    def _insert(self, key: int, path: List[Tuple[Any, Any]],
                ids: Optional[Tuple[int, ...]]) -> None:
        wildcard = bool(path) and path[-1][1] is None
        steps = path[:-1] if wildcard else path
        with self._lock:
            container: Any = self._fire
            edge: Any = key
            for hole, action in steps:
                node = container.get(edge)
                if node is None:
                    node = _TrieNode(hole)
                    container[edge] = node
                elif node.__class__ is not _TrieNode or node.hole is not hole:
                    raise ModelError(
                        "packed firing memo: non-deterministic hole "
                        f"resolution at rule memo for hole {hole!r}"
                    )
                container, edge = node.edges, action
            existing = container.get(edge)
            if wildcard:
                hole = path[-1][0]
                if existing is None:
                    container[edge] = _TrieNode(hole)
                elif existing.__class__ is not _TrieNode or existing.hole is not hole:
                    raise ModelError(
                        "packed firing memo: non-deterministic wildcard "
                        f"position for hole {hole!r}"
                    )
            elif existing is None:
                container[edge] = _TrieLeaf(ids)
            elif existing.__class__ is not _TrieLeaf or existing.ids != ids:
                raise ModelError(
                    "packed firing memo: non-deterministic successors for "
                    "an identical (state, rule, resolution) path"
                )

    # -- diagnostics --------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        """Current counter values (pack_* metric sources)."""
        return {
            "pack_states_interned": self.states_interned,
            "pack_canon_scans": self.canon_scans,
            "pack_fire_memo_hits": self.fire_memo_hits,
            "pack_fire_memo_misses": self.fire_memo_misses,
            "pack_decode_calls": self.decode_calls,
        }


# -- codec discovery helpers --------------------------------------------------


def codec_from_schema(
    schema: Any,
    n_procs: int,
    net_rename: Optional[Callable[[Any, Tuple[int, ...]], Any]] = None,
    symmetry: bool = True,
) -> StateCodec:
    """Compile a DSL global-state :class:`~repro.dsl.fields.Schema` into a
    codec for ``(ProcessArray, Record, UnorderedNetwork)`` states.

    ``IdField``/``IdSetField`` become eager-table slots (their ``rename``
    hooks are exactly the replica-indexed positions); every other field is
    a rename-invariant atom.  Locals are a position-permuted block; the
    network is an interned atom renamed via ``net_rename``.
    """
    from repro.dsl.fields import IdField, IdSetField
    from repro.dsl.process import ProcessArray
    from repro.mc.state import Record

    field_names = tuple(sorted(schema.fields))
    field_slots: List[Any] = []
    for name in field_names:
        field = schema.fields[name]
        if isinstance(field, IdField):
            field_slots.append(
                IdSlot(
                    field.n_procs,
                    sentinel=field.sentinel,
                    allow_none=field.allow_none,
                )
            )
        elif isinstance(field, IdSetField):
            field_slots.append(IdSetSlot(field.n_procs))
        else:
            field_slots.append(AtomSlot())
    if net_rename is None:
        net_rename = lambda net, mapping: net.renamed(mapping)

    layout = (
        [Block(AtomSlot(), n_procs)]
        + [Scalar(slot) for slot in field_slots]
        + [Scalar(AtomSlot(rename=net_rename))]
    )

    def extract(state: Any) -> Tuple[Any, ...]:
        procs, glob, net = state
        return tuple(procs) + tuple(
            getattr(glob, name) for name in field_names
        ) + (net,)

    def build(values: Tuple[Any, ...]) -> Any:
        procs = ProcessArray(values[:n_procs])
        glob = Record(**dict(zip(field_names, values[n_procs:n_procs + len(field_names)])))
        net = values[n_procs + len(field_names)]
        return (procs, glob, net)

    mappings = (
        permutation_mappings(n_procs)
        if symmetry and n_procs > 1
        else identity_mappings(n_procs)
    )
    return StateCodec(layout, extract, build, mappings)


def codec_for_opaque_global(
    n_procs: int,
    global_rename: Optional[Callable[[Any, Tuple[int, ...]], Any]],
    net_rename: Optional[Callable[[Any, Tuple[int, ...]], Any]] = None,
    symmetry: bool = True,
) -> StateCodec:
    """Codec for DSL states whose global component has no schema.

    The global value is one interned atom (lazily renamed per mapping);
    still exact, just without per-field tables.
    """
    from repro.dsl.process import ProcessArray

    if net_rename is None:
        net_rename = lambda net, mapping: net.renamed(mapping)
    glob_slot = AtomSlot(rename=global_rename) if global_rename else AtomSlot()
    layout = [Block(AtomSlot(), n_procs), Scalar(glob_slot),
              Scalar(AtomSlot(rename=net_rename))]

    def extract(state: Any) -> Tuple[Any, ...]:
        procs, glob, net = state
        return tuple(procs) + (glob, net)

    def build(values: Tuple[Any, ...]) -> Any:
        return (ProcessArray(values[:n_procs]), values[n_procs], values[n_procs + 1])

    mappings = (
        permutation_mappings(n_procs)
        if symmetry and n_procs > 1
        else identity_mappings(n_procs)
    )
    return StateCodec(layout, extract, build, mappings)


def trivial_codec() -> StateCodec:
    """Whole-state interning for systems without symmetry (e.g. the
    Figure 2 toy): one atom slot, identity group — the packed firing memo
    and slab dedup still apply."""
    slot = AtomSlot()
    return StateCodec(
        [Scalar(slot)],
        lambda state: (state,),
        lambda values: values[0],
        identity_mappings(1),
    )
