"""The unified exploration kernel (DESIGN: shared verdict semantics).

Every search strategy in this package — breadth-first
(:class:`~repro.mc.bfs.BfsExplorer`), depth-first
(:class:`~repro.mc.dfs.DfsExplorer`) — is one :class:`ExplorationKernel`
parameterised by a :class:`FrontierStrategy`.  The kernel owns everything
the strategies used to duplicate: state interning against the system's
canonicaliser, invariant and coverage evaluation, the parent/trace store,
wildcard bookkeeping, deadlock classification, optional hole-path tracking
and graph capture, and :class:`~repro.mc.result.RunStats` (including the
canonicalisation-cache counters).  A strategy contributes exactly two
decisions: which end of the frontier to pop (FIFO = BFS, LIFO = DFS) and
in which order to try rules at a state.

Verdict semantics pinned down here (shared by *all* strategies; the
synthesis layer depends on every clause):

* Invariants are checked on every state as it is generated (including
  initial states); a violation stops exploration with a FAILURE and trace.
* A rule firing that resolves a wildcard hole is aborted (its successors
  are discarded) and the run is marked; a state whose enabled firings were
  all wildcard-cut is *not* a deadlock.
* Deadlock: a state from which no rule produced any successor (visited
  successors count) and that the deadlock policy does not accept as
  quiescent, provided no wildcard cut occurred at that state.
* Coverage properties are evaluated over all visited states after a
  complete exploration: unmet coverage is a FAILURE only when the run was
  wildcard-free and not truncated; with wildcards the verdict is UNKNOWN.
* Hitting an exploration limit (``max_states`` at a pop, ``max_depth`` at
  an expansion) marks the run truncated and yields UNKNOWN — unless a
  definite failure was found first.  Truncation semantics are strategy-
  independent: BFS and DFS report the identical ``truncated`` flag for the
  same limits on the same system.

Trace shape is the one semantic left to the strategy: FIFO discovery
order makes counterexample traces *minimal* (the property the paper's
candidate pruning leans on — a short trace touches few holes), while LIFO
traces may be longer.  The synthesis engines therefore default to the
FIFO strategy; LIFO is available everywhere (``SynthesisConfig.explorer``,
CLI ``--explorer dfs``) for verification workloads and ablations.

Prefix checkpoints (the synthesis layer's exploration cache)
------------------------------------------------------------

A run whose resolver assigns only a *prefix* of the candidate vector cuts
every execution branch that resolves an unassigned hole.  The states such a
run visits — and the verdict-relevant classification of each — are
therefore shared by **every** candidate extending the prefix: firings that
completed without a wildcard touched only prefix holes and behave
identically under any extension.  ``collect_checkpoint=True`` captures that
shared work as an :class:`ExplorationCheckpoint` (visited set, parent
store, the wildcard-cut states, pending coverage, counters) once the
frontier drains without a definite failure; ``resume_from=checkpoint``
seeds a later run with it, so only the cut states are re-expanded and only
genuinely new states are explored.  :class:`~repro.core.engine.PrefixCache`
chains these checkpoints digit by digit across sibling candidates.

Resumption is verdict-exact: the resumed run reports the same verdict, the
same ``states_visited``, the same executed holes, and the same
wildcard/coverage classification a from-scratch run of the full candidate
would.  ``rules_attempted``/``transitions_fired`` may double-count at the
resume seam (cut states re-fire all their rules) and counterexample traces
through inherited states reuse the prefix run's parent edges, which are
valid but not always depth-minimal.  ``RunStats.prefix_states_reused``
records how many states a run inherited instead of re-exploring.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ModelError, WildcardEncountered
from repro.mc.context import ExecutionContext
from repro.mc.footprint import get_footprint_analysis
from repro.mc.result import FailureKind, RunStats, Verdict, VerificationResult
from repro.mc.system import TransitionSystem
from repro.mc.trace import Trace, TraceStep


@dataclass(frozen=True)
class ExplorationLimits:
    """Caps on exploration effort; ``None`` means unlimited."""

    max_states: Optional[int] = None
    max_depth: Optional[int] = None


@dataclass(frozen=True)
class ExplorationCheckpoint:
    """The reusable outcome of a completed prefix exploration.

    Everything here is immutable (or treated as such): resuming copies the
    containers into kernel-local state, so one checkpoint can seed many
    runs — including concurrently, under the threads backend.

    Attributes:
        visited: canonical state -> state id for every state the prefix
            run interned (all of which passed the invariants).
        originals: state id -> the state as first discovered.
        parents: state id -> ``(parent_sid, rule_name)`` discovery edge, or
            ``None`` for initial states (and everything, when the producing
            run had ``record_traces=False``).
        cut_states: ``(sid, depth)`` of every state where a rule firing was
            wildcard-cut, in ascending depth order.  These are the only
            inherited states a resumed run re-expands: their classification
            (successors? deadlock?) depends on holes the prefix left
            unassigned.
        pending_coverage: names of coverage properties no visited state
            satisfied yet.
        states_visited / transitions / attempts / max_depth: counter
            seeds, so resumed stats match a from-scratch run.
        executed_holes: holes resolved during the prefix run (a subset of
            the prefix; seeds the resumed run's executed set).
        hole_paths: per-sid discovery-path hole sets when the producing run
            tracked them (``track_hole_paths``), else ``None``.
        reduction: ``"por"`` or ``"full"`` — the reduction mode the
            producing run explored under.  A checkpoint is only reusable
            by a run in the same mode: the visited set of a reduced
            exploration is not a superset-compatible seed for a full one
            (or vice versa), so :meth:`ExplorationKernel.run` refuses a
            cross-mode resume.
        por_rules_skipped / ample_states: counter seeds for the POR
            statistics, like the other counters.
        packed: whether the producing run explored in packed mode
            (:mod:`repro.mc.packed`).  Packed checkpoints key ``visited``
            by slab id and store slab ids in ``originals``, so they are
            only meaningful against the same in-process
            :class:`~repro.mc.packed.PackedRuntime`; :meth:`run` refuses
            a cross-mode resume.  The prefix cache and all three backends
            keep runtime and checkpoints within one process, so this
            never crosses a process boundary.
        family: whether the producing run was a family-mode quotient
            exploration (:mod:`repro.core.family`).  Family checkpoints
            chain along family splits (parent quotient -> child quotient),
            while 1-by-1 checkpoints chain along candidate digit prefixes;
            the two chains interleave holes differently, so :meth:`run`
            refuses a cross-mode resume like it does for reduction and
            packing.
    """

    visited: Dict[Any, int]
    originals: Tuple[Any, ...]
    parents: Tuple[Optional[Tuple[int, str]], ...]
    cut_states: Tuple[Tuple[int, int], ...]
    pending_coverage: Tuple[str, ...]
    states_visited: int
    transitions: int
    attempts: int
    max_depth: int
    executed_holes: frozenset
    hole_paths: Optional[Tuple[frozenset, ...]] = None
    reduction: str = "full"
    por_rules_skipped: int = 0
    ample_states: int = 0
    packed: bool = False
    family: bool = False


class FrontierStrategy:
    """How the kernel schedules its frontier and orders rule trials."""

    #: strategy name; also the ``SynthesisConfig.explorer`` / CLI spelling
    name: str = "?"

    def pop(self, frontier: deque) -> Tuple[Any, int, int]:
        """Remove and return the next ``(state, sid, depth)`` entry."""
        raise NotImplementedError

    def order_rules(self, rules: Sequence) -> Tuple:
        """The order in which rules are tried at each expanded state."""
        return tuple(rules)


class FifoFrontier(FrontierStrategy):
    """Breadth-first scheduling: pop the oldest entry (a queue)."""

    name = "bfs"

    def pop(self, frontier: deque) -> Tuple[Any, int, int]:
        """Pop the oldest frontier entry (queue order)."""
        return frontier.popleft()


class LifoFrontier(FrontierStrategy):
    """Depth-first scheduling: pop the newest entry (a stack).

    Rules are tried in reverse declaration order so that the *first*
    declared rule's successors end up on top of the stack and are explored
    deepest-first — the historical DfsExplorer order.
    """

    name = "dfs"

    def pop(self, frontier: deque) -> Tuple[Any, int, int]:
        """Pop the newest frontier entry (stack order)."""
        return frontier.pop()

    def order_rules(self, rules: Sequence) -> Tuple:
        """Reverse declaration order (historical DFS trial order)."""
        return tuple(reversed(rules))


#: explorer name -> strategy class (the single registry all layers share:
#: SynthesisConfig validation, the CLI choices, and make_explorer)
EXPLORER_STRATEGIES: Dict[str, type] = {
    FifoFrontier.name: FifoFrontier,
    LifoFrontier.name: LifoFrontier,
}


class ExplorationKernel:
    """One-shot explicit-state explorer for a transition system.

    Args:
        system: the transition system to explore.
        resolver: hole resolver handed to the execution context; ``None``
            means the system must be hole-free.
        strategy: a :class:`FrontierStrategy` instance or registered name
            (default ``"bfs"``).
        limits: optional exploration caps.
        record_traces: keep parent pointers for trace reconstruction
            (disable to save memory on very large complete-system runs).
        track_hole_paths: additionally record, per state, the set of holes
            executed on its discovery path; enables refined trace-based
            pruning (an extension over the paper; see
            :mod:`repro.core.pruning`).
        capture_graph: optionally pass a :class:`repro.mc.graph.StateGraph`
            to receive every state and transition (for visualisation).
        resume_from: an :class:`ExplorationCheckpoint` from a run whose
            assignment this run's resolver extends; inherited states are
            not re-explored (see the module docstring).  The caller is
            responsible for the extension relationship and for matching
            ``record_traces``/``track_hole_paths``.
        collect_checkpoint: capture :attr:`checkpoint` when the frontier
            drains without truncation and without an invariant/deadlock
            failure; it stays ``None`` otherwise.  A COVERAGE failure —
            which is only definite on a complete, wildcard-free
            exploration — *does* checkpoint, deliberately: such a prefix
            explores the identical space as every extension, so resumed
            runs (empty cut set) return the same verdict immediately.
        partial_order: enable footprint-based partial-order reduction
            (:mod:`repro.mc.footprint`): states whose enabled rules admit
            a persistent, property-invisible ample subset expand only
            that subset.  Verdict-exact; the deferred interleavings'
            effects are reached through the explored ones.  The frontier
            strategy keeps its cycle proviso sound: FIFO requires a not
            yet expanded ample successor (the queue proviso), LIFO — a
            frontier-based DFS with no path stack — conservatively
            requires an unvisited one.  Counterexample traces under POR
            are valid but not always depth-minimal.
        packed: run the hot path on packed state encodings
            (:mod:`repro.mc.packed`) when the system carries a
            ``packed_spec``.  Successor dedup, canonicalisation, and the
            property/deadlock memos then operate on slab ids with
            table-driven orbit minimisation; rule firing, traces, POR
            ample selection, and counterexample replay still go through
            real state objects (``PackedRuntime.state_of``), so verdicts,
            state counts, and solution sets are identical to object mode.
            Silently falls back to the object path when the system has no
            codec.  Defaults to off at this layer — the engine/CLI layers
            default it on — so direct kernel users (and the orbit-cache
            counters their tests pin) are unaffected.
        family: tag this run (and any checkpoint it collects) as a
            family-mode quotient exploration.  Purely a provenance/tripwire
            flag at this layer: exploration semantics are unchanged, but a
            checkpoint collected here can only seed another family-mode
            run, and ``resume_from`` refuses a checkpoint from the other
            mode (see :class:`ExplorationCheckpoint`).
    """

    def __init__(
        self,
        system: TransitionSystem,
        resolver: Any = None,
        strategy: Any = "bfs",
        limits: Optional[ExplorationLimits] = None,
        record_traces: bool = True,
        track_hole_paths: bool = False,
        capture_graph: Any = None,
        resume_from: Optional[ExplorationCheckpoint] = None,
        collect_checkpoint: bool = False,
        partial_order: bool = False,
        telemetry: Any = None,
        packed: bool = False,
        family: bool = False,
    ) -> None:
        self.partial_order = partial_order
        self.family = family
        if isinstance(strategy, str):
            try:
                strategy = EXPLORER_STRATEGIES[strategy]()
            except KeyError:
                raise ModelError(
                    f"unknown explorer strategy {strategy!r}; available: "
                    f"{', '.join(sorted(EXPLORER_STRATEGIES))}"
                ) from None
        self.system = system
        self.strategy = strategy
        #: the shared :class:`~repro.mc.packed.PackedRuntime` when packed
        #: mode is on and the system has a codec; ``None`` otherwise
        self.packed_runtime = None
        if packed:
            spec = getattr(system, "packed_spec", None)
            if spec is not None:
                self.packed_runtime = spec.runtime(system)
        self.ctx = ExecutionContext(resolver)
        self.limits = limits or ExplorationLimits()
        self.record_traces = record_traces
        self.track_hole_paths = track_hole_paths
        self.capture_graph = capture_graph
        if (
            resume_from is not None
            and track_hole_paths
            and resume_from.hole_paths is None
        ):
            raise ModelError(
                "cannot resume a hole-path-tracking run from a checkpoint "
                "recorded without track_hole_paths"
            )
        self.resume_from = resume_from
        self.collect_checkpoint = collect_checkpoint
        #: populated by :meth:`run` when ``collect_checkpoint`` was set and
        #: the exploration drained without truncation or a counterexample
        #: (COVERAGE failures still checkpoint; see the constructor docs)
        self.checkpoint: Optional[ExplorationCheckpoint] = None
        #: canonical state -> state id, filled during :meth:`run`
        self.visited_states: Dict[Any, int] = {}
        #: a ``repro.obs.Telemetry`` (or ``None``); the enabled/disabled
        #: decision is taken once in :meth:`run`, not per state
        self.telemetry = telemetry
        #: phase name -> seconds, populated per run when instrumented
        self.phase_seconds: Dict[str, float] = {}

    def run(self) -> VerificationResult:
        """Explore and return the verdict."""
        system = self.system
        ctx = self.ctx
        canonicalize = system.canonicalize
        limits = self.limits
        visited = self.visited_states
        rt = self.packed_runtime
        packed = rt is not None
        all_rules = tuple(system.rules)
        #: rule indices in the strategy's firing order (system indexing,
        #: so POR bitmasks line up)
        ordered_indices = tuple(
            self.strategy.order_rules(tuple(range(len(all_rules))))
        )
        #: when the strategy's order is ascending (BFS) or descending (DFS)
        #: the packed runtime's memoised enabled tuple can be reused verbatim
        #: instead of re-filtering the guard bitmask at every expansion
        order_ascending = ordered_indices == tuple(range(len(all_rules)))
        order_descending = ordered_indices == tuple(
            reversed(range(len(all_rules)))
        )
        tele = self.telemetry
        instrumented = tele is not None and tele.enabled
        clock = time.perf_counter
        #: mutable cells so nested closures can accumulate without
        #: nonlocal plumbing; only touched when instrumented
        canon_acc = [0.0]
        canon_seed = [0.0]
        expand_acc = [0.0]
        ample_acc = [0.0]
        resume_acc = [0.0]
        checkpoint_acc = [0.0]
        por = None
        if self.partial_order:
            if instrumented:
                with tele.span("footprint_probe") as probe_span:
                    analysis = get_footprint_analysis(system)
                    probe_span.set(usable=analysis.usable)
            else:
                analysis = get_footprint_analysis(system)
            if analysis.usable:
                por = analysis
        reduction_mode = "por" if por is not None else "full"
        if self.resume_from is not None and self.resume_from.reduction != reduction_mode:
            raise ModelError(
                f"cannot resume a {reduction_mode!r}-mode exploration from a "
                f"{self.resume_from.reduction!r}-mode checkpoint; partial-order "
                f"reduction must match across a prefix chain"
            )
        if self.resume_from is not None and self.resume_from.packed != packed:
            raise ModelError(
                "cannot resume a {}-mode exploration from a {}-mode "
                "checkpoint; packed state encoding must match across a "
                "prefix chain".format(
                    "packed" if packed else "object",
                    "packed" if self.resume_from.packed else "object",
                )
            )
        if self.resume_from is not None and self.resume_from.family != self.family:
            raise ModelError(
                "cannot resume a {}-mode exploration from a {}-mode "
                "checkpoint; family-based and 1-by-1 synthesis chain their "
                "checkpoints differently".format(
                    "family" if self.family else "candidate",
                    "family" if self.resume_from.family else "candidate",
                )
            )
        fifo_proviso = isinstance(self.strategy, FifoFrontier)
        parents: List[Optional[Tuple[int, str]]] = []
        originals: List[Any] = []
        hole_paths: List[frozenset] = []
        pending_coverage = list(system.coverage)
        cut_states: List[Tuple[int, int]] = []
        #: hole name -> shallowest depth at which it wildcard-cut a firing
        #: (feeds VerificationResult.cut_holes; the family scheduler's
        #: earliest-cut split heuristic reads it)
        cut_hole_depths: Dict[str, int] = {}

        states_visited = 0
        transitions = 0
        attempts = 0
        wildcard_cuts = 0
        max_depth = 0
        truncated = False
        por_rules_skipped = 0
        ample_states = 0
        #: state ids already popped and expanded (the FIFO queue proviso)
        expanded: Set[int] = set()
        if instrumented:
            # Wrap canonicalisation in a timing shim.  The shim replaces
            # the local binding only — ``canon_source`` keeps serving the
            # orbit-cache counters, and the disabled path never pays it.
            canon_source = canonicalize

            def canonicalize(state, _raw=canon_source, _acc=canon_acc,
                             _clock=clock):
                begin = _clock()
                result = _raw(state)
                _acc[0] += _clock() - begin
                return result
        else:
            canon_source = canonicalize

        resume = self.resume_from
        states_reused = 0
        resume_begin = clock() if instrumented and resume is not None else 0.0
        if resume is not None:
            visited.update(resume.visited)
            originals.extend(resume.originals)
            parents.extend(resume.parents)
            if self.track_hole_paths:
                hole_paths.extend(resume.hole_paths)
            pending = set(resume.pending_coverage)
            pending_coverage = [p for p in pending_coverage if p.name in pending]
            states_visited = resume.states_visited
            states_reused = resume.states_visited
            transitions = resume.transitions
            attempts = resume.attempts
            max_depth = resume.max_depth
            por_rules_skipped = resume.por_rules_skipped
            ample_states = resume.ample_states
            ctx.run_executed_holes.update(resume.executed_holes)
            if instrumented:
                resume_acc[0] += clock() - resume_begin

        # The orbit cache (repro.mc.symmetry.CachingCanonicalizer) is
        # shared across runs of the same system; report per-run hit deltas.
        # Under the threads backend concurrent runs share the counter, so a
        # run's delta can include other threads' hits — diagnostics only.
        cache_hits_base = getattr(canon_source, "hits", 0)
        #: packed-runtime counter snapshot, for per-run pack_* metric deltas
        pack_base = rt.counters() if instrumented and packed else None

        frontier: deque = deque()

        def register(state: Any, parent: Optional[Tuple[int, str]], depth: int,
                     path_holes: frozenset) -> Tuple[int, bool]:
            """Canonicalise, dedup, property-check, and enqueue a state.

            In packed mode ``state`` is a slab id: canonicalisation is the
            table-driven :meth:`~repro.mc.packed.PackedRuntime.canon_id`
            and the visited set is keyed by the canonical slab id.

            Returns ``(state_id, is_new)``.
            """
            nonlocal states_visited
            if packed:
                if instrumented:
                    canon_begin = clock()
                    canon = rt.canon_id(state)
                    canon_acc[0] += clock() - canon_begin
                else:
                    canon = rt.canon_id(state)
            else:
                canon = canonicalize(state)
            known = visited.get(canon)
            if known is not None:
                if self.capture_graph is not None and parent is not None:
                    self.capture_graph.add_edge(parent[0], known, parent[1])
                return known, False
            sid = len(originals)
            visited[canon] = sid
            originals.append(state)
            parents.append(parent if self.record_traces else None)
            if self.track_hole_paths:
                hole_paths.append(path_holes)
            states_visited += 1
            if pending_coverage:
                if packed:
                    satisfied = rt.coverage_names(state)
                    for prop in list(pending_coverage):
                        if prop.name in satisfied:
                            pending_coverage.remove(prop)
                else:
                    for prop in list(pending_coverage):
                        if prop.satisfied_by(state):
                            pending_coverage.remove(prop)
            if self.capture_graph is not None:
                self.capture_graph.add_state(
                    sid, rt.state_of(state) if packed else state, depth
                )
                if parent is not None:
                    self.capture_graph.add_edge(parent[0], sid, parent[1])
            frontier.append((state, sid, depth))
            return sid, True

        def build_trace(sid: int) -> Optional[Trace]:
            if not self.record_traces:
                return None
            steps: List[TraceStep] = []
            cursor: Optional[int] = sid
            while cursor is not None:
                parent = parents[cursor]
                original = originals[cursor]
                if packed:
                    original = rt.state_of(original)
                steps.append(
                    TraceStep(parent[1] if parent else None, original)
                )
                cursor = parent[0] if parent else None
            steps.reverse()
            return Trace(steps)

        telemetry_done = [False]

        def finish_telemetry() -> None:
            """Report phase attribution; runs once, on every exit path.

            ``stats()`` is called exactly once per run — every
            ``VerificationResult`` construction goes through it — which
            makes it the single choke point covering early failure
            returns as well as the drained-frontier exits.
            """
            if telemetry_done[0]:
                return
            telemetry_done[0] = True
            canon_in_expand = canon_acc[0] - canon_seed[0]
            phases = {
                "canonicalise": canon_acc[0],
                "expand": max(0.0, expand_acc[0] - canon_in_expand),
            }
            if resume is not None:
                phases["resume_seed"] = resume_acc[0]
            if por is not None:
                phases["ample_select"] = ample_acc[0]
            if checkpoint_acc[0]:
                phases["checkpoint"] = checkpoint_acc[0]
            self.phase_seconds = phases
            for name, seconds in phases.items():
                tele.phase(name, seconds)
            if pack_base is not None:
                metrics = tele.metrics
                for name, value in rt.counters().items():
                    delta = value - pack_base[name]
                    if delta:
                        metrics.counter(
                            name, "packed-kernel counter (run delta)"
                        ).inc(delta)

        def stats() -> RunStats:
            if instrumented:
                finish_telemetry()
            return RunStats(
                states_visited=states_visited,
                transitions_fired=transitions,
                rules_attempted=attempts,
                wildcard_cuts=wildcard_cuts,
                max_depth=max_depth,
                truncated=truncated,
                canon_cache_hits=getattr(canon_source, "hits", 0) - cache_hits_base,
                canon_cache_size=getattr(canon_source, "size", 0),
                prefix_states_reused=states_reused,
                por_rules_skipped=por_rules_skipped,
                ample_states=ample_states,
            )

        def cut_holes_view() -> Tuple[Tuple[str, int], ...]:
            return tuple(sorted(cut_hole_depths.items()))

        def failure(kind: FailureKind, message: str, sid: int,
                    extra_holes: frozenset = frozenset()) -> VerificationResult:
            relevant: Optional[frozenset] = None
            if self.track_hole_paths:
                relevant = hole_paths[sid] | extra_holes
            return VerificationResult(
                verdict=Verdict.FAILURE,
                failure_kind=kind,
                message=message,
                trace=build_trace(sid),
                stats=stats(),
                wildcard_encountered=ctx.run_wildcard_encountered,
                executed_holes=frozenset(ctx.run_executed_holes),
                failure_holes=relevant,
                cut_holes=cut_holes_view(),
            )

        if resume is not None:
            # Inherited states already passed the invariants; only the
            # wildcard-cut states need re-expansion (their classification
            # depends on holes this run's resolver now assigns).  All
            # *other* inherited states count as already expanded for the
            # FIFO cycle proviso — they never will be re-expanded here, so
            # an ample successor pointing at one must not pass as "still
            # open" or a deferral cycle through the prefix could ignore a
            # rule forever.
            cut_sids = set()
            for sid, depth in resume.cut_states:
                cut_sids.add(sid)
                frontier.append((originals[sid], sid, depth))
            if self.partial_order:
                expanded.update(
                    sid for sid in range(len(resume.originals))
                    if sid not in cut_sids
                )
        else:
            # Seed with initial states (checking invariants on them too).
            for state in system.initial_states():
                if packed:
                    state = rt.intern(state)
                sid, is_new = register(state, None, 0, frozenset())
                if not is_new:
                    continue
                if packed:
                    violated = rt.invariant_violation(state)
                    if violated is not None:
                        return failure(
                            FailureKind.INVARIANT,
                            f"invariant {violated!r} violated in an "
                            f"initial state",
                            sid,
                        )
                    continue
                for invariant in system.invariants:
                    if not invariant.holds(state):
                        return failure(
                            FailureKind.INVARIANT,
                            f"invariant {invariant.name!r} violated in an "
                            f"initial state",
                            sid,
                        )

        canon_seed[0] = canon_acc[0]  # canon time spent seeding, not expanding
        tick = None
        if instrumented and tele.progress is not None:
            tick = tele.progress.tick

        while frontier:
            if limits.max_states is not None and states_visited >= limits.max_states:
                truncated = True
                break
            state, sid, depth = self.strategy.pop(frontier)
            if tick is not None:
                tick(states=states_visited, frontier=len(frontier), depth=depth)
            if por is not None:
                expanded.add(sid)
            if depth > max_depth:
                max_depth = depth
            if limits.max_depth is not None and depth >= limits.max_depth:
                truncated = True
                continue
            produced_successor = False
            cut_here = False
            proviso_ok = False
            path_holes = hole_paths[sid] if self.track_hole_paths else frozenset()
            holes_at_state: Set[Any] = set()

            ample: Optional[frozenset] = None
            enabled: Sequence[int] = ordered_indices
            if packed:
                # ``state`` is a slab id; the guard verdicts are memoised
                # per interned state, so re-visits skip the guard calls.
                entry = rt.enabled_entry(state)
                if order_ascending:
                    enabled = entry[1]
                elif order_descending:
                    enabled = entry[1][::-1]
                else:
                    guard_mask = entry[0]
                    enabled = [
                        index for index in ordered_indices
                        if (guard_mask >> index) & 1
                    ]
            if por is not None:
                if instrumented:
                    ample_begin = clock()
                if not packed:
                    enabled = [
                        index for index in ordered_indices
                        if all_rules[index].guard(state)
                    ]
                if len(enabled) >= 2:
                    mask = 0
                    for index in enabled:
                        mask |= 1 << index
                    visible = por.visible_mask_for(
                        prop.name for prop in pending_coverage
                    )
                    chosen = por.ample(
                        mask, rt.state_of(state) if packed else state, visible
                    )
                    if chosen is not None:
                        ample = frozenset(chosen)
                if instrumented:
                    ample_acc[0] += clock() - ample_begin

            def fire_indices(indices, check_guard) -> Optional[VerificationResult]:
                """Fire a batch of rules at the current state.

                With ``check_guard`` (the POR-off fast path) disabled
                rules are skipped inline; the POR path pre-filters the
                enabled set instead because ample selection needs it.
                """
                nonlocal produced_successor, cut_here, proviso_ok
                nonlocal attempts, wildcard_cuts, transitions, holes_at_state
                for index in indices:
                    rule = all_rules[index]
                    if check_guard and not rule.guard(state):
                        continue
                    attempts += 1
                    ctx.begin_firing()
                    try:
                        if packed:
                            successors = rt.fire(state, index, ctx)
                        else:
                            successors = rule.fire(state, ctx)
                    except WildcardEncountered as cut:
                        cut_here = True
                        wildcard_cuts += 1
                        name = cut.hole_name
                        known_depth = cut_hole_depths.get(name)
                        if known_depth is None or depth < known_depth:
                            cut_hole_depths[name] = depth
                        continue
                    if self.track_hole_paths:
                        holes_at_state |= ctx.firing_executed_holes
                    if successors:
                        produced_successor = True
                    firing_holes = (
                        path_holes | ctx.firing_executed_holes
                        if self.track_hole_paths
                        else frozenset()
                    )
                    for successor in successors:
                        transitions += 1
                        new_sid, is_new = register(
                            successor, (sid, rule.name), depth + 1, firing_holes
                        )
                        if is_new or (fifo_proviso and new_sid not in expanded):
                            proviso_ok = True
                        if not is_new:
                            continue
                        if packed:
                            violated = rt.invariant_violation(successor)
                            if violated is not None:
                                return failure(
                                    FailureKind.INVARIANT,
                                    f"invariant {violated!r} violated",
                                    new_sid,
                                )
                            continue
                        for invariant in system.invariants:
                            if not invariant.holds(successor):
                                return failure(
                                    FailureKind.INVARIANT,
                                    f"invariant {invariant.name!r} violated",
                                    new_sid,
                                )
                return None

            if instrumented:
                expand_begin = clock()
            outcome = fire_indices(
                enabled if ample is None
                else [index for index in enabled if index in ample],
                check_guard=por is None and not packed,
            )
            if outcome is not None:
                if instrumented:
                    expand_acc[0] += clock() - expand_begin
                return outcome
            if ample is not None:
                if proviso_ok and produced_successor:
                    ample_states += 1
                    por_rules_skipped += len(enabled) - len(ample)
                else:
                    # Cycle proviso tripped (or the ample rules produced
                    # nothing): upgrade to a full expansion so no firing
                    # is deferred around a cycle and deadlock
                    # classification stays exact.
                    outcome = fire_indices(
                        [index for index in enabled if index not in ample],
                        check_guard=False,
                    )
                    if outcome is not None:
                        if instrumented:
                            expand_acc[0] += clock() - expand_begin
                        return outcome
            if instrumented:
                expand_acc[0] += clock() - expand_begin

            if cut_here:
                cut_states.append((sid, depth))
            elif not produced_successor:
                if (rt.is_deadlock(state) if packed
                        else system.deadlock.is_deadlock(state)):
                    return failure(
                        FailureKind.DEADLOCK,
                        "deadlock: no enabled transitions",
                        sid,
                        extra_holes=frozenset(holes_at_state),
                    )

        if self.collect_checkpoint and not truncated:
            if instrumented:
                checkpoint_begin = clock()
            cut_states.sort(key=lambda entry: entry[1])
            self.checkpoint = ExplorationCheckpoint(
                visited=dict(visited),
                originals=tuple(originals),
                parents=tuple(parents),
                cut_states=tuple(cut_states),
                pending_coverage=tuple(prop.name for prop in pending_coverage),
                states_visited=states_visited,
                transitions=transitions,
                attempts=attempts,
                max_depth=max_depth,
                executed_holes=frozenset(ctx.run_executed_holes),
                hole_paths=tuple(hole_paths) if self.track_hole_paths else None,
                reduction=reduction_mode,
                por_rules_skipped=por_rules_skipped,
                ample_states=ample_states,
                packed=packed,
                family=self.family,
            )
            if instrumented:
                checkpoint_acc[0] += clock() - checkpoint_begin

        unmet = tuple(prop.name for prop in pending_coverage)
        if unmet and not ctx.run_wildcard_encountered and not truncated:
            return VerificationResult(
                verdict=Verdict.FAILURE,
                failure_kind=FailureKind.COVERAGE,
                message=f"coverage not met: {', '.join(unmet)}",
                trace=None,
                stats=stats(),
                wildcard_encountered=False,
                executed_holes=frozenset(ctx.run_executed_holes),
                failure_holes=(
                    frozenset(ctx.run_executed_holes) if self.track_hole_paths else None
                ),
                unmet_coverage=unmet,
                cut_holes=cut_holes_view(),
            )
        if ctx.run_wildcard_encountered or truncated:
            return VerificationResult(
                verdict=Verdict.UNKNOWN,
                message="truncated exploration" if truncated else "wildcards encountered",
                stats=stats(),
                wildcard_encountered=ctx.run_wildcard_encountered,
                executed_holes=frozenset(ctx.run_executed_holes),
                unmet_coverage=unmet,
                cut_holes=cut_holes_view(),
            )
        return VerificationResult(
            verdict=Verdict.SUCCESS,
            stats=stats(),
            wildcard_encountered=False,
            executed_holes=frozenset(ctx.run_executed_holes),
        )

    def fingerprint_visited(self) -> int:
        """Behaviour fingerprint of the visited set, identical across modes.

        Object mode fingerprints the canonical states keyed in
        :attr:`visited_states` directly.  Packed mode keys that dict by
        canonical slab ids whose *representative* is the packed-layout
        minimum — a different (orbit-equivalent) member than the object
        canonicaliser's — so each is decoded and re-canonicalised through
        the system's object canonicaliser, which is an orbit function:
        the resulting values (and the XOR-combined set fingerprint) are
        bit-identical to an object-mode run's.
        """
        from repro.mc.hashing import fingerprint_state_set

        rt = self.packed_runtime
        if rt is None:
            return fingerprint_state_set(self.visited_states)
        canonicalize = self.system.canonicalize
        return fingerprint_state_set(
            canonicalize(rt.state_of(rid)) for rid in self.visited_states
        )


def make_explorer(
    strategy: str,
    system: TransitionSystem,
    resolver: Any = None,
    limits: Optional[ExplorationLimits] = None,
    record_traces: bool = True,
    track_hole_paths: bool = False,
    capture_graph: Any = None,
    resume_from: Optional[ExplorationCheckpoint] = None,
    collect_checkpoint: bool = False,
    partial_order: bool = False,
    telemetry: Any = None,
    packed: bool = False,
    family: bool = False,
) -> ExplorationKernel:
    """Build a kernel for a registered strategy name (``bfs``/``dfs``).

    This is the factory every layer above the model checker goes through:
    :meth:`SynthesisCore.evaluate <repro.core.engine.SynthesisCore.evaluate>`
    (and therefore the sequential, thread, and process backends) and the
    CLI ``verify`` command.
    """
    return ExplorationKernel(
        system,
        resolver=resolver,
        strategy=strategy,
        limits=limits,
        record_traces=record_traces,
        track_hole_paths=track_hole_paths,
        capture_graph=capture_graph,
        resume_from=resume_from,
        collect_checkpoint=collect_checkpoint,
        partial_order=partial_order,
        telemetry=telemetry,
        packed=packed,
        family=family,
    )
