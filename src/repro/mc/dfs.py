"""Depth-first explicit-state exploration.

A DFS alternative to :class:`~repro.mc.bfs.BfsExplorer` with identical
verdict semantics (SUCCESS / FAILURE / UNKNOWN, wildcard cuts, coverage,
deadlock policy).  The practical trade-offs are the classic ones:

* DFS often finds *a* violation after visiting fewer states (it commits to
  deep paths instead of sweeping frontiers), which can make individual
  failing candidate checks cheaper;
* its counterexample traces are NOT minimal, which matters for synthesis:
  the paper's candidate-pruning insight leans on minimal traces touching
  few holes (Section II, footnote 1).  The synthesis engines therefore use
  BFS; DFS is provided for verification workflows and is benchmarked
  against BFS in the ablation suite.

Exploration order: rules are tried in reverse declaration order on a stack,
so the first declared rule is explored deepest-first.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.errors import WildcardEncountered
from repro.mc.bfs import ExplorationLimits
from repro.mc.context import ExecutionContext
from repro.mc.result import FailureKind, RunStats, Verdict, VerificationResult
from repro.mc.system import TransitionSystem
from repro.mc.trace import Trace, TraceStep


class DfsExplorer:
    """One-shot depth-first explorer (same interface as BfsExplorer)."""

    def __init__(
        self,
        system: TransitionSystem,
        resolver: Any = None,
        limits: Optional[ExplorationLimits] = None,
        record_traces: bool = True,
    ) -> None:
        self.system = system
        self.ctx = ExecutionContext(resolver)
        self.limits = limits or ExplorationLimits()
        self.record_traces = record_traces
        self.visited_states: Dict[Any, int] = {}

    def run(self) -> VerificationResult:
        system = self.system
        ctx = self.ctx
        canonicalize = system.canonicalize
        limits = self.limits
        visited = self.visited_states
        parents: List[Optional[Tuple[int, str]]] = []
        originals: List[Any] = []
        pending_coverage = list(system.coverage)

        states_visited = 0
        transitions = 0
        attempts = 0
        wildcard_cuts = 0
        max_depth = 0
        truncated = False

        #: stack of unexpanded state ids with their depths
        stack: List[Tuple[Any, int, int]] = []

        def register(state: Any, parent: Optional[Tuple[int, str]],
                     depth: int) -> Tuple[int, bool]:
            nonlocal states_visited
            canon = canonicalize(state)
            known = visited.get(canon)
            if known is not None:
                return known, False
            sid = len(originals)
            visited[canon] = sid
            originals.append(state)
            parents.append(parent if self.record_traces else None)
            states_visited += 1
            for prop in list(pending_coverage):
                if prop.satisfied_by(state):
                    pending_coverage.remove(prop)
            stack.append((state, sid, depth))
            return sid, True

        def build_trace(sid: int) -> Optional[Trace]:
            if not self.record_traces:
                return None
            steps: List[TraceStep] = []
            cursor: Optional[int] = sid
            while cursor is not None:
                parent = parents[cursor]
                steps.append(
                    TraceStep(parent[1] if parent else None, originals[cursor])
                )
                cursor = parent[0] if parent else None
            steps.reverse()
            return Trace(steps)

        def stats() -> RunStats:
            return RunStats(
                states_visited=states_visited,
                transitions_fired=transitions,
                rules_attempted=attempts,
                wildcard_cuts=wildcard_cuts,
                max_depth=max_depth,
                truncated=truncated,
            )

        def failure(kind: FailureKind, message: str, sid: int) -> VerificationResult:
            return VerificationResult(
                verdict=Verdict.FAILURE,
                failure_kind=kind,
                message=message,
                trace=build_trace(sid),
                stats=stats(),
                wildcard_encountered=ctx.run_wildcard_encountered,
                executed_holes=frozenset(ctx.run_executed_holes),
            )

        for state in system.initial_states():
            sid, is_new = register(state, None, 0)
            if not is_new:
                continue
            for invariant in system.invariants:
                if not invariant.holds(state):
                    return failure(
                        FailureKind.INVARIANT,
                        f"invariant {invariant.name!r} violated in an initial state",
                        sid,
                    )

        while stack:
            if limits.max_states is not None and states_visited >= limits.max_states:
                truncated = True
                break
            state, sid, depth = stack.pop()
            if depth > max_depth:
                max_depth = depth
            if limits.max_depth is not None and depth >= limits.max_depth:
                truncated = True
                continue
            produced_successor = False
            cut_here = False
            # Reverse order so the first declared rule ends up on top of
            # the stack and is explored first.
            for rule in reversed(system.rules):
                if not rule.guard(state):
                    continue
                attempts += 1
                ctx.begin_firing()
                try:
                    successors = rule.fire(state, ctx)
                except WildcardEncountered:
                    cut_here = True
                    wildcard_cuts += 1
                    continue
                if successors:
                    produced_successor = True
                for successor in successors:
                    transitions += 1
                    new_sid, is_new = register(successor, (sid, rule.name), depth + 1)
                    if not is_new:
                        continue
                    for invariant in system.invariants:
                        if not invariant.holds(successor):
                            return failure(
                                FailureKind.INVARIANT,
                                f"invariant {invariant.name!r} violated",
                                new_sid,
                            )
            if not produced_successor and not cut_here:
                if system.deadlock.is_deadlock(state):
                    return failure(
                        FailureKind.DEADLOCK, "deadlock: no enabled transitions", sid
                    )

        unmet = tuple(prop.name for prop in pending_coverage)
        if unmet and not ctx.run_wildcard_encountered and not truncated:
            return VerificationResult(
                verdict=Verdict.FAILURE,
                failure_kind=FailureKind.COVERAGE,
                message=f"coverage not met: {', '.join(unmet)}",
                stats=stats(),
                wildcard_encountered=False,
                executed_holes=frozenset(ctx.run_executed_holes),
                unmet_coverage=unmet,
            )
        if ctx.run_wildcard_encountered or truncated:
            return VerificationResult(
                verdict=Verdict.UNKNOWN,
                message="truncated exploration" if truncated else "wildcards encountered",
                stats=stats(),
                wildcard_encountered=ctx.run_wildcard_encountered,
                executed_holes=frozenset(ctx.run_executed_holes),
                unmet_coverage=unmet,
            )
        return VerificationResult(
            verdict=Verdict.SUCCESS,
            stats=stats(),
            wildcard_encountered=False,
            executed_holes=frozenset(ctx.run_executed_holes),
        )
