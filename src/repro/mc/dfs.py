"""Depth-first explicit-state exploration.

A thin LIFO-strategy shell over the unified
:class:`~repro.mc.kernel.ExplorationKernel` with verdict semantics
*identical* to :class:`~repro.mc.bfs.BfsExplorer` (SUCCESS / FAILURE /
UNKNOWN, wildcard cuts, coverage, deadlock policy, truncation) — the
kernel is the single implementation of all of them.  The practical
trade-offs are the classic ones:

* DFS often finds *a* violation after visiting fewer states (it commits to
  deep paths instead of sweeping frontiers), which can make individual
  failing candidate checks cheaper;
* its counterexample traces are NOT minimal, which matters for synthesis:
  the paper's candidate-pruning insight leans on minimal traces touching
  few holes (Section II, footnote 1).  The synthesis engines therefore
  default to BFS; DFS is selectable everywhere
  (``SynthesisConfig(explorer="dfs")``, CLI ``--explorer dfs``) and is
  benchmarked against BFS in the ablation suite.

Exploration order: rules are tried in reverse declaration order on a stack,
so the first declared rule is explored deepest-first.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.mc.kernel import ExplorationKernel, ExplorationLimits, LifoFrontier
from repro.mc.system import TransitionSystem

__all__ = ["DfsExplorer"]


class DfsExplorer(ExplorationKernel):
    """One-shot depth-first explorer (LIFO frontier strategy).

    Same interface as :class:`~repro.mc.bfs.BfsExplorer`, including
    ``track_hole_paths`` and ``capture_graph`` (both gained from the
    shared kernel).
    """

    def __init__(
        self,
        system: TransitionSystem,
        resolver: Any = None,
        limits: Optional[ExplorationLimits] = None,
        record_traces: bool = True,
        track_hole_paths: bool = False,
        capture_graph: Any = None,
    ) -> None:
        super().__init__(
            system,
            resolver=resolver,
            strategy=LifoFrontier(),
            limits=limits,
            record_traces=record_traces,
            track_hole_paths=track_hole_paths,
            capture_graph=capture_graph,
        )
