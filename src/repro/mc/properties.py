"""Correctness properties checked by the explorer.

Three property classes cover what the paper's case study needs:

* :class:`Invariant` — a predicate that must hold in *every* reachable
  state (e.g. the Single-Writer-Multiple-Reader invariant).  Violations
  yield an error trace (minimal under the FIFO frontier strategy).
* :class:`DeadlockPolicy` — whether states with no outgoing transitions are
  failures.  A ``quiescent`` predicate whitelists states that are allowed to
  be terminal.
* :class:`CoverageProperty` — a predicate that must hold in *some* reachable
  state.  The paper added "all stable states must be visited at least once"
  after discovering that without it the synthesiser produced degenerate
  protocols (e.g. a cache that immediately drops fetched data).  Coverage is
  evaluated after exploration completes; it can only *fail* a candidate when
  the exploration was complete and wildcard-free.
"""

from __future__ import annotations

import enum
from typing import Any, Callable

from repro.errors import ModelError

Predicate = Callable[[Any], bool]


class Invariant:
    """A named per-state safety predicate (must hold in every state)."""

    __slots__ = ("name", "predicate")

    def __init__(self, name: str, predicate: Predicate) -> None:
        if not name:
            raise ModelError("invariant name must be non-empty")
        self.name = name
        self.predicate = predicate

    def holds(self, state: Any) -> bool:
        """Whether the invariant holds in ``state``."""
        return bool(self.predicate(state))

    def __repr__(self) -> str:
        return f"Invariant({self.name!r})"


class CoverageProperty:
    """A named existential reachability predicate (must hold in some state)."""

    __slots__ = ("name", "predicate")

    def __init__(self, name: str, predicate: Predicate) -> None:
        if not name:
            raise ModelError("coverage property name must be non-empty")
        self.name = name
        self.predicate = predicate

    def satisfied_by(self, state: Any) -> bool:
        """Whether ``state`` witnesses this coverage property."""
        return bool(self.predicate(state))

    def __repr__(self) -> str:
        return f"CoverageProperty({self.name!r})"


class DeadlockMode(enum.Enum):
    """How terminal states are classified."""
    FAIL = "fail"
    ALLOW = "allow"


class DeadlockPolicy:
    """Policy for states with no successors.

    ``DeadlockPolicy.fail()`` treats any terminal state as a failure unless
    the optional ``quiescent`` predicate accepts it; ``DeadlockPolicy.allow()``
    never reports deadlocks.  States whose expansion was wildcard-cut are
    never reported as deadlocks: the cut branch could have provided the
    missing transition.
    """

    __slots__ = ("mode", "quiescent")

    def __init__(self, mode: DeadlockMode, quiescent: Predicate = None) -> None:
        self.mode = mode
        self.quiescent = quiescent

    @classmethod
    def fail(cls, quiescent: Predicate = None) -> "DeadlockPolicy":
        """Terminal states fail unless ``quiescent`` accepts them."""
        return cls(DeadlockMode.FAIL, quiescent)

    @classmethod
    def allow(cls) -> "DeadlockPolicy":
        """Terminal states are never failures."""
        return cls(DeadlockMode.ALLOW)

    def is_deadlock(self, state: Any) -> bool:
        """Classify a terminal (no-successor, no-wildcard-cut) state."""
        if self.mode is DeadlockMode.ALLOW:
            return False
        if self.quiescent is not None and self.quiescent(state):
            return False
        return True

    def __repr__(self) -> str:
        return f"DeadlockPolicy({self.mode.value})"
