"""Execution contexts: how rule bodies resolve synthesis holes.

The model checker is usable standalone (complete systems) and embedded in the
synthesis loop (systems with holes).  The difference is the *resolver* the
execution context delegates to:

* :class:`NullResolver` — for complete systems; resolving any hole is an
  error, because a verification-only run should never contain holes.
* :class:`FixedResolver` — maps each hole to a fixed action; used to run a
  hand-completed skeleton or to replay a synthesised solution.
* ``CandidateResolver`` (in :mod:`repro.core.discovery`) — the synthesis
  resolver implementing lazy hole discovery and wildcard semantics.

A resolver signals a wildcard assignment by raising
:class:`~repro.errors.WildcardEncountered`; the context records the event so
the explorer can classify the run (UNKNOWN vs SUCCESS) and then lets the
exception propagate to abort the current rule firing.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Set

from repro.errors import ModelError, WildcardEncountered


class NullResolver:
    """Resolver for hole-free systems: any hole resolution is a bug."""

    def resolve(self, hole: Any) -> Any:
        """Reject any resolution: complete systems have no holes."""
        raise ModelError(
            f"hole {hole!r} resolved during a verification-only run; "
            "use FixedResolver or the synthesis engine for systems with holes"
        )


class FixedResolver:
    """Resolve holes from a fixed mapping (replay a complete assignment).

    ``assignment`` maps hole objects (or hole names) to actions.  A missing
    hole raises :class:`~repro.errors.WildcardEncountered` when ``strict`` is
    False (treat-missing-as-wildcard, useful for partial replays) and
    :class:`~repro.errors.ModelError` when ``strict`` is True.
    """

    def __init__(self, assignment: Dict[Any, Any], strict: bool = True) -> None:
        self._assignment = dict(assignment)
        self._strict = strict

    def resolve(self, hole: Any) -> Any:
        """Resolve from the fixed assignment (see the class docs)."""
        if hole in self._assignment:
            return self._assignment[hole]
        name = getattr(hole, "name", None)
        if name is not None and name in self._assignment:
            return self._assignment[name]
        if self._strict:
            raise ModelError(f"no action assigned for hole {hole!r}")
        raise WildcardEncountered(str(name or hole))


class ExecutionContext:
    """Per-run bookkeeping shared between the explorer and rule bodies.

    Rule bodies call :meth:`resolve` to obtain the action currently assigned
    to a hole.  The context tracks, per rule firing and for the whole run,
    which holes were executed and whether a wildcard cut occurred; the
    explorer uses the per-firing data for deadlock classification and
    (optionally) refined trace-based pruning.
    """

    __slots__ = (
        "_resolver",
        "run_wildcard_encountered",
        "run_executed_holes",
        "_firing_executed",
        "_firing_wildcard",
        "_recording",
        "_record",
    )

    def __init__(self, resolver: Any = None) -> None:
        self._resolver = resolver if resolver is not None else NullResolver()
        self.run_wildcard_encountered: bool = False
        self.run_executed_holes: Set[Any] = set()
        self._firing_executed: Set[Any] = set()
        self._firing_wildcard: bool = False
        self._recording: bool = False
        self._record: list = []

    def begin_firing(self) -> None:
        """Reset per-firing tracking; called by the explorer before each rule."""
        self._firing_executed = set()
        self._firing_wildcard = False

    @property
    def firing_executed_holes(self) -> FrozenSet[Any]:
        """Holes resolved during the current rule firing."""
        return frozenset(self._firing_executed)

    @property
    def firing_hit_wildcard(self) -> bool:
        """Whether the current firing hit a wildcard."""
        return self._firing_wildcard

    def begin_recording(self) -> None:
        """Start capturing this firing's hole-resolution path.

        Used by the packed runtime's firing memo: the recorded
        ``(hole, action)`` sequence — with a trailing ``(hole, None)`` if
        the firing hit a wildcard — keys the memoised successors.
        """
        self._recording = True
        self._record = []

    def end_recording(self) -> list:
        """Stop recording and return the captured resolution path."""
        self._recording = False
        record, self._record = self._record, []
        return record

    def resolve(self, hole: Any) -> Any:
        """Resolve ``hole`` to its currently assigned action.

        Raises :class:`~repro.errors.WildcardEncountered` (after recording
        the event) if the assignment is the wildcard; rule bodies must let
        the exception propagate.
        """
        try:
            action = self._resolver.resolve(hole)
        except WildcardEncountered:
            self._firing_wildcard = True
            self.run_wildcard_encountered = True
            if self._recording:
                self._record.append((hole, None))
            raise
        self._firing_executed.add(hole)
        self.run_executed_holes.add(hole)
        if self._recording:
            self._record.append((hole, action))
        return action
